// The paper's Example 3: the Game-of-LIFE network, 27 modules / 222 nets.
//
// Reproduces both figure 6.6 (hand placement + automatic routing) and
// figure 6.7 (fully automatic generation), writes both diagrams as SVG and
// reports the routing statistics the paper quotes ("there are 222 nets and
// only two nets were routed unsuccessfully").
//
//   $ ./life_game [out_dir] [--threads n] [--trace file] [--stats text|json|off]
//
// With --stats json the emission holds both figures' counters under the
// fig66./fig67. prefixes — the breakdown behind the paper's Table 6.1.
#include <fstream>
#include <iostream>

#include "core/generator.hpp"
#include "core/options.hpp"
#include "gen/life.hpp"
#include "obs/stats_absorb.hpp"
#include "route/net_order.hpp"
#include "schematic/metrics.hpp"
#include "schematic/svg_writer.hpp"
#include "schematic/validate.hpp"
#include "sim/life_check.hpp"

int main(int argc, char** argv) {
  using namespace na;
  obs::ObsOptions obs;
  GeneratorOptions cli;  // only --threads/--respec are forwarded to the runs
  std::string out_dir = ".";
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    const std::vector<std::string> positional =
        parse_generator_args(args, cli, &obs);
    if (!positional.empty()) out_dir = positional[0];
  } catch (const std::exception& e) {
    std::cerr << "life_game: " << e.what() << '\n';
    return 2;
  }
  obs::obs_begin(obs);
  obs::MetricsRegistry reg;
  const Network net = gen::life_network();
  std::cout << "LIFE network: " << net.module_count() << " modules, "
            << net.net_count() << " nets\n\n";

  int failures = 0;
  auto run = [&](const char* title, const char* file, bool hand_placed,
                 const char* prefix) {
    Diagram dia(net);
    GeneratorOptions opt;
    opt.router.threads = cli.router.threads;
    opt.router.respec_budget = cli.router.respec_budget;
    if (hand_placed) {
      gen::life_hand_placement(dia);
    } else {
      opt.placer.max_part_size = 3;  // one partition per LIFE cell
      opt.placer.max_box_size = 3;
      opt.placer.module_spacing = 1;
      opt.placer.partition_spacing = 2;
    }
    // A dense diagram needs ring space for the wrap-around nets, and long
    // nets routed first (the ordering criterion section 7 recommends).
    opt.router.margin = 12;
    opt.router.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
    const GeneratorResult result = generate(dia, opt);
    std::cout << "=== " << title << " ===\n"
              << "placement: " << result.place_seconds << " s, routing: "
              << result.route_seconds << " s\n"
              << "routed " << result.route.nets_routed << "/"
              << (result.route.nets_routed + result.route.nets_failed)
              << " nets (" << result.route.nets_failed << " unrouted, "
              << result.route.retried_connections << " fixed by the retry pass)\n"
              << result.stats.summary() << "\n";
    const auto problems = validate_diagram(dia);
    for (const auto& p : problems) std::cout << "PROBLEM: " << p << '\n';
    failures += static_cast<int>(problems.size());

    obs::MetricsRegistry one;
    obs::absorb(one, result);
    reg.merge_prefixed(one, prefix);

    std::ofstream svg(out_dir + "/" + file);
    write_svg(svg, dia);
    std::cout << "wrote " << out_dir << "/" << file << "\n\n";
  };

  run("figure 6.6: hand placement, automatic routing", "life_hand.svg", true,
      "fig66.");
  run("figure 6.7: fully automatic generation", "life_auto.svg", false,
      "fig67.");

  // The paper's acceptance test: "the schematic diagram has been simulated
  // ... the results were positive."  The validator above proved the drawn
  // nets realise exactly the net-list; simulating the net-list therefore
  // simulates the artwork.
  const auto sim_problems = sim::verify_life(
      net, {true, true, false, false, true, false, false, false, false}, 8);
  for (const auto& p : sim_problems) std::cout << "SIM PROBLEM: " << p << '\n';
  std::cout << (sim_problems.empty()
                    ? "simulation: 8 generations match the reference game of "
                      "LIFE — results positive\n"
                    : "simulation FAILED\n");
  failures += static_cast<int>(sim_problems.size());
  reg.set("life.validation_failures", failures);
  if (!obs::obs_finish(obs, reg)) return 1;
  return failures == 0 ? 0 : 1;
}
