// Datapath example: a register/ALU loop with a control unit — the kind of
// synthesis intermediate the paper's introduction motivates ("automatic
// generation of complex VLSI-circuits out of a high level description ...
// schematic diagrams provide feedback during the design process").
//
// Demonstrates option exploration: the same network is generated with
// several partition/box settings (the paper's figures 6.2-6.4 workflow) so
// the designer can pick the most readable diagram.
//
//   $ ./datapath [out_dir]
#include <fstream>
#include <iostream>

#include "core/generator.hpp"
#include "netlist/module_library.hpp"
#include "schematic/svg_writer.hpp"
#include "schematic/validate.hpp"

namespace {

na::Network build_datapath() {
  using namespace na;
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId rega = lib.instantiate(net, "reg", "rega");
  const ModuleId regb = lib.instantiate(net, "reg", "regb");
  const ModuleId alu = lib.instantiate(net, "alu", "alu");
  const ModuleId acc = lib.instantiate(net, "reg", "acc");
  const ModuleId mux = lib.instantiate(net, "mux2", "wbmux");
  const ModuleId ctl = lib.instantiate(net, "ctrl", "ctl");

  auto t = [&](ModuleId m, const char* name) { return *net.term_by_name(m, name); };
  auto wire = [&](const char* name, std::initializer_list<TermId> terms) {
    const NetId n = net.add_net(name);
    for (TermId term : terms) net.connect(n, term);
  };

  wire("busa", {t(rega, "q"), t(alu, "a")});
  wire("busb", {t(regb, "q"), t(alu, "b")});
  wire("res", {t(alu, "y"), t(acc, "d")});
  wire("wb", {t(acc, "q"), t(mux, "a")});
  wire("fwd", {t(mux, "y"), t(rega, "d")});
  wire("aluop", {t(ctl, "c0"), t(alu, "op")});
  wire("lda", {t(ctl, "c1"), t(rega, "en")});
  wire("ldb", {t(ctl, "c2"), t(regb, "en")});
  wire("ldacc", {t(ctl, "c3"), t(acc, "en")});
  wire("sel", {t(ctl, "c4"), t(mux, "s")});
  wire("flags", {t(alu, "flags"), t(ctl, "i0")});

  wire("din", {net.add_system_terminal("din", TermType::In), t(regb, "d"), t(mux, "b")});
  wire("clk", {net.add_system_terminal("clk", TermType::In), t(rega, "ck"),
               t(regb, "ck"), t(acc, "ck")});
  wire("go", {net.add_system_terminal("go", TermType::In), t(ctl, "i1")});
  wire("dout", {t(ctl, "c6"), net.add_system_terminal("dout", TermType::Out)});
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const Network net = build_datapath();

  struct Config {
    const char* name;
    int part, box;
  };
  int rc = 0;
  for (const Config& cfg : {Config{"clustered", 1, 1}, Config{"grouped", 4, 1},
                            Config{"strings", 6, 4}}) {
    GeneratorOptions opt;
    opt.placer.max_part_size = cfg.part;
    opt.placer.max_box_size = cfg.box;
    opt.router.margin = 6;
    GeneratorResult result;
    const Diagram dia = generate_diagram(net, opt, &result);
    std::cout << "-p " << cfg.part << " -b " << cfg.box << " (" << cfg.name
              << "): " << result.stats.summary() << '\n';
    const auto problems = validate_diagram(dia);
    for (const auto& p : problems) {
      std::cout << "PROBLEM: " << p << '\n';
      rc = 1;
    }
    std::ofstream svg(out_dir + "/datapath_" + cfg.name + ".svg");
    write_svg(svg, dia);
  }
  std::cout << "SVGs written to " << out_dir << '\n';
  return rc;
}
