// quinto: the module generator of Appendix B — "adds a new module to the
// library".  Reads a simple module description and emits the ESCHER-style
// library representation (Appendix C), validating the description the way
// the historical tool did (coordinates on the outline, pitch-aligned).
//
//   $ ./quinto [file]          reads stdin when no file is given
//   $ ./quinto -pitch 10 file  historical files with pitch-10 coordinates
#include <fstream>
#include <iostream>

#include "core/options.hpp"
#include "netlist/module_library.hpp"
#include "schematic/escher_writer.hpp"

int main(int argc, char** argv) {
  using namespace na;
  int pitch = 1;
  std::string path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "-pitch" && i + 1 < argc) {
        pitch = parse_int_arg(argv[++i], a, 1);
      } else {
        path = a;
      }
    }
    ModuleTemplate tmpl;
    if (path.empty()) {
      tmpl = parse_module_description(std::cin, pitch);
    } else {
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open '" + path + "'");
      tmpl = parse_module_description(in, pitch);
    }
    std::cout << to_escher_template(tmpl);
    std::cerr << "module '" << tmpl.name << "' (" << tmpl.size.x << "x"
              << tmpl.size.y << ", " << tmpl.terms.size()
              << " terminals) added to the library\n";
  } catch (const std::exception& e) {
    std::cerr << "quinto: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
