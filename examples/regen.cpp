// RegenSession quickstart: the incremental edit loop.
//
// An editor keeps one RegenSession per open design.  Every time the user
// changes the netlist, it hands the edited Network to update() and gets a
// fresh diagram back — with only the dirty part of the placement and
// routing actually recomputed.  This example walks a datapath through
// three edits and prints what each update really cost.
//
//   $ ./regen
#include <cstdio>

#include "gen/datapath.hpp"
#include "incremental/edit.hpp"
#include "incremental/session.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"

int main() {
  using namespace na;

  RegenOptions opt;
  opt.generator.placer.max_part_size = 5;
  opt.generator.placer.max_box_size = 3;
  RegenSession session(opt);

  auto show = [&](const char* what) {
    const RegenCounters& c = session.last();
    const DiagramStats s = compute_stats(session.diagram());
    std::printf("%-28s %s  replaced %2d  frozen %2d  rerouted %3d  kept %3d\n",
                what, c.full_regens ? "FULL" : "incr", c.modules_replaced,
                c.modules_frozen, c.nets_rerouted, c.nets_kept);
    if (!validate_diagram(session.diagram()).empty()) {
      std::printf("INVALID DIAGRAM\n");
      std::exit(1);
    }
    (void)s;
  };

  // First update: nothing cached yet, so this is a full generation.
  const Network base = gen::datapath_network({8});
  session.update(base);
  show("initial generation");

  // Edit 1: probe one accumulator bit.  One new module, one changed net.
  NetworkEditor ed1(base);
  ed1.add_module("probe", "probe", {4, 4});
  ed1.add_module_terminal("probe", "i", TermType::In, {0, 2});
  ed1.connect("b2_acc", "probe", "i");
  const Network probed = ed1.build();
  session.update(probed);
  show("edit 1: add probe module");

  // Edit 2: drop the controller status net.  Pure routing change — the
  // placement is untouched and only the dead geometry is scrubbed.
  NetworkEditor ed2(probed);
  ed2.remove_net("stat");
  const Network no_stat = ed2.build();
  session.update(no_stat);
  show("edit 2: delete status net");

  // Edit 3: re-pin the probe input to the top edge.  Only the probe's
  // partition is re-placed; everything clean stays frozen.
  NetworkEditor ed3(no_stat);
  ed3.move_terminal("probe", "i", {2, 4});
  session.update(ed3.build());
  show("edit 3: re-pin probe input");

  const RegenCounters& t = session.totals();
  std::printf("totals: %d updates, %d incremental, %d full regenerations\n",
              t.updates, t.incremental, t.full_regens);
  return t.incremental >= 3 ? 0 : 1;
}
