// RegenSession quickstart: the incremental edit loop.
//
// An editor keeps one RegenSession per open design.  Every time the user
// changes the netlist, it hands the edited Network to update() and gets a
// fresh diagram back — with only the dirty part of the placement and
// routing actually recomputed.  This example walks a datapath through
// three edits and prints what each update really cost.
//
//   $ ./regen [--threads <n>] [--validate region|full|off]
//           [--trace <file>] [--stats text|json|off]
//
// --threads sets the patch router's worker count; --validate picks how each
// patched diagram is checked: "region" (default) validates only the dirty
// hull and escalates on any issue, "full" forces the pre-region whole-
// diagram check, "off" skips the check entirely.  --trace records the
// regen.* stage spans of every update; --stats emits the session totals.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/options.hpp"
#include "gen/datapath.hpp"
#include "incremental/edit.hpp"
#include "incremental/session.hpp"
#include "obs/stats_absorb.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"

namespace {

constexpr const char* kUsage =
    "usage: regen [--threads <n>] [--validate region|full|off]\n"
    "             [--trace <file>] [--stats text|json|off]\n";

void parse_args(int argc, char** argv, na::RegenOptions& opt,
                na::obs::ObsOptions& obs) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--threads") {
      opt.generator.router.threads = na::parse_int_arg(value(), "--threads", 1);
    } else if (arg == "--trace") {
      obs.trace_path = value();
    } else if (arg == "--stats") {
      obs.stats = na::obs::parse_stats_mode(value());
    } else if (arg == "--validate") {
      const std::string mode = value();
      if (mode == "region") {
        opt.validate = true;
        opt.validate_full = false;
      } else if (mode == "full") {
        opt.validate = true;
        opt.validate_full = true;
      } else if (mode == "off") {
        opt.validate = false;
      } else {
        throw std::runtime_error("bad value '" + mode + "' for --validate");
      }
    } else {
      throw std::runtime_error("unknown flag '" + arg + "'");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;

  RegenOptions opt;
  obs::ObsOptions obs;
  opt.generator.placer.max_part_size = 5;
  opt.generator.placer.max_box_size = 3;
  try {
    parse_args(argc, argv, opt, obs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), kUsage);
    return 2;
  }
  obs::obs_begin(obs);
  RegenSession session(opt);

  auto show = [&](const char* what) {
    const RegenCounters& c = session.last();
    const DiagramStats s = compute_stats(session.diagram());
    std::printf(
        "%-28s %s  replaced %2d  frozen %2d  rerouted %3d  extended %d  "
        "kept %3d  validate %.2fms\n",
        what, c.full_regens ? "FULL" : "incr", c.modules_replaced,
        c.modules_frozen, c.nets_rerouted, c.nets_extended, c.nets_kept,
        c.validate_ms);
    if (!validate_diagram(session.diagram()).empty()) {
      std::printf("INVALID DIAGRAM\n");
      std::exit(1);
    }
    (void)s;
  };

  // First update: nothing cached yet, so this is a full generation.
  const Network base = gen::datapath_network({8});
  session.update(base);
  show("initial generation");

  // Edit 1: probe one accumulator bit.  One new module, one changed net.
  NetworkEditor ed1(base);
  ed1.add_module("probe", "probe", {4, 4});
  ed1.add_module_terminal("probe", "i", TermType::In, {0, 2});
  ed1.connect("b2_acc", "probe", "i");
  const Network probed = ed1.build();
  session.update(probed);
  show("edit 1: add probe module");

  // Edit 2: drop the controller status net.  Pure routing change — the
  // placement is untouched and only the dead geometry is scrubbed.
  NetworkEditor ed2(probed);
  ed2.remove_net("stat");
  const Network no_stat = ed2.build();
  session.update(no_stat);
  show("edit 2: delete status net");

  // Edit 3: re-pin the probe input to the top edge.  Only the probe's
  // partition is re-placed; everything clean stays frozen.
  NetworkEditor ed3(no_stat);
  ed3.move_terminal("probe", "i", {2, 4});
  session.update(ed3.build());
  show("edit 3: re-pin probe input");

  const RegenCounters& t = session.totals();
  std::printf("totals: %d updates, %d incremental, %d full regenerations\n",
              t.updates, t.incremental, t.full_regens);
  std::printf("validation: %d region-scoped, %d whole-diagram, %.2f ms\n",
              t.region_validations, t.full_validations, t.validate_ms);

  obs::MetricsRegistry reg;
  obs::absorb(reg, t);
  obs::absorb(reg, session.speculation());
  obs::absorb(reg, compute_stats(session.diagram()));
  if (!obs::obs_finish(obs, reg)) return 1;
  return t.incremental >= 3 ? 0 : 1;
}
