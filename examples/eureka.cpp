// eureka: the routing program of Appendix F.  Reads an ESCHER-style
// diagram (the placement, possibly with prerouted nets) plus the net-list
// connection rules, adds the unrouted nets, and writes the completed
// diagram.  "When a net is unroutable, a warning is displayed."
//
//   $ ./eureka [-s] [-L|-H] [-m n] [-noclaim] [-noretry] [-u -d -l -r]
//              <graphic-file.es> <call-file> <netlist-file> [io-file]
//              [-o out.es]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/options.hpp"
#include "netlist/netlist_io.hpp"
#include "obs/stats_absorb.hpp"
#include "schematic/escher_reader.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  std::string out_path = "routed.es";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      args.push_back(a);
    }
  }
  GeneratorOptions opt;
  obs::ObsOptions obs;
  std::vector<std::string> files;
  try {
    files = parse_generator_args(args, opt, &obs);
    if (files.size() < 3) {
      std::cerr << "usage: eureka [options] <graphic.es> <call-file>"
                << " <netlist-file> [io-file] [-o out.es]\n"
                << generator_usage() << '\n';
      return 2;
    }
    const ModuleLibrary lib = ModuleLibrary::standard_cells();
    const std::string io = files.size() > 3 ? slurp(files[3]) : std::string{};
    const Network net = parse_network(lib, slurp(files[1]), io, slurp(files[2]));
    Diagram dia = parse_escher_diagram(net, slurp(files[0]));

    obs::obs_begin(obs);
    ParallelRouteStats spec;
    const RouteReport report = route_all(dia, opt.router, &spec);
    for (NetId n : report.failed_nets) {
      std::cerr << "warning: net '" << net.net(n).name << "' unroutable\n";
    }
    if (spec.nets_speculated > 0) {
      std::cout << "speculation: " << spec.nets_speculated << " speculated ("
                << spec.commits_clean << " clean, " << spec.reroutes
                << " rerouted), " << spec.nets_gated << " gated, "
                << spec.nets_respeculated << " respeculated ("
                << spec.respec_hits << " hits, " << spec.respec_stale
                << " stale)\n";
    }
    const DiagramStats stats = compute_stats(dia);
    std::cout << stats.summary() << '\n';
    for (const auto& p : validate_diagram(dia)) std::cerr << "PROBLEM: " << p << '\n';
    std::ofstream(out_path) << to_escher_diagram(dia, "eureka");
    std::cout << "wrote " << out_path << '\n';

    obs::MetricsRegistry reg;
    obs::absorb(reg, report);
    obs::absorb(reg, spec);
    obs::absorb(reg, stats);
    if (!obs::obs_finish(obs, reg)) return 1;
  } catch (const std::exception& e) {
    std::cerr << "eureka: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
