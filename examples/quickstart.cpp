// Quickstart: build a small network in code, generate a schematic diagram,
// and print it as ASCII art plus quality metrics.
//
//   $ ./quickstart [-p 4 -b 4 ...]     (PABLO/EUREKA-style flags, optional)
#include <iostream>

#include "core/generator.hpp"
#include "core/options.hpp"
#include "netlist/module_library.hpp"
#include "schematic/ascii_writer.hpp"
#include "schematic/validate.hpp"

int main(int argc, char** argv) {
  using namespace na;

  // --- 1. describe the network ------------------------------------------------
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId a = lib.instantiate(net, "and2", "a0");
  const ModuleId o = lib.instantiate(net, "or2", "o0");
  const ModuleId d = lib.instantiate(net, "dff", "ff");

  auto connect2 = [&](const std::string& name, TermId t0, TermId t1) {
    const NetId n = net.add_net(name);
    net.connect(n, t0);
    net.connect(n, t1);
  };
  connect2("n0", *net.term_by_name(a, "y"), *net.term_by_name(o, "a"));
  connect2("n1", *net.term_by_name(o, "y"), *net.term_by_name(d, "d"));
  connect2("in0", net.add_system_terminal("in0", TermType::In),
           *net.term_by_name(a, "a"));
  connect2("in1", net.add_system_terminal("in1", TermType::In),
           *net.term_by_name(a, "b"));
  connect2("q", *net.term_by_name(d, "q"), net.add_system_terminal("q", TermType::Out));

  // --- 2. generate the diagram -------------------------------------------------
  GeneratorOptions opt;
  opt.placer.max_part_size = 4;  // one functional group
  opt.placer.max_box_size = 4;   // let the string form
  try {
    parse_generator_args({argv + 1, argv + argc}, opt);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);

  // --- 3. inspect ---------------------------------------------------------------
  std::cout << to_ascii(dia) << '\n';
  std::cout << result.stats.summary() << '\n';
  const auto problems = validate_diagram(dia, /*require_all_routed=*/true);
  for (const auto& p : problems) std::cout << "PROBLEM: " << p << '\n';
  return problems.empty() ? 0 : 1;
}
