// net2art: the full file-driven flow of the paper — "from network to
// artwork".  Reads the Appendix-A net-list files, generates the diagram,
// and writes SVG, ASCII and ESCHER-style output.
//
//   $ ./net2art <call-file> <netlist-file> [io-file] [-o out_prefix] [flags]
//   $ ./net2art --synth <topology>:<modules>[:<seed>[:<fanout>]] [flags]
//
// Flags are the historical PABLO/EUREKA options (see core/options.hpp).
// Module templates are resolved against the built-in standard cell library;
// unknown templates can be supplied as Appendix-B descriptions via
// `-lib <file>` (one module per file, repeatable).  `--synth` replaces the
// input files with a seeded synthetic network (topology: grid, torus, dag).
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/generator.hpp"
#include "core/options.hpp"
#include "gen/synth.hpp"
#include "netlist/netlist_io.hpp"
#include "obs/stats_absorb.hpp"
#include "schematic/ascii_writer.hpp"
#include "schematic/eps_writer.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/svg_writer.hpp"
#include "schematic/validate.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parses "<topology>:<modules>[:<seed>[:<fanout>]]", e.g. "grid:1000",
/// "torus:256:7", "dag:5000:1:2.5".
na::gen::SynthOptions parse_synth_spec(const std::string& spec) {
  na::gen::SynthOptions o;
  std::istringstream ss(spec);
  std::string field;
  if (!std::getline(ss, field, ':')) {
    throw std::runtime_error("--synth: empty spec");
  }
  const auto topo = na::gen::parse_topology(field);
  if (!topo) {
    throw std::runtime_error("--synth: unknown topology '" + field +
                             "' (grid, torus, dag)");
  }
  o.topology = *topo;
  if (!std::getline(ss, field, ':')) {
    throw std::runtime_error("--synth: missing module count");
  }
  o.modules = std::stoi(field);
  if (std::getline(ss, field, ':')) o.seed = std::stoull(field);
  if (std::getline(ss, field, ':')) o.fanout_mean = std::stod(field);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  std::vector<std::string> args;
  std::string out_prefix = "diagram";
  std::string synth_spec;
  std::vector<std::string> lib_files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_prefix = argv[++i];
    } else if (a == "-lib" && i + 1 < argc) {
      lib_files.push_back(argv[++i]);
    } else if (a == "--synth" && i + 1 < argc) {
      synth_spec = argv[++i];
    } else {
      args.push_back(a);
    }
  }

  GeneratorOptions opt;
  obs::ObsOptions obs;
  std::vector<std::string> files;
  try {
    files = parse_generator_args(args, opt, &obs);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (synth_spec.empty() && files.size() < 2) {
    std::cerr << "usage: net2art <call-file> <netlist-file> [io-file] [-o prefix]"
              << " [-lib module-file]...\n"
              << "       net2art --synth <topology>:<modules>[:<seed>[:<fanout>]]"
              << " (topology: grid, torus, dag)\n"
              << generator_usage() << '\n';
    return 2;
  }

  try {
    ModuleLibrary lib = ModuleLibrary::standard_cells();
    for (const std::string& f : lib_files) {
      lib.add(parse_module_description(slurp(f)));
    }
    Network net;
    if (!synth_spec.empty()) {
      net = gen::synth_network(parse_synth_spec(synth_spec));
    } else {
      const std::string io = files.size() > 2 ? slurp(files[2]) : std::string{};
      net = parse_network(lib, slurp(files[0]), io, slurp(files[1]));
    }

    obs::obs_begin(obs);
    GeneratorResult result;
    const Diagram dia = generate_diagram(net, opt, &result);
    std::cout << result.stats.summary() << '\n';
    if (const ParallelRouteStats& s = result.speculation; s.nets_speculated > 0) {
      std::cout << "speculation: " << s.nets_speculated << " speculated ("
                << s.commits_clean << " clean, " << s.reroutes << " rerouted), "
                << s.nets_gated << " gated, " << s.nets_respeculated
                << " respeculated (" << s.respec_hits << " hits, "
                << s.respec_stale << " stale)\n";
    }
    for (NetId n : result.route.failed_nets) {
      std::cout << "warning: net '" << net.net(n).name << "' unroutable\n";
    }
    for (const auto& p : validate_diagram(dia)) std::cout << "PROBLEM: " << p << '\n';

    std::ofstream(out_prefix + ".svg") << to_svg(dia);
    std::ofstream(out_prefix + ".txt") << to_ascii(dia);
    std::ofstream(out_prefix + ".es") << to_escher_diagram(dia, out_prefix);
    std::ofstream(out_prefix + ".eps") << to_eps(dia);
    std::cout << "wrote " << out_prefix << ".svg/.txt/.es/.eps\n";

    obs::MetricsRegistry reg;
    obs::absorb(reg, result);
    if (!obs::obs_finish(obs, reg)) return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
