// na_serve — the schematic-as-a-service daemon (DESIGN §10).
//
// Serves line-delimited JSON over TCP: many named RegenSessions, edits
// dispatched onto one work-stealing pool, per-session ordering, graceful
// SIGINT/SIGTERM shutdown that saves dirty sessions and flushes traces.
//
//   na_serve --port 0 --threads 4 --state-dir /tmp/na-state \
//            --trace serve.trace.json --stats json
//
// With --port 0 the kernel picks the port; --port-file writes the bound
// port so scripts (examples/serve_demo.sh) can find it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/diag.hpp"
#include "obs/obs_options.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N          TCP port to listen on (0 = ephemeral; default 0)\n"
      "  --port-file PATH  write the bound port to PATH (for scripts)\n"
      "  --threads N       edit-dispatch pool workers (default 4)\n"
      "  --io-threads N    event-loop I/O threads of the connection plane\n"
      "                    (default 2)\n"
      "  --router-threads N  router workers inside one edit (default 1)\n"
      "  --state-dir PATH  session save/restore directory (default: off)\n"
      "  --max-line N      request line cap in bytes (default 1 MiB)\n"
      "  --max-in-flight N pipelined-request cap per connection "
      "(default 128)\n"
      "  --flush-events N  stream-flush the trace above N buffered events\n"
      "                    (default 4096)\n"
      "  --trace PATH      stream a Chrome trace to PATH while serving\n"
      "                    (mutually exclusive with --flight-recorder)\n"
      "  --flight-recorder N  keep tracing always on in bounded memory:\n"
      "                    every thread retains its last N trace events in\n"
      "                    a ring; SIGUSR1 dumps them (see --flight-dump)\n"
      "  --flight-dump PATH  where a SIGUSR1 dump lands (default\n"
      "                    na_flight.json)\n"
      "  --slow-ms T       tail sampling: append the span subtree of any\n"
      "                    op batch slower than T ms to the slow log\n"
      "                    (requires --flight-recorder and --slow-log)\n"
      "  --slow-log PATH   slow-request log file (line JSON)\n"
      "  --watchdog-ms N   gauge sampler interval (0 = off; default 1000)\n"
      "  --prom-file PATH  rewrite PATH with the full registry in\n"
      "                    Prometheus text exposition every watchdog tick\n"
      "  --stats text|json|prom|off  emit service counters on exit\n"
      "                    (default off)\n",
      argv0);
}

bool int_arg(const char* value, const char* flag, long lo, long hi, long* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "na_serve: bad value for %s: '%s'\n", flag, value);
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;

  serve::ServerOptions opt;
  std::string port_file;
  obs::ObsOptions obs_opt;
  long router_threads = 1;
  long flight_events = 0;
  std::string slow_log_path;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "na_serve: %s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    }
    long v = 0;
    if (flag == "--port") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--port", 0, 65535, &v)) return 2;
      opt.port = static_cast<int>(v);
    } else if (flag == "--port-file") {
      const char* s = next();
      if (s == nullptr) return 2;
      port_file = s;
    } else if (flag == "--threads") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--threads", 1, 256, &v)) return 2;
      opt.host.threads = static_cast<int>(v);
    } else if (flag == "--io-threads") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--io-threads", 1, 64, &v)) return 2;
      opt.io_threads = static_cast<int>(v);
    } else if (flag == "--router-threads") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--router-threads", 1, 256, &v)) return 2;
      router_threads = v;
    } else if (flag == "--state-dir") {
      const char* s = next();
      if (s == nullptr) return 2;
      opt.host.state_dir = s;
    } else if (flag == "--max-line") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--max-line", 64, 1L << 28, &v)) return 2;
      opt.max_line = static_cast<size_t>(v);
    } else if (flag == "--max-in-flight") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--max-in-flight", 1, 1L << 20, &v)) {
        return 2;
      }
      opt.max_in_flight = static_cast<size_t>(v);
    } else if (flag == "--flush-events") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--flush-events", 0, 1L << 30, &v)) {
        return 2;
      }
      opt.trace_flush_events = static_cast<size_t>(v);
    } else if (flag == "--trace") {
      const char* s = next();
      if (s == nullptr) return 2;
      obs_opt.trace_path = s;
    } else if (flag == "--flight-recorder") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--flight-recorder", 16, 1L << 24, &v)) {
        return 2;
      }
      flight_events = v;
    } else if (flag == "--flight-dump") {
      const char* s = next();
      if (s == nullptr) return 2;
      opt.flight_dump_path = s;
    } else if (flag == "--slow-ms") {
      const char* s = next();
      char* end = nullptr;
      const double ms = s != nullptr ? std::strtod(s, &end) : 0.0;
      if (s == nullptr || end == s || *end != '\0' || ms <= 0.0) {
        std::fprintf(stderr, "na_serve: bad value for --slow-ms: '%s'\n",
                     s != nullptr ? s : "");
        return 2;
      }
      opt.host.slow_ms = ms;
    } else if (flag == "--slow-log") {
      const char* s = next();
      if (s == nullptr) return 2;
      slow_log_path = s;
    } else if (flag == "--watchdog-ms") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--watchdog-ms", 0, 1L << 24, &v)) {
        return 2;
      }
      opt.watchdog_ms = static_cast<int>(v);
    } else if (flag == "--prom-file") {
      const char* s = next();
      if (s == nullptr) return 2;
      opt.prom_file = s;
    } else if (flag == "--stats") {
      const char* s = next();
      if (s == nullptr) return 2;
      try {
        obs_opt.stats = obs::parse_stats_mode(s);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "na_serve: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr, "na_serve: unknown flag '%s'\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  opt.host.regen.generator.router.threads = static_cast<int>(router_threads);

  // The two always-on tracing modes are mutually exclusive: a streaming
  // flush drains the very ring the flight recorder exists to retain.
  if (flight_events > 0 && !obs_opt.trace_path.empty()) {
    std::fprintf(stderr,
                 "na_serve: --flight-recorder conflicts with --trace "
                 "(the stream flush would drain the rings)\n");
    return 2;
  }
  // Without the ring bound, keeping the recorder on for tail sampling
  // would grow trace memory without limit; without a log, a slow batch
  // has nowhere to leave its evidence.
  if (opt.host.slow_ms > 0.0 && (flight_events == 0 || slow_log_path.empty())) {
    std::fprintf(stderr,
                 "na_serve: --slow-ms requires --flight-recorder and "
                 "--slow-log\n");
    return 2;
  }

  // Daemon tracing streams: buffered events are flushed at pool-idle
  // points while serving instead of accumulating until exit.
  if (!obs_opt.trace_path.empty()) {
    if (!obs::trace_compiled_in()) {
      std::fprintf(stderr,
                   "na_serve: --trace requested but tracing was compiled out "
                   "(NA_TRACE=OFF); continuing without\n");
    } else {
      obs::trace_enable();
      if (!obs::trace_stream_open(obs_opt.trace_path)) {
        std::fprintf(stderr, "na_serve: cannot open trace file %s\n",
                     obs_opt.trace_path.c_str());
        return 1;
      }
    }
  }

  // Flight-recorder mode: recorder on, every thread buffer bounded.
  if (flight_events > 0) {
    if (!obs::trace_compiled_in()) {
      std::fprintf(stderr,
                   "na_serve: --flight-recorder requested but tracing was "
                   "compiled out (NA_TRACE=OFF); continuing without\n");
    } else {
      obs::trace_flight_enable(static_cast<size_t>(flight_events));
      obs::trace_enable();
      if (!slow_log_path.empty() && !obs::trace_slow_log_open(slow_log_path)) {
        std::fprintf(stderr, "na_serve: cannot open slow log %s\n",
                     slow_log_path.c_str());
        return 1;
      }
    }
  }

  serve::Server server(opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "na_serve: %s\n", error.c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "na_serve: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }
  serve::install_signal_handlers(server);
  std::fprintf(stderr,
               "na_serve: listening on %s:%d (threads=%d, io-threads=%d%s%s)\n",
               opt.bind_address.c_str(), server.port(), opt.host.threads,
               opt.io_threads,
               opt.host.state_dir.empty() ? "" : ", state-dir=",
               opt.host.state_dir.c_str());

  server.run();  // blocks until SIGINT/SIGTERM or a shutdown request

  if (obs::trace_stream_active()) obs::trace_stream_close();
  if (obs::trace_slow_log_active()) {
    std::fprintf(stderr, "na_serve: slow log %s holds %llu records\n",
                 slow_log_path.c_str(),
                 static_cast<unsigned long long>(obs::trace_slow_log_records()));
    obs::trace_slow_log_close();
  }
  std::fprintf(stderr, "na_serve: stopped after %lld requests\n",
               server.counters().requests);
  if (obs_opt.stats != obs::ObsOptions::Stats::kOff) {
    // Exit stats are the wire `metrics` registry (histograms, gauges and
    // all) plus the diagnostics counters — one absorption path, so the
    // shutdown report can never drift from what the metrics op served.
    obs::MetricsRegistry reg;
    server.absorb_metrics(reg);
    obs::diag_absorb(reg);
    switch (obs_opt.stats) {
      case obs::ObsOptions::Stats::kJson:
        std::fputs(reg.to_json().c_str(), stdout);
        break;
      case obs::ObsOptions::Stats::kProm:
        std::fputs(reg.to_prometheus().c_str(), stdout);
        break;
      default:
        std::fputs(reg.to_text().c_str(), stdout);
        break;
    }
  }
  return 0;
}
