// na_serve — the schematic-as-a-service daemon (DESIGN §10).
//
// Serves line-delimited JSON over TCP: many named RegenSessions, edits
// dispatched onto one work-stealing pool, per-session ordering, graceful
// SIGINT/SIGTERM shutdown that saves dirty sessions and flushes traces.
//
//   na_serve --port 0 --threads 4 --state-dir /tmp/na-state \
//            --trace serve.trace.json --stats json
//
// With --port 0 the kernel picks the port; --port-file writes the bound
// port so scripts (examples/serve_demo.sh) can find it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/obs_options.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N          TCP port to listen on (0 = ephemeral; default 0)\n"
      "  --port-file PATH  write the bound port to PATH (for scripts)\n"
      "  --threads N       edit-dispatch pool workers (default 4)\n"
      "  --io-threads N    event-loop I/O threads of the connection plane\n"
      "                    (default 2)\n"
      "  --router-threads N  router workers inside one edit (default 1)\n"
      "  --state-dir PATH  session save/restore directory (default: off)\n"
      "  --max-line N      request line cap in bytes (default 1 MiB)\n"
      "  --max-in-flight N pipelined-request cap per connection "
      "(default 128)\n"
      "  --flush-events N  stream-flush the trace above N buffered events\n"
      "                    (default 4096)\n"
      "  --trace PATH      stream a Chrome trace to PATH while serving\n"
      "  --stats text|json|off  emit service counters on exit (default off)\n",
      argv0);
}

bool int_arg(const char* value, const char* flag, long lo, long hi, long* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "na_serve: bad value for %s: '%s'\n", flag, value);
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;

  serve::ServerOptions opt;
  std::string port_file;
  obs::ObsOptions obs_opt;
  long router_threads = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "na_serve: %s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    }
    long v = 0;
    if (flag == "--port") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--port", 0, 65535, &v)) return 2;
      opt.port = static_cast<int>(v);
    } else if (flag == "--port-file") {
      const char* s = next();
      if (s == nullptr) return 2;
      port_file = s;
    } else if (flag == "--threads") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--threads", 1, 256, &v)) return 2;
      opt.host.threads = static_cast<int>(v);
    } else if (flag == "--io-threads") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--io-threads", 1, 64, &v)) return 2;
      opt.io_threads = static_cast<int>(v);
    } else if (flag == "--router-threads") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--router-threads", 1, 256, &v)) return 2;
      router_threads = v;
    } else if (flag == "--state-dir") {
      const char* s = next();
      if (s == nullptr) return 2;
      opt.host.state_dir = s;
    } else if (flag == "--max-line") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--max-line", 64, 1L << 28, &v)) return 2;
      opt.max_line = static_cast<size_t>(v);
    } else if (flag == "--max-in-flight") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--max-in-flight", 1, 1L << 20, &v)) {
        return 2;
      }
      opt.max_in_flight = static_cast<size_t>(v);
    } else if (flag == "--flush-events") {
      const char* s = next();
      if (s == nullptr || !int_arg(s, "--flush-events", 0, 1L << 30, &v)) {
        return 2;
      }
      opt.trace_flush_events = static_cast<size_t>(v);
    } else if (flag == "--trace") {
      const char* s = next();
      if (s == nullptr) return 2;
      obs_opt.trace_path = s;
    } else if (flag == "--stats") {
      const char* s = next();
      if (s == nullptr) return 2;
      try {
        obs_opt.stats = obs::parse_stats_mode(s);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "na_serve: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr, "na_serve: unknown flag '%s'\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  opt.host.regen.generator.router.threads = static_cast<int>(router_threads);

  // Daemon tracing streams: buffered events are flushed at pool-idle
  // points while serving instead of accumulating until exit.
  if (!obs_opt.trace_path.empty()) {
    if (!obs::trace_compiled_in()) {
      std::fprintf(stderr,
                   "na_serve: --trace requested but tracing was compiled out "
                   "(NA_TRACE=OFF); continuing without\n");
    } else {
      obs::trace_enable();
      if (!obs::trace_stream_open(obs_opt.trace_path)) {
        std::fprintf(stderr, "na_serve: cannot open trace file %s\n",
                     obs_opt.trace_path.c_str());
        return 1;
      }
    }
  }

  serve::Server server(opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "na_serve: %s\n", error.c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "na_serve: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }
  serve::install_signal_handlers(server);
  std::fprintf(stderr,
               "na_serve: listening on %s:%d (threads=%d, io-threads=%d%s%s)\n",
               opt.bind_address.c_str(), server.port(), opt.host.threads,
               opt.io_threads,
               opt.host.state_dir.empty() ? "" : ", state-dir=",
               opt.host.state_dir.c_str());

  server.run();  // blocks until SIGINT/SIGTERM or a shutdown request

  if (obs::trace_stream_active()) obs::trace_stream_close();
  std::fprintf(stderr, "na_serve: stopped after %lld requests\n",
               server.counters().requests);
  if (obs_opt.stats != obs::ObsOptions::Stats::kOff) {
    obs::MetricsRegistry reg;
    const serve::Server::Counters c = server.counters();
    reg.set("serve.connections", c.connections);
    reg.set("serve.requests", c.requests);
    reg.set("serve.errors", c.errors);
    server.host().absorb_stats(reg);
    std::fputs((obs_opt.stats == obs::ObsOptions::Stats::kJson
                    ? reg.to_json()
                    : reg.to_text())
                   .c_str(),
               stdout);
  }
  return 0;
}
