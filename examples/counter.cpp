// Gate-level counter example: a 3-bit synchronous counter built purely
// from standard cells (xor/and/dff), generated as a schematic and then
// *simulated* to prove the drawn artwork computes — the full
// synthesis-feedback loop the paper's introduction motivates.
//
//   bit0' = !bit0                  (toggle)
//   bit1' = bit1 ^ bit0            (carry from bit0)
//   bit2' = bit2 ^ (bit1 & bit0)   (carry from bits 1..0)
//
//   $ ./counter [out_dir]
#include <fstream>
#include <iostream>

#include "core/generator.hpp"
#include "netlist/module_library.hpp"
#include "schematic/ascii_writer.hpp"
#include "schematic/svg_writer.hpp"
#include "schematic/validate.hpp"
#include "sim/simulator.hpp"

namespace {

struct Counter {
  na::Network net;
  na::ModuleId ff[3] = {};
  na::TermId count_out[3] = {};
};

Counter build_counter() {
  using namespace na;
  Counter c;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId inv0 = lib.instantiate(c.net, "inv", "t0");
  const ModuleId xor1 = lib.instantiate(c.net, "xor2", "x1");
  const ModuleId and01 = lib.instantiate(c.net, "and2", "a01");
  const ModuleId xor2 = lib.instantiate(c.net, "xor2", "x2");
  for (int b = 0; b < 3; ++b) {
    c.ff[b] = lib.instantiate(c.net, "dff", "b" + std::to_string(b));
  }
  auto t = [&](ModuleId m, const char* name) { return *c.net.term_by_name(m, name); };
  auto wire = [&](const char* name, std::initializer_list<TermId> terms) {
    const NetId n = c.net.add_net(name);
    for (TermId term : terms) c.net.connect(n, term);
  };
  wire("q0", {t(c.ff[0], "q"), t(inv0, "a"), t(xor1, "b"), t(and01, "a")});
  wire("q1", {t(c.ff[1], "q"), t(xor1, "a"), t(and01, "b")});
  wire("q2", {t(c.ff[2], "q"), t(xor2, "a")});
  wire("n0", {t(inv0, "y"), t(c.ff[0], "d")});
  wire("n1", {t(xor1, "y"), t(c.ff[1], "d")});
  wire("c01", {t(and01, "y"), t(xor2, "b")});
  wire("n2", {t(xor2, "y"), t(c.ff[2], "d")});
  for (int b = 0; b < 3; ++b) {
    c.count_out[b] =
        c.net.add_system_terminal("cnt" + std::to_string(b), TermType::Out);
    wire(("o" + std::to_string(b)).c_str(),
         {t(c.ff[b], "qn"), c.count_out[b]});  // qn taps keep q free for logic
  }
  const TermId ck = c.net.add_system_terminal("ck", TermType::In);
  wire("ck", {ck, t(c.ff[0], "ck"), t(c.ff[1], "ck"), t(c.ff[2], "ck")});
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  Counter c = build_counter();

  GeneratorOptions opt;
  opt.placer.max_part_size = 7;
  opt.placer.max_box_size = 4;
  opt.router.margin = 8;
  GeneratorResult result;
  const Diagram dia = generate_diagram(c.net, opt, &result);
  std::cout << to_ascii(dia) << '\n' << result.stats.summary() << '\n';
  int rc = 0;
  for (const auto& p : validate_diagram(dia, true)) {
    std::cout << "PROBLEM: " << p << '\n';
    rc = 1;
  }
  std::ofstream(out_dir + "/counter.svg") << to_svg(dia);

  // Simulate the artwork: 8 ticks must count 0,1,2,...,7.
  sim::Simulator s(c.net);
  bool counts = true;
  for (int expect = 0; expect < 8; ++expect) {
    s.settle();
    int value = 0;
    for (int b = 0; b < 3; ++b) value |= (s.state(c.ff[b]) & 1) << b;
    if (value != expect) {
      std::cout << "SIM PROBLEM: tick " << expect << " shows " << value << '\n';
      counts = false;
    }
    s.tick();
  }
  std::cout << (counts ? "simulation: the drawn counter counts 0..7 — results "
                         "positive\n"
                       : "simulation FAILED\n");
  return rc + (counts ? 0 : 1);
}
