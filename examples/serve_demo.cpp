// serve_demo — in-process walkthrough of the na_serve protocol (the ctest
// `serve` smoke test): starts a Server on an ephemeral loopback port,
// drives one session through open / edit / get / save / close with a
// BlockingClient, prints the transcript, and shuts down gracefully.
#include <cstdio>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace na;

namespace {

bool step(serve::BlockingClient& client, const std::string& request) {
  std::printf(">> %s\n", request.c_str());
  const std::string response = client.request(request);
  if (response.empty()) {
    std::printf("!! connection lost\n");
    return false;
  }
  // The get payload is a full ESCHER file; keep the transcript readable.
  if (response.size() > 160) {
    std::printf("<< %.120s... (%zu bytes)\n", response.c_str(),
                response.size());
  } else {
    std::printf("<< %s\n", response.c_str());
  }
  return response.find("\"ok\":true") == 0 ||
         response.find("\"ok\":true") != std::string::npos;
}

}  // namespace

int main() {
  serve::ServerOptions opt;
  opt.port = 0;  // ephemeral: tests and demos never collide
  opt.host.threads = 4;

  serve::Server server(opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve_demo: %s\n", error.c_str());
    return 1;
  }
  std::printf("na_serve listening on 127.0.0.1:%d\n", server.port());
  std::thread serving([&server] { server.run(); });

  serve::BlockingClient client;
  if (!client.connect("127.0.0.1", server.port(), &error)) {
    std::fprintf(stderr, "serve_demo: %s\n", error.c_str());
    server.request_stop();
    serving.join();
    return 1;
  }

  bool ok = step(client, R"({"op":"ping"})");
  ok = ok && step(client, R"({"op":"open","id":1,"session":"demo","design":"life"})");
  ok = ok && step(client, R"({"op":"edit","id":2,"session":"demo","edits":[)"
                         R"({"kind":"add_module","name":"probe","template":"","w":6,"h":4},)"
                         R"({"kind":"add_terminal","module":"probe","name":"t0","type":"in","x":0,"y":2}]})");
  ok = ok && step(client, R"({"op":"edit","id":3,"session":"demo","edits":[)"
                         R"({"kind":"connect","net":"probe_net","module":"probe","term":"t0"}]})");
  ok = ok && step(client, R"({"op":"get","id":4,"session":"demo","format":"ascii"})");
  ok = ok && step(client, R"({"op":"stats","id":5})");
  ok = ok && step(client, R"({"op":"close","id":6,"session":"demo"})");

  // A malformed request gets a structured error and keeps the connection.
  const std::string bad = client.request("{not json");
  std::printf(">> {not json\n<< %s\n", bad.c_str());
  ok = ok && bad.find("\"code\":\"bad_json\"") != std::string::npos;
  ok = ok && step(client, R"({"op":"ping"})");

  client.send_line(R"({"op":"shutdown"})");
  serving.join();
  std::printf("server stopped; demo %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
