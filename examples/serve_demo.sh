#!/bin/sh
# Drives a real na_serve daemon over loopback: starts it on an ephemeral
# port with a state dir, opens and edits a session from the shell, saves,
# kills the daemon with SIGTERM (graceful: dirty sessions are saved), then
# restarts and restores the session.
#
#   usage: examples/serve_demo.sh [path-to-na_serve]
set -eu

NA_SERVE=${1:-./na_serve}
WORK=$(mktemp -d)
trap 'kill $SERVER_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

req() {  # one request line -> one response line, over an nc-free TCP client
  PORT=$(cat "$WORK/port")
  python3 - "$PORT" "$1" <<'EOF' 2>/dev/null || req_fallback "$1"
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
s.sendall((sys.argv[2] + "\n").encode())
f = s.makefile()
print(f.readline().rstrip())
EOF
}

req_fallback() {  # no python3: bash's /dev/tcp
  PORT=$(cat "$WORK/port")
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf '%s\n' "$1" >&3
  IFS= read -r line <&3
  printf '%s\n' "$line"
  exec 3<&- 3>&-
}

start_server() {
  rm -f "$WORK/port"
  "$NA_SERVE" --port 0 --port-file "$WORK/port" --threads 4 \
      --state-dir "$WORK/state" &
  SERVER_PID=$!
  for _ in $(seq 50); do
    [ -s "$WORK/port" ] && return 0
    sleep 0.1
  done
  echo "na_serve did not come up" >&2
  exit 1
}

echo "== start daemon =="
start_server

echo "== open + edit a session =="
req '{"op":"open","session":"walk","design":"life"}'
req '{"op":"edit","session":"walk","edits":[{"kind":"add_module","name":"probe","template":"","w":6,"h":4}]}'

echo "== graceful SIGTERM (saves the dirty session) =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
ls -l "$WORK/state"

echo "== restart + restore =="
start_server
req '{"op":"open","session":"walk","restore":true}'
req '{"op":"edit","session":"walk","edits":[{"kind":"resize_module","name":"probe","w":8,"h":4}]}'
req '{"op":"stats"}'
req '{"op":"shutdown"}'
wait "$SERVER_PID" || true
echo "== done =="
