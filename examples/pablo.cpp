// pablo: the placement program of Appendix E.  Reads the Appendix-A
// net-list files, places modules and system terminals (no nets), and
// writes the diagram in the ESCHER-style format for the editor — or for
// eureka to route.
//
//   $ ./pablo [-p n] [-b n] [-c n] [-e n] [-i n] [-s n] [-g preplaced.es]
//             <call-file> <netlist-file> [io-file] [-o out.es]
//
// The -g option reads a preplaced (possibly prerouted) partial diagram;
// the preplaced part forms a partition of its own and stays put.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/options.hpp"
#include "netlist/netlist_io.hpp"
#include "obs/stats_absorb.hpp"
#include "schematic/escher_reader.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  std::string out_path = "placed.es";
  std::string preplaced_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "-g" && i + 1 < argc) {
      preplaced_path = argv[++i];
    } else {
      args.push_back(a);
    }
  }
  GeneratorOptions opt;
  obs::ObsOptions obs;
  std::vector<std::string> files;
  try {
    files = parse_generator_args(args, opt, &obs);
    if (files.size() < 2) {
      std::cerr << "usage: pablo [options] <call-file> <netlist-file> [io-file]"
                << " [-o out.es] [-g preplaced.es]\n"
                << generator_usage() << '\n';
      return 2;
    }
    const ModuleLibrary lib = ModuleLibrary::standard_cells();
    const std::string io = files.size() > 2 ? slurp(files[2]) : std::string{};
    const Network net = parse_network(lib, slurp(files[0]), io, slurp(files[1]));

    Diagram dia(net);
    if (!preplaced_path.empty()) {
      dia = parse_escher_diagram(net, slurp(preplaced_path));
    }
    obs::obs_begin(obs);
    const PlacementInfo info = place(dia, opt.placer);
    std::cout << "placed " << net.module_count() << " modules in "
              << info.partitions.size() << " partitions\n";
    for (const auto& p : validate_diagram(dia)) std::cerr << "PROBLEM: " << p << '\n';
    std::ofstream(out_path) << to_escher_diagram(dia, "pablo");
    std::cout << "wrote " << out_path << '\n';

    obs::MetricsRegistry reg;
    reg.set("place.partitions", static_cast<long long>(info.partitions.size()));
    obs::absorb(reg, compute_stats(dia));
    if (!obs::obs_finish(obs, reg)) return 1;
  } catch (const std::exception& e) {
    std::cerr << "pablo: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
