#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>
#include <string>

namespace na::serve {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  /// Reads the 4 hex digits of a \u escape (cursor past the 'u').
  unsigned hex4() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= h - '0';
      else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
      else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
      else fail("bad \\u escape digit");
    }
    return code;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("truncated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = hex4();
          // RFC 8259 §7: code points above the BMP travel as a surrogate
          // pair of \u escapes.  Pair them here; a surrogate half on its
          // own names no code point and is rejected (the error carries
          // the byte offset like every other parse failure).
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("high surrogate not followed by low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          }
          // UTF-8 encode the code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue value(int depth) {
    if (depth >= kMaxJsonDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::kString;
      v.text = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      const std::string_view word = c == 't' ? "true" : "false";
      if (s_.compare(pos_, word.size(), word) != 0) fail("bad literal");
      pos_ += word.size();
      v.kind = JsonValue::kBool;
      v.boolean = c == 't';
      return v;
    }
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
      pos_ += 4;
      return v;
    }
    // Number: validate the full JSON grammar here
    // (-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?), keep the text for
    // as_int().
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("expected value");
    }
    if (s_[pos_] == '0') {
      ++pos_;  // no leading zeros: 0 is a complete integer part
    } else {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    auto digits = [&] {  // one-or-more digit run (fraction, exponent)
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("bad number");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    };
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      digits();
    }
    v.kind = JsonValue::kNumber;
    v.text = std::string(s_.substr(start, pos_ - start));
    return v;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::as_int(long long* out) const {
  if (kind != kNumber) return false;
  long long v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
  *out = v;
  return true;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace na::serve
