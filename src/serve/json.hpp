// Minimal JSON value parser for the na_serve wire protocol.
//
// The daemon speaks line-delimited JSON; requests arrive from arbitrary
// clients, so the parser is strict (throws with a byte offset on anything
// malformed — the robustness corpus feeds it garbage) and bounded (depth
// cap against stack exhaustion).  Emission goes through obs::JsonWriter —
// this header is parse-only, keeping one JSON writer in the codebase.
//
// Numbers keep their source text: protocol fields are integers and a
// round-trip through double would corrupt large ids; as_int() re-parses
// with std::from_chars under the same strictness rules as the CLI flags.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace na::serve {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  std::string text;  ///< kString: decoded value; kNumber: raw source text
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Integer value of a kNumber; false on floats, overflow or non-numbers.
  bool as_int(long long* out) const;
};

/// Maximum container nesting parse_json accepts.
inline constexpr int kMaxJsonDepth = 32;

/// Parses exactly one JSON value spanning the whole input (trailing
/// whitespace allowed).  Throws std::runtime_error with a byte offset.
JsonValue parse_json(std::string_view text);

}  // namespace na::serve
