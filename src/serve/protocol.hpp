// na_serve wire protocol: line-delimited JSON over a TCP socket.
//
// Every request is one JSON object on one line; every response is one JSON
// object on one line.  Grammar (DESIGN §10 has the full walkthrough):
//
//   request  := {"op": OP, ["id": int,] ["session": string,] ...op fields}
//   OP       := "ping" | "open" | "edit" | "get" | "stats" | "metrics"
//             | "save" | "close" | "shutdown"
//   open     += {"design": "life" | "controller" | "chain"
//                        | "datapath[:bits]", ["restore": bool]}
//   edit     += {"edits": [EDIT, ...]}
//   get      += {"format": "escher" | "svg" | "ascii"}
//   EDIT     := {"kind": "add_module", "name", "template", "w", "h"}
//             | {"kind": "remove_module", "name"}
//             | {"kind": "resize_module", "name", "w", "h"}
//             | {"kind": "add_terminal", "module", "name", "type", "x", "y"}
//             | {"kind": "move_terminal", "module", "term", "x", "y"}
//             | {"kind": "connect", "net", "module", "term"}   (module "" => system)
//             | {"kind": "disconnect", "module", "term"}
//             | {"kind": "remove_net", "net"}
//             | {"kind": "add_system_terminal", "name", "type"}
//             | {"kind": "remove_system_terminal", "name"}
//
//   response := {"ok": true, "op": OP, ["id": int,] ...result fields}
//             | {"ok": false, ["id": int,] "error":
//                  {"code": CODE, "message": string}}
//
//   edit     response carries {"seq", "batched": true}: the script was
//   composed into the session's pending network, and regeneration is
//   deferred to the next observation point (get/save/close/shutdown save)
//   where k pending edits flush through ONE netlist diff and ONE
//   RegenSession update.  get/save responses carry "flushed_edits" — how
//   many pending edits that op flushed.  Both fields depend only on the
//   session's request order, never on how requests happened to batch.
//
//   stats    response carries {"metrics": {...}} with serve.connections /
//   serve.requests / serve.errors, the serve.batch.* edit-coalescing
//   counters (serve.batch.regens flushes covering serve.batch.composed
//   edits), aggregated per-session regen totals, and the process gauges
//   (peak RSS, uptime).  The stats request itself is not yet counted in
//   the totals it reports.
//
//   metrics  response carries the same envelope with the *full* registry:
//   everything stats reports plus the watchdog gauges and the latency
//   histograms (serve.lat.open/edit/get/save, serve.lat.flush,
//   serve.lat.loop_tick, serve.pool.queue_wait) under "histograms" —
//   count/sum/min/max, p50/p90/p99 and the non-empty [lower, count]
//   buckets, all in microseconds.  Scrape this op for live telemetry;
//   stats stays the cheap scalar summary.
//
// A malformed request (oversized line, bad JSON, unknown op, missing
// field, wrong session id) gets a structured error response and the
// connection stays open — only a closed peer or shutdown ends it.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "geom/point.hpp"
#include "netlist/network.hpp"

namespace na::obs {
class MetricsRegistry;
}  // namespace na::obs

namespace na::serve {

/// Hard cap on one request line; longer lines get err::kLineTooLong and
/// are discarded up to the next newline.
inline constexpr size_t kMaxLineBytes = 1u << 20;

enum class Op {
  kPing,
  kOpen,
  kEdit,
  kGet,
  kStats,
  kMetrics,
  kSave,
  kClose,
  kShutdown
};

const char* to_string(Op op);

/// Stable machine-readable error codes (the "code" field of an error
/// response).  Clients switch on these; messages are for humans.
namespace err {
inline constexpr const char* kLineTooLong = "line_too_long";
inline constexpr const char* kBadJson = "bad_json";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownOp = "unknown_op";
inline constexpr const char* kNoSuchSession = "no_such_session";
inline constexpr const char* kSessionExists = "session_exists";
inline constexpr const char* kBadDesign = "bad_design";
inline constexpr const char* kBadEdit = "bad_edit";
inline constexpr const char* kNoStateDir = "no_state_dir";
inline constexpr const char* kInternal = "internal";
inline constexpr const char* kShuttingDown = "shutting_down";
}  // namespace err

/// One NetworkEditor operation, decoded from an EDIT object.
struct EditCmd {
  enum class Kind {
    kAddModule,
    kRemoveModule,
    kResizeModule,
    kAddTerminal,
    kMoveTerminal,
    kConnect,
    kDisconnect,
    kRemoveNet,
    kAddSystemTerminal,
    kRemoveSystemTerminal,
  };
  Kind kind;
  std::string name;           ///< module / system-terminal name
  std::string module;         ///< owning module ("" = system terminal for connect)
  std::string term;           ///< terminal name
  std::string net;            ///< net name
  std::string template_name;  ///< add_module
  TermType type = TermType::InOut;
  geom::Point pos;  ///< x/y for terminals, w/h for module size
};

struct Request {
  Op op = Op::kPing;
  long long id = -1;  ///< echoed in the response when >= 0
  std::string session;
  std::string design;     // open
  bool restore = false;   // open: reload from the state dir
  std::string format;     // get: escher (default) | svg | ascii
  std::vector<EditCmd> edits;
};

/// Parse failure carrying the protocol error code for the response.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(const char* code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  const char* code() const { return code_; }

 private:
  const char* code_;
};

/// Parses one request line.  Throws ProtocolError on anything malformed.
Request parse_request(std::string_view line);

/// One-line error response.  `id` is echoed when >= 0.
std::string error_response(const char* code, std::string_view message,
                           long long id = -1);

/// One-line response for a registry-carrying op (`stats` or `metrics`),
/// embedding the registry's JSON rendering as the "metrics" field.  The
/// two ops share one renderer: `stats` sends the scalar service counters,
/// `metrics` the full registry including latency histograms — the shape
/// differs only in what the caller absorbed into `reg`.  `id` is echoed
/// when >= 0.
std::string registry_response(Op op, const obs::MetricsRegistry& reg,
                              long long id = -1);

/// registry_response(Op::kStats, ...) — the pre-metrics-op spelling,
/// kept for the tests and tools that only ever ask for stats.
std::string stats_response(const obs::MetricsRegistry& reg, long long id = -1);

}  // namespace na::serve
