#include "serve/session_host.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>

#include "gen/chain.hpp"
#include "gen/controller.hpp"
#include "gen/datapath.hpp"
#include "gen/life.hpp"
#include "incremental/edit.hpp"
#include "obs/stats_absorb.hpp"
#include "obs/trace.hpp"
#include "schematic/ascii_writer.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/svg_writer.hpp"

namespace na::serve {
namespace {

/// Session names become file names under the state dir — restrict them to
/// a path-safe alphabet instead of sanitising.
bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

void apply_edit(NetworkEditor& ed, const EditCmd& cmd) {
  using K = EditCmd::Kind;
  switch (cmd.kind) {
    case K::kAddModule:
      ed.add_module(cmd.name, cmd.template_name, cmd.pos);
      break;
    case K::kRemoveModule:
      ed.remove_module(cmd.name);
      break;
    case K::kResizeModule:
      ed.resize_module(cmd.name, cmd.pos);
      break;
    case K::kAddTerminal:
      ed.add_module_terminal(cmd.module, cmd.name, cmd.type, cmd.pos);
      break;
    case K::kMoveTerminal:
      ed.move_terminal(cmd.module, cmd.term, cmd.pos);
      break;
    case K::kConnect:
      ed.connect(cmd.net, cmd.module, cmd.term);
      break;
    case K::kDisconnect:
      ed.disconnect(cmd.module, cmd.term);
      break;
    case K::kRemoveNet:
      ed.remove_net(cmd.net);
      break;
    case K::kAddSystemTerminal:
      ed.add_system_terminal(cmd.name, cmd.type);
      break;
    case K::kRemoveSystemTerminal:
      ed.remove_system_terminal(cmd.name);
      break;
  }
}

}  // namespace

Network design_network(const std::string& design) {
  if (design == "life") return gen::life_network();
  if (design == "controller") return gen::controller_network();
  if (design == "chain") return gen::chain_network({});
  if (design == "datapath" || design.rfind("datapath:", 0) == 0) {
    gen::DatapathOptions opt;
    if (const size_t colon = design.find(':'); colon != std::string::npos) {
      const std::string_view bits(design.data() + colon + 1,
                                  design.size() - colon - 1);
      int v = 0;
      const auto [ptr, ec] =
          std::from_chars(bits.data(), bits.data() + bits.size(), v);
      if (ec != std::errc{} || ptr != bits.data() + bits.size() || v < 1 ||
          v > 64) {
        throw ProtocolError(err::kBadDesign,
                            "bad datapath bit count '" + std::string(bits) + "'");
      }
      opt.bits = v;
    }
    return gen::datapath_network(opt);
  }
  throw ProtocolError(err::kBadDesign, "unknown design '" + design +
                                           "' (life|controller|chain|datapath[:bits])");
}

SessionHost::SessionHost(HostOptions opt)
    : opt_(std::move(opt)),
      lib_(ModuleLibrary::standard_cells()),
      pool_(opt_.threads) {
  if (!opt_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt_.state_dir, ec);  // best effort
  }
}

SessionHost::~SessionHost() { pool_.wait_idle(); }

std::shared_ptr<SessionHost::Session> SessionHost::find(
    const std::string& name) const {
  std::lock_guard lock(sessions_mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::string SessionHost::state_path(const std::string& name) const {
  return opt_.state_dir + "/" + name + ".session";
}

HostResult SessionHost::run_on_pool(std::function<HostResult()> fn) {
  std::promise<HostResult> prom;
  std::future<HostResult> fut = prom.get_future();
  pool_.submit([&prom, &fn] {  // pool tasks must not throw
    try {
      prom.set_value(fn());
    } catch (const ProtocolError& e) {
      prom.set_value(HostResult::error(e.code(), e.what()));
    } catch (const std::exception& e) {
      prom.set_value(HostResult::error(err::kInternal, e.what()));
    }
  });
  return fut.get();
}

HostResult SessionHost::open(const std::string& name, const std::string& design,
                             bool restore) {
  if (!valid_session_name(name)) {
    return HostResult::error(err::kBadRequest,
                             "bad session name '" + name + "'");
  }
  std::string text;
  if (restore) {
    if (opt_.state_dir.empty()) {
      return HostResult::error(err::kNoStateDir,
                               "server runs without --state-dir");
    }
    std::ifstream in(state_path(name));
    if (!in) {
      return HostResult::error(err::kNoSuchSession,
                               "no saved session '" + name + "'");
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  auto session = std::make_shared<Session>(opt_.regen);
  session->design = design;
  {
    std::lock_guard lock(sessions_mu_);
    const auto [it, inserted] = sessions_.emplace(name, session);
    if (!inserted) {
      return HostResult::error(err::kSessionExists,
                               "session '" + name + "' already open");
    }
  }

  // First generation (or restore) on the pool, like every other mutation.
  HostResult r = run_on_pool([&]() -> HostResult {
    NA_TRACE_SPAN(span, "serve.open");
    span.arg("restore", restore ? 1 : 0);
    std::lock_guard lock(session->mu);
    if (restore) {
      session->regen.restore(text);
    } else {
      session->regen.update(design_network(design));
    }
    session->current = session->regen.network();
    HostResult ok;
    ok.full_regen = !restore;
    ok.nets_rerouted = session->regen.last().nets_rerouted;
    ok.nets_kept = session->current.net_count();
    return ok;
  });
  if (!r.ok) {  // bad design / corrupt state file: drop the table entry
    std::lock_guard lock(sessions_mu_);
    sessions_.erase(name);
  }
  return r;
}

HostResult SessionHost::edit(const std::string& name,
                             const std::vector<EditCmd>& cmds) {
  auto session = find(name);
  if (session == nullptr) {
    return HostResult::error(err::kNoSuchSession,
                             "no open session '" + name + "'");
  }
  return run_on_pool([&]() -> HostResult {
    NA_TRACE_SPAN(span, "serve.edit");
    span.arg("edits", static_cast<long long>(cmds.size()));
    std::lock_guard lock(session->mu);
    Network next = [&] {
      try {
        NetworkEditor ed(session->current);
        for (const EditCmd& cmd : cmds) apply_edit(ed, cmd);
        return ed.build();
      } catch (const std::exception& e) {
        // The editor worked on a copy: a bad edit script leaves the
        // session exactly as it was.
        throw ProtocolError(err::kBadEdit, e.what());
      }
    }();
    session->regen.update(next);
    session->current = std::move(next);
    ++session->seq;
    session->dirty = true;
    const RegenCounters& last = session->regen.last();
    HostResult ok;
    ok.seq = session->seq;
    ok.full_regen = last.full_regens > 0;
    ok.nets_rerouted = last.nets_rerouted;
    ok.nets_kept = last.nets_kept;
    span.arg("seq", ok.seq);
    span.arg("full", ok.full_regen ? 1 : 0);
    return ok;
  });
}

HostResult SessionHost::get(const std::string& name,
                            const std::string& format) {
  auto session = find(name);
  if (session == nullptr) {
    return HostResult::error(err::kNoSuchSession,
                             "no open session '" + name + "'");
  }
  std::lock_guard lock(session->mu);
  if (!session->regen.has_diagram()) {
    return HostResult::error(err::kInternal, "session has no diagram");
  }
  HostResult r;
  if (format == "svg") {
    r.payload = to_svg(session->regen.diagram());
  } else if (format == "ascii") {
    r.payload = to_ascii(session->regen.diagram());
  } else {
    r.payload = to_escher_diagram(session->regen.diagram(), name);
  }
  r.seq = session->seq;
  return r;
}

HostResult SessionHost::save_locked(Session& s, const std::string& name) {
  HostResult r;
  std::string text;
  try {
    text = s.regen.save();
  } catch (const std::exception& e) {
    return HostResult::error(err::kInternal, e.what());
  }
  if (opt_.state_dir.empty()) {
    r.payload = std::move(text);
    return r;
  }
  std::ofstream out(state_path(name), std::ios::trunc);
  out << text;
  out.close();
  if (!out) {
    return HostResult::error(err::kInternal,
                             "cannot write " + state_path(name));
  }
  s.dirty = false;
  r.seq = s.seq;
  return r;
}

HostResult SessionHost::save(const std::string& name) {
  auto session = find(name);
  if (session == nullptr) {
    return HostResult::error(err::kNoSuchSession,
                             "no open session '" + name + "'");
  }
  std::lock_guard lock(session->mu);
  return save_locked(*session, name);
}

HostResult SessionHost::close(const std::string& name) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard lock(sessions_mu_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      return HostResult::error(err::kNoSuchSession,
                               "no open session '" + name + "'");
    }
    session = it->second;
    sessions_.erase(it);
  }
  // Waits for any in-flight job of this session, then saves final state.
  std::lock_guard lock(session->mu);
  if (session->dirty && !opt_.state_dir.empty()) {
    return save_locked(*session, name);
  }
  return HostResult{};
}

int SessionHost::save_dirty_sessions() {
  if (opt_.state_dir.empty()) return 0;
  std::vector<std::pair<std::string, std::shared_ptr<Session>>> all;
  {
    std::lock_guard lock(sessions_mu_);
    all.assign(sessions_.begin(), sessions_.end());
  }
  int saved = 0;
  for (auto& [name, session] : all) {
    std::lock_guard lock(session->mu);
    if (session->dirty && save_locked(*session, name).ok) ++saved;
  }
  return saved;
}

int SessionHost::open_sessions() const {
  std::lock_guard lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

void SessionHost::absorb_stats(obs::MetricsRegistry& reg) const {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard lock(sessions_mu_);
    all.reserve(sessions_.size());
    for (const auto& [name, session] : sessions_) all.push_back(session);
  }
  reg.set("serve.sessions_open", static_cast<long long>(all.size()));
  long long edits = 0;
  RegenCounters sum;
  ParallelRouteStats spec;
  for (const auto& session : all) {
    std::lock_guard lock(session->mu);
    edits += session->seq;
    const RegenCounters& t = session->regen.totals();
    sum.updates += t.updates;
    sum.incremental += t.incremental;
    sum.full_regens += t.full_regens;
    sum.modules_replaced += t.modules_replaced;
    sum.modules_frozen += t.modules_frozen;
    sum.nets_kept += t.nets_kept;
    sum.nets_rerouted += t.nets_rerouted;
    sum.nets_extended += t.nets_extended;
    sum.cells_scrubbed += t.cells_scrubbed;
    sum.route_expansions += t.route_expansions;
    sum.region_validations += t.region_validations;
    sum.full_validations += t.full_validations;
    sum.validate_ms += t.validate_ms;
    const ParallelRouteStats& s = session->regen.speculation();
    spec.nets_speculated += s.nets_speculated;
    spec.commits_clean += s.commits_clean;
    spec.reroutes += s.reroutes;
    spec.nets_gated += s.nets_gated;
    spec.nets_respeculated += s.nets_respeculated;
    spec.respec_hits += s.respec_hits;
    spec.respec_stale += s.respec_stale;
  }
  reg.set("serve.edits_applied", edits);
  obs::absorb(reg, sum);
  obs::absorb(reg, spec);
  const ThreadPool::Stats pool = pool_.stats();
  reg.set("serve.pool.peak_queued", pool.peak_queued);
  reg.set("serve.pool.urgent_drained", pool.urgent_drained);
  reg.set("serve.trace_buffered_events",
          static_cast<long long>(obs::trace_buffered_events()));
}

}  // namespace na::serve
