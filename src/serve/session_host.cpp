#include "serve/session_host.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>

#include "gen/chain.hpp"
#include "gen/controller.hpp"
#include "gen/datapath.hpp"
#include "gen/life.hpp"
#include "incremental/edit.hpp"
#include "obs/stats_absorb.hpp"
#include "obs/trace.hpp"
#include "schematic/ascii_writer.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/svg_writer.hpp"

namespace na::serve {
namespace {

/// Session names become file names under the state dir — restrict them to
/// a path-safe alphabet instead of sanitising.
bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

void apply_edit(NetworkEditor& ed, const EditCmd& cmd) {
  using K = EditCmd::Kind;
  switch (cmd.kind) {
    case K::kAddModule:
      ed.add_module(cmd.name, cmd.template_name, cmd.pos);
      break;
    case K::kRemoveModule:
      ed.remove_module(cmd.name);
      break;
    case K::kResizeModule:
      ed.resize_module(cmd.name, cmd.pos);
      break;
    case K::kAddTerminal:
      ed.add_module_terminal(cmd.module, cmd.name, cmd.type, cmd.pos);
      break;
    case K::kMoveTerminal:
      ed.move_terminal(cmd.module, cmd.term, cmd.pos);
      break;
    case K::kConnect:
      ed.connect(cmd.net, cmd.module, cmd.term);
      break;
    case K::kDisconnect:
      ed.disconnect(cmd.module, cmd.term);
      break;
    case K::kRemoveNet:
      ed.remove_net(cmd.net);
      break;
    case K::kAddSystemTerminal:
      ed.add_system_terminal(cmd.name, cmd.type);
      break;
    case K::kRemoveSystemTerminal:
      ed.remove_system_terminal(cmd.name);
      break;
  }
}

/// Runs one op body, folding every throw into a HostResult error.
template <typename Fn>
HostResult guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const ProtocolError& e) {
    return HostResult::error(e.code(), e.what());
  } catch (const std::exception& e) {
    return HostResult::error(err::kInternal, e.what());
  }
}

/// Bridges an async call onto a blocking one.
template <typename Call>
HostResult block_on(Call&& call) {
  std::promise<HostResult> prom;
  std::future<HostResult> fut = prom.get_future();
  call([&prom](HostResult r) { prom.set_value(std::move(r)); });
  return fut.get();
}

}  // namespace

Network design_network(const std::string& design) {
  if (design == "life") return gen::life_network();
  if (design == "controller") return gen::controller_network();
  if (design == "chain") return gen::chain_network({});
  if (design == "datapath" || design.rfind("datapath:", 0) == 0) {
    gen::DatapathOptions opt;
    if (const size_t colon = design.find(':'); colon != std::string::npos) {
      const std::string_view bits(design.data() + colon + 1,
                                  design.size() - colon - 1);
      int v = 0;
      const auto [ptr, ec] =
          std::from_chars(bits.data(), bits.data() + bits.size(), v);
      if (ec != std::errc{} || ptr != bits.data() + bits.size() || v < 1 ||
          v > 64) {
        throw ProtocolError(err::kBadDesign,
                            "bad datapath bit count '" + std::string(bits) + "'");
      }
      opt.bits = v;
    }
    return gen::datapath_network(opt);
  }
  throw ProtocolError(err::kBadDesign, "unknown design '" + design +
                                           "' (life|controller|chain|datapath[:bits])");
}

SessionHost::SessionHost(HostOptions opt)
    : opt_(std::move(opt)),
      lib_(ModuleLibrary::standard_cells()),
      pool_(opt_.threads) {
  pool_.set_queue_wait_histogram(&pool_wait_hist_);
  if (!opt_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt_.state_dir, ec);  // best effort
  }
}

SessionHost::~SessionHost() { pool_.wait_idle(); }

std::shared_ptr<SessionHost::Session> SessionHost::find(
    const std::string& name) const {
  std::lock_guard lock(sessions_mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::string SessionHost::state_path(const std::string& name) const {
  return opt_.state_dir + "/" + name + ".session";
}

// ----- the per-session op queue ---------------------------------------------

void SessionHost::enqueue(const std::string& name,
                          std::shared_ptr<Session> session, PendingOp op) {
  bool start_job = false;
  {
    std::lock_guard lock(session->qmu);
    session->queue.push_back(std::move(op));
    if (!session->running) {
      session->running = true;
      start_job = true;
    }
  }
  if (start_job) {
    pool_.submit([this, name, session] { drain(name, session); });
  }
}

void SessionHost::drain(const std::string& name,
                        const std::shared_ptr<Session>& session) {
  for (;;) {
    // Take the next batch: a maximal run of consecutive edits, or one
    // non-edit op.  Edits queued while this job was working coalesce here.
    std::vector<PendingOp> batch;
    {
      std::lock_guard lock(session->qmu);
      if (session->queue.empty()) {
        session->running = false;
        return;
      }
      if (session->queue.front().kind == OpKind::kEdit) {
        while (!session->queue.empty() &&
               session->queue.front().kind == OpKind::kEdit) {
          batch.push_back(std::move(session->queue.front()));
          session->queue.pop_front();
        }
      } else {
        batch.push_back(std::move(session->queue.front()));
        session->queue.pop_front();
      }
    }

    std::vector<HostResult> results(batch.size());
    {
      // Shared side of the trace-flush gate: the flusher only runs when
      // no op body is emitting trace events.
      std::shared_lock gate(flush_gate_);
      // Tail-sampling window: the batch's trace events all land on this
      // thread between these two stamps, so a slow batch can hand its
      // span subtree to the slow log without touching any other buffer.
      const std::uint64_t slow_t0 =
          opt_.slow_ms > 0.0 ? obs::trace_now_ns() : 0;
      if (batch.front().kind == OpKind::kEdit) {
        NA_TRACE_SPAN(span, "serve.edit");
        span.arg("requests", static_cast<long long>(batch.size()));
        std::lock_guard lock(session->mu);
        for (size_t i = 0; i < batch.size(); ++i) {
          results[i] = guarded(
              [&] { return exec_one_edit(*session, batch[i].edits); });
        }
        span.arg("seq", session->seq);
        note_batch(batch.size());
      } else {
        const PendingOp& op = batch.front();
        std::lock_guard lock(session->mu);
        results[0] = guarded([&]() -> HostResult {
          switch (op.kind) {
            case OpKind::kOpen:
              return exec_open(*session, name, op);
            case OpKind::kGet:
              return exec_get(*session, name, op.format);
            case OpKind::kSave:
              return save_locked(*session, name);
            case OpKind::kClose:
              return exec_close(*session, name);
            case OpKind::kEdit:
              break;  // handled above
          }
          return HostResult::error(err::kInternal, "bad op kind");
        });
      }
      if (opt_.slow_ms > 0.0) {
        const std::uint64_t slow_t1 = obs::trace_now_ns();
        const double ms =
            static_cast<double>(slow_t1 - slow_t0) / 1'000'000.0;
        if (ms > opt_.slow_ms) {
          static constexpr const char* kLabels[] = {
              "serve.open", "serve.edit", "serve.get", "serve.save",
              "serve.close"};
          obs::trace_slow_capture(
              kLabels[static_cast<int>(batch.front().kind)], slow_t0, slow_t1,
              ms);
        }
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].done) batch[i].done(std::move(results[i]));
    }
  }
}

// ----- op bodies (run on the pool, session->mu held) -------------------------

HostResult SessionHost::exec_open(Session& s, const std::string& name,
                                  const PendingOp& op) {
  NA_TRACE_SPAN(span, "serve.open");
  span.arg("restore", op.restore ? 1 : 0);
  if (op.restore) {
    std::ifstream in(state_path(name));
    if (!in) {
      return HostResult::error(err::kNoSuchSession,
                               "no saved session '" + name + "'");
    }
    std::stringstream ss;
    ss << in.rdbuf();
    s.regen.restore(ss.str());
  } else {
    s.regen.update(design_network(op.design));
  }
  s.pending.rebase(s.regen.network());
  HostResult ok;
  ok.full_regen = !op.restore;
  ok.nets_rerouted = s.regen.last().nets_rerouted;
  ok.nets_kept = s.pending.network().net_count();
  return ok;
}

HostResult SessionHost::exec_one_edit(Session& s,
                                      const std::vector<EditCmd>& cmds) {
  try {
    // Netlist work only — the composer's transactional apply runs the
    // script on an editor copy of the pending network, so a bad script
    // leaves the session exactly as it was, even mid-batch.  The
    // diff + regen for this edit runs at the next observation point.
    s.pending.apply(
        [&](NetworkEditor& ed) {
          for (const EditCmd& cmd : cmds) apply_edit(ed, cmd);
        });
  } catch (const std::exception& e) {
    throw ProtocolError(err::kBadEdit, e.what());
  }
  ++s.seq;
  s.dirty = true;
  HostResult ok;
  ok.seq = s.seq;
  ok.batched = true;
  return ok;
}

int SessionHost::flush_pending(Session& s) {
  const int pending = s.pending.steps();
  if (pending == 0) return 0;
  NA_TRACE_SPAN(span, "serve.flush");
  span.arg("edits", pending);
  const auto t0 = std::chrono::steady_clock::now();
  s.regen.update_composed(s.pending.network(), pending);
  flush_hist_.record(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  s.pending.flushed();
  note_flush(static_cast<size_t>(pending));
  return pending;
}

HostResult SessionHost::exec_get(Session& s, const std::string& name,
                                 const std::string& format) {
  const int flushed = flush_pending(s);
  if (!s.regen.has_diagram()) {
    return HostResult::error(err::kInternal, "session has no diagram");
  }
  HostResult r;
  r.flushed_edits = flushed;
  if (format == "svg") {
    r.payload = to_svg(s.regen.diagram());
  } else if (format == "ascii") {
    r.payload = to_ascii(s.regen.diagram());
  } else {
    r.payload = to_escher_diagram(s.regen.diagram(), name);
  }
  r.seq = s.seq;
  return r;
}

HostResult SessionHost::exec_close(Session& s, const std::string& name) {
  if (s.dirty && !opt_.state_dir.empty()) {
    return save_locked(s, name);
  }
  return HostResult{};
}

HostResult SessionHost::save_locked(Session& s, const std::string& name) {
  HostResult r;
  std::string text;
  try {
    // A save is an observation point: it must snapshot exactly the state
    // after the preceding edit in queue order, so the pending composition
    // flushes first.  Edits queued behind the save start a new run.
    r.flushed_edits = flush_pending(s);
    text = s.regen.save();
  } catch (const std::exception& e) {
    return HostResult::error(err::kInternal, e.what());
  }
  if (opt_.state_dir.empty()) {
    r.payload = std::move(text);
    return r;
  }
  std::ofstream out(state_path(name), std::ios::trunc);
  out << text;
  out.close();
  if (!out) {
    return HostResult::error(err::kInternal,
                             "cannot write " + state_path(name));
  }
  s.dirty = false;
  r.seq = s.seq;
  return r;
}

// ----- the async entry points ------------------------------------------------

void SessionHost::open_async(const std::string& name,
                             const std::string& design, bool restore,
                             HostCallback done) {
  if (!valid_session_name(name)) {
    done(HostResult::error(err::kBadRequest, "bad session name '" + name + "'"));
    return;
  }
  if (restore && opt_.state_dir.empty()) {
    done(HostResult::error(err::kNoStateDir, "server runs without --state-dir"));
    return;
  }
  auto session = std::make_shared<Session>(opt_.regen);
  session->design = design;
  {
    std::lock_guard lock(sessions_mu_);
    const auto [it, inserted] = sessions_.emplace(name, session);
    if (!inserted) {
      done(HostResult::error(err::kSessionExists,
                             "session '" + name + "' already open"));
      return;
    }
  }
  PendingOp op;
  op.kind = OpKind::kOpen;
  op.restore = restore;
  op.design = design;
  // Bad design / corrupt state file: drop the table entry again — but
  // only if it is still ours (a close+reopen may have replaced it).
  op.done = [this, name, session, done = std::move(done)](HostResult r) {
    if (!r.ok) {
      std::lock_guard lock(sessions_mu_);
      const auto it = sessions_.find(name);
      if (it != sessions_.end() && it->second == session) sessions_.erase(it);
    }
    done(std::move(r));
  };
  enqueue(name, session, std::move(op));
}

void SessionHost::edit_async(const std::string& name, std::vector<EditCmd> cmds,
                             HostCallback done) {
  auto session = find(name);
  if (session == nullptr) {
    done(HostResult::error(err::kNoSuchSession, "no open session '" + name + "'"));
    return;
  }
  PendingOp op;
  op.kind = OpKind::kEdit;
  op.edits = std::move(cmds);
  op.done = std::move(done);
  enqueue(name, std::move(session), std::move(op));
}

void SessionHost::get_async(const std::string& name, const std::string& format,
                            HostCallback done) {
  auto session = find(name);
  if (session == nullptr) {
    done(HostResult::error(err::kNoSuchSession, "no open session '" + name + "'"));
    return;
  }
  PendingOp op;
  op.kind = OpKind::kGet;
  op.format = format;
  op.done = std::move(done);
  enqueue(name, std::move(session), std::move(op));
}

void SessionHost::save_async(const std::string& name, HostCallback done) {
  auto session = find(name);
  if (session == nullptr) {
    done(HostResult::error(err::kNoSuchSession, "no open session '" + name + "'"));
    return;
  }
  PendingOp op;
  op.kind = OpKind::kSave;
  op.done = std::move(done);
  enqueue(name, std::move(session), std::move(op));
}

void SessionHost::close_async(const std::string& name, HostCallback done) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard lock(sessions_mu_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      done(HostResult::error(err::kNoSuchSession,
                             "no open session '" + name + "'"));
      return;
    }
    session = it->second;
    sessions_.erase(it);
  }
  // The close op runs after every in-flight job of this session, then
  // saves final state.
  PendingOp op;
  op.kind = OpKind::kClose;
  op.done = std::move(done);
  enqueue(name, std::move(session), std::move(op));
}

// ----- blocking conveniences -------------------------------------------------

HostResult SessionHost::open(const std::string& name, const std::string& design,
                             bool restore) {
  return block_on([&](HostCallback cb) {
    open_async(name, design, restore, std::move(cb));
  });
}

HostResult SessionHost::edit(const std::string& name,
                             const std::vector<EditCmd>& cmds) {
  return block_on(
      [&](HostCallback cb) { edit_async(name, cmds, std::move(cb)); });
}

HostResult SessionHost::get(const std::string& name,
                            const std::string& format) {
  return block_on(
      [&](HostCallback cb) { get_async(name, format, std::move(cb)); });
}

HostResult SessionHost::save(const std::string& name) {
  return block_on([&](HostCallback cb) { save_async(name, std::move(cb)); });
}

HostResult SessionHost::close(const std::string& name) {
  return block_on([&](HostCallback cb) { close_async(name, std::move(cb)); });
}

// ----- shutdown and stats ----------------------------------------------------

int SessionHost::save_dirty_sessions() {
  if (opt_.state_dir.empty()) return 0;
  std::vector<std::pair<std::string, std::shared_ptr<Session>>> all;
  {
    std::lock_guard lock(sessions_mu_);
    all.assign(sessions_.begin(), sessions_.end());
  }
  int saved = 0;
  // Shutdown saves flush pending compositions (regen + trace spans), so
  // hold the flush gate shared like any other op body.
  std::shared_lock gate(flush_gate_);
  for (auto& [name, session] : all) {
    std::lock_guard lock(session->mu);
    if (session->dirty && save_locked(*session, name).ok) ++saved;
  }
  return saved;
}

int SessionHost::open_sessions() const {
  std::lock_guard lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

void SessionHost::note_batch(size_t edits_in_job) {
  std::lock_guard lock(batch_mu_);
  ++batch_.jobs;
  batch_.edits += static_cast<long long>(edits_in_job);
  batch_.max_size =
      std::max(batch_.max_size, static_cast<long long>(edits_in_job));
  const int bucket = edits_in_job <= 1   ? 0
                     : edits_in_job <= 3 ? 1
                     : edits_in_job <= 7 ? 2
                     : edits_in_job <= 15 ? 3
                                          : 4;
  ++batch_.hist[bucket];
}

void SessionHost::note_flush(size_t edits_flushed) {
  std::lock_guard lock(batch_mu_);
  ++batch_.regens;
  batch_.composed += static_cast<long long>(edits_flushed);
}

SessionHost::BatchStats SessionHost::batch_stats() const {
  std::lock_guard lock(batch_mu_);
  return batch_;
}

void SessionHost::absorb_stats(obs::MetricsRegistry& reg) const {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard lock(sessions_mu_);
    all.reserve(sessions_.size());
    for (const auto& [name, session] : sessions_) all.push_back(session);
  }
  reg.set("serve.sessions_open", static_cast<long long>(all.size()));
  long long edits = 0;
  long long pending = 0;
  RegenCounters sum;
  ParallelRouteStats spec;
  for (const auto& session : all) {
    std::lock_guard lock(session->mu);
    edits += session->seq;
    pending += session->pending.steps();
    const RegenCounters& t = session->regen.totals();
    sum.updates += t.updates;
    sum.incremental += t.incremental;
    sum.full_regens += t.full_regens;
    sum.edits_composed += t.edits_composed;
    sum.modules_replaced += t.modules_replaced;
    sum.modules_frozen += t.modules_frozen;
    sum.nets_kept += t.nets_kept;
    sum.nets_rerouted += t.nets_rerouted;
    sum.nets_extended += t.nets_extended;
    sum.cells_scrubbed += t.cells_scrubbed;
    sum.route_expansions += t.route_expansions;
    sum.region_validations += t.region_validations;
    sum.full_validations += t.full_validations;
    sum.validate_ms += t.validate_ms;
    const ParallelRouteStats& s = session->regen.speculation();
    spec.nets_speculated += s.nets_speculated;
    spec.commits_clean += s.commits_clean;
    spec.reroutes += s.reroutes;
    spec.nets_gated += s.nets_gated;
    spec.nets_respeculated += s.nets_respeculated;
    spec.respec_hits += s.respec_hits;
    spec.respec_stale += s.respec_stale;
  }
  reg.set("serve.edits_applied", edits);
  reg.set("serve.pending_edits", pending);
  const BatchStats b = batch_stats();
  reg.set("serve.batch.jobs", b.jobs);
  reg.set("serve.batch.edits", b.edits);
  reg.set("serve.batch.regens", b.regens);
  reg.set("serve.batch.composed", b.composed);
  reg.set("serve.batch.max", b.max_size);
  reg.set("serve.batch.hist_1", b.hist[0]);
  reg.set("serve.batch.hist_2_3", b.hist[1]);
  reg.set("serve.batch.hist_4_7", b.hist[2]);
  reg.set("serve.batch.hist_8_15", b.hist[3]);
  reg.set("serve.batch.hist_16p", b.hist[4]);
  obs::absorb(reg, sum);
  obs::absorb(reg, spec);
  const ThreadPool::Stats pool = pool_.stats();
  reg.set("serve.pool.peak_queued", pool.peak_queued);
  reg.set("serve.pool.urgent_drained", pool.urgent_drained);
  reg.set("serve.trace_buffered_events",
          static_cast<long long>(obs::trace_buffered_events()));
}

void SessionHost::absorb_latency(obs::MetricsRegistry& reg) const {
  reg.set_histogram("serve.lat.flush", flush_hist_.snapshot());
  reg.set_histogram("serve.pool.queue_wait", pool_wait_hist_.snapshot());
}

long long SessionHost::pending_edits() const {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard lock(sessions_mu_);
    all.reserve(sessions_.size());
    for (const auto& [name, session] : sessions_) all.push_back(session);
  }
  long long pending = 0;
  for (const auto& session : all) {
    std::lock_guard lock(session->mu);
    pending += session->pending.steps();
  }
  return pending;
}

}  // namespace na::serve
