#include "serve/event_loop.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace na::serve {
namespace {

/// Parsed-line backlog per connection before the socket stops being read.
constexpr size_t kMaxPendingLines = 256;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

EventLoop::EventLoop(int index, Options opt, Callbacks cb)
    : index_(index), opt_(opt), cb_(std::move(cb)) {}

EventLoop::~EventLoop() {
  if (thread_.joinable()) {
    begin_drain();
    thread_.join();
  }
  for (auto& [id, c] : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::start(std::string* error) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = ~uint64_t{0};  // the wakeup fd's sentinel id
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  thread_ = std::thread([this] { thread_main(); });
  return true;
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(tasks_mu_);
    tasks_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::run_tasks() {
  for (;;) {
    std::vector<std::function<void()>> batch;
    {
      std::lock_guard lock(tasks_mu_);
      if (tasks_.empty()) return;
      batch.swap(tasks_);
    }
    for (auto& fn : batch) fn();
  }
}

void EventLoop::adopt(int fd) {
  post([this, fd] { do_adopt(fd); });
}

void EventLoop::complete(uint64_t conn, uint64_t ticket, std::string response,
                         bool close_conn) {
  post([this, conn, ticket, r = std::move(response), close_conn]() mutable {
    const auto it = conns_.find(conn);
    if (it == conns_.end()) return;  // connection died; drop the response
    Conn& c = it->second;
    if (c.in_flight > 0) --c.in_flight;
    finish(c, ticket, std::move(r), close_conn);
    if (!try_write(conn, c)) return;
    pump(conn, c);
    const auto again = conns_.find(conn);
    if (again == conns_.end()) return;
    update_interest(conn, again->second);
    maybe_close(conn, again->second);
  });
}

void EventLoop::begin_drain() {
  post([this] {
    if (draining_) return;
    draining_ = true;
    drain_deadline_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(opt_.drain_grace_ms);
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (auto& [id, c] : conns_) ids.push_back(id);
    for (const uint64_t id : ids) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      c.read_open = false;
      c.reading = false;
      c.pending.clear();  // undispatched lines are dropped, like SHUT_RD
      if (!try_write(id, c)) continue;
      const auto again = conns_.find(id);
      if (again == conns_.end()) continue;
      update_interest(id, again->second);
      maybe_close(id, again->second);
    }
  });
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

bool EventLoop::past_drain_deadline() const {
  return draining_ && std::chrono::steady_clock::now() >= drain_deadline_;
}

void EventLoop::thread_main() {
  std::vector<epoll_event> events(128);
  for (;;) {
    run_tasks();
    if (draining_) {
      if (conns_.empty()) return;
      if (past_drain_deadline()) {
        // Flush stalled: give up on peers that stopped reading.  Requests
        // still in flight keep their connection until they complete.
        std::vector<uint64_t> stuck;
        for (auto& [id, c] : conns_) {
          if (c.in_flight == 0) stuck.push_back(id);
        }
        for (const uint64_t id : stuck) destroy(id);
        if (conns_.empty()) return;
      }
    }
    const int timeout_ms = draining_ ? 100 : 1000;
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: nothing left to serve
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == ~uint64_t{0}) {
        uint64_t drainv = 0;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // destroyed earlier this batch
      Conn& c = it->second;
      if ((events[i].events & EPOLLERR) != 0) {
        destroy(id);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!try_write(id, c)) continue;
        update_interest(id, c);
        maybe_close(id, c);
        if (conns_.find(id) == conns_.end()) continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0) {
        handle_readable(id, c);
      }
    }
  }
}

void EventLoop::do_adopt(int fd) {
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (draining_) {  // raced with shutdown: refuse politely
    ::close(fd);
    return;
  }
  const uint64_t id =
      (static_cast<uint64_t>(index_) << 48) | (++next_id_ & 0xffffffffffffULL);
  Conn& c = conns_[id];
  c.fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void EventLoop::handle_readable(uint64_t id, Conn& c) {
  char chunk[65536];
  int budget = 8;  // bounded per event so one firehose can't starve peers
  while (c.reading && budget-- > 0) {
    const ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
    if (n > 0) {
      c.in.append(chunk, static_cast<size_t>(n));
      split_lines(c);
      if (c.pending.size() > kMaxPendingLines ||
          c.out.size() - c.out_off > opt_.write_high_water) {
        c.reading = false;  // backpressure: stop reading until drained
      }
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {  // EOF: peer half-closed; finish what was dispatched
      c.read_open = false;
      c.reading = false;
      break;
    }
    if (errno == EINTR) {
      ++budget;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    destroy(id);
    return;
  }
  pump(id, c);
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (!try_write(id, it->second)) return;
  const auto again = conns_.find(id);
  if (again == conns_.end()) return;
  update_interest(id, again->second);
  maybe_close(id, again->second);
}

void EventLoop::split_lines(Conn& c) {
  size_t start = 0;
  for (;;) {
    const size_t nl = c.in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(c.in.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = nl + 1;
    if (c.discarding) {  // tail of an oversized line: swallow silently
      c.discarding = false;
      continue;
    }
    if (line.empty()) continue;
    PendingLine p;
    if (line.size() > opt_.max_line) {
      p.oversized = true;  // complete but over the cap: reject in order
    } else {
      p.text.assign(line);
    }
    c.pending.push_back(std::move(p));
  }
  c.in.erase(0, start);

  if (!c.discarding && c.in.size() > opt_.max_line) {
    // No newline within the cap: queue the rejection now, then discard
    // the rest of the line as it streams in.  The connection survives.
    PendingLine p;
    p.oversized = true;
    c.pending.push_back(std::move(p));
    c.discarding = true;
    c.in.clear();
  }
}

void EventLoop::pump(uint64_t id, Conn& c) {
  while (!c.pending.empty() && !c.close_after_flush &&
         c.in_flight < opt_.max_in_flight) {
    PendingLine p = std::move(c.pending.front());
    c.pending.pop_front();
    const uint64_t ticket = c.next_ticket++;
    if (p.oversized) {
      finish(c, ticket, cb_.on_oversized(), false);
      continue;
    }
    ++c.in_flight;
    cb_.on_line(id, ticket, p.text);
  }
  if (!c.reading && c.read_open && c.pending.size() <= kMaxPendingLines / 2 &&
      c.out.size() - c.out_off <= opt_.write_high_water / 2) {
    c.reading = true;  // backpressure released
  }
}

void EventLoop::finish(Conn& c, uint64_t ticket, std::string response,
                       bool close_conn) {
  c.ready.emplace(ticket, std::make_pair(std::move(response), close_conn));
  for (auto it = c.ready.find(c.next_to_send); it != c.ready.end();
       it = c.ready.find(c.next_to_send)) {
    c.out += it->second.first;
    c.out.push_back('\n');
    if (it->second.second) {
      c.close_after_flush = true;
      c.pending.clear();
      c.reading = false;
      c.read_open = false;
    }
    c.ready.erase(it);
    ++c.next_to_send;
  }
}

bool EventLoop::try_write(uint64_t id, Conn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      c.want_write = true;
      if (c.out_off > (64u << 10)) {  // keep the stalled buffer compact
        c.out.erase(0, c.out_off);
        c.out_off = 0;
      }
      return true;
    }
    destroy(id);  // EPIPE / ECONNRESET / ...: the peer is gone
    return false;
  }
  c.out.clear();
  c.out_off = 0;
  c.want_write = false;
  return true;
}

void EventLoop::update_interest(uint64_t id, Conn& c) {
  epoll_event ev{};
  ev.events = (c.reading ? EPOLLIN : 0u) | (c.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void EventLoop::maybe_close(uint64_t id, Conn& c) {
  const bool flushed = c.out_off >= c.out.size();
  if (c.close_after_flush && flushed && c.in_flight == 0) {
    destroy(id);
    return;
  }
  if (!c.read_open && c.in_flight == 0 && c.pending.empty() && flushed &&
      c.ready.empty()) {
    destroy(id);
    return;
  }
  if (past_drain_deadline() && c.in_flight == 0) destroy(id);
}

void EventLoop::destroy(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
}

}  // namespace na::serve
