#include "serve/server.hpp"

#include <arpa/inet.h>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace na::serve {

Server::Server(ServerOptions opt) : opt_(std::move(opt)), host_(opt_.host) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::start(std::string* error) {
  // Degenerate options fail loudly at startup, naming the flag, instead
  // of silently misbehaving later (an io_threads of 0 used to be clamped
  // deep inside run(); a max_line of 0 would reject every request; a
  // zero in-flight window would deadlock every pipelined connection).
  const auto reject = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (opt_.host.threads < 1) {
    return reject("bad value for --threads: must be >= 1");
  }
  if (opt_.io_threads < 1) {
    return reject("bad value for --io-threads: must be >= 1");
  }
  if (opt_.max_line == 0) {
    return reject("bad value for --max-line: must be >= 1");
  }
  if (opt_.max_in_flight == 0) {
    return reject("bad value for --max-in-flight: must be >= 1");
  }
  if (opt_.port < 0 || opt_.port > 65535) {
    return reject("bad value for --port: must be in [0, 65535]");
  }
  if (opt_.watchdog_ms < 0) {
    return reject("bad value for --watchdog-ms: must be >= 0 (0 disables)");
  }
  started_at_ = std::chrono::steady_clock::now();

  // A client that disconnects before its response is written must cost us
  // an EPIPE, never a process-killing SIGPIPE.  Belt (signal disposition)
  // and braces (MSG_NOSIGNAL on every send).
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address " + opt_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = "bind " + opt_.bind_address + ":" +
               std::to_string(opt_.port) + ": " + std::strerror(errno);
    }
    return false;
  }
  if (::listen(listen_fd_, 512) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  return true;
}

void Server::run() {
  flusher_ = std::thread([this] { flusher_main(); });

  const int io_threads = opt_.io_threads;  // start() validated >= 1
  EventLoop::Options loop_opt;
  loop_opt.max_line = opt_.max_line;
  loop_opt.max_in_flight = opt_.max_in_flight;
  for (int i = 0; i < io_threads; ++i) {
    EventLoop::Callbacks cb;
    cb.on_line = [this](uint64_t conn, uint64_t ticket, std::string_view line) {
      on_line(conn, ticket, line);
    };
    cb.on_oversized = [this] {
      std::string r = error_response(
          err::kLineTooLong, "request line exceeds " +
                                 std::to_string(opt_.max_line) + " bytes");
      note_request(r);
      return r;
    };
    loops_.push_back(std::make_unique<EventLoop>(i, loop_opt, std::move(cb)));
    std::string error;
    if (!loops_.back()->start(&error)) {
      // epoll/eventfd creation only fails on fd exhaustion; serve with
      // however many loops came up (at least one is required).
      loops_.pop_back();
    }
  }
  // Only after loops_ has settled: the watchdog iterates it to post its
  // lag probes, so its thread must not overlap the appends above.
  if (opt_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }

  // Accept loop with a ~100ms stop tick: poll() wakes either for a new
  // connection or to re-check the (signal-settable) stop flag.
  size_t next_loop = 0;
  while (!stopping() && !loops_.empty()) {
    // ~100ms admin tick: re-check the (signal-settable) stop flag and
    // perform any requested flight-recorder dump off the signal handler.
    if (flight_dump_.exchange(false, std::memory_order_relaxed)) {
      dump_flight(opt_.flight_dump_path);
    }
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (r <= 0) continue;  // timeout, EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard lock(counters_mu_);
      ++counters_.connections;
    }
    loops_[next_loop]->adopt(fd);
    next_loop = (next_loop + 1) % loops_.size();
  }

  // Graceful drain: no new connections, the watchdog stops posting its
  // loop probes, every loop stops reading (the requests it is serving
  // still complete and flush their responses), join, persist, flush.
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (watchdog_.joinable()) {
    {
      std::lock_guard lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  for (auto& loop : loops_) loop->begin_drain();
  for (auto& loop : loops_) loop->join();

  host_.save_dirty_sessions();
  host_.pool().wait_idle();
  if (obs::trace_stream_active()) obs::trace_stream_flush();

  {
    std::lock_guard lock(flush_mu_);
    flusher_stop_ = true;
  }
  flush_cv_.notify_all();
  flusher_.join();
}

Server::Counters Server::counters() const {
  std::lock_guard lock(counters_mu_);
  return counters_;
}

void Server::note_request(const std::string& response) {
  const bool is_error = response.rfind(R"({"ok":false)", 0) == 0;
  std::lock_guard lock(counters_mu_);
  ++counters_.requests;
  if (is_error) ++counters_.errors;
}

void Server::respond(uint64_t conn, uint64_t ticket, std::string response,
                     bool close_conn) {
  note_request(response);
  const int loop = EventLoop::loop_index_of(conn);
  if (loop >= 0 && loop < static_cast<int>(loops_.size())) {
    loops_[loop]->complete(conn, ticket, std::move(response), close_conn);
  }
  nudge_flusher();
}

void Server::on_line(uint64_t conn, uint64_t ticket, std::string_view line) {
  // Shared side of the flush gate: parsing and inline handling emit trace
  // events too.
  std::shared_lock gate(host_.flush_gate());
  NA_TRACE_SPAN(span, "serve.request");
  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    respond(conn, ticket, error_response(e.code(), e.what()));
    return;
  }
  span.arg("op", to_string(req.op));
  if (stopping() && req.op != Op::kPing) {
    respond(conn, ticket,
            error_response(err::kShuttingDown, "server is shutting down",
                           req.id));
    return;
  }
  dispatch(conn, ticket, std::move(req));
}

obs::Histogram* Server::latency_hist(Op op) {
  switch (op) {
    case Op::kOpen: return &lat_open_;
    case Op::kEdit: return &lat_edit_;
    case Op::kGet: return &lat_get_;
    case Op::kSave: return &lat_save_;
    default: return nullptr;
  }
}

void Server::dispatch(uint64_t conn, uint64_t ticket, Request req) {
  const Op op = req.op;
  const long long id = req.id;
  // Session ops answer through this completion, from a pool worker.  The
  // dispatch-to-completion time is the op's server-side latency (host
  // queue wait + execution + completion hop) — recorded per op into the
  // serve.lat.* histograms the metrics op reports.
  obs::Histogram* lat = latency_hist(op);
  const auto t0 = std::chrono::steady_clock::now();
  auto done = [this, conn, ticket, op, id, lat, t0](HostResult r) {
    if (lat != nullptr) {
      lat->record(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    }
    if (!r.ok) {
      respond(conn, ticket, error_response(r.error_code, r.message, id));
      return;
    }
    respond(conn, ticket, render_result(op, id, r));
  };
  switch (op) {
    case Op::kPing:
      respond(conn, ticket, render_result(op, id, HostResult{}));
      return;
    case Op::kStats:
      respond(conn, ticket, build_stats_response(id));
      return;
    case Op::kMetrics:
      respond(conn, ticket, build_metrics_response(id));
      return;
    case Op::kShutdown:
      request_stop();
      respond(conn, ticket, render_result(op, id, HostResult{}),
              /*close_conn=*/true);
      return;
    case Op::kOpen:
      host_.open_async(req.session, req.design, req.restore, std::move(done));
      return;
    case Op::kEdit:
      host_.edit_async(req.session, std::move(req.edits), std::move(done));
      return;
    case Op::kGet:
      host_.get_async(req.session, req.format, std::move(done));
      return;
    case Op::kSave:
      host_.save_async(req.session, std::move(done));
      return;
    case Op::kClose:
      host_.close_async(req.session, std::move(done));
      return;
  }
}

std::string Server::render_result(Op op, long long id, const HostResult& r) {
  obs::JsonWriter w;
  w.begin_object().field("ok", true).field("op", std::string_view(to_string(op)));
  if (id >= 0) w.field("id", id);
  switch (op) {
    case Op::kOpen:
      w.field("seq", r.seq)
          .field("full_regen", r.full_regen)
          .field("nets_rerouted", r.nets_rerouted)
          .field("nets_kept", r.nets_kept);
      break;
    case Op::kEdit:
      // Deliberately free of regen fields: the edit only composed its
      // script into the pending network (regen is deferred to the next
      // observation point), so the response is a pure function of the
      // request sequence — identical however requests batch.
      w.field("seq", r.seq).field("batched", r.batched);
      break;
    case Op::kGet:
      w.field("seq", r.seq)
          .field("flushed_edits", r.flushed_edits)
          .field("payload", std::string_view(r.payload));
      break;
    case Op::kSave:
      w.field("seq", r.seq).field("flushed_edits", r.flushed_edits);
      if (!r.payload.empty()) {  // no state dir: blob travels inline
        w.field("payload", std::string_view(r.payload));
      }
      break;
    default:
      break;
  }
  w.end_object();
  return w.take();
}

void Server::absorb_stats(obs::MetricsRegistry& reg) const {
  {
    std::lock_guard lock(counters_mu_);
    reg.set("serve.connections", counters_.connections);
    reg.set("serve.requests", counters_.requests);
    reg.set("serve.errors", counters_.errors);
  }
  host_.absorb_stats(reg);
  reg.set("serve.peak_rss_bytes", obs::peak_rss_bytes());
  reg.set("serve.uptime_ms",
          static_cast<long long>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - started_at_)
                  .count()));
}

void Server::absorb_metrics(obs::MetricsRegistry& reg) const {
  absorb_stats(reg);
  if (obs::trace_flight_enabled()) {
    reg.set("serve.flight.capacity",
            static_cast<long long>(obs::trace_flight_capacity()));
    reg.set("serve.flight.dropped",
            static_cast<long long>(obs::trace_flight_dropped()));
  }
  if (obs::trace_slow_log_active()) {
    reg.set("serve.slow.records",
            static_cast<long long>(obs::trace_slow_log_records()));
  }
  {
    std::lock_guard lock(gauges_mu_);
    reg.merge_prefixed(gauges_, "");
  }
  reg.set_histogram("serve.lat.open", lat_open_.snapshot());
  reg.set_histogram("serve.lat.edit", lat_edit_.snapshot());
  reg.set_histogram("serve.lat.get", lat_get_.snapshot());
  reg.set_histogram("serve.lat.save", lat_save_.snapshot());
  reg.set_histogram("serve.lat.loop_tick", lat_loop_.snapshot());
  host_.absorb_latency(reg);
}

std::string Server::build_stats_response(long long id) {
  obs::MetricsRegistry reg;
  absorb_stats(reg);
  return registry_response(Op::kStats, reg, id);
}

std::string Server::build_metrics_response(long long id) {
  obs::MetricsRegistry reg;
  absorb_metrics(reg);
  return registry_response(Op::kMetrics, reg, id);
}

bool Server::dump_flight(const std::string& path) {
  if (!obs::trace_flight_enabled()) return false;
  // Exclusive side of the flush gate: no request is mid-record, so the
  // rings are quiescent and the dump is byte-stable (DESIGN §11).
  std::unique_lock gate(host_.flush_gate());
  return obs::trace_flight_dump(path);
}

void Server::watchdog_tick() {
  // Event-loop lag probes: post-to-run delay through each loop's task
  // queue — exactly the wait a cross-thread completion experiences.
  for (auto& loop : loops_) {
    const auto t0 = std::chrono::steady_clock::now();
    loop->post([this, t0] {
      lat_loop_.record(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    });
  }
  // Live gauges, sampled off the request path.
  const long long queue_depth = host_.pool().queue_depth();
  const long long sessions = host_.open_sessions();
  const long long pending = host_.pending_edits();
  const long long rss = obs::peak_rss_bytes();
  const long long uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count();
  {
    std::lock_guard lock(gauges_mu_);
    gauges_.set("serve.gauge.pool_queue_depth", queue_depth);
    gauges_.set("serve.gauge.sessions_open", sessions);
    gauges_.set("serve.gauge.pending_edits", pending);
    gauges_.set("serve.gauge.rss_bytes", rss);
    gauges_.set("serve.gauge.uptime_ms", uptime_ms);
    gauges_.add("serve.gauge.watchdog_ticks", 1);
  }
  if (!opt_.prom_file.empty()) {
    obs::MetricsRegistry reg;
    absorb_metrics(reg);
    // Write-then-rename so a scraper never reads a torn file.
    const std::string tmp = opt_.prom_file + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "w"); f != nullptr) {
      const std::string text = reg.to_prometheus();
      const bool ok =
          std::fwrite(text.data(), 1, text.size(), f) == text.size();
      if (std::fclose(f) == 0 && ok) {
        std::rename(tmp.c_str(), opt_.prom_file.c_str());
      }
    }
  }
}

void Server::watchdog_main() {
  std::unique_lock lk(watchdog_mu_);
  while (!watchdog_stop_) {
    lk.unlock();
    watchdog_tick();
    lk.lock();
    watchdog_cv_.wait_for(lk, std::chrono::milliseconds(opt_.watchdog_ms),
                          [this] { return watchdog_stop_; });
  }
}

void Server::nudge_flusher() {
  if (opt_.trace_flush_events == 0 || !obs::trace_stream_active()) return;
  if (obs::trace_buffered_events() < opt_.trace_flush_events) return;
  {
    std::lock_guard lock(flush_mu_);
    flush_nudged_ = true;
  }
  flush_cv_.notify_one();
}

void Server::flusher_main() {
  std::unique_lock lk(flush_mu_);
  for (;;) {
    flush_cv_.wait(lk, [this] { return flusher_stop_ || flush_nudged_; });
    if (flusher_stop_) return;
    flush_nudged_ = false;
    lk.unlock();
    {
      // Exclusive side of the gate: no request is parsing or executing,
      // and every op body joined its nested routing work before it
      // released its shared hold — the recorder is quiescent, so the
      // flush is byte-stable.
      std::unique_lock gate(host_.flush_gate());
      if (obs::trace_stream_active() &&
          obs::trace_buffered_events() >= opt_.trace_flush_events) {
        obs::trace_stream_flush();
      }
    }
    lk.lock();
  }
}

namespace {
std::atomic<Server*> g_signal_server{nullptr};

void stop_on_signal(int) {
  if (Server* s = g_signal_server.load(std::memory_order_relaxed)) {
    s->request_stop();  // one relaxed atomic store: async-signal-safe
  }
}

void dump_on_signal(int) {
  if (Server* s = g_signal_server.load(std::memory_order_relaxed)) {
    s->request_flight_dump();  // flag only; the accept tick dumps
  }
}
}  // namespace

void install_signal_handlers(Server& server) {
  g_signal_server.store(&server, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = stop_on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  struct sigaction dump{};
  dump.sa_handler = dump_on_signal;
  sigemptyset(&dump.sa_mask);
  ::sigaction(SIGUSR1, &dump, nullptr);
}

}  // namespace na::serve
