#include "serve/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace na::serve {
namespace {

/// write(2) until everything is out; false on a broken pipe.
bool write_all(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool send_line(int fd, std::string line) {
  line.push_back('\n');
  return write_all(fd, line.data(), line.size());
}

}  // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)), host_(opt_.host) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address " + opt_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = "bind " + opt_.bind_address + ":" +
               std::to_string(opt_.port) + ": " + std::strerror(errno);
    }
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  return true;
}

void Server::run() {
  // Accept loop with a ~100ms stop tick: poll() wakes either for a new
  // connection or to re-check the (signal-settable) stop flag.
  while (!stopping()) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (r <= 0) continue;  // timeout, EINTR: re-check stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
    {
      std::lock_guard clock(counters_mu_);
      ++counters_.connections;
    }
  }

  // Graceful drain: no new connections, EOF every reader (the request it
  // is serving still completes and responds), join, persist, flush.
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();

  host_.save_dirty_sessions();
  host_.pool().wait_idle();
  if (obs::trace_stream_active()) obs::trace_stream_flush();
}

Server::Counters Server::counters() const {
  std::lock_guard lock(counters_mu_);
  return counters_;
}

void Server::serve_connection(int fd) {
  std::string buf;
  char chunk[4096];
  bool discarding = false;  // oversized line: drop bytes to the next '\n'
  bool close_conn = false;
  while (!close_conn) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or SHUT_RD during shutdown
    buf.append(chunk, static_cast<size_t>(n));

    size_t start = 0;
    for (;;) {
      const size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(buf.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (discarding) {  // tail of an oversized line: swallow silently
        discarding = false;
        continue;
      }
      if (line.empty()) continue;
      if (!send_line(fd, handle_line(line, &close_conn)) || close_conn) {
        close_conn = true;
        break;
      }
      maybe_flush_trace();
    }
    buf.erase(0, start);

    if (!close_conn && !discarding && buf.size() > opt_.max_line) {
      // No newline within the cap: reject now, then discard the rest of
      // the line as it streams in.  The connection survives.
      discarding = true;
      buf.clear();
      {
        std::lock_guard lock(counters_mu_);
        ++counters_.requests;
        ++counters_.errors;
      }
      if (!send_line(fd, error_response(err::kLineTooLong,
                                        "request line exceeds " +
                                            std::to_string(opt_.max_line) +
                                            " bytes"))) {
        break;
      }
    }
  }
  ::close(fd);
  std::lock_guard lock(conn_mu_);
  for (size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_.erase(conn_fds_.begin() + i);
      break;
    }
  }
}

std::string Server::handle_line(std::string_view line, bool* close_conn) {
  // Shared side of the flush gate: the trace flusher waits for every
  // in-flight request before touching the buffers.
  std::shared_lock gate(flush_gate_);
  NA_TRACE_SPAN(span, "serve.request");
  {
    std::lock_guard lock(counters_mu_);
    ++counters_.requests;
  }
  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    std::lock_guard lock(counters_mu_);
    ++counters_.errors;
    return error_response(e.code(), e.what());
  }
  span.arg("op", to_string(req.op));
  if (stopping() && req.op != Op::kPing) {
    return error_response(err::kShuttingDown, "server is shutting down",
                          req.id);
  }
  return handle_request(req, close_conn);
}

std::string Server::handle_request(const Request& req, bool* close_conn) {
  HostResult r;
  switch (req.op) {
    case Op::kPing:
      break;
    case Op::kOpen:
      r = host_.open(req.session, req.design, req.restore);
      break;
    case Op::kEdit:
      r = host_.edit(req.session, req.edits);
      break;
    case Op::kGet:
      r = host_.get(req.session, req.format);
      break;
    case Op::kStats:
      return stats_response(req.id);
    case Op::kSave:
      r = host_.save(req.session);
      break;
    case Op::kClose:
      r = host_.close(req.session);
      break;
    case Op::kShutdown:
      request_stop();
      *close_conn = true;
      break;
  }
  if (!r.ok) {
    std::lock_guard lock(counters_mu_);
    ++counters_.errors;
    return error_response(r.error_code, r.message, req.id);
  }

  obs::JsonWriter w;
  w.begin_object().field("ok", true).field("op", std::string_view(to_string(req.op)));
  if (req.id >= 0) w.field("id", req.id);
  switch (req.op) {
    case Op::kOpen:
    case Op::kEdit:
      w.field("seq", r.seq)
          .field("full_regen", r.full_regen)
          .field("nets_rerouted", r.nets_rerouted)
          .field("nets_kept", r.nets_kept);
      break;
    case Op::kGet:
      w.field("seq", r.seq).field("payload", std::string_view(r.payload));
      break;
    case Op::kSave:
      w.field("seq", r.seq);
      if (!r.payload.empty()) {  // no state dir: blob travels inline
        w.field("payload", std::string_view(r.payload));
      }
      break;
    default:
      break;
  }
  w.end_object();
  return w.take();
}

std::string Server::stats_response(long long id) {
  obs::MetricsRegistry reg;
  {
    std::lock_guard lock(counters_mu_);
    reg.set("serve.connections", counters_.connections);
    reg.set("serve.requests", counters_.requests);
    reg.set("serve.errors", counters_.errors);
  }
  host_.absorb_stats(reg);
  obs::JsonWriter w;
  w.begin_object().field("ok", true).field("op", std::string_view("stats"));
  if (id >= 0) w.field("id", id);
  // to_json() is a complete document (with a trailing newline — strip it,
  // responses are single lines); splice it as the "metrics" field.
  w.key("metrics");
  std::string out = w.take();
  std::string doc = reg.to_json();
  while (!doc.empty() && doc.back() == '\n') doc.pop_back();
  out += doc;
  out += '}';
  return out;
}

void Server::maybe_flush_trace() {
  if (opt_.trace_flush_events == 0 || !obs::trace_stream_active()) return;
  if (obs::trace_buffered_events() < opt_.trace_flush_events) return;
  // Exclusive side of the gate: no request is running, so once the pool
  // drains the recorder is quiescent and the flush is byte-stable.
  std::unique_lock gate(flush_gate_);
  if (obs::trace_buffered_events() < opt_.trace_flush_events) return;
  host_.pool().wait_idle();
  obs::trace_stream_flush();
}

namespace {
std::atomic<Server*> g_signal_server{nullptr};

void stop_on_signal(int) {
  if (Server* s = g_signal_server.load(std::memory_order_relaxed)) {
    s->request_stop();  // one relaxed atomic store: async-signal-safe
  }
}
}  // namespace

void install_signal_handlers(Server& server) {
  g_signal_server.store(&server, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = stop_on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace na::serve
