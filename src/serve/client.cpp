#include "serve/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace na::serve {

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

bool BlockingClient::connect(const std::string& host, int port,
                             std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address " + host;
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

void BlockingClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

bool BlockingClient::send_line(std::string_view line) {
  if (fd_ < 0) return false;
  std::string out(line);
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool BlockingClient::recv_line(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

std::string BlockingClient::request(std::string_view line) {
  std::string response;
  if (!send_line(line) || !recv_line(&response)) return {};
  return response;
}

}  // namespace na::serve
