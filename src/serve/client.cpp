#include "serve/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace na::serve {

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      last_error_(std::move(other.last_error_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
    last_error_ = std::move(other.last_error_);
  }
  return *this;
}

bool BlockingClient::connect(const std::string& host, int port,
                             std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    last_error_ = std::strerror(errno);
    if (error != nullptr) *error = last_error_;
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad address " + host;
    if (error != nullptr) *error = last_error_;
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    last_error_ =
        host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    if (error != nullptr) *error = last_error_;
    close();
    return false;
  }
  last_error_.clear();
  return true;
}

void BlockingClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

bool BlockingClient::send_line(std::string_view line) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  std::string out(line);
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    // MSG_NOSIGNAL: a server that closed on us yields EPIPE, not a
    // process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      last_error_ = std::string("send: ") +
                    (n < 0 ? std::strerror(errno) : "connection closed");
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool BlockingClient::recv_line(std::string* line) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return false;
  }
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      last_error_ = n < 0 ? std::string("recv: ") + std::strerror(errno)
                          : "connection closed by server";
      return false;
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

std::string BlockingClient::request(std::string_view line) {
  last_error_.clear();
  std::string response;
  if (!send_line(line) || !recv_line(&response)) return {};
  return response;
}

}  // namespace na::serve
