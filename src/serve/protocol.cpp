#include "serve/protocol.hpp"

#include "obs/metrics.hpp"
#include "serve/json.hpp"

namespace na::serve {
namespace {

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError(err::kBadRequest, message);
}

std::string required_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::kString) {
    bad(std::string("missing string field '") + key + "'");
  }
  return v->text;
}

std::string optional_string(const JsonValue& obj, const char* key,
                            std::string fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::kString) {
    bad(std::string("field '") + key + "' must be a string");
  }
  return v->text;
}

int required_coord(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  long long n = 0;
  if (v == nullptr || !v->as_int(&n)) {
    bad(std::string("missing integer field '") + key + "'");
  }
  if (n < -(1 << 24) || n > (1 << 24)) {
    bad(std::string("field '") + key + "' out of range");
  }
  return static_cast<int>(n);
}

TermType required_term_type(const JsonValue& obj) {
  const std::string s = required_string(obj, "type");
  const auto t = parse_term_type(s);
  if (!t) bad("bad terminal type '" + s + "' (in|out|inout)");
  return *t;
}

EditCmd parse_edit(const JsonValue& e) {
  if (e.kind != JsonValue::kObject) {
    throw ProtocolError(err::kBadEdit, "edit must be an object");
  }
  EditCmd cmd;
  const std::string kind = required_string(e, "kind");
  using K = EditCmd::Kind;
  if (kind == "add_module") {
    cmd.kind = K::kAddModule;
    cmd.name = required_string(e, "name");
    cmd.template_name = optional_string(e, "template", "");
    cmd.pos = {required_coord(e, "w"), required_coord(e, "h")};
  } else if (kind == "remove_module") {
    cmd.kind = K::kRemoveModule;
    cmd.name = required_string(e, "name");
  } else if (kind == "resize_module") {
    cmd.kind = K::kResizeModule;
    cmd.name = required_string(e, "name");
    cmd.pos = {required_coord(e, "w"), required_coord(e, "h")};
  } else if (kind == "add_terminal") {
    cmd.kind = K::kAddTerminal;
    cmd.module = required_string(e, "module");
    cmd.name = required_string(e, "name");
    cmd.type = required_term_type(e);
    cmd.pos = {required_coord(e, "x"), required_coord(e, "y")};
  } else if (kind == "move_terminal") {
    cmd.kind = K::kMoveTerminal;
    cmd.module = required_string(e, "module");
    cmd.term = required_string(e, "term");
    cmd.pos = {required_coord(e, "x"), required_coord(e, "y")};
  } else if (kind == "connect") {
    cmd.kind = K::kConnect;
    cmd.net = required_string(e, "net");
    cmd.module = optional_string(e, "module", "");
    cmd.term = required_string(e, "term");
  } else if (kind == "disconnect") {
    cmd.kind = K::kDisconnect;
    cmd.module = optional_string(e, "module", "");
    cmd.term = required_string(e, "term");
  } else if (kind == "remove_net") {
    cmd.kind = K::kRemoveNet;
    cmd.net = required_string(e, "net");
  } else if (kind == "add_system_terminal") {
    cmd.kind = K::kAddSystemTerminal;
    cmd.name = required_string(e, "name");
    cmd.type = required_term_type(e);
  } else if (kind == "remove_system_terminal") {
    cmd.kind = K::kRemoveSystemTerminal;
    cmd.name = required_string(e, "name");
  } else {
    throw ProtocolError(err::kBadEdit, "unknown edit kind '" + kind + "'");
  }
  return cmd;
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kOpen: return "open";
    case Op::kEdit: return "edit";
    case Op::kGet: return "get";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kSave: return "save";
    case Op::kClose: return "close";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

Request parse_request(std::string_view line) {
  JsonValue root;
  try {
    root = parse_json(line);
  } catch (const std::exception& e) {
    throw ProtocolError(err::kBadJson, e.what());
  }
  if (root.kind != JsonValue::kObject) {
    throw ProtocolError(err::kBadJson, "request must be a JSON object");
  }

  Request req;
  if (const JsonValue* id = root.find("id"); id != nullptr) {
    if (!id->as_int(&req.id) || req.id < 0) bad("field 'id' must be a non-negative integer");
  }

  const std::string op = required_string(root, "op");
  if (op == "ping") {
    req.op = Op::kPing;
  } else if (op == "open") {
    req.op = Op::kOpen;
    req.session = required_string(root, "session");
    req.design = optional_string(root, "design", "");
    if (const JsonValue* r = root.find("restore"); r != nullptr) {
      if (r->kind != JsonValue::kBool) bad("field 'restore' must be a bool");
      req.restore = r->boolean;
    }
    if (req.design.empty() && !req.restore) bad("open needs 'design' or 'restore'");
  } else if (op == "edit") {
    req.op = Op::kEdit;
    req.session = required_string(root, "session");
    const JsonValue* edits = root.find("edits");
    if (edits == nullptr || edits->kind != JsonValue::kArray) {
      bad("missing array field 'edits'");
    }
    if (edits->array.empty()) bad("'edits' must not be empty");
    for (const JsonValue& e : edits->array) req.edits.push_back(parse_edit(e));
  } else if (op == "get") {
    req.op = Op::kGet;
    req.session = required_string(root, "session");
    req.format = optional_string(root, "format", "escher");
    if (req.format != "escher" && req.format != "svg" && req.format != "ascii") {
      bad("bad format '" + req.format + "' (escher|svg|ascii)");
    }
  } else if (op == "stats") {
    req.op = Op::kStats;
  } else if (op == "metrics") {
    req.op = Op::kMetrics;
  } else if (op == "save") {
    req.op = Op::kSave;
    req.session = required_string(root, "session");
  } else if (op == "close") {
    req.op = Op::kClose;
    req.session = required_string(root, "session");
  } else if (op == "shutdown") {
    req.op = Op::kShutdown;
  } else {
    throw ProtocolError(err::kUnknownOp, "unknown op '" + op + "'");
  }
  if (!req.session.empty() && req.session.size() > 256) {
    bad("session name too long");
  }
  return req;
}

std::string error_response(const char* code, std::string_view message,
                           long long id) {
  obs::JsonWriter w;
  w.begin_object().field("ok", false);
  if (id >= 0) w.field("id", id);
  w.key("error").begin_object();
  w.field("code", std::string_view(code)).field("message", message);
  w.end_object().end_object();
  return w.take();
}

std::string registry_response(Op op, const obs::MetricsRegistry& reg,
                              long long id) {
  obs::JsonWriter w;
  w.begin_object().field("ok", true).field("op", std::string_view(to_string(op)));
  if (id >= 0) w.field("id", id);
  // to_json() is a complete document (with a trailing newline — strip it,
  // responses are single lines); splice it as the "metrics" field.
  w.key("metrics");
  std::string out = w.take();
  std::string doc = reg.to_json();
  while (!doc.empty() && doc.back() == '\n') doc.pop_back();
  out += doc;
  out += '}';
  return out;
}

std::string stats_response(const obs::MetricsRegistry& reg, long long id) {
  return registry_response(Op::kStats, reg, id);
}

}  // namespace na::serve
