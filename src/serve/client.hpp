// BlockingClient — minimal synchronous na_serve client for tests, benches
// and the example transcript: connect to loopback, send one request line,
// block for one response line.  Not thread-safe; one client per thread.
#pragma once

#include <string>
#include <string_view>

namespace na::serve {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to host:port; false + message on failure.
  bool connect(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one line (newline appended); false on a broken connection.
  bool send_line(std::string_view line);
  /// Blocks for the next response line (newline stripped); false on EOF.
  bool recv_line(std::string* line);
  /// send_line + recv_line; empty string on failure.  An empty return is
  /// ambiguous on its own (a transport failure and a genuinely empty
  /// response line both yield "") — check last_error() to distinguish:
  /// empty means the server really sent an empty line.
  std::string request(std::string_view line);

  /// Human-readable description of the last transport failure on this
  /// client (connect/send/recv).  Cleared at the start of every request()
  /// and successful connect(); empty means the last operation's transport
  /// worked.
  const std::string& last_error() const { return last_error_; }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
  std::string last_error_;
};

}  // namespace na::serve
