// EventLoop — one epoll-driven I/O thread of the na_serve connection
// plane.  The server runs a small fixed set of these; every accepted
// socket is pinned to exactly one loop, and all of a connection's state
// (read buffer, parsed-line queue, response reordering window, write
// buffer) is touched only on its loop thread.  Cross-thread entry points
// (adopt, complete, begin_drain) post closures to the loop's task queue
// and wake it through an eventfd — the only shared state is that queue.
//
// Readiness model: sockets are non-blocking and level-triggered.  EPOLLIN
// appends to a per-connection buffer, splits complete lines (1 MiB cap
// with discard-to-newline recovery, as in the blocking server), and
// dispatches each line with a per-connection ticket.  The handler answers
// asynchronously via complete(conn, ticket, response) from any thread;
// responses are reordered by ticket so the wire order always equals the
// request order, however the session jobs finish.  Writes go through a
// per-connection buffer drained on EPOLLOUT: a slow reader accumulates
// bytes in its own buffer and — past a high-water mark — stops being
// read from (backpressure), instead of blocking an I/O thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace na::serve {

class EventLoop {
 public:
  struct Options {
    /// Per-request line cap; longer lines get the oversized response.
    size_t max_line = 1u << 20;
    /// Dispatched-but-unanswered requests per connection; further parsed
    /// lines wait in the pending queue (and, past kMaxPendingLines, the
    /// socket stops being read).
    size_t max_in_flight = 128;
    /// Write-buffer size above which the connection stops being read
    /// until the peer drains it.
    size_t write_high_water = 256u << 10;
    /// During drain, how long a connection may sit on unflushed output
    /// (with no request in flight) before it is force-closed.
    int drain_grace_ms = 5000;
  };

  struct Callbacks {
    /// One complete request line, on the loop thread.  Exactly one
    /// complete(conn, ticket, ...) must eventually follow, from any
    /// thread.  The view is valid only for the duration of the call.
    std::function<void(uint64_t conn, uint64_t ticket, std::string_view line)>
        on_line;
    /// Builds the response line for an oversized request (loop thread).
    std::function<std::string()> on_oversized;
  };

  /// `index` namespaces connection ids: id >> 48 recovers the loop.
  EventLoop(int index, Options opt, Callbacks cb);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll/eventfd pair and spawns the loop thread.
  bool start(std::string* error);

  /// Hands an accepted socket to this loop (thread-safe).  The loop owns
  /// the fd from here on.
  void adopt(int fd);

  /// Delivers the response for a dispatched ticket (thread-safe).  With
  /// `close_conn` the connection is closed once this response — and every
  /// earlier one — has been flushed.  Responses for connections that died
  /// in the meantime are silently dropped.
  void complete(uint64_t conn, uint64_t ticket, std::string response,
                bool close_conn = false);

  /// Starts the graceful drain (thread-safe): stop reading everywhere,
  /// let in-flight requests finish and flush, then close.  The loop
  /// thread exits once no connections remain.
  void begin_drain();

  /// Joins the loop thread (call after begin_drain).
  void join();

  static int loop_index_of(uint64_t conn) {
    return static_cast<int>(conn >> 48);
  }

  /// Enqueues a closure on the loop's task queue and wakes the loop
  /// (thread-safe).  Tasks run on the loop thread in post order, between
  /// epoll waits — the watchdog posts its tick-lag probes through here,
  /// so the measured delay is exactly the time a cross-thread completion
  /// would have waited for the loop.  Call only while the loop runs
  /// (after start(), before join()).
  void post(std::function<void()> fn);

 private:
  struct PendingLine {
    bool oversized = false;
    std::string text;
  };
  struct Conn {
    int fd = -1;
    std::string in;        ///< bytes past the last complete line
    bool discarding = false;
    std::deque<PendingLine> pending;  ///< parsed, not yet dispatched
    uint64_t next_ticket = 0;         ///< assigned at dispatch
    uint64_t next_to_send = 0;        ///< wire order restoration
    std::map<uint64_t, std::pair<std::string, bool>> ready;  ///< resp, close
    size_t in_flight = 0;  ///< dispatched lines awaiting complete()
    std::string out;
    size_t out_off = 0;
    bool want_write = false;
    bool reading = true;    ///< EPOLLIN armed
    bool read_open = true;  ///< false after EOF or drain
    bool close_after_flush = false;
  };

  void thread_main();
  void run_tasks();
  void do_adopt(int fd);
  void handle_readable(uint64_t id, Conn& c);
  void split_lines(Conn& c);
  void pump(uint64_t id, Conn& c);
  void finish(Conn& c, uint64_t ticket, std::string response, bool close_conn);
  /// False when the connection was destroyed by a write error.
  bool try_write(uint64_t id, Conn& c);
  void update_interest(uint64_t id, Conn& c);
  void maybe_close(uint64_t id, Conn& c);
  void destroy(uint64_t id);
  bool past_drain_deadline() const;

  const int index_;
  const Options opt_;
  const Callbacks cb_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;

  // Loop-thread-only state.
  std::map<uint64_t, Conn> conns_;
  uint64_t next_id_ = 0;
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
};

}  // namespace na::serve
