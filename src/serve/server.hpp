// The na_serve daemon: TCP listener + thread-per-connection line reader on
// top of SessionHost.
//
// Lifecycle: construct -> start() binds/listens (port 0 picks an ephemeral
// port, readable via port()) -> run() blocks serving until request_stop().
// request_stop() only stores an atomic flag, so it is safe to call from a
// signal handler (install_signal_handlers wires SIGINT/SIGTERM to it); the
// accept loop polls the flag every ~100ms.
//
// Graceful shutdown, in order: stop accepting, shut down the read side of
// every live connection (in-flight requests finish and get their response,
// the next read sees EOF), join connection threads, save every dirty
// session to the state dir, and take a final streaming trace flush.
//
// Trace flushing in a live daemon: when the process streams its trace
// (--trace with NA_TRACE=ON), buffered events are flushed whenever they
// exceed `trace_flush_events`.  Flushing is only safe at quiescence, so a
// shared_mutex gates it: every request holds it shared while it runs; the
// flusher takes it exclusive (no request running), waits for the pool to
// go idle, and only then flushes.  That keeps the streamed file byte-
// identical to a one-shot trace_write of the same events.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session_host.hpp"

namespace na::serve {

struct ServerOptions {
  /// TCP port; 0 asks the kernel for an ephemeral one (tests do this).
  int port = 0;
  /// Bind address.  Loopback by default: the protocol has no auth.
  std::string bind_address = "127.0.0.1";
  HostOptions host;
  /// Per-request line cap; longer lines answer err::kLineTooLong.
  size_t max_line = kMaxLineBytes;
  /// Streaming trace flush threshold (buffered events); 0 never flushes
  /// mid-run.  Only relevant when a trace stream is open.
  size_t trace_flush_events = 4096;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens.  False + message on failure (port in use, ...).
  bool start(std::string* error);

  /// The bound port (after start); useful with port 0.
  int port() const { return port_; }

  /// Serves until request_stop(), then drains and saves.  Call once.
  void run();

  /// Async-signal-safe stop request.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  SessionHost& host() { return host_; }

  /// Connection/request counters (for the stats op and tests).
  struct Counters {
    long long connections = 0;
    long long requests = 0;
    long long errors = 0;
  };
  Counters counters() const;

 private:
  void serve_connection(int fd);
  /// Handles one request line; returns the response line (no newline).
  /// Sets *close_conn when the connection should end after responding.
  std::string handle_line(std::string_view line, bool* close_conn);
  std::string handle_request(const Request& req, bool* close_conn);
  std::string stats_response(long long id);
  void maybe_flush_trace();

  ServerOptions opt_;
  SessionHost host_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  ///< live sockets, for shutdown(SHUT_RD)

  /// Requests hold this shared; the trace flusher takes it exclusive.
  std::shared_mutex flush_gate_;

  mutable std::mutex counters_mu_;
  Counters counters_;
};

/// Routes SIGINT and SIGTERM to server.request_stop().  The handler only
/// touches an atomic flag.  One server at a time.
void install_signal_handlers(Server& server);

}  // namespace na::serve
