// The na_serve daemon: TCP listener + an epoll event-loop connection
// plane (serve/event_loop.hpp) on top of SessionHost.
//
// Lifecycle: construct -> start() binds/listens and ignores SIGPIPE (port
// 0 picks an ephemeral port, readable via port()) -> run() blocks serving
// until request_stop().  request_stop() only stores an atomic flag, so it
// is safe to call from a signal handler (install_signal_handlers wires
// SIGINT/SIGTERM to it); the accept loop polls the flag every ~100ms.
//
// Connection plane: run() spawns `io_threads` EventLoops and deals
// accepted sockets to them round-robin.  Request lines are parsed on the
// loop thread; cheap ops (ping, stats, shutdown, malformed lines) answer
// inline, session ops dispatch onto the SessionHost's async op queues and
// answer through a completion that posts the response back to the
// connection's loop.  Per-connection tickets keep the wire order equal to
// the request order however the pool jobs finish, and a disconnected peer
// merely drops its responses (MSG_NOSIGNAL everywhere; a dead socket can
// never raise SIGPIPE and kill the daemon).
//
// Graceful shutdown, in order: stop accepting, drain every loop (requests
// in flight finish and their responses flush), join the loop threads,
// save every dirty session to the state dir, and take a final streaming
// trace flush.
//
// Trace flushing in a live daemon: when the process streams its trace
// (--trace with NA_TRACE=ON), a dedicated flusher thread wakes whenever
// buffered events exceed `trace_flush_events`.  Flushing is only safe at
// quiescence, so the host's shared_mutex gates it: every request holds it
// shared while it runs (inline handling on the loop threads, op bodies on
// the pool); the flusher takes it exclusive — no request is emitting
// events, and any nested routing work was joined before its op body
// returned — and only then flushes.  That keeps the streamed file byte-
// identical to a one-shot trace_write of the same events.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "serve/event_loop.hpp"
#include "serve/session_host.hpp"

namespace na::serve {

struct ServerOptions {
  /// TCP port; 0 asks the kernel for an ephemeral one (tests do this).
  int port = 0;
  /// Bind address.  Loopback by default: the protocol has no auth.
  std::string bind_address = "127.0.0.1";
  HostOptions host;
  /// Per-request line cap; longer lines answer err::kLineTooLong.
  size_t max_line = kMaxLineBytes;
  /// Event-loop I/O threads of the connection plane.  Two comfortably
  /// saturate the loopback path; the pool does the heavy lifting.
  int io_threads = 2;
  /// Pipelined-request cap per connection (event-loop in-flight window).
  size_t max_in_flight = 128;
  /// Streaming trace flush threshold (buffered events); 0 never flushes
  /// mid-run.  Only relevant when a trace stream is open.
  size_t trace_flush_events = 4096;
  /// Watchdog sampler interval: every tick publishes the live gauges
  /// (event-loop tick lag, pool queue depth, pending edits, open
  /// sessions, RSS, uptime) and rewrites `prom_file` when set.  0
  /// disables the thread.
  int watchdog_ms = 1000;
  /// When non-empty, the watchdog rewrites this file each tick with the
  /// full registry in Prometheus text exposition — point a node_exporter
  /// textfile collector (or curl) at it.
  std::string prom_file;
  /// Where a SIGUSR1-triggered flight-recorder dump lands.
  std::string flight_dump_path = "na_flight.json";
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens.  False + message on failure (port in use, bad
  /// bind address, degenerate option values — the message names the
  /// offending flag).
  bool start(std::string* error);

  /// The bound port (after start); useful with port 0.
  int port() const { return port_; }

  /// Serves until request_stop(), then drains and saves.  Call once.
  void run();

  /// Async-signal-safe stop request.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  SessionHost& host() { return host_; }

  /// Connection/request counters (for the stats op and tests).  Every
  /// response the daemon produces passes through exactly one counting
  /// point (note_request), so requests/errors can never drift from the
  /// traffic actually answered.
  struct Counters {
    long long connections = 0;
    long long requests = 0;
    long long errors = 0;
  };
  Counters counters() const;

  /// Scalar service registry — what the `stats` op reports: connection/
  /// request counters, host + regen totals, peak RSS and uptime.  The
  /// daemon's exit-stats block reuses it so the wire and the shutdown
  /// report can never drift.
  void absorb_stats(obs::MetricsRegistry& reg) const;

  /// Full telemetry registry — what the `metrics` op (and the watchdog's
  /// Prometheus file) report: absorb_stats() plus the watchdog gauges,
  /// the flight-recorder/slow-log counters, and every latency histogram
  /// (serve.lat.open/edit/get/save from dispatch, serve.lat.flush and
  /// serve.pool.queue_wait from the host, serve.lat.loop_tick from the
  /// watchdog probes).
  void absorb_metrics(obs::MetricsRegistry& reg) const;

  /// Async-signal-safe flight-dump request (the SIGUSR1 handler calls
  /// this); the accept loop's ~100ms tick performs the dump.
  void request_flight_dump() {
    flight_dump_.store(true, std::memory_order_relaxed);
  }

  /// Dumps the flight-recorder rings to `path` under the exclusive side
  /// of the flush gate (recorder quiescent, dump byte-stable).  False
  /// when the flight recorder is off or the file cannot be written.
  bool dump_flight(const std::string& path);

 private:
  /// One request line, on a loop thread: parse, answer inline ops,
  /// dispatch session ops onto the host's async queues.
  void on_line(uint64_t conn, uint64_t ticket, std::string_view line);
  void dispatch(uint64_t conn, uint64_t ticket, Request req);
  /// The single counting point + response delivery.
  void respond(uint64_t conn, uint64_t ticket, std::string response,
               bool close_conn = false);
  void note_request(const std::string& response);
  /// Formats the success response for a host result (op-specific fields).
  std::string render_result(Op op, long long id, const HostResult& r);
  std::string build_stats_response(long long id);
  std::string build_metrics_response(long long id);
  /// The per-op latency histogram for `op`; nullptr for the inline ops
  /// (ping/stats/metrics/shutdown) which are not worth a series.
  obs::Histogram* latency_hist(Op op);
  void nudge_flusher();
  void flusher_main();
  void watchdog_main();
  void watchdog_tick();

  ServerOptions opt_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> flight_dump_{false};
  std::chrono::steady_clock::time_point started_at_{};

  std::vector<std::unique_ptr<EventLoop>> loops_;

  mutable std::mutex counters_mu_;
  Counters counters_;

  /// Dispatch-to-completion time per session op, µs (the server-side
  /// latency a client experiences minus its socket).  Wait-free recording
  /// from pool completions; snapshots taken by the metrics op.
  obs::Histogram lat_open_;
  obs::Histogram lat_edit_;
  obs::Histogram lat_get_;
  obs::Histogram lat_save_;
  /// post-to-run delay of watchdog probes through the event loops, µs —
  /// how long a completion currently waits for its loop thread.
  obs::Histogram lat_loop_;

  /// Last watchdog sample of every live gauge (serve.gauge.*), merged
  /// into the metrics response.
  mutable std::mutex gauges_mu_;
  obs::MetricsRegistry gauges_;

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool flush_nudged_ = false;
  bool flusher_stop_ = false;
  std::thread flusher_;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  /// Declared last: the host's pool (whose jobs post completions into the
  /// loops above) must be torn down before the loops are.
  SessionHost host_;
};

/// Routes SIGINT and SIGTERM to server.request_stop(), and SIGUSR1 to
/// server.request_flight_dump() (kill -USR1 the daemon to get a flight-
/// recorder dump without stopping it).  Each handler only touches an
/// atomic flag.  One server at a time.
void install_signal_handlers(Server& server);

}  // namespace na::serve
