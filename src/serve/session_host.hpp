// SessionHost — the daemon's session table: many named RegenSessions, one
// shared immutable ModuleLibrary, one work-stealing pool.
//
// Concurrency model (DESIGN §10 argues determinism from it):
//   * every session mutation (open's first full generation, every edit,
//     restore) runs as a job on the shared ThreadPool, the caller blocking
//     on a future — the pool is the single place compute happens, so pool
//     pressure counters cover the whole service;
//   * a per-session mutex serialises jobs touching one session — edits to
//     one session are totally ordered (the response's `seq` is the order),
//     edits to different sessions run concurrently;
//   * the session table itself is a second, short-hold mutex (lookup and
//     insert only — never held while a session works);
//   * reads (get/save) lock only the session mutex on the calling thread:
//     they copy bytes out, no placement/routing work to schedule.
//
// Because RegenSession::update is deterministic for a given (network,
// diagram, options) state and edits against one session are serialised,
// the diagram a session holds after edit #k is a pure function of its
// open design and the edit sequence — independent of what other sessions
// do concurrently.  That is the cross-session isolation serve_test pins.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "incremental/session.hpp"
#include "netlist/module_library.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace na::serve {

struct HostOptions {
  /// Workers of the shared edit-dispatch pool.
  int threads = 4;
  /// Per-session generator/regen settings.  router.threads stays 1 by
  /// default: the service parallelises across sessions, not inside one
  /// edit (nested pools oversubscribe).
  RegenOptions regen;
  /// Directory for save/restore; empty disables persistence (save returns
  /// the blob inline, open+restore fails).
  std::string state_dir;
};

/// Outcome of one host call.  `ok` false carries a protocol error code.
struct HostResult {
  bool ok = true;
  const char* error_code = nullptr;
  std::string message;
  /// edit: 1-based per-session edit sequence number after applying.
  long long seq = 0;
  /// edit: whether the update fell back to a full regeneration.
  bool full_regen = false;
  int nets_rerouted = 0;
  int nets_kept = 0;
  /// get/save-without-state-dir: the requested bytes.
  std::string payload;

  static HostResult error(const char* code, std::string message) {
    HostResult r;
    r.ok = false;
    r.error_code = code;
    r.message = std::move(message);
    return r;
  }
};

class SessionHost {
 public:
  explicit SessionHost(HostOptions opt);
  ~SessionHost();
  SessionHost(const SessionHost&) = delete;
  SessionHost& operator=(const SessionHost&) = delete;

  /// Creates session `name` from a design string ("life", "controller",
  /// "chain", "datapath[:bits]"), or reloads it from the state dir when
  /// `restore` is set.  The initial full generation runs on the pool.
  HostResult open(const std::string& name, const std::string& design,
                  bool restore);

  /// Applies an edit script to session `name` on the pool (serialised with
  /// every other job of that session; concurrent with other sessions).
  HostResult edit(const std::string& name, const std::vector<EditCmd>& cmds);

  /// Renders the session's current diagram ("escher", "svg", "ascii").
  HostResult get(const std::string& name, const std::string& format);

  /// Persists the session: into `<state_dir>/<name>.session` when a state
  /// dir is configured, else inline in the result payload.
  HostResult save(const std::string& name);

  /// Drops the session (saving it first when a state dir is configured
  /// and it has unsaved edits).
  HostResult close(const std::string& name);

  /// Saves every session with unsaved edits; returns how many were
  /// written.  The graceful-shutdown path.  No-op without a state dir.
  int save_dirty_sessions();

  /// Service-level counters plus per-session regen totals (aggregated).
  void absorb_stats(obs::MetricsRegistry& reg) const;

  int open_sessions() const;
  ThreadPool& pool() { return pool_; }
  const std::string& state_dir() const { return opt_.state_dir; }
  const ModuleLibrary& library() const { return lib_; }

 private:
  struct Session {
    std::mutex mu;  ///< per-session serialization
    RegenSession regen;
    Network current;     ///< the network state edits build on
    long long seq = 0;   ///< applied edits
    bool dirty = false;  ///< has edits not yet saved
    std::string design;

    explicit Session(RegenOptions opt) : regen(std::move(opt)) {}
  };

  std::shared_ptr<Session> find(const std::string& name) const;
  std::string state_path(const std::string& name) const;
  /// Runs `fn` on the pool and blocks for its result.
  HostResult run_on_pool(std::function<HostResult()> fn);
  HostResult save_locked(Session& s, const std::string& name);

  HostOptions opt_;
  const ModuleLibrary lib_;  ///< shared immutable template cache
  ThreadPool pool_;
  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
};

/// Builds the network for a design string; throws ProtocolError
/// (err::kBadDesign) on anything unknown.  Exposed for tests/benches that
/// want the reference network without a host.
Network design_network(const std::string& design);

}  // namespace na::serve
