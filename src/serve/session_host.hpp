// SessionHost — the daemon's session table: many named RegenSessions, one
// shared immutable ModuleLibrary, one work-stealing pool.
//
// Concurrency model (DESIGN §10 argues determinism from it):
//   * every session operation is *asynchronous*: the caller enqueues it on
//     the session's op queue with a completion callback; a single pool job
//     per session drains that queue, so the I/O threads of the event-loop
//     connection plane never block on placement/routing work;
//   * the queue serialises operations touching one session — edits to one
//     session are totally ordered (the response's `seq` is the order),
//     edits to different sessions run concurrently on the pool;
//   * consecutive queued *edit* requests for one session coalesce into a
//     single pool job (one queue pass, one session-mutex hold, one trace
//     span).  Within the batch each request still runs its own
//     NetworkEditor copy-then-commit and its own RegenSession::update in
//     arrival order, so the diagram after edit #k is byte-identical to
//     unbatched execution — batching changes job granularity, never the
//     update sequence;
//   * the session table itself is a short-hold mutex (lookup and insert
//     only — never held while a session works).
//
// Because RegenSession::update is deterministic for a given (network,
// diagram, options) state and edits against one session are serialised,
// the diagram a session holds after edit #k is a pure function of its
// open design and the edit sequence — independent of what other sessions
// do concurrently, and independent of how requests happened to batch.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "incremental/session.hpp"
#include "netlist/module_library.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace na::serve {

struct HostOptions {
  /// Workers of the shared edit-dispatch pool.
  int threads = 4;
  /// Per-session generator/regen settings.  router.threads stays 1 by
  /// default: the service parallelises across sessions, not inside one
  /// edit (nested pools oversubscribe).
  RegenOptions regen;
  /// Directory for save/restore; empty disables persistence (save returns
  /// the blob inline, open+restore fails).
  std::string state_dir;
};

/// Outcome of one host call.  `ok` false carries a protocol error code.
struct HostResult {
  bool ok = true;
  const char* error_code = nullptr;
  std::string message;
  /// edit: 1-based per-session edit sequence number after applying.
  long long seq = 0;
  /// edit: whether the update fell back to a full regeneration.
  bool full_regen = false;
  int nets_rerouted = 0;
  int nets_kept = 0;
  /// get/save-without-state-dir: the requested bytes.
  std::string payload;

  static HostResult error(const char* code, std::string message) {
    HostResult r;
    r.ok = false;
    r.error_code = code;
    r.message = std::move(message);
    return r;
  }
};

/// Completion of an async host operation.  Invoked exactly once, either
/// synchronously (validation failures) or from a pool worker.
using HostCallback = std::function<void(HostResult)>;

class SessionHost {
 public:
  explicit SessionHost(HostOptions opt);
  ~SessionHost();
  SessionHost(const SessionHost&) = delete;
  SessionHost& operator=(const SessionHost&) = delete;

  /// Creates session `name` from a design string ("life", "controller",
  /// "chain", "datapath[:bits]"), or reloads it from the state dir when
  /// `restore` is set.  The initial full generation runs on the pool.
  void open_async(const std::string& name, const std::string& design,
                  bool restore, HostCallback done);

  /// Applies an edit script to session `name` (serialised with every
  /// other op of that session; concurrent with other sessions; coalesced
  /// with other queued edits of the same session).
  void edit_async(const std::string& name, std::vector<EditCmd> cmds,
                  HostCallback done);

  /// Renders the session's current diagram ("escher", "svg", "ascii").
  void get_async(const std::string& name, const std::string& format,
                 HostCallback done);

  /// Persists the session: into `<state_dir>/<name>.session` when a state
  /// dir is configured, else inline in the result payload.
  void save_async(const std::string& name, HostCallback done);

  /// Drops the session (saving it first when a state dir is configured
  /// and it has unsaved edits).
  void close_async(const std::string& name, HostCallback done);

  /// Blocking conveniences over the async API, for tests, demos and
  /// benches driving the host without a server.  Never call from a pool
  /// worker.
  HostResult open(const std::string& name, const std::string& design,
                  bool restore);
  HostResult edit(const std::string& name, const std::vector<EditCmd>& cmds);
  HostResult get(const std::string& name, const std::string& format);
  HostResult save(const std::string& name);
  HostResult close(const std::string& name);

  /// Saves every session with unsaved edits; returns how many were
  /// written.  The graceful-shutdown path.  No-op without a state dir.
  int save_dirty_sessions();

  /// Service-level counters plus per-session regen totals (aggregated).
  void absorb_stats(obs::MetricsRegistry& reg) const;

  /// Edit-coalescing counters: pool jobs that carried edits, how many
  /// edit requests rode in them, the largest batch, and a small size
  /// histogram (1, 2-3, 4-7, 8-15, 16+).  Reported under serve.batch.*.
  struct BatchStats {
    long long jobs = 0;
    long long edits = 0;
    long long max_size = 0;
    long long hist[5] = {0, 0, 0, 0, 0};
  };
  BatchStats batch_stats() const;

  int open_sessions() const;
  ThreadPool& pool() { return pool_; }
  const std::string& state_dir() const { return opt_.state_dir; }
  const ModuleLibrary& library() const { return lib_; }

  /// The trace-flush quiescence gate: every op execution (and the
  /// server's inline request handling) holds it shared; the flusher takes
  /// it exclusive, at which point no request is emitting trace events.
  std::shared_mutex& flush_gate() { return flush_gate_; }

 private:
  enum class OpKind { kOpen, kEdit, kGet, kSave, kClose };
  struct PendingOp {
    OpKind kind;
    bool restore = false;
    std::string design;         // open
    std::vector<EditCmd> edits; // edit
    std::string format;         // get
    HostCallback done;
  };
  struct Session {
    std::mutex mu;  ///< state access: the drain job and stats readers
    RegenSession regen;
    Network current;     ///< the network state edits build on
    long long seq = 0;   ///< applied edits
    bool dirty = false;  ///< has edits not yet saved
    std::string design;

    std::mutex qmu;  ///< op queue + running flag (short hold)
    std::deque<PendingOp> queue;
    bool running = false;  ///< a drain job is on the pool

    explicit Session(RegenOptions opt) : regen(std::move(opt)) {}
  };

  std::shared_ptr<Session> find(const std::string& name) const;
  std::string state_path(const std::string& name) const;
  void enqueue(const std::string& name, std::shared_ptr<Session> session,
               PendingOp op);
  /// The per-session pool job: drains the op queue, coalescing edits.
  void drain(const std::string& name, const std::shared_ptr<Session>& session);
  HostResult exec_open(Session& s, const std::string& name,
                       const PendingOp& op);
  HostResult exec_one_edit(Session& s, const std::vector<EditCmd>& cmds);
  HostResult exec_get(Session& s, const std::string& name,
                      const std::string& format);
  HostResult exec_close(Session& s, const std::string& name);
  HostResult save_locked(Session& s, const std::string& name);
  void note_batch(size_t edits_in_job);

  HostOptions opt_;
  const ModuleLibrary lib_;  ///< shared immutable template cache
  ThreadPool pool_;
  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  mutable std::mutex batch_mu_;
  BatchStats batch_;
  std::shared_mutex flush_gate_;
};

/// Builds the network for a design string; throws ProtocolError
/// (err::kBadDesign) on anything unknown.  Exposed for tests/benches that
/// want the reference network without a host.
Network design_network(const std::string& design);

}  // namespace na::serve
