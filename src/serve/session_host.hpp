// SessionHost — the daemon's session table: many named RegenSessions, one
// shared immutable ModuleLibrary, one work-stealing pool.
//
// Concurrency model (DESIGN §10 argues determinism from it):
//   * every session operation is *asynchronous*: the caller enqueues it on
//     the session's op queue with a completion callback; a single pool job
//     per session drains that queue, so the I/O threads of the event-loop
//     connection plane never block on placement/routing work;
//   * the queue serialises operations touching one session — edits to one
//     session are totally ordered (the response's `seq` is the order),
//     edits to different sessions run concurrently on the pool;
//   * regeneration is *deferred to observation points*: an edit request
//     only applies its script to the session's pending network (a
//     transactional ScriptComposer step — netlist work, no geometry) and
//     replies immediately; the expensive diff + RegenSession::update runs
//     once per observation point — get, save, close-with-save, shutdown
//     save — covering every edit composed since the previous flush
//     (`serve.batch.regens` counts flushes, `serve.batch.composed` the
//     edits they covered);
//   * consecutive queued *edit* requests for one session still coalesce
//     into a single pool job (one queue pass, one session-mutex hold, one
//     trace span) — job granularity, independent of flush granularity;
//   * the session table itself is a short-hold mutex (lookup and insert
//     only — never held while a session works).
//
// Why deferral preserves byte-identity where eager composition cannot:
// the incremental engine is path-dependent (gravity placement scores
// against the previous routed diagram, partition grouping depends on the
// dirty set), so collapsing k updates into one at an arbitrary internal
// boundary — e.g. whatever run of edits a drain job happened to grab —
// would make output depend on queue timing.  Deferral instead makes the
// composition boundaries *protocol-determined*: flushes happen exactly at
// the ops whose responses expose geometry, so the flush sequence — and
// with it every diagram a client can observe, every `seq`, and every
// response byte — is a pure function of the session's request sequence,
// independent of pipelining, drain-job batching, and other sessions.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "incremental/edit.hpp"
#include "incremental/session.hpp"
#include "netlist/module_library.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace na::serve {

struct HostOptions {
  /// Workers of the shared edit-dispatch pool.
  int threads = 4;
  /// Per-session generator/regen settings.  router.threads stays 1 by
  /// default: the service parallelises across sessions, not inside one
  /// edit (nested pools oversubscribe).
  RegenOptions regen;
  /// Directory for save/restore; empty disables persistence (save returns
  /// the blob inline, open+restore fails).
  std::string state_dir;
  /// Slow-request tail-sampling threshold: a drain batch whose execution
  /// exceeds this many milliseconds has its span subtree (the executing
  /// thread's retained trace events over the batch window) appended to
  /// the slow-request log via obs::trace_slow_capture().  0 disables the
  /// probe.  Only useful with the flight recorder on and a slow log open
  /// — the daemon CLI enforces that pairing.
  double slow_ms = 0.0;
};

/// Outcome of one host call.  `ok` false carries a protocol error code.
struct HostResult {
  bool ok = true;
  const char* error_code = nullptr;
  std::string message;
  /// edit: 1-based per-session edit sequence number after applying.
  long long seq = 0;
  /// edit: the script was composed into the pending network; regeneration
  /// is deferred to the next observation point.  Constant on every
  /// successful edit, so responses stay byte-identical however requests
  /// batch.
  bool batched = false;
  /// get/save: edits flushed (composed into one regen) by this op.
  int flushed_edits = 0;
  /// open: whether the update ran a full generation.
  bool full_regen = false;
  int nets_rerouted = 0;
  int nets_kept = 0;
  /// get/save-without-state-dir: the requested bytes.
  std::string payload;

  static HostResult error(const char* code, std::string message) {
    HostResult r;
    r.ok = false;
    r.error_code = code;
    r.message = std::move(message);
    return r;
  }
};

/// Completion of an async host operation.  Invoked exactly once, either
/// synchronously (validation failures) or from a pool worker.
using HostCallback = std::function<void(HostResult)>;

class SessionHost {
 public:
  explicit SessionHost(HostOptions opt);
  ~SessionHost();
  SessionHost(const SessionHost&) = delete;
  SessionHost& operator=(const SessionHost&) = delete;

  /// Creates session `name` from a design string ("life", "controller",
  /// "chain", "datapath[:bits]"), or reloads it from the state dir when
  /// `restore` is set.  The initial full generation runs on the pool.
  void open_async(const std::string& name, const std::string& design,
                  bool restore, HostCallback done);

  /// Applies an edit script to session `name` (serialised with every
  /// other op of that session; concurrent with other sessions; coalesced
  /// with other queued edits of the same session).
  void edit_async(const std::string& name, std::vector<EditCmd> cmds,
                  HostCallback done);

  /// Renders the session's current diagram ("escher", "svg", "ascii").
  void get_async(const std::string& name, const std::string& format,
                 HostCallback done);

  /// Persists the session: into `<state_dir>/<name>.session` when a state
  /// dir is configured, else inline in the result payload.
  void save_async(const std::string& name, HostCallback done);

  /// Drops the session (saving it first when a state dir is configured
  /// and it has unsaved edits).
  void close_async(const std::string& name, HostCallback done);

  /// Blocking conveniences over the async API, for tests, demos and
  /// benches driving the host without a server.  Never call from a pool
  /// worker.
  HostResult open(const std::string& name, const std::string& design,
                  bool restore);
  HostResult edit(const std::string& name, const std::vector<EditCmd>& cmds);
  HostResult get(const std::string& name, const std::string& format);
  HostResult save(const std::string& name);
  HostResult close(const std::string& name);

  /// Saves every session with unsaved edits; returns how many were
  /// written.  The graceful-shutdown path.  No-op without a state dir.
  int save_dirty_sessions();

  /// Service-level counters plus per-session regen totals (aggregated).
  void absorb_stats(obs::MetricsRegistry& reg) const;

  /// Host-side latency histograms (microseconds): serve.lat.flush (the
  /// deferred regen a get/save/close triggered) and serve.pool.queue_wait
  /// (submit-to-dequeue wait of the shared pool).  Separate from
  /// absorb_stats so the scalar `stats` response keeps its shape; the
  /// `metrics` op absorbs both.
  void absorb_latency(obs::MetricsRegistry& reg) const;

  /// Edits composed but not yet flushed, across every open session — the
  /// watchdog's pending-work gauge.  Takes each session mutex briefly.
  long long pending_edits() const;

  /// Edit-coalescing counters: pool jobs that carried edits, how many
  /// edit requests rode in them, the largest batch, and a small size
  /// histogram (1, 2-3, 4-7, 8-15, 16+) — plus the multi-edit regen
  /// counters: `regens` flushes ran (one RegenSession::update each) and
  /// `composed` edits were covered by them.  `regens < edits` whenever a
  /// flush covered more than one edit.  Reported under serve.batch.*.
  struct BatchStats {
    long long jobs = 0;
    long long edits = 0;
    long long max_size = 0;
    long long hist[5] = {0, 0, 0, 0, 0};
    long long regens = 0;    ///< composed flushes (one update each)
    long long composed = 0;  ///< edit scripts those flushes covered
  };
  BatchStats batch_stats() const;

  int open_sessions() const;
  ThreadPool& pool() { return pool_; }
  const std::string& state_dir() const { return opt_.state_dir; }
  const ModuleLibrary& library() const { return lib_; }

  /// The trace-flush quiescence gate: every op execution (and the
  /// server's inline request handling) holds it shared; the flusher takes
  /// it exclusive, at which point no request is emitting trace events.
  std::shared_mutex& flush_gate() { return flush_gate_; }

 private:
  enum class OpKind { kOpen, kEdit, kGet, kSave, kClose };
  struct PendingOp {
    OpKind kind;
    bool restore = false;
    std::string design;         // open
    std::vector<EditCmd> edits; // edit
    std::string format;         // get
    HostCallback done;
  };
  struct Session {
    std::mutex mu;  ///< state access: the drain job and stats readers
    RegenSession regen;
    /// Edits since the last flush, composed netlist-only; regenerated
    /// from at the next observation point.
    ScriptComposer pending;
    long long seq = 0;   ///< applied edits
    bool dirty = false;  ///< has edits not yet saved
    std::string design;

    std::mutex qmu;  ///< op queue + running flag (short hold)
    std::deque<PendingOp> queue;
    bool running = false;  ///< a drain job is on the pool

    explicit Session(RegenOptions opt)
        : regen(std::move(opt)), pending(Network{}) {}
  };

  std::shared_ptr<Session> find(const std::string& name) const;
  std::string state_path(const std::string& name) const;
  void enqueue(const std::string& name, std::shared_ptr<Session> session,
               PendingOp op);
  /// The per-session pool job: drains the op queue, coalescing edits.
  void drain(const std::string& name, const std::shared_ptr<Session>& session);
  HostResult exec_open(Session& s, const std::string& name,
                       const PendingOp& op);
  HostResult exec_one_edit(Session& s, const std::vector<EditCmd>& cmds);
  HostResult exec_get(Session& s, const std::string& name,
                      const std::string& format);
  HostResult exec_close(Session& s, const std::string& name);
  HostResult save_locked(Session& s, const std::string& name);
  /// Regenerates from the pending composition (one diff, one update for
  /// however many edits are queued); returns how many it flushed.  Called
  /// at every observation point, session->mu held.
  int flush_pending(Session& s);
  void note_batch(size_t edits_in_job);
  void note_flush(size_t edits_flushed);

  HostOptions opt_;
  const ModuleLibrary lib_;  ///< shared immutable template cache
  /// Declared before the pool: the pool's queue-wait probe records into
  /// it until the pool is torn down.
  obs::Histogram pool_wait_hist_;
  obs::Histogram flush_hist_;  ///< update_composed time per flush, µs
  ThreadPool pool_;
  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  mutable std::mutex batch_mu_;
  BatchStats batch_;
  std::shared_mutex flush_gate_;
};

/// Builds the network for a design string; throws ProtocolError
/// (err::kBadDesign) on anything unknown.  Exposed for tests/benches that
/// want the reference network without a host.
Network design_network(const std::string& design);

}  // namespace na::serve
