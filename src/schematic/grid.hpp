// The routing plane: a bounded grid of tracks with obstacle and net
// occupancy bookkeeping.
//
// This realises the obstacle model of paper section 5.6.2: module boundings
// and placed system terminals are obstacles; routed nets occupy tracks and
// may be *crossed* perpendicularly by other nets but never overlapped; a
// bend of a net occupies both orientations of its grid point, so no other
// net may pass there (the paper's "bends in nets" obstacles).  The border
// of the plane acts as a module bounding (out-of-bounds is blocked).
//
// Per grid point the grid tracks:
//   * blocked      — part of a module symbol / system terminal / plane edge,
//   * owner        — terminal cell: only the owning net may enter,
//   * h / v        — net occupying the point horizontally / vertically,
//   * claim        — claimpoint reservation (section 5.7).
#pragma once

#include <span>
#include <vector>

#include "geom/rect.hpp"
#include "netlist/network.hpp"
#include "schematic/diagram.hpp"

namespace na {

class RoutingGrid {
 public:
  explicit RoutingGrid(geom::Rect area);

  const geom::Rect& area() const { return area_; }
  bool in_bounds(geom::Point p) const { return area_.contains(p); }

  // ----- obstacle construction ----------------------------------------------
  void block(geom::Point p);
  void block_rect(geom::Rect r);
  /// Marks a terminal cell: blocked for everyone except net `n`.
  void set_terminal(geom::Point p, NetId n);
  /// Claims `p` for net `n` (a temporary obstacle for all other nets).
  void set_claim(geom::Point p, NetId n);
  void clear_claim(geom::Point p);

  // ----- state queries -------------------------------------------------------
  bool blocked(geom::Point p) const;
  NetId terminal_owner(geom::Point p) const;
  NetId claim_owner(geom::Point p) const;
  NetId h_net(geom::Point p) const;
  NetId v_net(geom::Point p) const;

  /// May net `n` be present at `p` at all (bounds, modules, claims,
  /// foreign terminal cells)?
  bool enterable(geom::Point p, NetId n) const;
  /// May net `n` run through `p` in the given orientation?  Own occupancy
  /// also blocks (re-using a track would overlap the net with itself; the
  /// router treats own-net cells as join targets instead).
  bool passable(geom::Point p, NetId n, bool horizontal) const;
  /// May net `n` place a corner (or branch) at `p`?  Requires both
  /// orientations free: a bend obstructs the whole point.
  bool can_turn(geom::Point p, NetId n) const;
  /// Does a move through `p` in the given orientation cross a foreign net?
  bool crosses_at(geom::Point p, NetId n, bool horizontal) const;
  /// Is `p` occupied by net `n` itself (either orientation)?
  bool occupied_by(geom::Point p, NetId n) const;
  /// May net `n` place a *node* (endpoint, corner, branch) at `p`?  Both
  /// orientations must be free or already net `n`'s own: a node of one net
  /// may not be touched by any other net.
  bool node_free(geom::Point p, NetId n) const;

  // ----- net commitment ------------------------------------------------------
  /// One orientation slot written by occupy_polyline (undo/replay record
  /// for the speculative parallel router; the previous value is always
  /// kNone, so undo is clear_track and replay is set_track).
  struct TrackWrite {
    geom::Point p;
    bool horizontal;
  };

  /// Registers a routed polyline: every unit step of the chain occupies its
  /// orientation at both endpoints of the step.  Re-occupation by the same
  /// net is idempotent; occupation over a foreign net throws (internal
  /// invariant violation — the router must never produce it).  When given,
  /// `journal` receives one entry per slot actually changed.
  void occupy_polyline(NetId n, std::span<const geom::Point> pts,
                       std::vector<TrackWrite>* journal = nullptr);

  /// Conflict query: would occupy_polyline(n, pts) succeed on the current
  /// occupancy?  (The speculative committer's cheap insurance before
  /// committing a path that was computed against an older grid state.)
  bool polyline_fits(NetId n, std::span<const geom::Point> pts) const;

  /// Raw occupancy writes, used to replay or undo journalled commits on a
  /// cloned grid (RoutingGrid is copyable; a copy is the routing snapshot
  /// the speculative workers search against).
  void set_track(geom::Point p, bool horizontal, NetId n);
  void clear_track(geom::Point p, bool horizontal) { set_track(p, horizontal, kNone); }

  /// Statistics helper: number of grid points where two different nets
  /// cross (one horizontal, one vertical).
  int crossing_count() const;

  /// A standalone sub-grid covering the intersection of `sub` with this
  /// grid's area; every covered cell is copied verbatim.  Points outside
  /// the sub-area are out of bounds — the clip boundary acts blocked, so
  /// a search on the clipped grid can never produce geometry leaving it
  /// (the sharded router's per-shard search space).  Throws when the
  /// intersection is empty.
  RoutingGrid clipped(geom::Rect sub) const;

 private:
  struct Cell {
    NetId h = kNone;
    NetId v = kNone;
    NetId owner = kNone;
    NetId claim = kNone;
    bool blocked = false;
  };

  Cell& at(geom::Point p);
  const Cell& at(geom::Point p) const;

  geom::Rect area_;
  int width_ = 0;  // number of columns
  std::vector<Cell> cells_;
};

/// Builds the routing plane for a fully placed diagram: the placement
/// bounding box expanded by `margin` empty tracks, with every module
/// rectangle blocked, every connected terminal marked as its net's entry
/// point, every system terminal blocked for foreign nets, and every
/// prerouted polyline already occupied.
RoutingGrid build_grid(const Diagram& dia, int margin = 4);

}  // namespace na
