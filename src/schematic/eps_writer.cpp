#include "schematic/eps_writer.hpp"

#include <ostream>
#include <sstream>

namespace na {

std::string to_eps(const Diagram& dia, const EpsOptions& opt) {
  std::ostringstream os;
  write_eps(os, dia, opt);
  return os.str();
}

void write_eps(std::ostream& os, const Diagram& dia, const EpsOptions& opt) {
  const Network& net = dia.network();
  geom::Rect bounds = dia.placement_bounds();
  for (const NetRoute& r : dia.routes()) {
    for (const auto& pl : r.polylines) {
      for (geom::Point p : pl) bounds = bounds.hull(p);
    }
  }
  if (bounds.empty()) bounds = {{0, 0}, {1, 1}};
  bounds = bounds.expanded(2);
  const double s = opt.track_pt;
  auto X = [&](double x) { return (x - bounds.lo.x) * s; };
  auto Y = [&](double y) { return (y - bounds.lo.y) * s; };

  os << "%!PS-Adobe-3.0 EPSF-3.0\n";
  os << "%%BoundingBox: 0 0 " << static_cast<int>(X(bounds.hi.x) + s) << ' '
     << static_cast<int>(Y(bounds.hi.y) + s) << "\n";
  os << "%%Title: netartwork schematic\n%%EndComments\n";
  os << "/m {moveto} def /l {lineto} def /s {stroke} def\n";
  os << "0.75 setlinewidth 1 setlinecap\n";

  // Nets.
  for (const NetRoute& r : dia.routes()) {
    for (const auto& pl : r.polylines) {
      if (pl.size() < 2) continue;
      os << "newpath " << X(pl[0].x) << ' ' << Y(pl[0].y) << " m";
      for (size_t i = 1; i < pl.size(); ++i) {
        os << ' ' << X(pl[i].x) << ' ' << Y(pl[i].y) << " l";
      }
      os << " s\n";
    }
  }
  // Module boxes (heavier line, like the plotted symbols).
  os << "1.5 setlinewidth\n";
  for (int m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) continue;
    const geom::Rect r = dia.module_rect(m);
    os << "newpath " << X(r.lo.x) << ' ' << Y(r.lo.y) << " m " << X(r.hi.x) << ' '
       << Y(r.lo.y) << " l " << X(r.hi.x) << ' ' << Y(r.hi.y) << " l " << X(r.lo.x)
       << ' ' << Y(r.hi.y) << " l closepath s\n";
    if (opt.show_names) {
      os << "/Courier findfont " << s << " scalefont setfont\n";
      os << X(r.center().x) << ' ' << Y(r.center().y) << " m ("
         << net.module(m).name << ") dup stringwidth pop 2 div neg 0 rmoveto show\n";
    }
  }
  // Terminal marks.
  for (int t = 0; t < net.term_count(); ++t) {
    const Terminal& term = net.term(t);
    const bool placeable = term.is_system() ? dia.system_term_placed(t)
                                            : (term.net != kNone &&
                                               dia.module_placed(term.module));
    if (!placeable) continue;
    const geom::Point p = dia.term_pos(t);
    os << "newpath " << X(p.x) << ' ' << Y(p.y) << ' ' << s / 4
       << " 0 360 arc fill\n";
  }
  os << "showpage\n%%EOF\n";
}

}  // namespace na
