// The schematic diagram: placed module symbols, placed system terminals,
// and routed net paths over a network.
//
// A Diagram references (but does not own or mutate) a Network.  The
// placement phase fills module positions/rotations and system-terminal
// positions; the routing phase appends net polylines.  This mirrors the
// paper's data flow (fig. 3.2): placement emits a diagram of modules and
// terminals only, routing completes it with nets, and either part can also
// start from a partially filled diagram (preplaced / prerouted support).
#pragma once

#include <span>
#include <vector>

#include "geom/orientation.hpp"
#include "geom/rect.hpp"
#include "netlist/network.hpp"

namespace na {

struct PlacedModule {
  bool placed = false;
  geom::Point pos;               ///< lower-left corner after rotation
  geom::Rot rot = geom::Rot::R0;
  bool fixed = false;            ///< preplaced by the user; placement keeps it
};

struct PlacedSystemTerm {
  bool placed = false;
  geom::Point pos;
};

/// One net's drawn geometry: a list of polylines (each an orthogonal chain
/// of corner points).  The first polyline is the initial point-to-point
/// connection, later ones attach further terminals to the grown net.
struct NetRoute {
  bool routed = false;     ///< complete: every terminal reached (driver-set)
  bool prerouted = false;  ///< supplied by the user; routing keeps it
  std::vector<std::vector<geom::Point>> polylines;

  int total_length() const;
  int bend_count() const;
};

class Diagram {
 public:
  explicit Diagram(const Network& net);

  const Network& network() const { return *net_; }

  // ----- placement ----------------------------------------------------------
  void place_module(ModuleId m, geom::Point pos, geom::Rot rot = geom::Rot::R0,
                    bool fixed = false);
  void place_system_term(TermId t, geom::Point pos, bool fixed = false);
  bool module_placed(ModuleId m) const { return modules_.at(m).placed; }
  bool system_term_placed(TermId t) const;
  bool all_placed() const;
  const PlacedModule& placed(ModuleId m) const { return modules_.at(m); }

  /// Rotated size of a placed module.
  geom::Point module_size(ModuleId m) const;
  /// Occupied rectangle (closed; the boundary is part of the symbol).
  geom::Rect module_rect(ModuleId m) const;
  /// Absolute position of any terminal: a subsystem terminal's rotated,
  /// translated position, or a system terminal's placed position.
  geom::Point term_pos(TermId t) const;
  /// Side of the module the terminal faces after rotation; for a system
  /// terminal, the expansion is unrestricted and this must not be called.
  geom::Side term_facing(TermId t) const;

  /// Hull of all placed modules and system terminals.
  geom::Rect placement_bounds() const;
  /// Shifts every placed element (and every route) by `d`.
  void translate(geom::Point d);
  /// Translates so placement_bounds().lo becomes `origin` (default (0,0)).
  void normalize(geom::Point origin = {});

  // ----- routing ------------------------------------------------------------
  NetRoute& route(NetId n) { return routes_.at(n); }
  const NetRoute& route(NetId n) const { return routes_.at(n); }
  const std::vector<NetRoute>& routes() const { return routes_; }
  void add_polyline(NetId n, std::vector<geom::Point> pts);
  void clear_routes();
  int routed_count() const;
  int unrouted_count() const;

 private:
  const Network* net_;
  std::vector<PlacedModule> modules_;
  std::vector<PlacedSystemTerm> system_terms_;  ///< indexed by TermId (sparse)
  std::vector<NetRoute> routes_;
};

}  // namespace na
