// Terminal (text) rendering of a schematic diagram, mainly for tests,
// examples and quick inspection: one character cell per grid track.
#pragma once

#include <string>

#include "schematic/diagram.hpp"

namespace na {

/// Renders the diagram as ASCII art.  Module outlines use '+', '-', '|';
/// nets use '-', '|', '+', with '#' marking crossings of two nets; module
/// interiors show the first letters of the instance name; terminals 'o'.
std::string to_ascii(const Diagram& dia);

}  // namespace na
