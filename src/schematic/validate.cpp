#include "schematic/validate.hpp"

#include "obs/trace.hpp"

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace na {
namespace {

std::uint64_t key_of(geom::Point p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
         static_cast<std::uint32_t>(p.y);
}

geom::Point point_of(std::uint64_t k) {
  return {static_cast<std::int32_t>(k >> 32),
          static_cast<std::int32_t>(k & 0xffffffffu)};
}

/// Shared checker body.  `region == nullptr` validates the whole diagram;
/// otherwise only geometry intersecting `*region` is examined (see the
/// scope rules on validate_region in the header).  The per-point work is
/// identical in both modes, so an in-region violation produces the same
/// message either way.
std::vector<std::string> validate_impl(const Diagram& dia,
                                       bool require_all_routed,
                                       const geom::Rect* region) {
  const Network& net = dia.network();
  std::vector<std::string> problems;
  auto report = [&](std::string msg) { problems.push_back(std::move(msg)); };
  auto in_scope = [&](geom::Point p) { return !region || region->contains(p); };

  // --- placement: everything placed, no symbol overlap ----------------------
  // Completeness is global (a property of the diagram, no geometry to
  // scope); the geometric checks run over the symbols touching the region.
  for (int m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) report("module '" + net.module(m).name + "' unplaced");
  }
  for (TermId t : net.system_terms()) {
    if (!dia.system_term_placed(t)) {
      report("system terminal '" + net.term(t).name + "' unplaced");
    }
  }
  std::vector<int> scoped_mods;  // placed modules whose rect touches the scope
  for (int m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) continue;
    if (region && !region->overlaps(dia.module_rect(m))) continue;
    scoped_mods.push_back(m);
  }
  std::vector<TermId> scoped_terms;  // placed system terminals in scope
  for (TermId t : net.system_terms()) {
    if (!dia.system_term_placed(t)) continue;
    if (!in_scope(dia.term_pos(t))) continue;
    scoped_terms.push_back(t);
  }
  for (size_t i = 0; i < scoped_mods.size(); ++i) {
    const int a = scoped_mods[i];
    for (size_t j = i + 1; j < scoped_mods.size(); ++j) {
      const int b = scoped_mods[j];
      if (dia.module_rect(a).overlaps(dia.module_rect(b))) {
        report("modules '" + net.module(a).name + "' and '" + net.module(b).name +
               "' overlap");
      }
    }
  }
  for (size_t i = 0; i < scoped_terms.size(); ++i) {
    const TermId ti = scoped_terms[i];
    const geom::Point pi = dia.term_pos(ti);
    for (const int m : scoped_mods) {
      if (dia.module_rect(m).contains(pi)) {
        report("system terminal '" + net.term(ti).name + "' overlaps module '" +
               net.module(m).name + "'");
      }
    }
    for (size_t j = i + 1; j < scoped_terms.size(); ++j) {
      const TermId tj = scoped_terms[j];
      if (dia.term_pos(tj) == pi) {
        report("system terminals '" + net.term(ti).name + "' and '" +
               net.term(tj).name + "' coincide");
      }
    }
  }
  if (!problems.empty()) return problems;  // routing checks need full placement

  // --- per-net terminal cells ------------------------------------------------
  std::unordered_map<std::uint64_t, NetId> term_cell;  // point -> owning net
  for (int t = 0; t < net.term_count(); ++t) {
    const Terminal& term = net.term(t);
    if (term.net == kNone) continue;
    if (!in_scope(dia.term_pos(t))) continue;
    term_cell[key_of(dia.term_pos(t))] = term.net;
  }

  // --- routing geometry -------------------------------------------------------
  std::unordered_map<std::uint64_t, NetId> h_occ;
  std::unordered_map<std::uint64_t, NetId> v_occ;
  // Points where a net has a corner, branch, or endpoint ("nodes"): no other
  // net may touch these at all.
  std::unordered_map<std::uint64_t, NetId> node_of;
  std::vector<bool> touches(net.net_count(), region == nullptr);

  for (NetId n = 0; n < net.net_count(); ++n) {
    const NetRoute& r = dia.route(n);
    if (require_all_routed && region == nullptr && !r.routed &&
        !net.net(n).terms.empty()) {
      report("net '" + net.net(n).name + "' unrouted");
    }
    for (const auto& pl : r.polylines) {
      if (pl.size() < 2) {
        // A single point is only meaningful when joining at a terminal that
        // already lies on the net; treat as node.
        if (!pl.empty() && in_scope(pl[0])) {
          node_of[key_of(pl[0])] = n;
          touches[n] = true;
        }
        continue;
      }
      for (size_t i = 1; i < pl.size(); ++i) {
        const geom::Point a = pl[i - 1];
        const geom::Point b = pl[i];
        if (a.x != b.x && a.y != b.y) {
          if (!region || region->overlaps(geom::Segment{a, b}.bounds())) {
            report("net '" + net.net(n).name + "' has a non-orthogonal segment " +
                   geom::to_string(a) + "-" + geom::to_string(b));
          }
          continue;
        }
        if (a == b) continue;
        // Clip the segment to the scope, preserving its walk direction so
        // overlap reports come out in the same order as a full validation.
        geom::Point from = a;
        geom::Point to = b;
        if (region) {
          const geom::Rect clipped = [&] {
            const geom::Rect sb = geom::Segment{a, b}.bounds();
            return geom::Rect{{std::max(sb.lo.x, region->lo.x),
                               std::max(sb.lo.y, region->lo.y)},
                              {std::min(sb.hi.x, region->hi.x),
                               std::min(sb.hi.y, region->hi.y)}};
          }();
          if (clipped.empty()) continue;
          if (b.x >= a.x && b.y >= a.y) {
            from = clipped.lo;
            to = clipped.hi;
          } else {
            from = clipped.hi;
            to = clipped.lo;
          }
        }
        touches[n] = true;
        const bool horizontal = a.y == b.y;
        const geom::Point step = {(to.x > from.x) - (to.x < from.x),
                                  (to.y > from.y) - (to.y < from.y)};
        for (geom::Point p = from;; p += step) {
          auto& occ = horizontal ? h_occ : v_occ;
          auto [it, inserted] = occ.emplace(key_of(p), n);
          if (!inserted && it->second != n) {
            report("nets '" + net.net(n).name + "' and '" + net.net(it->second).name +
                   "' overlap at " + geom::to_string(p));
          }
          if (p == to) break;
        }
      }
      if (in_scope(pl.front())) node_of[key_of(pl.front())] = n;
      if (in_scope(pl.back())) node_of[key_of(pl.back())] = n;
      for (size_t i = 1; i + 1 < pl.size(); ++i) {
        if (in_scope(pl[i])) node_of[key_of(pl[i])] = n;  // corner
      }
    }
    if (require_all_routed && region != nullptr && !r.routed && touches[n] &&
        !net.net(n).terms.empty()) {
      report("net '" + net.net(n).name + "' unrouted");
    }
  }

  // --- nets vs module symbols and foreign terminals ---------------------------
  auto check_point = [&](geom::Point p, NetId n) {
    const auto tc = term_cell.find(key_of(p));
    const bool own_terminal = tc != term_cell.end() && tc->second == n;
    if (tc != term_cell.end() && tc->second != n) {
      report("net '" + net.net(n).name + "' touches a foreign terminal at " +
             geom::to_string(p));
      return;
    }
    if (own_terminal) return;
    for (const int m : scoped_mods) {
      if (dia.module_rect(m).contains(p)) {
        report("net '" + net.net(n).name + "' enters module '" + net.module(m).name +
               "' at " + geom::to_string(p));
        return;
      }
    }
    for (TermId t : scoped_terms) {
      if (dia.term_pos(t) == p && net.term(t).net != n) {
        report("net '" + net.net(n).name + "' covers system terminal '" +
               net.term(t).name + "'");
      }
    }
  };
  for (const auto& [pt, n] : h_occ) check_point(point_of(pt), n);
  for (const auto& [pt, n] : v_occ) {
    if (auto it = h_occ.find(pt); it == h_occ.end() || it->second != n) {
      check_point(point_of(pt), n);
    }
  }

  // --- node contact rule: a corner/endpoint of net A may not be touched by
  // any other net (crossing requires both straight through).
  for (const auto& [pt, n] : node_of) {
    for (const auto* occ : {&h_occ, &v_occ}) {
      auto it = occ->find(pt);
      if (it != occ->end() && it->second != n) {
        report("net '" + net.net(it->second).name + "' touches a node of net '" +
               net.net(n).name + "' at " + geom::to_string(point_of(pt)));
      }
    }
  }

  // --- connectivity: each routed net is one figure containing all terminals --
  // In region mode only the nets with in-scope geometry are re-checked, but
  // always over their *full* geometry: being one figure is not a local
  // property, and a patch can only disconnect a net at an edited point.
  for (NetId n = 0; n < net.net_count(); ++n) {
    const NetRoute& r = dia.route(n);
    if (!r.routed || !touches[n]) continue;
    std::unordered_set<std::uint64_t> points;
    for (const auto& pl : r.polylines) {
      for (size_t i = 1; i < pl.size(); ++i) {
        const geom::Point a = pl[i - 1];
        const geom::Point b = pl[i];
        if (a.x != b.x && a.y != b.y) continue;
        const geom::Point step = {(b.x > a.x) - (b.x < a.x), (b.y > a.y) - (b.y < a.y)};
        for (geom::Point p = a;; p += step) {
          points.insert(key_of(p));
          if (p == b) break;
        }
      }
      if (!pl.empty()) points.insert(key_of(pl.front()));
    }
    if (points.empty()) {
      report("net '" + net.net(n).name + "' marked routed but has no geometry");
      continue;
    }
    // BFS over unit adjacency within the point set.
    std::unordered_set<std::uint64_t> seen;
    std::queue<std::uint64_t> frontier;
    frontier.push(*points.begin());
    seen.insert(*points.begin());
    while (!frontier.empty()) {
      const geom::Point p = point_of(frontier.front());
      frontier.pop();
      for (geom::Dir d : geom::kAllDirs) {
        const std::uint64_t q = key_of(p + geom::delta(d));
        if (points.contains(q) && seen.insert(q).second) frontier.push(q);
      }
    }
    if (seen.size() != points.size()) {
      report("net '" + net.net(n).name + "' geometry is disconnected");
    }
    for (TermId t : net.net(n).terms) {
      if (!points.contains(key_of(dia.term_pos(t)))) {
        report("net '" + net.net(n).name + "' does not reach terminal '" +
               net.term(t).name + "'");
      }
    }
  }

  return problems;
}

}  // namespace

std::vector<std::string> validate_diagram(const Diagram& dia, bool require_all_routed) {
  NA_TRACE_SPAN(span, "validate.full");
  auto problems = validate_impl(dia, require_all_routed, nullptr);
  span.arg("issues", static_cast<long long>(problems.size()));
  return problems;
}

std::vector<std::string> validate_region(const Diagram& dia, geom::Rect region,
                                         bool require_all_routed) {
  NA_TRACE_SPAN(span, "validate.region");
  if (region.empty()) return {};
  auto problems = validate_impl(dia, require_all_routed, &region);
  span.arg("issues", static_cast<long long>(problems.size()));
  return problems;
}

}  // namespace na
