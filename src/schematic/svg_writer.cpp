#include "schematic/svg_writer.hpp"

#include <array>
#include <ostream>
#include <sstream>

namespace na {
namespace {

constexpr std::array<const char*, 8> kPalette = {
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#8c564b", "#e377c2", "#17becf", "#bcbd22"};

}  // namespace

std::string to_svg(const Diagram& dia, const SvgOptions& opt) {
  std::ostringstream os;
  write_svg(os, dia, opt);
  return os.str();
}

void write_svg(std::ostream& os, const Diagram& dia, const SvgOptions& opt) {
  const Network& net = dia.network();
  geom::Rect bounds = dia.placement_bounds();
  for (const NetRoute& r : dia.routes()) {
    for (const auto& pl : r.polylines) {
      for (geom::Point p : pl) bounds = bounds.hull(p);
    }
  }
  if (bounds.empty()) bounds = {{0, 0}, {1, 1}};
  bounds = bounds.expanded(opt.margin_tracks);

  const int s = opt.track_px;
  const int w = (bounds.width() + 1) * s;
  const int h = (bounds.height() + 1) * s;
  // SVG y grows downward; the diagram's y grows upward.
  auto X = [&](int x) { return (x - bounds.lo.x) * s + s / 2; };
  auto Y = [&](int y) { return h - ((y - bounds.lo.y) * s + s / 2); };

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\""
     << h << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Nets first so module outlines stay crisp on top.
  for (NetId n = 0; n < net.net_count(); ++n) {
    const NetRoute& r = dia.route(n);
    if (r.polylines.empty()) continue;
    const char* color = opt.color_nets ? kPalette[n % kPalette.size()] : "#333333";
    for (const auto& pl : r.polylines) {
      if (pl.size() < 2) continue;
      os << "<polyline fill=\"none\" stroke=\"" << color
         << "\" stroke-width=\"1.5\" points=\"";
      for (geom::Point p : pl) os << X(p.x) << ',' << Y(p.y) << ' ';
      os << "\"><title>" << net.net(n).name << "</title></polyline>\n";
    }
  }

  for (int m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) continue;
    const geom::Rect r = dia.module_rect(m);
    os << "<rect x=\"" << X(r.lo.x) << "\" y=\"" << Y(r.hi.y) << "\" width=\""
       << (r.width()) * s << "\" height=\"" << (r.height()) * s
       << "\" fill=\"#f5f0e0\" stroke=\"black\" stroke-width=\"1.5\"/>\n";
    if (opt.show_names) {
      os << "<text x=\"" << X(r.center().x) << "\" y=\"" << Y(r.center().y)
         << "\" font-size=\"" << s << "\" font-family=\"monospace\""
         << " text-anchor=\"middle\" dominant-baseline=\"middle\">"
         << net.module(m).name << "</text>\n";
    }
  }

  if (opt.show_terminals) {
    for (int t = 0; t < net.term_count(); ++t) {
      const Terminal& term = net.term(t);
      if (term.is_system()) {
        if (!dia.system_term_placed(t)) continue;
        const geom::Point p = dia.term_pos(t);
        os << "<rect x=\"" << X(p.x) - s / 3 << "\" y=\"" << Y(p.y) - s / 3
           << "\" width=\"" << 2 * s / 3 << "\" height=\"" << 2 * s / 3
           << "\" fill=\"white\" stroke=\"black\"><title>" << term.name
           << "</title></rect>\n";
      } else {
        if (term.net == kNone || !dia.module_placed(term.module)) continue;
        const geom::Point p = dia.term_pos(t);
        os << "<circle cx=\"" << X(p.x) << "\" cy=\"" << Y(p.y) << "\" r=\"" << s / 4
           << "\" fill=\"black\"><title>" << net.module(term.module).name << '.'
           << term.name << "</title></circle>\n";
      }
    }
  }
  os << "</svg>\n";
}

}  // namespace na
