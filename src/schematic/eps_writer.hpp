// Encapsulated PostScript output — the plotter format of the paper's era
// (the figures in the original report are pen plots).  One grid track maps
// to `track_pt` points; modules are outlined boxes with centred labels,
// nets are polyline strokes, terminals small marks.
#pragma once

#include <iosfwd>
#include <string>

#include "schematic/diagram.hpp"

namespace na {

struct EpsOptions {
  double track_pt = 8.0;  ///< PostScript points per grid track
  bool show_names = true;
};

std::string to_eps(const Diagram& dia, const EpsOptions& opt = {});
void write_eps(std::ostream& os, const Diagram& dia, const EpsOptions& opt = {});

}  // namespace na
