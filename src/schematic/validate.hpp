// Independent geometric validity checker for finished diagrams.
//
// This stands in for the paper's ESCHER simulation check (section 6: "to
// check whether the routing has been done correctly, the schematic diagram
// has been simulated") — instead of simulating, we verify the property the
// simulation established: every routed net's drawn geometry actually
// connects exactly its terminals, and no drawing rule is violated.
//
// Checked rules (paper sections 3.2 / 5.3 postconditions):
//   * every module and system terminal is placed; no two symbols overlap;
//   * net paths are orthogonal chains;
//   * nets never enter a module symbol except at their own terminals, and
//     never touch a foreign system terminal;
//   * two different nets share a point only as a perpendicular crossing
//     where both run straight through (no overlap, no corner contact);
//   * every routed net's polylines form one connected figure containing
//     all of the net's terminal positions.
//
// The checker is implemented independently of RoutingGrid (hash maps over
// drawn geometry) so it can serve as an oracle for the router.
#pragma once

#include <string>
#include <vector>

#include "schematic/diagram.hpp"

namespace na {

/// Returns human-readable violations; empty means the diagram is valid.
/// Unrouted nets are not an error here (they are reported by metrics);
/// pass `require_all_routed` to make them one.
std::vector<std::string> validate_diagram(const Diagram& dia,
                                          bool require_all_routed = false);

/// Region-scoped validation: checks only the geometry intersecting
/// `region` — the incremental engine's "re-check only the changed part"
/// entry point (RegenSession hands it the dirty hull of a patch).
///
/// Scope rules:
///   * placement completeness (everything placed) stays global — it is a
///     property of the diagram, costs O(symbols), and needs no geometry;
///   * symbol overlap / coincidence is checked among the symbols whose
///     rectangles intersect the region;
///   * net segments are clipped to the region before the occupancy,
///     crossing, node-contact, symbol-entry and foreign-terminal rules
///     run, so only in-region track cells are examined;
///   * connectivity (one figure reaching every terminal) is re-checked for
///     exactly the nets with at least one in-region point, over their full
///     geometry — a patch that disconnects a net does so at an edited
///     point, and the rule itself is not a local property.
///
/// Guarantee: a violation whose witness point(s) lie inside `region` is
/// reported with the same message full validation would produce; issues
/// entirely outside the region are not looked for.  An empty region
/// validates nothing and returns no issues.
std::vector<std::string> validate_region(const Diagram& dia, geom::Rect region,
                                         bool require_all_routed = false);

}  // namespace na
