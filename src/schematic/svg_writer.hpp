// SVG rendering of a schematic diagram — the modern stand-in for the
// graphics terminal of the historical ESCHER editor.
#pragma once

#include <iosfwd>
#include <string>

#include "schematic/diagram.hpp"

namespace na {

struct SvgOptions {
  int track_px = 12;        ///< pixels per grid track
  int margin_tracks = 2;    ///< empty border
  bool show_names = true;   ///< module instance names inside symbols
  bool show_terminals = true;
  bool color_nets = true;   ///< cycle a palette over net ids
};

/// Renders the diagram to SVG markup.
std::string to_svg(const Diagram& dia, const SvgOptions& opt = {});
void write_svg(std::ostream& os, const Diagram& dia, const SvgOptions& opt = {});

}  // namespace na
