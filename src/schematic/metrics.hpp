// Diagram quality metrics: the quantities the paper's rules 2-6 minimise
// (wire length, bends, crossovers, branching nodes, left-to-right signal
// flow) plus bookkeeping counters for the experiment harness.
#pragma once

#include <string>

#include "schematic/diagram.hpp"

namespace na {

struct DiagramStats {
  int modules = 0;
  int nets = 0;
  int routed = 0;
  int unrouted = 0;
  int wire_length = 0;    ///< total Manhattan length of all drawn nets
  int bends = 0;          ///< corners over all polylines
  int crossings = 0;      ///< grid points where two different nets cross
  int branch_points = 0;  ///< grid points where one net has degree >= 3
  int width = 0;          ///< placement bounding-box extent
  int height = 0;
  int flow_violations = 0;  ///< driver->sink terminal pairs running right-to-left

  /// One-line summary for logs and benchmark output.
  std::string summary() const;
};

/// Computes all metrics of a (partially) routed diagram.  Placement-only
/// diagrams get zero routing counters but valid area / flow numbers.
DiagramStats compute_stats(const Diagram& dia);

/// Left-to-right flow violations of the placement alone: over all nets,
/// ordered (out/inout, in) terminal pairs where the driver lies strictly
/// right of the sink (rule 3 of section 3.2).
int flow_violations(const Diagram& dia);

}  // namespace na
