#include "schematic/grid.hpp"

#include <stdexcept>

namespace na {

RoutingGrid::RoutingGrid(geom::Rect area) : area_(area) {
  if (area.empty()) throw std::invalid_argument("routing area is empty");
  width_ = area.width() + 1;
  cells_.resize(static_cast<size_t>(width_) * (area.height() + 1));
}

RoutingGrid::Cell& RoutingGrid::at(geom::Point p) {
  return cells_[static_cast<size_t>(p.y - area_.lo.y) * width_ + (p.x - area_.lo.x)];
}

const RoutingGrid::Cell& RoutingGrid::at(geom::Point p) const {
  return cells_[static_cast<size_t>(p.y - area_.lo.y) * width_ + (p.x - area_.lo.x)];
}

void RoutingGrid::block(geom::Point p) {
  if (in_bounds(p)) at(p).blocked = true;
}

void RoutingGrid::block_rect(geom::Rect r) {
  const geom::Rect clipped = {{std::max(r.lo.x, area_.lo.x), std::max(r.lo.y, area_.lo.y)},
                              {std::min(r.hi.x, area_.hi.x), std::min(r.hi.y, area_.hi.y)}};
  for (int y = clipped.lo.y; y <= clipped.hi.y; ++y) {
    for (int x = clipped.lo.x; x <= clipped.hi.x; ++x) {
      at({x, y}).blocked = true;
    }
  }
}

void RoutingGrid::set_terminal(geom::Point p, NetId n) {
  if (!in_bounds(p)) throw std::invalid_argument("terminal outside routing area");
  Cell& c = at(p);
  c.blocked = true;
  c.owner = n;
}

void RoutingGrid::set_claim(geom::Point p, NetId n) {
  if (in_bounds(p)) at(p).claim = n;
}

void RoutingGrid::clear_claim(geom::Point p) {
  if (in_bounds(p)) at(p).claim = kNone;
}

bool RoutingGrid::blocked(geom::Point p) const {
  return !in_bounds(p) || at(p).blocked;
}

NetId RoutingGrid::terminal_owner(geom::Point p) const {
  return in_bounds(p) ? at(p).owner : kNone;
}

NetId RoutingGrid::claim_owner(geom::Point p) const {
  return in_bounds(p) ? at(p).claim : kNone;
}

NetId RoutingGrid::h_net(geom::Point p) const { return in_bounds(p) ? at(p).h : kNone; }
NetId RoutingGrid::v_net(geom::Point p) const { return in_bounds(p) ? at(p).v : kNone; }

bool RoutingGrid::enterable(geom::Point p, NetId n) const {
  if (!in_bounds(p)) return false;
  const Cell& c = at(p);
  if (c.blocked && c.owner != n) return false;
  if (c.claim != kNone && c.claim != n) return false;
  return true;
}

bool RoutingGrid::passable(geom::Point p, NetId n, bool horizontal) const {
  if (!enterable(p, n)) return false;
  const Cell& c = at(p);
  return (horizontal ? c.h : c.v) == kNone;
}

bool RoutingGrid::can_turn(geom::Point p, NetId n) const {
  if (!enterable(p, n)) return false;
  const Cell& c = at(p);
  return c.h == kNone && c.v == kNone;
}

bool RoutingGrid::crosses_at(geom::Point p, NetId n, bool horizontal) const {
  if (!in_bounds(p)) return false;
  const Cell& c = at(p);
  const NetId other = horizontal ? c.v : c.h;
  return other != kNone && other != n;
}

bool RoutingGrid::occupied_by(geom::Point p, NetId n) const {
  if (!in_bounds(p)) return false;
  const Cell& c = at(p);
  return c.h == n || c.v == n;
}

bool RoutingGrid::node_free(geom::Point p, NetId n) const {
  if (!in_bounds(p)) return false;
  const Cell& c = at(p);
  return (c.h == kNone || c.h == n) && (c.v == kNone || c.v == n);
}

void RoutingGrid::occupy_polyline(NetId n, std::span<const geom::Point> pts,
                                  std::vector<TrackWrite>* journal) {
  auto take = [&](geom::Point p, bool horizontal) {
    Cell& c = at(p);
    NetId& slot = horizontal ? c.h : c.v;
    if (slot == n) return;  // idempotent re-occupation
    if (slot != kNone) {
      throw std::logic_error("net overlap at " + geom::to_string(p));
    }
    slot = n;
    if (journal) journal->push_back({p, horizontal});
  };
  for (size_t i = 1; i < pts.size(); ++i) {
    const geom::Point a = pts[i - 1];
    const geom::Point b = pts[i];
    if (a.x != b.x && a.y != b.y) {
      throw std::invalid_argument("polyline segment not axis-parallel");
    }
    const bool horizontal = a.y == b.y;
    const geom::Point step = {a.x == b.x ? 0 : (b.x > a.x ? 1 : -1),
                              a.y == b.y ? 0 : (b.y > a.y ? 1 : -1)};
    if (a == b) continue;
    for (geom::Point p = a;; p += step) {
      take(p, horizontal);
      if (p == b) break;
    }
  }
}

bool RoutingGrid::polyline_fits(NetId n, std::span<const geom::Point> pts) const {
  for (size_t i = 1; i < pts.size(); ++i) {
    const geom::Point a = pts[i - 1];
    const geom::Point b = pts[i];
    if (a.x != b.x && a.y != b.y) return false;
    const bool horizontal = a.y == b.y;
    const geom::Point step = {a.x == b.x ? 0 : (b.x > a.x ? 1 : -1),
                              a.y == b.y ? 0 : (b.y > a.y ? 1 : -1)};
    if (a == b) continue;
    for (geom::Point p = a;; p += step) {
      if (!in_bounds(p)) return false;
      const Cell& c = at(p);
      const NetId slot = horizontal ? c.h : c.v;
      if (slot != kNone && slot != n) return false;
      if (p == b) break;
    }
  }
  return true;
}

void RoutingGrid::set_track(geom::Point p, bool horizontal, NetId n) {
  Cell& c = at(p);
  (horizontal ? c.h : c.v) = n;
}

RoutingGrid RoutingGrid::clipped(geom::Rect sub) const {
  const geom::Rect inter = {
      {std::max(sub.lo.x, area_.lo.x), std::max(sub.lo.y, area_.lo.y)},
      {std::min(sub.hi.x, area_.hi.x), std::min(sub.hi.y, area_.hi.y)}};
  if (inter.empty()) throw std::invalid_argument("clip outside routing area");
  RoutingGrid g(inter);
  for (int y = inter.lo.y; y <= inter.hi.y; ++y) {
    for (int x = inter.lo.x; x <= inter.hi.x; ++x) {
      g.at({x, y}) = at({x, y});
    }
  }
  return g;
}

int RoutingGrid::crossing_count() const {
  int count = 0;
  for (const Cell& c : cells_) {
    if (c.h != kNone && c.v != kNone && c.h != c.v) ++count;
  }
  return count;
}

RoutingGrid build_grid(const Diagram& dia, int margin) {
  const Network& net = dia.network();
  geom::Rect bounds = dia.placement_bounds();
  if (bounds.empty()) throw std::invalid_argument("diagram has no placed elements");
  // Include prerouted geometry in the plane.
  for (const NetRoute& r : dia.routes()) {
    for (const auto& pl : r.polylines) {
      for (geom::Point p : pl) bounds = bounds.hull(p);
    }
  }
  RoutingGrid grid(bounds.expanded(margin));

  for (int m = 0; m < net.module_count(); ++m) {
    if (dia.module_placed(m)) grid.block_rect(dia.module_rect(m));
  }
  // Connected terminals are entry points of their net; unconnected subsystem
  // terminals stay plain module boundary.  System terminals get "type
  // module" (section 5.6.3 ADD_OBSTACLE_BOUNDINGS) — blocked for all nets
  // but their own.
  for (int t = 0; t < net.term_count(); ++t) {
    const Terminal& term = net.term(t);
    if (term.is_system()) {
      if (!dia.system_term_placed(t)) continue;
      grid.set_terminal(dia.term_pos(t), term.net);  // kNone => pure obstacle
    } else if (term.net != kNone && dia.module_placed(term.module)) {
      grid.set_terminal(dia.term_pos(t), term.net);
    }
  }
  // Prerouted nets are obstacles from the start.
  for (NetId n = 0; n < net.net_count(); ++n) {
    const NetRoute& r = dia.route(n);
    for (const auto& pl : r.polylines) grid.occupy_polyline(n, pl);
  }
  // A prerouted polyline may end mid-plane (the incremental router keeps
  // the clean runs of a net split at a dirty region).  Such an endpoint is
  // a *node* of its net — no other net may touch it — so occupy both
  // orientations there, making the grid itself enforce the validator's
  // node-contact rule.  Full routes end at terminal cells (blocked), so
  // the ordinary pipeline is unaffected.
  for (NetId n = 0; n < net.net_count(); ++n) {
    const NetRoute& r = dia.route(n);
    for (const auto& pl : r.polylines) {
      if (pl.size() < 2) continue;
      for (geom::Point p : {pl.front(), pl.back()}) {
        if (grid.blocked(p)) continue;
        if (grid.h_net(p) == kNone) grid.set_track(p, true, n);
        if (grid.v_net(p) == kNone) grid.set_track(p, false, n);
      }
    }
  }
  return grid;
}

}  // namespace na
