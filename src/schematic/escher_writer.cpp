#include "schematic/escher_writer.hpp"

#include <sstream>

namespace na {
namespace {

constexpr const char* kHeader = "#TUE-ES-871\n";

int io_code(TermType t) {
  switch (t) {
    case TermType::InOut: return 0;
    case TermType::In: return 1;
    case TermType::Out: return 2;
  }
  return 0;
}

}  // namespace

std::string to_escher_template(const ModuleTemplate& t, long creation_time) {
  std::ostringstream os;
  os << kHeader;
  os << "temp: 0 1 1 1 1\n";
  os << "tname: " << t.name << '\n';
  os << "lname: " << t.name << '\n';
  os << "repr: 0 1 1 0 0 " << t.size.x << ' ' << t.size.y << ' ' << creation_time
     << '\n';
  for (size_t i = 0; i < t.terms.size(); ++i) {
    const TemplateTerm& term = t.terms[i];
    const int more = i + 1 < t.terms.size() ? 1 : 0;
    os << "contact: " << more << " 1 " << io_code(term.type) << " 0 0 "
       << term.pos.x << ' ' << term.pos.y << " 0 1 0\n";
    os << "cname: " << term.name << '\n';
  }
  os << "symbol: 1 35 " << t.size.x << " 0 " << t.size.x << ' ' << t.size.y << '\n';
  os << "symbol: 1 35 0 " << t.size.y << ' ' << t.size.x << ' ' << t.size.y << '\n';
  os << "symbol: 1 35 " << t.size.x << " 0 0 0\n";
  os << "symbol: 0 35 0 0 0 " << t.size.y << '\n';
  os << "contents: 0 0\n";
  return os.str();
}

std::string to_escher_diagram(const Diagram& dia, const std::string& template_name,
                              long creation_time) {
  const Network& net = dia.network();
  std::ostringstream os;
  geom::Rect bounds = dia.placement_bounds();
  for (const NetRoute& r : dia.routes()) {
    for (const auto& pl : r.polylines) {
      for (geom::Point p : pl) bounds = bounds.hull(p);
    }
  }
  os << kHeader;
  os << "temp: 0 1 1 1 1\n";
  os << "tname: " << template_name << '\n';
  os << "lname: " << template_name << '\n';
  os << "repr: 0 1 0 " << bounds.lo.x << ' ' << bounds.lo.y << ' ' << bounds.hi.x
     << ' ' << bounds.hi.y << ' ' << creation_time << '\n';
  // System terminals appear as contacts of the diagram template.
  const auto& sys = net.system_terms();
  for (size_t i = 0; i < sys.size(); ++i) {
    const Terminal& term = net.term(sys[i]);
    if (!dia.system_term_placed(sys[i])) continue;
    const geom::Point p = dia.term_pos(sys[i]);
    const int more = i + 1 < sys.size() ? 1 : 0;
    os << "contact: " << more << " 1 " << io_code(term.type) << " 0 0 " << p.x << ' '
       << p.y << ' ' << term.net << " 1 0\n";
    os << "cname: " << term.name << '\n';
  }
  os << "contents: 1 1\n";

  for (int m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) continue;
    const geom::Rect r = dia.module_rect(m);
    const geom::Point c = r.center();
    const int more = 1;
    os << "subsys: " << more << " 1 1 1 0 " << c.x << ' ' << c.y << ' ' << r.lo.x
       << ' ' << r.lo.y << ' ' << r.hi.x << ' ' << r.hi.y << ' '
       << static_cast<int>(dia.placed(m).rot) << ' ' << creation_time << '\n';
    os << "instname: " << net.module(m).name << '\n';
    os << "tempname: "
       << (net.module(m).template_name.empty() ? net.module(m).name
                                               : net.module(m).template_name)
       << '\n';
    os << "libname: " << template_name << '\n';
  }

  // Net geometry: one node record per polyline vertex; the up/down/left/
  // right lengths of Appendix D encode the outgoing segments.
  for (NetId n = 0; n < net.net_count(); ++n) {
    const NetRoute& r = dia.route(n);
    for (const auto& pl : r.polylines) {
      for (size_t i = 0; i < pl.size(); ++i) {
        const geom::Point p = pl[i];
        int up = 0, down = 0, left = 0, right = 0;
        auto account = [&](geom::Point o) {
          if (o.x > p.x) right = o.x - p.x;
          if (o.x < p.x) left = p.x - o.x;
          if (o.y > p.y) up = o.y - p.y;
          if (o.y < p.y) down = p.y - o.y;
        };
        if (i > 0) account(pl[i - 1]);
        if (i + 1 < pl.size()) account(pl[i + 1]);
        os << "node: 1 0 1 1 1 " << p.x << ' ' << p.y << " 0 0 0 " << up
           << " 0 0 0 " << down << " 0 0 0 " << left << " 0 0 0 " << right
           << " 0 0 0 3 0\n";
        os << "oname: " << net.net(n).name << '\n';
        os << "cname: " << net.net(n).name << '\n';
      }
    }
  }
  return os.str();
}

}  // namespace na
