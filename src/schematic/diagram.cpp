#include "schematic/diagram.hpp"

#include <stdexcept>

namespace na {

int NetRoute::total_length() const {
  int len = 0;
  for (const auto& pl : polylines) {
    for (size_t i = 1; i < pl.size(); ++i) len += manhattan(pl[i - 1], pl[i]);
  }
  return len;
}

int NetRoute::bend_count() const {
  int bends = 0;
  for (const auto& pl : polylines) {
    for (size_t i = 2; i < pl.size(); ++i) {
      const bool prev_h = pl[i - 1].y == pl[i - 2].y && pl[i - 1].x != pl[i - 2].x;
      const bool cur_h = pl[i].y == pl[i - 1].y && pl[i].x != pl[i - 1].x;
      if (prev_h != cur_h) ++bends;
    }
  }
  return bends;
}

Diagram::Diagram(const Network& net)
    : net_(&net),
      modules_(net.module_count()),
      system_terms_(net.term_count()),
      routes_(net.net_count()) {}

void Diagram::place_module(ModuleId m, geom::Point pos, geom::Rot rot, bool fixed) {
  modules_.at(m) = {true, pos, rot, fixed};
}

void Diagram::place_system_term(TermId t, geom::Point pos, bool fixed) {
  if (!net_->term(t).is_system()) {
    throw std::invalid_argument("place_system_term on a subsystem terminal");
  }
  system_terms_.at(t) = {true, pos};
  (void)fixed;
}

bool Diagram::system_term_placed(TermId t) const {
  return system_terms_.at(t).placed;
}

bool Diagram::all_placed() const {
  for (const PlacedModule& m : modules_) {
    if (!m.placed) return false;
  }
  for (TermId t : net_->system_terms()) {
    if (!system_terms_[t].placed) return false;
  }
  return true;
}

geom::Point Diagram::module_size(ModuleId m) const {
  return geom::rotate_size(net_->module(m).size, modules_.at(m).rot);
}

geom::Rect Diagram::module_rect(ModuleId m) const {
  const PlacedModule& pm = modules_.at(m);
  return geom::Rect::from_size(pm.pos, module_size(m));
}

geom::Point Diagram::term_pos(TermId t) const {
  const Terminal& term = net_->term(t);
  if (term.is_system()) {
    const PlacedSystemTerm& st = system_terms_.at(t);
    if (!st.placed) throw std::logic_error("system terminal not placed");
    return st.pos;
  }
  const PlacedModule& pm = modules_.at(term.module);
  if (!pm.placed) throw std::logic_error("module not placed");
  return pm.pos + geom::rotate_point(term.pos, net_->module(term.module).size, pm.rot);
}

geom::Side Diagram::term_facing(TermId t) const {
  const Terminal& term = net_->term(t);
  if (term.is_system()) throw std::logic_error("system terminals have no facing");
  return geom::rotate_side(net_->term_side(t), modules_.at(term.module).rot);
}

geom::Rect Diagram::placement_bounds() const {
  geom::Rect bounds;  // empty
  for (int m = 0; m < net_->module_count(); ++m) {
    if (modules_[m].placed) bounds = bounds.hull(module_rect(m));
  }
  for (TermId t : net_->system_terms()) {
    if (system_terms_[t].placed) bounds = bounds.hull(system_terms_[t].pos);
  }
  return bounds;
}

void Diagram::translate(geom::Point d) {
  for (PlacedModule& m : modules_) {
    if (m.placed) m.pos += d;
  }
  for (PlacedSystemTerm& t : system_terms_) {
    if (t.placed) t.pos += d;
  }
  for (NetRoute& r : routes_) {
    for (auto& pl : r.polylines) {
      for (auto& p : pl) p += d;
    }
  }
}

void Diagram::normalize(geom::Point origin) {
  const geom::Rect b = placement_bounds();
  if (b.empty()) return;
  translate(origin - b.lo);
}

void Diagram::add_polyline(NetId n, std::vector<geom::Point> pts) {
  if (pts.size() < 2 && !(pts.size() == 1)) {
    throw std::invalid_argument("polyline needs at least one point");
  }
  NetRoute& r = routes_.at(n);
  r.polylines.push_back(std::move(pts));
}

void Diagram::clear_routes() {
  for (NetRoute& r : routes_) r = {};
}

int Diagram::routed_count() const {
  int c = 0;
  for (const NetRoute& r : routes_) c += r.routed ? 1 : 0;
  return c;
}

int Diagram::unrouted_count() const {
  return static_cast<int>(routes_.size()) - routed_count();
}

}  // namespace na
