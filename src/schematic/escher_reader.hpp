// ESCHER-style diagram reader (Appendix D subset) — the inverse of
// to_escher_diagram, which is what the historical PABLO -g option consumed:
// "The program will ask for the directory-name ... specifying the schematic
// diagram of the preplaced part."
//
// The reader restores module positions/rotations, system terminal
// positions, and net geometry (as polylines reassembled from the node
// records) into a Diagram over the *same* network the file was written
// from; instances/nets are matched by name.
#pragma once

#include <string_view>

#include "schematic/diagram.hpp"

namespace na {

/// Parses a diagram file produced by to_escher_diagram.  Throws
/// std::runtime_error with a line number on malformed input or on names
/// that do not exist in `net`.  Net polylines are reassembled from
/// consecutive node records; geometry is preserved segment-for-segment.
Diagram parse_escher_diagram(const Network& net, std::string_view text);

}  // namespace na
