#include "schematic/metrics.hpp"

#include <bit>
#include <cstdint>
#include <sstream>
#include <unordered_map>

namespace na {
namespace {

std::uint64_t key_of(geom::Point p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
         static_cast<std::uint32_t>(p.y);
}

/// Direction bits for the degree map (1 = a unit edge leaves this point in
/// that direction).
constexpr std::uint8_t dir_bit(geom::Dir d) {
  return static_cast<std::uint8_t>(1u << static_cast<int>(d));
}

}  // namespace

std::string DiagramStats::summary() const {
  std::ostringstream os;
  os << modules << " modules, " << nets << " nets (" << routed << " routed, "
     << unrouted << " unrouted), len=" << wire_length << " bends=" << bends
     << " cross=" << crossings << " branch=" << branch_points << " area=" << width
     << "x" << height << " flow-viol=" << flow_violations;
  return os.str();
}

int flow_violations(const Diagram& dia) {
  const Network& net = dia.network();
  int violations = 0;
  for (const Net& n : net.nets()) {
    for (TermId from : n.terms) {
      const Terminal& tf = net.term(from);
      if (tf.module != kNone && !dia.module_placed(tf.module)) continue;
      if (tf.is_system() && !dia.system_term_placed(from)) continue;
      if (tf.type == TermType::In) continue;
      for (TermId to : n.terms) {
        if (to == from) continue;
        const Terminal& tt = net.term(to);
        if (tt.type != TermType::In) continue;
        if (tt.module != kNone && !dia.module_placed(tt.module)) continue;
        if (tt.is_system() && !dia.system_term_placed(to)) continue;
        if (dia.term_pos(from).x > dia.term_pos(to).x) ++violations;
      }
    }
  }
  return violations;
}

DiagramStats compute_stats(const Diagram& dia) {
  const Network& net = dia.network();
  DiagramStats s;
  s.modules = net.module_count();
  s.nets = net.net_count();
  s.routed = dia.routed_count();
  s.unrouted = dia.unrouted_count();

  const geom::Rect bounds = dia.placement_bounds();
  s.width = bounds.width();
  s.height = bounds.height();
  s.flow_violations = flow_violations(dia);

  // Occupancy maps (point -> occupying net per orientation) for crossings,
  // and per-net degree masks for branch points.
  std::unordered_map<std::uint64_t, NetId> h_occ;
  std::unordered_map<std::uint64_t, NetId> v_occ;

  for (NetId n = 0; n < net.net_count(); ++n) {
    const NetRoute& r = dia.route(n);
    s.wire_length += r.total_length();
    s.bends += r.bend_count();
    std::unordered_map<std::uint64_t, std::uint8_t> degree;
    for (const auto& pl : r.polylines) {
      for (size_t i = 1; i < pl.size(); ++i) {
        const geom::Point a = pl[i - 1];
        const geom::Point b = pl[i];
        if (a == b) continue;
        const bool horizontal = a.y == b.y;
        const geom::Dir d = geom::step_dir(a, {a.x + (b.x > a.x) - (b.x < a.x),
                                               a.y + (b.y > a.y) - (b.y < a.y)});
        const geom::Point step = geom::delta(d);
        for (geom::Point p = a; p != b; p += step) {
          const geom::Point q = p + step;
          degree[key_of(p)] |= dir_bit(d);
          degree[key_of(q)] |= dir_bit(geom::opposite(d));
          (horizontal ? h_occ : v_occ)[key_of(p)] = n;
          (horizontal ? h_occ : v_occ)[key_of(q)] = n;
        }
      }
    }
    for (const auto& [pt, mask] : degree) {
      if (std::popcount(mask) >= 3) ++s.branch_points;
    }
  }

  for (const auto& [pt, hn] : h_occ) {
    auto it = v_occ.find(pt);
    if (it != v_occ.end() && it->second != hn) ++s.crossings;
  }
  return s;
}

}  // namespace na
