// ESCHER-style file output (Appendix C/D subset).
//
// The historical generator emitted diagrams in the format of the ESCHER
// schematic editor (header "#TUE-ES-871", template/representation records,
// `subsys:` records per placed instance, `node:` records per net point).
// ESCHER itself is not available; this writer reproduces the record
// structure of Appendix C (module representations) and Appendix D (diagram
// files) closely enough for archival and for byte-level round-trip tests,
// serving as the interchange format of this library.
#pragma once

#include <string>

#include "netlist/module_library.hpp"
#include "schematic/diagram.hpp"

namespace na {

/// Appendix C: the representation file of one module template.
std::string to_escher_template(const ModuleTemplate& t, long creation_time = 0);

/// Appendix D: a full diagram file: header, representation bounding box,
/// one `subsys:` record per placed module, one `node:` record per net
/// polyline corner, plus system-terminal nodes.
std::string to_escher_diagram(const Diagram& dia, const std::string& template_name,
                              long creation_time = 0);

}  // namespace na
