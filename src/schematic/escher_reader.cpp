#include "schematic/escher_reader.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace na {
namespace {

struct NodeRec {
  geom::Point pos;
  int up = 0, down = 0, left = 0, right = 0;
  std::string net_name;
};

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::runtime_error("escher diagram line " + std::to_string(line_no) +
                           ": " + why);
}

std::vector<std::string> fields_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string f;
  while (iss >> f) out.push_back(f);
  return out;
}

/// Strict full-string integer parse: a malformed or truncated file yields
/// a diagnostic naming the line and token, never a crash, and trailing
/// garbage ("5x") is rejected rather than silently truncated.
int to_int(const std::string& s, int line_no) {
  int v = 0;
  const char* first = s.data();
  const char* last = first + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || s.empty()) {
    fail(line_no, "expected integer, got '" + s + "'");
  }
  return v;
}

}  // namespace

Diagram parse_escher_diagram(const Network& net, std::string_view text) {
  Diagram dia(net);
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  bool have_header = false;

  auto next_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++line_no;
    return true;
  };
  auto expect_tag = [&](const char* tag) -> std::string {
    if (!next_line()) fail(line_no, std::string("expected ") + tag);
    const auto f = fields_of(line);
    if (f.size() < 2 || f[0] != tag) {
      fail(line_no, std::string("expected ") + tag + " record");
    }
    return f[1];
  };

  std::vector<NodeRec> nodes;
  std::optional<geom::Point> pending_contact;

  while (next_line()) {
    const auto f = fields_of(line);
    if (f.empty()) continue;
    const std::string& tag = f[0];
    if (tag == "#TUE-ES-871") {
      have_header = true;
    } else if (tag == "temp:" || tag == "tname:" || tag == "lname:" ||
               tag == "repr:" || tag == "contents:" || tag == "symbol:" ||
               tag == "formal:") {
      // structural records without per-element payload we need
    } else if (tag == "contact:") {
      // contact: b0 b1 t1 lb hb x y n t2 a  -> position at tokens 6,7
      if (f.size() < 9) fail(line_no, "short contact record");
      pending_contact = geom::Point{to_int(f[6], line_no), to_int(f[7], line_no)};
    } else if (tag == "cname:" && pending_contact) {
      const auto st = net.term_by_name(kNone, f.size() > 1 ? f[1] : "");
      if (!st) fail(line_no, "unknown system terminal '" + (f.size() > 1 ? f[1] : "") + "'");
      dia.place_system_term(*st, *pending_contact);
      pending_contact.reset();
    } else if (tag == "subsys:") {
      // subsys: b0..b4 x y x1 y1 x2 y2 o t  -> lower-left at fields 7,8
      if (f.size() < 14) fail(line_no, "short subsys record");
      const geom::Point lower_left{to_int(f[8], line_no), to_int(f[9], line_no)};
      const int rot = to_int(f[12], line_no);
      if (rot < 0 || rot > 3) fail(line_no, "bad orientation");
      const std::string inst = expect_tag("instname:");
      expect_tag("tempname:");
      expect_tag("libname:");
      const auto m = net.module_by_name(inst);
      if (!m) fail(line_no, "unknown instance '" + inst + "'");
      dia.place_module(*m, lower_left, static_cast<geom::Rot>(rot),
                       /*fixed=*/true);
    } else if (tag == "node:") {
      if (f.size() < 29) fail(line_no, "short node record");
      NodeRec rec;
      rec.pos = {to_int(f[6], line_no), to_int(f[7], line_no)};
      rec.up = to_int(f[11], line_no);
      rec.down = to_int(f[15], line_no);
      rec.left = to_int(f[19], line_no);
      rec.right = to_int(f[23], line_no);
      rec.net_name = expect_tag("oname:");
      expect_tag("cname:");
      nodes.push_back(std::move(rec));
    } else if (tag == "cname:" || tag == "oname:" || tag == "instname:" ||
               tag == "tempname:" || tag == "libname:") {
      fail(line_no, "stray " + tag + " record");
    } else {
      fail(line_no, "unknown record '" + tag + "'");
    }
  }
  if (!have_header) throw std::runtime_error("escher diagram: missing #TUE-ES-871");

  // Reassemble polylines: consecutive node records of one net continue the
  // current polyline while the step to the next vertex matches the current
  // vertex's outgoing segment length.
  auto continues = [](const NodeRec& a, const NodeRec& b) {
    const geom::Point d = b.pos - a.pos;
    if (d.x != 0 && d.y != 0) return false;
    if (d == geom::Point{0, 0}) return false;
    if (d.x > 0) return a.right == d.x;
    if (d.x < 0) return a.left == -d.x;
    if (d.y > 0) return a.up == d.y;
    return a.down == -d.y;
  };
  size_t i = 0;
  while (i < nodes.size()) {
    const auto n = net.net_by_name(nodes[i].net_name);
    if (!n) {
      throw std::runtime_error("escher diagram: unknown net '" + nodes[i].net_name +
                               "'");
    }
    std::vector<geom::Point> pl{nodes[i].pos};
    size_t j = i;
    while (j + 1 < nodes.size() && nodes[j + 1].net_name == nodes[i].net_name &&
           continues(nodes[j], nodes[j + 1])) {
      pl.push_back(nodes[j + 1].pos);
      ++j;
    }
    dia.add_polyline(*n, std::move(pl));
    dia.route(*n).prerouted = true;
    i = j + 1;
  }
  return dia;
}

}  // namespace na
