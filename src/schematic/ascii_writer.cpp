#include "schematic/ascii_writer.hpp"

#include <algorithm>
#include <vector>

namespace na {

std::string to_ascii(const Diagram& dia) {
  const Network& net = dia.network();
  geom::Rect bounds = dia.placement_bounds();
  for (const NetRoute& r : dia.routes()) {
    for (const auto& pl : r.polylines) {
      for (geom::Point p : pl) bounds = bounds.hull(p);
    }
  }
  if (bounds.empty()) return "(empty diagram)\n";
  bounds = bounds.expanded(1);

  const int w = bounds.width() + 1;
  const int h = bounds.height() + 1;
  std::vector<std::string> canvas(h, std::string(w, ' '));
  auto put = [&](geom::Point p, char c) {
    const int col = p.x - bounds.lo.x;
    const int row = bounds.hi.y - p.y;  // top row = max y
    if (col >= 0 && col < w && row >= 0 && row < h) canvas[row][col] = c;
  };
  auto get = [&](geom::Point p) {
    const int col = p.x - bounds.lo.x;
    const int row = bounds.hi.y - p.y;
    return (col >= 0 && col < w && row >= 0 && row < h) ? canvas[row][col] : ' ';
  };

  // Nets first; module symbols overwrite.
  for (const NetRoute& r : dia.routes()) {
    for (const auto& pl : r.polylines) {
      for (size_t i = 1; i < pl.size(); ++i) {
        const geom::Point a = pl[i - 1];
        const geom::Point b = pl[i];
        if (a == b) continue;
        const bool horizontal = a.y == b.y;
        const geom::Point step = {(b.x > a.x) - (b.x < a.x), (b.y > a.y) - (b.y < a.y)};
        for (geom::Point p = a;; p += step) {
          const char want = horizontal ? '-' : '|';
          const char have = get(p);
          char c = want;
          if ((have == '-' && want == '|') || (have == '|' && want == '-')) c = '#';
          if (have == '+' || have == '#') c = have;
          put(p, c);
          if (p == b) break;
        }
      }
      for (size_t i = 1; i + 1 < pl.size(); ++i) put(pl[i], '+');  // corners
    }
  }

  for (int m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) continue;
    const geom::Rect r = dia.module_rect(m);
    for (int x = r.lo.x; x <= r.hi.x; ++x) {
      put({x, r.lo.y}, '-');
      put({x, r.hi.y}, '-');
    }
    for (int y = r.lo.y; y <= r.hi.y; ++y) {
      put({r.lo.x, y}, '|');
      put({r.hi.x, y}, '|');
    }
    for (geom::Point c : {r.lo, r.hi, geom::Point{r.lo.x, r.hi.y}, geom::Point{r.hi.x, r.lo.y}}) {
      put(c, '+');
    }
    // Interior fill with instance name.
    const std::string& name = net.module(m).name;
    int k = 0;
    for (int y = r.hi.y - 1; y > r.lo.y && k < static_cast<int>(name.size()); --y) {
      for (int x = r.lo.x + 1; x < r.hi.x && k < static_cast<int>(name.size()); ++x) {
        put({x, y}, name[k++]);
      }
    }
  }

  for (int t = 0; t < net.term_count(); ++t) {
    const Terminal& term = net.term(t);
    if (term.is_system()) {
      if (dia.system_term_placed(t)) put(dia.term_pos(t), 'O');
    } else if (term.net != kNone && dia.module_placed(term.module)) {
      put(dia.term_pos(t), 'o');
    }
  }

  std::string out;
  out.reserve(static_cast<size_t>(h) * (w + 1));
  for (const std::string& row : canvas) {
    // Trim trailing blanks per row.
    const auto end = row.find_last_not_of(' ');
    out.append(row, 0, end == std::string::npos ? 0 : end + 1);
    out.push_back('\n');
  }
  return out;
}

}  // namespace na
