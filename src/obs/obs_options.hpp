// CLI glue for the observability layer: the `--trace <file>` and
// `--stats <text|json|off>` flags every pipeline binary (pablo, eureka,
// net2art, life_game, regen) accepts, plus the begin/finish pair that
// turns them into an enabled recorder and an emitted registry.
//
//   ObsOptions obs;
//   ...parse flags into obs...
//   obs_begin(obs);                  // enables tracing when requested
//   ...instrumented work...
//   obs_finish(obs, registry);       // writes the trace, emits the stats
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace na::obs {

struct ObsOptions {
  enum class Stats { kOff, kText, kJson, kProm };

  std::string trace_path;  ///< --trace <file>; empty = tracing off
  Stats stats = Stats::kOff;
};

/// Parses a --stats value; throws std::runtime_error naming the flag on
/// anything but "text", "json", "prom" or "off".
ObsOptions::Stats parse_stats_mode(const std::string& value);

/// Enables the trace recorder when a trace path was requested.  Warns on
/// stderr (and keeps going) when tracing was compiled out (NA_TRACE=OFF).
void obs_begin(const ObsOptions& opt);

/// Writes the trace file (when requested) and emits the registry to
/// stdout in the chosen format (`prom` renders the Prometheus text
/// exposition).  The emission also carries the diag.lines.* /
/// diag.suppressed.* counters of every diagnostic category that fired,
/// so suppressed warnings are visible in stats even when they never
/// reached stderr.  Returns false when the trace file could not be
/// written (after printing a diagnostic).
bool obs_finish(const ObsOptions& opt, const MetricsRegistry& reg);

/// Usage snippet for the examples' help text.
const char* obs_usage();

}  // namespace na::obs
