// Log-linear latency histogram — the one quantile implementation the
// daemon, the benches and the tests share.
//
// Layout (HdrHistogram-style, fixed at compile time): values 0..15 get one
// bucket each, then every power-of-two range [2^m, 2^(m+1)) is split into
// 16 linear sub-buckets, up to 2^40 (a value recorded in microseconds can
// span a nanosecond blip to ~12 days).  Relative quantile error is bounded
// by the sub-bucket width: at most 1/16 ≈ 6.25% of the value.  Memory is a
// fixed ~4.6 KiB of counters per histogram — recordable forever at
// constant cost, which is what lets the daemon keep latency quantiles for
// every op without the unbounded sample vectors bench code used to sort.
//
// Concurrency: record() is wait-free — relaxed atomic adds on the bucket
// counters plus CAS loops for min/max — safe from any number of threads
// (pool workers, I/O loops) with no lock.  snapshot() reads the counters
// relaxedly: taken while recorders are quiescent it is exact; taken live
// it may miss in-flight records but never tears a bucket.  Emission goes
// through HistogramData, a plain copyable snapshot with deterministic
// byte-stable JSON/text rendering — equal data always renders equal bytes.
//
// Unit convention: the serve/pool latency histograms record MICROSECONDS
// (record_ms converts); quantiles render as milliseconds in text output
// and raw recorded units everywhere structured (JSON buckets, Prometheus
// `le` bounds).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace na::obs {

class JsonWriter;

/// Plain snapshot of a Histogram: copyable, mergeable, renderable.  The
/// MetricsRegistry stores these (never the live atomics).
struct HistogramData {
  long long count = 0;
  long long sum = 0;  ///< sum of recorded values (saturating in practice)
  long long min = 0;  ///< exact smallest recorded value; 0 when empty
  long long max = 0;  ///< exact largest recorded value; 0 when empty
  /// Non-empty buckets only, ascending by index: {bucket index, count}.
  std::vector<std::pair<int, long long>> buckets;

  /// Adds `other`'s population to this one (min/max/sum/count/buckets).
  void merge(const HistogramData& other);

  /// Value at quantile q in [0, 1], nearest-rank over the bucket counts.
  /// Returns the highest value the rank's bucket can hold (exact in the
  /// linear region, within 1/16 above), clamped to the recorded max; the
  /// empty histogram returns 0.
  long long quantile(double q) const;

  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }

  /// {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..,
  ///  "buckets":[[lower,count],...]} — values in recorded units.
  void append_json(JsonWriter& w) const;
};

/// The live recordable histogram.  Fixed bucket layout, atomic counters.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  ///< 16 per octave
  static constexpr int kMaxPow = 40;  ///< covers values < 2^40
  static constexpr int kBucketCount =
      kSubBuckets + (kMaxPow - kSubBucketBits) * kSubBuckets;

  /// Bucket holding `v` (negatives clamp to 0, overlarge values to the
  /// top bucket).
  static int bucket_index(long long v);
  /// Smallest value of bucket `index`.
  static long long bucket_lower(int index);
  /// One past the largest value of bucket `index` (== lower of index+1).
  static long long bucket_upper(int index);

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one value.  Wait-free, thread-safe.
  void record(long long v);
  /// Records a duration measured in milliseconds as microseconds.
  void record_ms(double ms);

  long long count() const { return count_.load(std::memory_order_relaxed); }

  /// Copies the current population out (see the liveness caveat above).
  HistogramData snapshot() const;

  /// Zeroes every counter.  Only safe while no recorder is active.
  void reset();

 private:
  /// Values clamp to [0, 2^40); anything above the sentinel can never be
  /// recorded, so min_ == sentinel means "no record yet".
  static constexpr long long kMinSentinel = 1LL << 62;

  std::atomic<long long> counts_[kBucketCount] = {};
  std::atomic<long long> count_{0};
  std::atomic<long long> sum_{0};
  std::atomic<long long> min_{kMinSentinel};
  std::atomic<long long> max_{0};
};

}  // namespace na::obs
