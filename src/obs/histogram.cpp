#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/metrics.hpp"

namespace na::obs {

int Histogram::bucket_index(long long v) {
  if (v < 0) v = 0;
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = std::bit_width(static_cast<unsigned long long>(v)) - 1;
  if (msb >= kMaxPow) return kBucketCount - 1;
  // v in [2^msb, 2^(msb+1)): 16 sub-buckets of width 2^(msb-4).
  const int sub = static_cast<int>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  return kSubBuckets + (msb - kSubBucketBits) * kSubBuckets + sub;
}

long long Histogram::bucket_lower(int index) {
  if (index < kSubBuckets) return index;
  const int octave = (index - kSubBuckets) / kSubBuckets;  // msb - 4
  const int sub = (index - kSubBuckets) % kSubBuckets;
  const int msb = octave + kSubBucketBits;
  return (1LL << msb) + static_cast<long long>(sub) * (1LL << octave);
}

long long Histogram::bucket_upper(int index) {
  if (index < kSubBuckets) return index + 1;
  const int octave = (index - kSubBuckets) / kSubBuckets;
  return bucket_lower(index) + (1LL << octave);
}

void Histogram::record(long long v) {
  if (v < 0) v = 0;
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  long long cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

void Histogram::record_ms(double ms) {
  record(static_cast<long long>(std::llround(ms * 1000.0)));
}

HistogramData Histogram::snapshot() const {
  HistogramData d;
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  if (d.count > 0) {
    const long long mn = min_.load(std::memory_order_relaxed);
    d.min = mn == kMinSentinel ? 0 : mn;  // live-snapshot tearing guard
    d.max = max_.load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kBucketCount; ++i) {
    const long long c = counts_[i].load(std::memory_order_relaxed);
    if (c > 0) d.buckets.emplace_back(i, c);
  }
  return d;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kMinSentinel, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ----- HistogramData ---------------------------------------------------------

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  // Both bucket lists are ascending by index: merge like sorted runs.
  std::vector<std::pair<int, long long>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t a = 0;
  size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b == other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a == buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

long long HistogramData::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest rank covering a q fraction of the samples.
  const long long rank =
      std::max<long long>(1, static_cast<long long>(std::ceil(q * static_cast<double>(count))));
  long long cum = 0;
  for (const auto& [index, c] : buckets) {
    cum += c;
    if (cum >= rank) {
      return std::min(Histogram::bucket_upper(index) - 1, max);
    }
  }
  return max;
}

void HistogramData::append_json(JsonWriter& w) const {
  w.begin_object()
      .field("count", count)
      .field("sum", sum)
      .field("min", min)
      .field("max", max)
      .field("p50", quantile(0.50))
      .field("p90", quantile(0.90))
      .field("p99", quantile(0.99));
  w.key("buckets").begin_array();
  for (const auto& [index, c] : buckets) {
    w.begin_array().value(Histogram::bucket_lower(index)).value(c).end_array();
  }
  w.end_array().end_object();
}

}  // namespace na::obs
