#include "obs/metrics.hpp"

#include <algorithm>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace na::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

// ----- JsonWriter ------------------------------------------------------------

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('{');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('[');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
  out_ += '"';
  append_escaped(out_, k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  append_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const MetricValue& v) {
  return v.is_int ? value(v.i) : value(v.d);
}

// ----- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::set(std::string name, MetricValue v) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.value = v;
      return;
    }
  }
  entries_.push_back({std::move(name), v});
}

void MetricsRegistry::add(std::string name, long long delta) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.value.i += delta;
      return;
    }
  }
  entries_.push_back({std::move(name), MetricValue(delta)});
}

void MetricsRegistry::set_histogram(std::string name, HistogramData h) {
  for (HistEntry& e : histograms_) {
    if (e.name == name) {
      e.data = std::move(h);
      return;
    }
  }
  histograms_.push_back({std::move(name), std::move(h)});
}

void MetricsRegistry::merge_prefixed(const MetricsRegistry& other,
                                     std::string_view prefix) {
  for (const Entry& e : other.entries_) {
    set(std::string(prefix) + e.name, e.value);
  }
  for (const HistEntry& e : other.histograms_) {
    set_histogram(std::string(prefix) + e.name, e.data);
  }
}

const MetricValue* MetricsRegistry::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e.value;
  }
  return nullptr;
}

const HistogramData* MetricsRegistry::find_histogram(
    std::string_view name) const {
  for (const HistEntry& e : histograms_) {
    if (e.name == name) return &e.data;
  }
  return nullptr;
}

std::string MetricsRegistry::to_text() const {
  size_t width = 0;
  for (const Entry& e : entries_) width = std::max(width, e.name.size());
  for (const HistEntry& e : histograms_) width = std::max(width, e.name.size());
  std::string out;
  char buf[160];
  for (const Entry& e : entries_) {
    out += e.name;
    out.append(width + 2 - e.name.size(), ' ');
    if (e.value.is_int) {
      std::snprintf(buf, sizeof buf, "%lld", e.value.i);
    } else {
      std::snprintf(buf, sizeof buf, "%.3f", e.value.d);
    }
    out += buf;
    out += '\n';
  }
  for (const HistEntry& e : histograms_) {
    out += e.name;
    out.append(width + 2 - e.name.size(), ' ');
    const HistogramData& h = e.data;
    std::snprintf(buf, sizeof buf,
                  "count=%lld p50_ms=%.3f p90_ms=%.3f p99_ms=%.3f max_ms=%.3f",
                  h.count, h.quantile(0.50) / 1000.0, h.quantile(0.90) / 1000.0,
                  h.quantile(0.99) / 1000.0, h.max / 1000.0);
    out += buf;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object().field("schema_version", kSchemaVersion).key("metrics").begin_object();
  for (const Entry& e : entries_) w.field(e.name, e.value);
  w.end_object();
  if (!histograms_.empty()) {
    w.key("histograms").begin_object();
    for (const HistEntry& e : histograms_) {
      w.key(e.name);
      e.data.append_json(w);
    }
    w.end_object();
  }
  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const auto sanitized = [](std::string_view name) {
    std::string out = "na_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
      out += ok ? c : '_';
    }
    return out;
  };
  std::string out;
  char buf[96];
  for (const Entry& e : entries_) {
    const std::string name = sanitized(e.name);
    out += "# TYPE " + name + " gauge\n";
    out += name;
    if (e.value.is_int) {
      std::snprintf(buf, sizeof buf, " %lld\n", e.value.i);
    } else {
      std::snprintf(buf, sizeof buf, " %.3f\n", e.value.d);
    }
    out += buf;
  }
  for (const HistEntry& e : histograms_) {
    const std::string name = sanitized(e.name);
    const HistogramData& h = e.data;
    out += "# TYPE " + name + " histogram\n";
    long long cum = 0;
    for (const auto& [index, c] : h.buckets) {
      cum += c;
      std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%lld\"} %lld\n",
                    name.c_str(), Histogram::bucket_upper(index) - 1, cum);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "%s_bucket{le=\"+Inf\"} %lld\n",
                  name.c_str(), h.count);
    out += buf;
    std::snprintf(buf, sizeof buf, "%s_sum %lld\n", name.c_str(), h.sum);
    out += buf;
    std::snprintf(buf, sizeof buf, "%s_count %lld\n", name.c_str(), h.count);
    out += buf;
  }
  return out;
}

// ----- MetricsTable ----------------------------------------------------------

namespace {

std::string render_cell(const MetricValue& v) {
  char buf[64];
  if (v.is_int) {
    std::snprintf(buf, sizeof buf, "%lld", v.i);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v.d);
  }
  return buf;
}

}  // namespace

MetricsTable::MetricsTable(std::string label_header,
                           std::vector<std::string> columns, int label_width,
                           int min_width)
    : label_header_(std::move(label_header)),
      columns_(std::move(columns)),
      label_width_(label_width),
      min_width_(min_width) {
  label_width_ = std::max<int>(label_width_, static_cast<int>(label_header_.size()));
}

void MetricsTable::add_row(std::string label, std::vector<MetricValue> values) {
  rows_.push_back({std::move(label), std::move(values)});
}

std::string MetricsTable::header_text() const {
  std::string out = label_header_;
  out.append(label_width_ - label_header_.size(), ' ');
  for (const std::string& col : columns_) {
    const int width = std::max<int>(min_width_, static_cast<int>(col.size()));
    out += ' ';
    out.append(width - col.size(), ' ');
    out += col;
  }
  out += '\n';
  return out;
}

std::string MetricsTable::row_text(size_t i) const {
  const Row& row = rows_[i];
  std::string out = row.label;
  if (static_cast<int>(row.label.size()) < label_width_) {
    out.append(label_width_ - row.label.size(), ' ');
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    const int width =
        std::max<int>(min_width_, static_cast<int>(columns_[c].size()));
    const std::string cell =
        c < row.values.size() ? render_cell(row.values[c]) : std::string();
    out += ' ';
    if (static_cast<int>(cell.size()) < width) {
      out.append(width - cell.size(), ' ');
    }
    out += cell;
  }
  out += '\n';
  return out;
}

std::string MetricsTable::to_text() const {
  std::string out = header_text();
  for (size_t i = 0; i < rows_.size(); ++i) out += row_text(i);
  return out;
}

long long peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long long>(ru.ru_maxrss);  // bytes
#else
  return static_cast<long long>(ru.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

}  // namespace na::obs
