#include "obs/metrics.hpp"

#include <algorithm>

namespace na::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

// ----- JsonWriter ------------------------------------------------------------

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('{');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('[');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
  out_ += '"';
  append_escaped(out_, k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  append_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const MetricValue& v) {
  return v.is_int ? value(v.i) : value(v.d);
}

// ----- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::set(std::string name, MetricValue v) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.value = v;
      return;
    }
  }
  entries_.push_back({std::move(name), v});
}

void MetricsRegistry::add(std::string name, long long delta) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.value.i += delta;
      return;
    }
  }
  entries_.push_back({std::move(name), MetricValue(delta)});
}

void MetricsRegistry::merge_prefixed(const MetricsRegistry& other,
                                     std::string_view prefix) {
  for (const Entry& e : other.entries_) {
    set(std::string(prefix) + e.name, e.value);
  }
}

const MetricValue* MetricsRegistry::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e.value;
  }
  return nullptr;
}

std::string MetricsRegistry::to_text() const {
  size_t width = 0;
  for (const Entry& e : entries_) width = std::max(width, e.name.size());
  std::string out;
  char buf[64];
  for (const Entry& e : entries_) {
    out += e.name;
    out.append(width + 2 - e.name.size(), ' ');
    if (e.value.is_int) {
      std::snprintf(buf, sizeof buf, "%lld", e.value.i);
    } else {
      std::snprintf(buf, sizeof buf, "%.3f", e.value.d);
    }
    out += buf;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object().field("schema_version", kSchemaVersion).key("metrics").begin_object();
  for (const Entry& e : entries_) w.field(e.name, e.value);
  w.end_object().end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

}  // namespace na::obs
