#include "obs/obs_options.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/diag.hpp"
#include "obs/trace.hpp"

namespace na::obs {

ObsOptions::Stats parse_stats_mode(const std::string& value) {
  if (value == "text") return ObsOptions::Stats::kText;
  if (value == "json") return ObsOptions::Stats::kJson;
  if (value == "prom") return ObsOptions::Stats::kProm;
  if (value == "off") return ObsOptions::Stats::kOff;
  throw std::runtime_error("bad value '" + value +
                           "' for --stats (use text, json, prom or off)");
}

void obs_begin(const ObsOptions& opt) {
  if (opt.trace_path.empty()) return;
  if (!trace_compiled_in()) {
    diagf("obs", kDiagDefaultLimit,
          "--trace requested but tracing was compiled out (NA_TRACE=OFF); "
          "the trace file will contain no events");
  }
  trace_enable();
}

bool obs_finish(const ObsOptions& opt, const MetricsRegistry& reg) {
  bool ok = true;
  if (!opt.trace_path.empty()) {
    trace_disable();
    if (trace_write(opt.trace_path)) {
      std::fprintf(stderr, "na[obs] wrote trace %s\n", opt.trace_path.c_str());
    } else {
      diagf("obs", kDiagDefaultLimit, "cannot write trace file '%s'",
            opt.trace_path.c_str());
      ok = false;
    }
  }
  if (opt.stats == ObsOptions::Stats::kOff) return ok;
  // Emit a copy extended with the diagnostics counters: categories that
  // fired show up as diag.lines.<cat>/diag.suppressed.<cat>, so rate-
  // limited warnings stay visible in the machine-readable output.
  MetricsRegistry out = reg;
  diag_absorb(out);
  switch (opt.stats) {
    case ObsOptions::Stats::kOff:
      break;
    case ObsOptions::Stats::kText:
      std::fputs(out.to_text().c_str(), stdout);
      break;
    case ObsOptions::Stats::kJson:
      std::fputs(out.to_json().c_str(), stdout);
      break;
    case ObsOptions::Stats::kProm:
      std::fputs(out.to_prometheus().c_str(), stdout);
      break;
  }
  return ok;
}

const char* obs_usage() {
  return "--trace <file (Chrome trace-event JSON)> --stats <text|json|prom|off>";
}

}  // namespace na::obs
