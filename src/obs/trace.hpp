// Low-overhead tracing for the generator pipeline.
//
// Design (the measurement substrate every perf PR reports against):
//   * recording appends fixed-size events to a lock-free thread-local
//     buffer — no allocation on the hot path beyond the buffer's own
//     amortised growth, no synchronisation between recording threads;
//   * a global registry owns every thread buffer (created under a mutex on
//     a thread's first event, kept alive after the thread exits) so a
//     flush after the instrumented work has quiesced sees everything;
//   * flush merges the buffers, stable-sorts by (timestamp, thread,
//     sequence) — byte-stable for a fixed event set — and serialises to
//     Chrome trace-event JSON ("X" complete spans, "i" instants), viewable
//     in chrome://tracing and Perfetto;
//   * timestamps come from steady_clock, expressed in nanoseconds since
//     the recorder was enabled.
//
// Cost model:
//   * NA_TRACE=OFF (CMake): the macros expand to nothing — zero code in
//     the instrumented functions; the recorder API itself stays linkable
//     so CLI wiring compiles unchanged (it just records nothing).
//   * compiled in, tracing disabled (the default at runtime): one relaxed
//     atomic load and a predictable branch per span or instant.
//   * compiled in and enabled: a steady_clock read per span edge plus one
//     vector push_back on the thread's private buffer.
//
// Thread-safety contract: recording is safe from any number of threads
// concurrently; trace_to_json()/trace_write()/trace_reset() must be called
// only when no instrumented work is in flight (after ThreadPool
// wait_idle()/join — both establish the needed happens-before edge).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#ifndef NA_TRACE_ENABLED
#define NA_TRACE_ENABLED 1
#endif

namespace na::obs {

/// One span/instant argument: a static-string key with either an integer
/// or a static-string value.  Keys and string values must outlive the
/// recorder (string literals in practice) — events store the pointers.
struct TraceArg {
  const char* key;
  long long value;
  const char* str;  ///< non-null: string argument, `value` ignored

  constexpr TraceArg() : key(nullptr), value(0), str(nullptr) {}
  constexpr TraceArg(const char* k, long long v) : key(k), value(v), str(nullptr) {}
  constexpr TraceArg(const char* k, int v) : key(k), value(v), str(nullptr) {}
  constexpr TraceArg(const char* k, const char* s) : key(k), value(0), str(s) {}
};

/// True when the tracing macros were compiled in (NA_TRACE=ON).
bool trace_compiled_in();

/// Runtime switch.  Enabling (re)sets the trace epoch only on the first
/// enable or after trace_reset(), so disable/enable pairs keep one
/// continuous timeline.
void trace_enable();
void trace_disable();
bool trace_enabled();

/// Drops every recorded event and clears the epoch.  Buffers of live
/// threads stay registered.
void trace_reset();

/// A merged, sorted view of one recorded event — the introspection hook
/// the tests use to check per-thread monotonicity and nesting without
/// parsing JSON.
struct TraceEventView {
  const char* name;
  std::uint64_t ts;   ///< ns since epoch
  std::uint64_t dur;  ///< ns; 0 for instants
  int tid;            ///< registry-assigned small id (registration order)
  std::uint64_t seq;  ///< per-thread recording sequence number
  char ph;            ///< 'X' complete span, 'i' instant, 'C' counter
  std::vector<TraceArg> args;
};

/// Merge-sorted snapshot of everything recorded so far.
std::vector<TraceEventView> trace_events();

/// Serialises the merged events as Chrome trace-event JSON.  Byte-stable:
/// two calls over the same recorded events return identical strings.
std::string trace_to_json();

/// Writes trace_to_json() to `path`; false (with errno intact) on failure.
bool trace_write(const std::string& path);

// ----- streaming flush -------------------------------------------------------
// Long-lived processes (the na_serve daemon) cannot buffer trace events
// until exit: a stream writes the same Chrome-JSON document incrementally.
// trace_stream_open() emits the document header, each trace_stream_flush()
// serialises every event buffered so far (sorted with the same comparator
// as the one-shot flush) and *drops* it from the thread buffers, and
// trace_stream_close() emits the footer.  When every flush happens at a
// quiescent point whose events all precede later recordings in time, the
// streamed file is byte-identical to a one-shot trace_write() of the same
// events.  Same thread-safety contract as trace_to_json(): call only when
// no instrumented work is in flight (e.g. after ThreadPool::wait_idle()).

/// Opens `path` and writes the document header.  False (errno intact) when
/// the file cannot be opened or a stream is already active.
bool trace_stream_open(const std::string& path);
/// Serialises and drops everything buffered; returns the events written.
size_t trace_stream_flush();
/// Final flush plus document footer; false on write failure.  No-op false
/// when no stream is active.
bool trace_stream_close();
bool trace_stream_active();
/// Events currently sitting in thread buffers (not yet stream-flushed) —
/// the bound the daemon's flush-at-idle policy keeps small.
size_t trace_buffered_events();

// ----- flight recorder -------------------------------------------------------
// The other way a long-lived process keeps tracing always on: instead of
// streaming everything out, every thread buffer becomes a ring holding
// only its last `events_per_thread` events.  Memory is then fixed —
// threads x capacity x sizeof(event) — and what the rings hold at any
// moment is the recent history ("what was the daemon doing just now"),
// dumpable on demand into a normal Chrome-JSON trace: the black box you
// read after something went wrong, not a full flight log.
//
// Recording into a ring stays lock-free and owner-thread-only: wrapping
// overwrites the oldest event and advances the buffer's base sequence
// number, so dumps stay byte-stable and per-thread seq stays monotonic.
// Dumps obey the same quiescence contract as every other flush — the
// daemon takes its flush gate exclusive first (DESIGN §11 has the
// happens-before argument).  Combining a ring with a streaming flush is
// pointless (the flush would drain the ring); the daemon rejects the
// flag combination.

/// Bounds every thread buffer to the last `events_per_thread` events;
/// 0 restores unbounded buffering.  Call before the instrumented work
/// starts — existing over-capacity buffers shed their oldest events on
/// the owning thread's next record.
void trace_flight_enable(size_t events_per_thread);
bool trace_flight_enabled();
size_t trace_flight_capacity();
/// Events overwritten (lost to ring wrap-around) since the recorder was
/// enabled or reset.
std::uint64_t trace_flight_dropped();
/// Writes everything the rings currently retain as a Chrome-JSON trace.
/// Same quiescence contract as trace_write(); false when the flight
/// recorder is off or the file cannot be written.
bool trace_flight_dump(const std::string& path);

// ----- slow-request tail sampling --------------------------------------------
// The ring answers "what is the daemon doing now"; the slow log answers
// "what did the slow request do".  A layer that times its own work (the
// session host times every op body) calls trace_slow_capture() when an
// execution exceeded its threshold: the calling thread's retained events
// within the [start_ns, end_ns] window — the span subtree the op emitted,
// still sitting in the thread's ring — are appended to the slow log as
// one self-contained line-JSON record.  Tail sampling: nothing is decided
// up front, yet every slow request leaves full evidence, at ring cost.
//
// Capture reads only the calling thread's own buffer (no cross-thread
// peeking, no quiescence needed); the log file itself is mutex-guarded.

/// Opens (truncates) the slow-request log.  False when a log is already
/// open or the file cannot be created.
bool trace_slow_log_open(const std::string& path);
/// Closes the log; false when none is open.
bool trace_slow_log_close();
bool trace_slow_log_active();
/// Records appended since the log was opened.
std::uint64_t trace_slow_log_records();
/// Appends {"label", "ms", "events": [...]} covering the calling thread's
/// retained events with start timestamps in [start_ns, end_ns].  Returns
/// the number of events written; 0 (and no record) when no log is open.
/// `label` must be a static string.
size_t trace_slow_capture(const char* label, std::uint64_t start_ns,
                          std::uint64_t end_ns, double ms);

/// Current trace-clock timestamp (ns since the recorder epoch) — the
/// window boundaries trace_slow_capture() expects.
std::uint64_t trace_now_ns();

namespace detail {

extern std::atomic<bool> g_enabled;

inline bool on() { return g_enabled.load(std::memory_order_relaxed); }

/// Current ns-since-epoch timestamp (epoch = first enable).
std::uint64_t now_ns();

void record_complete(const char* name, std::uint64_t ts, std::uint64_t dur,
                     const TraceArg* args, int nargs);
void record_instant(const char* name, const TraceArg* args, int nargs);
/// Counter ("C") sample: one series value at the current timestamp.
/// Viewers plot same-named counters per thread as a time series (queue
/// depths, cumulative expansion counts, ...).
void record_counter(const char* name, const char* series, long long value);

}  // namespace detail

/// Maximum arguments one span or instant can carry.
inline constexpr int kMaxTraceArgs = 6;

#if NA_TRACE_ENABLED

/// RAII span: records one complete ("X") event covering its lifetime.
/// When tracing is disabled at construction the span is inert (one branch
/// per method).  Arguments added via arg() land on the event.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (detail::on()) {
      name_ = name;
      start_ = detail::now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_complete(name_, start_, detail::now_ns() - start_, args_,
                              nargs_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void arg(const char* key, long long v) {
    if (name_ != nullptr && nargs_ < kMaxTraceArgs) args_[nargs_++] = {key, v};
  }
  void arg(const char* key, int v) { arg(key, static_cast<long long>(v)); }
  void arg(const char* key, long v) { arg(key, static_cast<long long>(v)); }
  void arg(const char* key, unsigned v) { arg(key, static_cast<long long>(v)); }
  void arg(const char* key, size_t v) { arg(key, static_cast<long long>(v)); }
  void arg(const char* key, const char* s) {
    if (name_ != nullptr && nargs_ < kMaxTraceArgs) args_[nargs_++] = {key, s};
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  TraceArg args_[kMaxTraceArgs] = {};
  int nargs_ = 0;
};

#define NA_OBS_CONCAT2(a, b) a##b
#define NA_OBS_CONCAT(a, b) NA_OBS_CONCAT2(a, b)

/// Anonymous span covering the rest of the enclosing scope.
#define NA_TRACE_SCOPE(name) \
  ::na::obs::TraceSpan NA_OBS_CONCAT(na_trace_span_, __LINE__)(name)

/// Named span — use when arguments are attached later via `var.arg(...)`.
#define NA_TRACE_SPAN(var, name) ::na::obs::TraceSpan var(name)

/// Instant event with optional TraceArg-style arguments:
///   NA_TRACE_INSTANT("route.respec", {"pos", q}, {"net", (long long)n});
#define NA_TRACE_INSTANT(name, ...)                                     \
  do {                                                                  \
    if (::na::obs::detail::on()) {                                      \
      const ::na::obs::TraceArg na_trace_args_[] = {__VA_ARGS__};       \
      ::na::obs::detail::record_instant(                                \
          name, na_trace_args_,                                         \
          static_cast<int>(sizeof(na_trace_args_) /                     \
                           sizeof(na_trace_args_[0])));                 \
    }                                                                   \
  } while (0)

/// Instant event with no arguments.
#define NA_TRACE_MARK(name)                                   \
  do {                                                        \
    if (::na::obs::detail::on()) {                            \
      ::na::obs::detail::record_instant(name, nullptr, 0);    \
    }                                                         \
  } while (0)

/// Counter sample:
///   NA_TRACE_COUNTER("pool.queue", "queued", depth);
/// `name` and `series` must be string literals (the event stores the
/// pointers); `value` is any integral expression.
#define NA_TRACE_COUNTER(name, series, value)                            \
  do {                                                                   \
    if (::na::obs::detail::on()) {                                       \
      ::na::obs::detail::record_counter(name, series,                    \
                                        static_cast<long long>(value));  \
    }                                                                    \
  } while (0)

#else  // !NA_TRACE_ENABLED — every macro compiles to nothing.

/// Inert stand-in so `NA_TRACE_SPAN(span, ...); span.arg(...)` still
/// compiles; the optimiser erases it entirely.
struct NullTraceSpan {
  void arg(const char*, long long) {}
  void arg(const char*, int) {}
  void arg(const char*, long) {}
  void arg(const char*, unsigned) {}
  void arg(const char*, size_t) {}
  void arg(const char*, const char*) {}
};

#define NA_TRACE_SCOPE(name) ((void)0)
#define NA_TRACE_SPAN(var, name) \
  ::na::obs::NullTraceSpan var;  \
  (void)var
#define NA_TRACE_INSTANT(name, ...) ((void)0)
#define NA_TRACE_MARK(name) ((void)0)
#define NA_TRACE_COUNTER(name, series, value) ((void)0)

#endif  // NA_TRACE_ENABLED

}  // namespace na::obs
