#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace na::obs {
namespace {

/// One recorded event.  Fixed-size — the thread buffers are plain vectors
/// of these, so recording is a push_back and nothing else.
struct Event {
  const char* name;
  std::uint64_t ts;
  std::uint64_t dur;
  char ph;  // 'X' or 'i'
  std::uint8_t nargs;
  TraceArg args[kMaxTraceArgs] = {};
};

/// Per-thread event buffer.  Appended to only by its owning thread; read
/// by the flushing thread after the owner has quiesced (see the contract
/// in trace.hpp).  Owned by the registry so it survives thread exit.
struct ThreadBuffer {
  int tid = 0;
  std::vector<Event> events;
  /// Recording sequence number of events[0] — nonzero once a streaming
  /// flush has dropped earlier events, so per-thread `seq` stays globally
  /// monotonic across chunks.
  std::uint64_t seq_base = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint64_t epoch = 0;  ///< steady_clock ns at first enable; 0 = unset
  // Streaming flush state (trace_stream_*): open file plus whether any
  // event was already written (comma placement).
  std::FILE* stream = nullptr;
  bool stream_wrote_any = false;

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: outlives thread exit
    return *r;
  }
};

thread_local ThreadBuffer* tl_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (tl_buffer == nullptr) {
    Registry& reg = Registry::instance();
    std::lock_guard lock(reg.mu);
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<int>(reg.buffers.size());
    tl_buffer = buf.get();
    reg.buffers.push_back(std::move(buf));
  }
  return *tl_buffer;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Chrome trace `ts`/`dur` are microseconds; emit ns-precise decimals.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

/// (ts, tid, seq) comparator shared by the one-shot and streaming flush:
/// byte-stable output for a fixed event set.
bool event_order(const TraceEventView& a, const TraceEventView& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.tid != b.tid) return a.tid < b.tid;
  return a.seq < b.seq;
}

/// Serialises one event as a Chrome trace-event object (no separator).
void append_event_json(std::string& out, const TraceEventView& e) {
  char buf[64];
  out += "{\"name\":\"";
  append_json_escaped(out, e.name);
  out += "\",\"cat\":\"na\",\"ph\":\"";
  out += e.ph;
  out += "\",\"ts\":";
  append_us(out, e.ts);
  if (e.ph == 'X') {
    out += ",\"dur\":";
    append_us(out, e.dur);
  } else if (e.ph == 'i') {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }  // counters ('C') carry only their args
  std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%d", e.tid);
  out += buf;
  if (!e.args.empty()) {
    out += ",\"args\":{";
    for (size_t a = 0; a < e.args.size(); ++a) {
      if (a > 0) out += ',';
      out += '"';
      append_json_escaped(out, e.args[a].key);
      out += "\":";
      if (e.args[a].str != nullptr) {
        out += '"';
        append_json_escaped(out, e.args[a].str);
        out += '"';
      } else {
        std::snprintf(buf, sizeof buf, "%lld", e.args[a].value);
        out += buf;
      }
    }
    out += '}';
  }
  out += '}';
}

constexpr const char* kJsonHeader = "{\"traceEvents\":[\n";
constexpr const char* kJsonFooter = "],\"displayTimeUnit\":\"ms\"}\n";

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  const std::uint64_t epoch = Registry::instance().epoch;
  const std::uint64_t now = steady_ns();
  return now >= epoch ? now - epoch : 0;
}

void record_complete(const char* name, std::uint64_t ts, std::uint64_t dur,
                     const TraceArg* args, int nargs) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, ts, dur, 'X', static_cast<std::uint8_t>(nargs), {}};
  for (int i = 0; i < nargs && i < kMaxTraceArgs; ++i) e.args[i] = args[i];
  buf.events.push_back(e);
}

void record_instant(const char* name, const TraceArg* args, int nargs) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, now_ns(), 0, 'i', static_cast<std::uint8_t>(nargs), {}};
  for (int i = 0; i < nargs && i < kMaxTraceArgs; ++i) e.args[i] = args[i];
  buf.events.push_back(e);
}

void record_counter(const char* name, const char* series, long long value) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, now_ns(), 0, 'C', 1, {}};
  e.args[0] = {series, value};
  buf.events.push_back(e);
}

}  // namespace detail

bool trace_compiled_in() { return NA_TRACE_ENABLED != 0; }

void trace_enable() {
  Registry& reg = Registry::instance();
  {
    std::lock_guard lock(reg.mu);
    if (reg.epoch == 0) reg.epoch = steady_ns();
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

bool trace_enabled() { return detail::on(); }

void trace_reset() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  for (auto& buf : reg.buffers) {
    buf->events.clear();
    buf->seq_base = 0;
  }
  reg.epoch = 0;
}

std::vector<TraceEventView> trace_events() {
  Registry& reg = Registry::instance();
  std::vector<TraceEventView> out;
  {
    std::lock_guard lock(reg.mu);
    for (const auto& buf : reg.buffers) {
      for (std::uint64_t i = 0; i < buf->events.size(); ++i) {
        const Event& e = buf->events[i];
        TraceEventView v{e.name, e.ts, e.dur, buf->tid, buf->seq_base + i,
                         e.ph,   {}};
        v.args.assign(e.args, e.args + e.nargs);
        out.push_back(std::move(v));
      }
    }
  }
  // Merge sort: global timestamp order, ties broken by (tid, seq) so the
  // result is deterministic for a fixed event set.
  std::stable_sort(out.begin(), out.end(), event_order);
  return out;
}

std::string trace_to_json() {
  const std::vector<TraceEventView> events = trace_events();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += kJsonHeader;
  for (size_t i = 0; i < events.size(); ++i) {
    append_event_json(out, events[i]);
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += kJsonFooter;
  return out;
}

bool trace_write(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

bool trace_stream_open(const std::string& path) {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  if (reg.stream != nullptr) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  if (std::fputs(kJsonHeader, f) < 0) {
    std::fclose(f);
    return false;
  }
  reg.stream = f;
  reg.stream_wrote_any = false;
  return true;
}

size_t trace_stream_flush() {
  Registry& reg = Registry::instance();
  // Everything under the registry lock: flushes happen at quiescent points,
  // so holding it across the file write contends with nothing.
  std::vector<TraceEventView> events;
  std::FILE* f = nullptr;
  {
    std::lock_guard lock(reg.mu);
    if (reg.stream == nullptr) return 0;
    f = reg.stream;
    for (auto& buf : reg.buffers) {
      for (std::uint64_t i = 0; i < buf->events.size(); ++i) {
        const Event& e = buf->events[i];
        TraceEventView v{e.name, e.ts, e.dur, buf->tid, buf->seq_base + i,
                         e.ph,   {}};
        v.args.assign(e.args, e.args + e.nargs);
        events.push_back(std::move(v));
      }
      buf->seq_base += buf->events.size();
      buf->events.clear();
    }
    if (events.empty()) return 0;
    std::stable_sort(events.begin(), events.end(), event_order);
    std::string out;
    out.reserve(events.size() * 96);
    for (const TraceEventView& e : events) {
      if (reg.stream_wrote_any) out += ",\n";
      append_event_json(out, e);
      reg.stream_wrote_any = true;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fflush(f);
  }
  return events.size();
}

bool trace_stream_close() {
  trace_stream_flush();
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  if (reg.stream == nullptr) return false;
  bool ok = true;
  if (reg.stream_wrote_any) ok = std::fputc('\n', reg.stream) != EOF;
  ok = std::fputs(kJsonFooter, reg.stream) >= 0 && ok;
  ok = std::fclose(reg.stream) == 0 && ok;
  reg.stream = nullptr;
  reg.stream_wrote_any = false;
  return ok;
}

bool trace_stream_active() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  return reg.stream != nullptr;
}

size_t trace_buffered_events() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  size_t n = 0;
  for (const auto& buf : reg.buffers) n += buf->events.size();
  return n;
}

}  // namespace na::obs
