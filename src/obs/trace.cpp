#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace na::obs {
namespace {

/// One recorded event.  Fixed-size — the thread buffers are plain vectors
/// of these, so recording is a push_back and nothing else.
struct Event {
  const char* name;
  std::uint64_t ts;
  std::uint64_t dur;
  char ph;  // 'X' or 'i'
  std::uint8_t nargs;
  TraceArg args[kMaxTraceArgs] = {};
};

/// Per-thread event buffer.  Appended to only by its owning thread; read
/// by the flushing thread after the owner has quiesced (see the contract
/// in trace.hpp).  Owned by the registry so it survives thread exit.
struct ThreadBuffer {
  int tid = 0;
  std::vector<Event> events;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint64_t epoch = 0;  ///< steady_clock ns at first enable; 0 = unset

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: outlives thread exit
    return *r;
  }
};

thread_local ThreadBuffer* tl_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (tl_buffer == nullptr) {
    Registry& reg = Registry::instance();
    std::lock_guard lock(reg.mu);
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<int>(reg.buffers.size());
    tl_buffer = buf.get();
    reg.buffers.push_back(std::move(buf));
  }
  return *tl_buffer;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Chrome trace `ts`/`dur` are microseconds; emit ns-precise decimals.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  const std::uint64_t epoch = Registry::instance().epoch;
  const std::uint64_t now = steady_ns();
  return now >= epoch ? now - epoch : 0;
}

void record_complete(const char* name, std::uint64_t ts, std::uint64_t dur,
                     const TraceArg* args, int nargs) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, ts, dur, 'X', static_cast<std::uint8_t>(nargs), {}};
  for (int i = 0; i < nargs && i < kMaxTraceArgs; ++i) e.args[i] = args[i];
  buf.events.push_back(e);
}

void record_instant(const char* name, const TraceArg* args, int nargs) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, now_ns(), 0, 'i', static_cast<std::uint8_t>(nargs), {}};
  for (int i = 0; i < nargs && i < kMaxTraceArgs; ++i) e.args[i] = args[i];
  buf.events.push_back(e);
}

void record_counter(const char* name, const char* series, long long value) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, now_ns(), 0, 'C', 1, {}};
  e.args[0] = {series, value};
  buf.events.push_back(e);
}

}  // namespace detail

bool trace_compiled_in() { return NA_TRACE_ENABLED != 0; }

void trace_enable() {
  Registry& reg = Registry::instance();
  {
    std::lock_guard lock(reg.mu);
    if (reg.epoch == 0) reg.epoch = steady_ns();
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

bool trace_enabled() { return detail::on(); }

void trace_reset() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  for (auto& buf : reg.buffers) buf->events.clear();
  reg.epoch = 0;
}

std::vector<TraceEventView> trace_events() {
  Registry& reg = Registry::instance();
  std::vector<TraceEventView> out;
  {
    std::lock_guard lock(reg.mu);
    for (const auto& buf : reg.buffers) {
      for (std::uint64_t i = 0; i < buf->events.size(); ++i) {
        const Event& e = buf->events[i];
        TraceEventView v{e.name, e.ts, e.dur, buf->tid, i, e.ph, {}};
        v.args.assign(e.args, e.args + e.nargs);
        out.push_back(std::move(v));
      }
    }
  }
  // Merge sort: global timestamp order, ties broken by (tid, seq) so the
  // result is deterministic for a fixed event set.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEventView& a, const TraceEventView& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.seq < b.seq;
                   });
  return out;
}

std::string trace_to_json() {
  const std::vector<TraceEventView> events = trace_events();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[\n";
  char buf[64];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEventView& e = events[i];
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"na\",\"ph\":\"";
    out += e.ph;
    out += "\",\"ts\":";
    append_us(out, e.ts);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, e.dur);
    } else if (e.ph == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }  // counters ('C') carry only their args
    std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%d", e.tid);
    out += buf;
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out += ',';
        out += '"';
        append_json_escaped(out, e.args[a].key);
        out += "\":";
        if (e.args[a].str != nullptr) {
          out += '"';
          append_json_escaped(out, e.args[a].str);
          out += '"';
        } else {
          std::snprintf(buf, sizeof buf, "%lld", e.args[a].value);
          out += buf;
        }
      }
      out += '}';
    }
    out += '}';
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool trace_write(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace na::obs
