#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace na::obs {
namespace {

/// One recorded event.  Fixed-size — the thread buffers are plain vectors
/// of these, so recording is a push_back and nothing else.
struct Event {
  const char* name;
  std::uint64_t ts;
  std::uint64_t dur;
  char ph;  // 'X' or 'i'
  std::uint8_t nargs;
  TraceArg args[kMaxTraceArgs] = {};
};

/// Per-thread event buffer.  Appended to only by its owning thread; read
/// by the flushing thread after the owner has quiesced (see the contract
/// in trace.hpp).  Owned by the registry so it survives thread exit.
struct ThreadBuffer {
  int tid = 0;
  std::vector<Event> events;
  /// Recording sequence number of the *oldest* retained event — nonzero
  /// once a streaming flush or a ring wrap has dropped earlier events, so
  /// per-thread `seq` stays globally monotonic across chunks.
  std::uint64_t seq_base = 0;
  /// Flight-recorder ring head: index of the oldest event once the buffer
  /// has wrapped.  0 while the buffer is a plain append log, so every
  /// reader can uniformly iterate `events[(ring_head + i) % size]`.
  size_t ring_head = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint64_t epoch = 0;  ///< steady_clock ns at first enable; 0 = unset
  // Streaming flush state (trace_stream_*): open file plus whether any
  // event was already written (comma placement).
  std::FILE* stream = nullptr;
  bool stream_wrote_any = false;
  // Slow-request log (trace_slow_*).  Guarded by its own mutex so a
  // capture (pool thread, holding the daemon's flush gate shared) never
  // contends with recording threads creating buffers under `mu`.
  std::mutex slow_mu;
  std::FILE* slow_log = nullptr;

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: outlives thread exit
    return *r;
  }
};

thread_local ThreadBuffer* tl_buffer = nullptr;

/// Flight-recorder capacity in events per thread; 0 = unbounded (plain
/// append).  Read relaxed by every recording thread on each push.
std::atomic<size_t> g_flight_capacity{0};
/// Events lost to ring wrap-around since enable/reset.
std::atomic<std::uint64_t> g_flight_dropped{0};
std::atomic<std::uint64_t> g_slow_records{0};

/// Appends `e` to `buf`, honouring the flight-recorder bound.  Owner
/// thread only.  Below capacity this is the plain push_back of the
/// unbounded mode; at capacity the oldest event is overwritten in place
/// and the ring head and base sequence advance, so the buffer's memory
/// never grows past capacity * sizeof(Event).
void push_event(ThreadBuffer& buf, const Event& e) {
  const size_t cap = g_flight_capacity.load(std::memory_order_relaxed);
  if (cap == 0 || buf.events.size() < cap) {
    buf.events.push_back(e);
    return;
  }
  if (buf.events.size() > cap) {
    // Capacity shrank (or the recorder was enabled over an existing
    // buffer): restore logical order, shed the oldest, release the
    // excess memory.  One-time cost on the owning thread's next record.
    std::rotate(buf.events.begin(),
                buf.events.begin() + static_cast<std::ptrdiff_t>(buf.ring_head),
                buf.events.end());
    const size_t shed = buf.events.size() - cap;
    buf.events.erase(buf.events.begin(),
                     buf.events.begin() + static_cast<std::ptrdiff_t>(shed));
    buf.events.shrink_to_fit();
    buf.ring_head = 0;
    buf.seq_base += shed;
    g_flight_dropped.fetch_add(shed, std::memory_order_relaxed);
  }
  buf.events[buf.ring_head] = e;
  buf.ring_head = (buf.ring_head + 1) % buf.events.size();
  ++buf.seq_base;
  g_flight_dropped.fetch_add(1, std::memory_order_relaxed);
}

ThreadBuffer& local_buffer() {
  if (tl_buffer == nullptr) {
    Registry& reg = Registry::instance();
    std::lock_guard lock(reg.mu);
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<int>(reg.buffers.size());
    tl_buffer = buf.get();
    reg.buffers.push_back(std::move(buf));
  }
  return *tl_buffer;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Chrome trace `ts`/`dur` are microseconds; emit ns-precise decimals.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

/// (ts, tid, seq) comparator shared by the one-shot and streaming flush:
/// byte-stable output for a fixed event set.
bool event_order(const TraceEventView& a, const TraceEventView& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.tid != b.tid) return a.tid < b.tid;
  return a.seq < b.seq;
}

/// Serialises one event as a Chrome trace-event object (no separator).
void append_event_json(std::string& out, const TraceEventView& e) {
  char buf[64];
  out += "{\"name\":\"";
  append_json_escaped(out, e.name);
  out += "\",\"cat\":\"na\",\"ph\":\"";
  out += e.ph;
  out += "\",\"ts\":";
  append_us(out, e.ts);
  if (e.ph == 'X') {
    out += ",\"dur\":";
    append_us(out, e.dur);
  } else if (e.ph == 'i') {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }  // counters ('C') carry only their args
  std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%d", e.tid);
  out += buf;
  if (!e.args.empty()) {
    out += ",\"args\":{";
    for (size_t a = 0; a < e.args.size(); ++a) {
      if (a > 0) out += ',';
      out += '"';
      append_json_escaped(out, e.args[a].key);
      out += "\":";
      if (e.args[a].str != nullptr) {
        out += '"';
        append_json_escaped(out, e.args[a].str);
        out += '"';
      } else {
        std::snprintf(buf, sizeof buf, "%lld", e.args[a].value);
        out += buf;
      }
    }
    out += '}';
  }
  out += '}';
}

constexpr const char* kJsonHeader = "{\"traceEvents\":[\n";
constexpr const char* kJsonFooter = "],\"displayTimeUnit\":\"ms\"}\n";

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  const std::uint64_t epoch = Registry::instance().epoch;
  const std::uint64_t now = steady_ns();
  return now >= epoch ? now - epoch : 0;
}

void record_complete(const char* name, std::uint64_t ts, std::uint64_t dur,
                     const TraceArg* args, int nargs) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, ts, dur, 'X', static_cast<std::uint8_t>(nargs), {}};
  for (int i = 0; i < nargs && i < kMaxTraceArgs; ++i) e.args[i] = args[i];
  push_event(buf, e);
}

void record_instant(const char* name, const TraceArg* args, int nargs) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, now_ns(), 0, 'i', static_cast<std::uint8_t>(nargs), {}};
  for (int i = 0; i < nargs && i < kMaxTraceArgs; ++i) e.args[i] = args[i];
  push_event(buf, e);
}

void record_counter(const char* name, const char* series, long long value) {
  ThreadBuffer& buf = local_buffer();
  Event e{name, now_ns(), 0, 'C', 1, {}};
  e.args[0] = {series, value};
  push_event(buf, e);
}

}  // namespace detail

bool trace_compiled_in() { return NA_TRACE_ENABLED != 0; }

void trace_enable() {
  Registry& reg = Registry::instance();
  {
    std::lock_guard lock(reg.mu);
    if (reg.epoch == 0) reg.epoch = steady_ns();
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

bool trace_enabled() { return detail::on(); }

void trace_reset() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  for (auto& buf : reg.buffers) {
    buf->events.clear();
    buf->seq_base = 0;
    buf->ring_head = 0;
  }
  reg.epoch = 0;
  g_flight_dropped.store(0, std::memory_order_relaxed);
}

namespace {

/// Appends every retained event of `buf` to `out` in recording order —
/// ring-aware: the oldest event sits at ring_head, so logical position i
/// maps to slot (ring_head + i) % size and carries seq = seq_base + i.
/// Plain append-log buffers have ring_head == 0, making this the identity
/// iteration.  Caller holds the registry mutex or owns the buffer.
void collect_buffer(const ThreadBuffer& buf, std::vector<TraceEventView>& out) {
  const size_t n = buf.events.size();
  for (size_t i = 0; i < n; ++i) {
    const Event& e = buf.events[(buf.ring_head + i) % n];
    TraceEventView v{e.name,
                     e.ts,
                     e.dur,
                     buf.tid,
                     buf.seq_base + i,
                     e.ph,
                     {}};
    v.args.assign(e.args, e.args + e.nargs);
    out.push_back(std::move(v));
  }
}

}  // namespace

std::vector<TraceEventView> trace_events() {
  Registry& reg = Registry::instance();
  std::vector<TraceEventView> out;
  {
    std::lock_guard lock(reg.mu);
    for (const auto& buf : reg.buffers) collect_buffer(*buf, out);
  }
  // Merge sort: global timestamp order, ties broken by (tid, seq) so the
  // result is deterministic for a fixed event set.
  std::stable_sort(out.begin(), out.end(), event_order);
  return out;
}

std::string trace_to_json() {
  const std::vector<TraceEventView> events = trace_events();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += kJsonHeader;
  for (size_t i = 0; i < events.size(); ++i) {
    append_event_json(out, events[i]);
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += kJsonFooter;
  return out;
}

bool trace_write(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

bool trace_stream_open(const std::string& path) {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  if (reg.stream != nullptr) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  if (std::fputs(kJsonHeader, f) < 0) {
    std::fclose(f);
    return false;
  }
  reg.stream = f;
  reg.stream_wrote_any = false;
  return true;
}

size_t trace_stream_flush() {
  Registry& reg = Registry::instance();
  // Everything under the registry lock: flushes happen at quiescent points,
  // so holding it across the file write contends with nothing.
  std::vector<TraceEventView> events;
  std::FILE* f = nullptr;
  {
    std::lock_guard lock(reg.mu);
    if (reg.stream == nullptr) return 0;
    f = reg.stream;
    for (auto& buf : reg.buffers) {
      collect_buffer(*buf, events);
      buf->seq_base += buf->events.size();
      buf->events.clear();
      buf->ring_head = 0;
    }
    if (events.empty()) return 0;
    std::stable_sort(events.begin(), events.end(), event_order);
    std::string out;
    out.reserve(events.size() * 96);
    for (const TraceEventView& e : events) {
      if (reg.stream_wrote_any) out += ",\n";
      append_event_json(out, e);
      reg.stream_wrote_any = true;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fflush(f);
  }
  return events.size();
}

bool trace_stream_close() {
  trace_stream_flush();
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  if (reg.stream == nullptr) return false;
  bool ok = true;
  if (reg.stream_wrote_any) ok = std::fputc('\n', reg.stream) != EOF;
  ok = std::fputs(kJsonFooter, reg.stream) >= 0 && ok;
  ok = std::fclose(reg.stream) == 0 && ok;
  reg.stream = nullptr;
  reg.stream_wrote_any = false;
  return ok;
}

bool trace_stream_active() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  return reg.stream != nullptr;
}

size_t trace_buffered_events() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.mu);
  size_t n = 0;
  for (const auto& buf : reg.buffers) n += buf->events.size();
  return n;
}

// ----- flight recorder -------------------------------------------------------

void trace_flight_enable(size_t events_per_thread) {
  g_flight_capacity.store(events_per_thread, std::memory_order_relaxed);
  g_flight_dropped.store(0, std::memory_order_relaxed);
}

bool trace_flight_enabled() {
  return g_flight_capacity.load(std::memory_order_relaxed) > 0;
}

size_t trace_flight_capacity() {
  return g_flight_capacity.load(std::memory_order_relaxed);
}

std::uint64_t trace_flight_dropped() {
  return g_flight_dropped.load(std::memory_order_relaxed);
}

bool trace_flight_dump(const std::string& path) {
  if (!trace_flight_enabled()) return false;
  // The rings *are* the retained events, so a dump is a one-shot write of
  // everything buffered — collection is ring-aware, emission identical to
  // trace_write().
  return trace_write(path);
}

// ----- slow-request tail sampling --------------------------------------------

bool trace_slow_log_open(const std::string& path) {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.slow_mu);
  if (reg.slow_log != nullptr) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  reg.slow_log = f;
  g_slow_records.store(0, std::memory_order_relaxed);
  return true;
}

bool trace_slow_log_close() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.slow_mu);
  if (reg.slow_log == nullptr) return false;
  const bool ok = std::fclose(reg.slow_log) == 0;
  reg.slow_log = nullptr;
  return ok;
}

bool trace_slow_log_active() {
  Registry& reg = Registry::instance();
  std::lock_guard lock(reg.slow_mu);
  return reg.slow_log != nullptr;
}

std::uint64_t trace_slow_log_records() {
  return g_slow_records.load(std::memory_order_relaxed);
}

size_t trace_slow_capture(const char* label, std::uint64_t start_ns,
                          std::uint64_t end_ns, double ms) {
  Registry& reg = Registry::instance();
  {
    // Cheap no-log fast path; the real write re-checks under the lock.
    std::lock_guard lock(reg.slow_mu);
    if (reg.slow_log == nullptr) return 0;
  }
  // Serialise first, outside the log lock: only the calling thread's own
  // buffer is read (it owns every write to it), so no registry lock and
  // no quiescence are needed — this is why tail sampling can run inside
  // the request path.
  std::vector<TraceEventView> window;
  if (tl_buffer != nullptr) {
    std::vector<TraceEventView> all;
    collect_buffer(*tl_buffer, all);
    for (TraceEventView& v : all) {
      if (v.ts >= start_ns && v.ts <= end_ns) window.push_back(std::move(v));
    }
  }
  std::string out = "{\"label\":\"";
  append_json_escaped(out, label);
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "\",\"ms\":%.3f,\"start_ns\":%llu,\"end_ns\":%llu,\"events\":[",
                ms, static_cast<unsigned long long>(start_ns),
                static_cast<unsigned long long>(end_ns));
  out += buf;
  for (size_t i = 0; i < window.size(); ++i) {
    if (i > 0) out += ',';
    append_event_json(out, window[i]);
  }
  out += "]}\n";
  {
    std::lock_guard lock(reg.slow_mu);
    if (reg.slow_log == nullptr) return 0;  // closed between check and write
    std::fwrite(out.data(), 1, out.size(), reg.slow_log);
    std::fflush(reg.slow_log);
  }
  g_slow_records.fetch_add(1, std::memory_order_relaxed);
  return window.size();
}

std::uint64_t trace_now_ns() { return detail::now_ns(); }

}  // namespace na::obs
