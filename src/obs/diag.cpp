#include "obs/diag.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "obs/trace.hpp"

namespace na::obs {
namespace {

struct DiagState {
  std::mutex mu;
  std::map<std::string, int> counts;  ///< lines attempted per category
  std::FILE* sink = nullptr;          ///< nullptr = stderr

  static DiagState& instance() {
    static DiagState* s = new DiagState;
    return *s;
  }
};

}  // namespace

void diagf(const char* category, int limit, const char* fmt, ...) {
  char body[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);

  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  const int n = ++st.counts[category];
  std::FILE* out = st.sink != nullptr ? st.sink : stderr;
  if (n <= limit) {
    // One stream call per line: no interleaving between threads.
    char line[600];
    std::snprintf(line, sizeof line, "na[%s] %s\n", category, body);
    std::fputs(line, out);
    std::fflush(out);
    NA_TRACE_INSTANT(category, {"line", static_cast<long long>(n)});
  } else if (n == limit + 1) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "na[%s] (rate limit %d reached, further lines suppressed)\n",
                  category, limit);
    std::fputs(line, out);
    std::fflush(out);
  }
}

int diag_emitted(const char* category) {
  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  const auto it = st.counts.find(category);
  return it == st.counts.end() ? 0 : it->second;
}

void diag_reset() {
  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  st.counts.clear();
}

void diag_set_sink_for_testing(const char* path) {
  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  if (st.sink != nullptr) {
    std::fclose(st.sink);
    st.sink = nullptr;
  }
  if (path != nullptr) st.sink = std::fopen(path, "w");
}

}  // namespace na::obs
