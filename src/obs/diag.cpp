#include "obs/diag.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace na::obs {
namespace {

struct DiagState {
  struct Category {
    int count = 0;  ///< lines attempted
    int limit = 0;  ///< rate limit of the most recent diagf() call
  };
  std::mutex mu;
  std::map<std::string, Category> counts;
  std::FILE* sink = nullptr;  ///< nullptr = stderr

  static DiagState& instance() {
    static DiagState* s = new DiagState;
    return *s;
  }
};

}  // namespace

void diagf(const char* category, int limit, const char* fmt, ...) {
  char body[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);

  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  DiagState::Category& cat = st.counts[category];
  cat.limit = limit;
  const int n = ++cat.count;
  std::FILE* out = st.sink != nullptr ? st.sink : stderr;
  if (n <= limit) {
    // One stream call per line: no interleaving between threads.
    char line[600];
    std::snprintf(line, sizeof line, "na[%s] %s\n", category, body);
    std::fputs(line, out);
    std::fflush(out);
    NA_TRACE_INSTANT(category, {"line", static_cast<long long>(n)});
  } else if (n == limit + 1) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "na[%s] (rate limit %d reached, further lines suppressed)\n",
                  category, limit);
    std::fputs(line, out);
    std::fflush(out);
  }
}

int diag_emitted(const char* category) {
  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  const auto it = st.counts.find(category);
  return it == st.counts.end() ? 0 : it->second.count;
}

void diag_absorb(MetricsRegistry& reg) {
  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  for (const auto& [name, cat] : st.counts) {  // map: sorted, byte-stable
    reg.set("diag.lines." + name, static_cast<long long>(cat.count));
    const long long suppressed =
        cat.count > cat.limit ? cat.count - cat.limit : 0;
    reg.set("diag.suppressed." + name, suppressed);
  }
}

void diag_reset() {
  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  st.counts.clear();
}

void diag_set_sink_for_testing(const char* path) {
  DiagState& st = DiagState::instance();
  std::lock_guard lock(st.mu);
  if (st.sink != nullptr) {
    std::fclose(st.sink);
    st.sink = nullptr;
  }
  if (path != nullptr) st.sink = std::fopen(path, "w");
}

}  // namespace na::obs
