// Named-counter/timer registry and the one JSON emitter the CLIs, benches
// and tests share.
//
// The registry replaces the three independent, hand-printed stats structs
// (ParallelRouteStats, RegenCounters, DiagramStats) with a single ordered
// name -> value table that can be emitted as an aligned text block or a
// JSON object — one `--stats json` run yields every pipeline counter the
// paper's Table 6.1-style breakdowns need.  Absorbers that translate the
// pipeline structs into registry entries live in obs/stats_absorb.hpp
// (header-only, so na_obs itself stays dependency-free).
//
// JsonWriter is the low-level emitter underneath: a comma/escape-correct
// JSON builder used by MetricsRegistry, the bench BENCH_*.json records and
// anything else that used to hand-roll fprintf JSON.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace na::obs {

/// A metric value: integer counter or floating timer/ratio.  Implicit
/// construction keeps absorber code terse.
struct MetricValue {
  bool is_int = true;
  long long i = 0;
  double d = 0.0;

  MetricValue() = default;
  MetricValue(int v) : is_int(true), i(v) {}                  // NOLINT
  MetricValue(long v) : is_int(true), i(v) {}                 // NOLINT
  MetricValue(long long v) : is_int(true), i(v) {}            // NOLINT
  MetricValue(double v) : is_int(false), d(v) {}              // NOLINT
};

/// Incrementally built JSON document.  Handles commas, nesting and string
/// escaping; numbers are emitted with a fixed format so output is
/// byte-stable for a fixed input.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(bool v);  ///< JSON true/false
  JsonWriter& value(long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(double v);  ///< %.3f — timers are milliseconds
  JsonWriter& value(std::string_view v);
  /// Keeps string literals away from the bool overload.
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const MetricValue& v);
  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void before_value();
  std::string out_;
  std::vector<char> stack_;   ///< '{' or '['
  bool after_key_ = false;
  std::vector<bool> has_items_;
};

/// Ordered name -> value table.  set() keeps first-insertion order (so
/// emission order is the absorption order, stable and diff-friendly) and
/// overwrites on re-set; add() accumulates into an integer counter.
/// Histogram snapshots live in a parallel insertion-ordered table:
/// scalars render as before, histograms as summary lines (text), a
/// "histograms" object (JSON — present only when one was set, so
/// scalar-only emissions keep their old shape) and classic
/// `_bucket{le=...}` series (Prometheus).
class MetricsRegistry {
 public:
  void set(std::string name, MetricValue v);
  void add(std::string name, long long delta);
  /// Stores (or overwrites) a histogram snapshot under `name`.  By
  /// convention latency histograms record microseconds.
  void set_histogram(std::string name, HistogramData h);
  /// Copies every entry of `other` into this registry as `prefix + name`.
  /// Lets a binary that runs the pipeline twice (life_game's figures 6.6
  /// and 6.7) keep both runs' counters apart in one emission.
  void merge_prefixed(const MetricsRegistry& other, std::string_view prefix);

  bool empty() const { return entries_.empty() && histograms_.empty(); }
  size_t size() const { return entries_.size(); }
  /// Lookup for tests; nullptr when absent.
  const MetricValue* find(std::string_view name) const;
  const HistogramData* find_histogram(std::string_view name) const;

  /// Aligned `name  value` lines; histograms render one summary line each
  /// (count plus ms quantiles, assuming microsecond values).
  std::string to_text() const;
  /// One JSON object: {"schema_version": N, "metrics": {...}} plus a
  /// "histograms" object when any histogram was set.
  std::string to_json() const;
  /// Prometheus text exposition (version 0.0.4): every scalar as an
  /// untyped `na_<name>` sample, every histogram as cumulative
  /// `_bucket{le="..."}` series plus `_sum`/`_count`.  Metric names are
  /// sanitised ('.' and anything non-alphanumeric become '_'); `le`
  /// bounds are the raw recorded units (microseconds for latencies).
  std::string to_prometheus() const;

  /// Format version of to_json() (and of the bench records built on the
  /// same emitter) — bump when fields change meaning.  3: histograms.
  static constexpr int kSchemaVersion = 3;

 private:
  struct Entry {
    std::string name;
    MetricValue value;
  };
  struct HistEntry {
    std::string name;
    HistogramData data;
  };
  std::vector<Entry> entries_;
  std::vector<HistEntry> histograms_;
};

/// Aligned text table over MetricValue cells — the shared renderer behind
/// the benches' paper-vs-measured tables (one formatting path next to the
/// registry instead of a printf format string per bench).  Column widths
/// are fixed up front (header text or `min_width`, whichever is wider), so
/// a row can be rendered and printed the moment it is computed.
class MetricsTable {
 public:
  MetricsTable(std::string label_header, std::vector<std::string> columns,
               int label_width = 26, int min_width = 6);

  /// Appends a row: `label` left-aligned in the first column, one value
  /// per remaining column right-aligned.  Missing trailing values render
  /// empty.
  void add_row(std::string label, std::vector<MetricValue> values);

  size_t rows() const { return rows_.size(); }
  std::string header_text() const;
  std::string row_text(size_t i) const;
  std::string to_text() const;  ///< header plus every row

 private:
  std::string label_header_;
  std::vector<std::string> columns_;
  int label_width_;
  int min_width_;
  struct Row {
    std::string label;
    std::vector<MetricValue> values;
  };
  std::vector<Row> rows_;
};

/// Peak resident set size of this process in bytes; 0 when the platform
/// doesn't expose it.  The scale benches report it next to modules/sec.
long long peak_rss_bytes();

}  // namespace na::obs
