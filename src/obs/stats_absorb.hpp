// Absorbers: translate the pipeline's stats structs into MetricsRegistry
// entries under stable, prefixed names.
//
// Header-only on purpose — na_obs itself depends on nothing, and each
// absorber only reads plain struct fields, so any target that links both
// na_obs and the struct's library can include this without creating a
// dependency cycle between the static libraries.
//
// Naming scheme: <subsystem>.<counter>, timers suffixed "_ms", so a JSON
// consumer can group by prefix and a human can scan the text emission.
#pragma once

#include "core/generator.hpp"
#include "incremental/session.hpp"
#include "obs/metrics.hpp"
#include "route/router.hpp"
#include "schematic/metrics.hpp"

namespace na::obs {

inline void absorb(MetricsRegistry& reg, const RouteReport& r) {
  reg.set("route.nets_routed", r.nets_routed);
  reg.set("route.nets_failed", r.nets_failed);
  reg.set("route.connections_made", r.connections_made);
  reg.set("route.connections_failed", r.connections_failed);
  reg.set("route.retried_connections", r.retried_connections);
  reg.set("route.total_expansions", r.total_expansions);
}

inline void absorb(MetricsRegistry& reg, const ParallelRouteStats& s) {
  reg.set("route.spec.nets_speculated", s.nets_speculated);
  reg.set("route.spec.commits_clean", s.commits_clean);
  reg.set("route.spec.reroutes", s.reroutes);
  reg.set("route.spec.nets_gated", s.nets_gated);
  reg.set("route.spec.nets_respeculated", s.nets_respeculated);
  reg.set("route.spec.respec_hits", s.respec_hits);
  reg.set("route.spec.respec_stale", s.respec_stale);
  reg.set("route.pool.peak_queued", s.pool_peak_queued);
  reg.set("route.pool.urgent_drains", s.pool_urgent_drains);
}

inline void absorb(MetricsRegistry& reg, const DiagramStats& s) {
  reg.set("diagram.modules", s.modules);
  reg.set("diagram.nets", s.nets);
  reg.set("diagram.routed", s.routed);
  reg.set("diagram.unrouted", s.unrouted);
  reg.set("diagram.wire_length", s.wire_length);
  reg.set("diagram.bends", s.bends);
  reg.set("diagram.crossings", s.crossings);
  reg.set("diagram.branch_points", s.branch_points);
  reg.set("diagram.width", s.width);
  reg.set("diagram.height", s.height);
  reg.set("diagram.flow_violations", s.flow_violations);
}

inline void absorb(MetricsRegistry& reg, const RegenCounters& c) {
  reg.set("regen.updates", c.updates);
  reg.set("regen.incremental", c.incremental);
  reg.set("regen.full_regens", c.full_regens);
  reg.set("regen.edits_composed", c.edits_composed);
  reg.set("regen.modules_replaced", c.modules_replaced);
  reg.set("regen.modules_frozen", c.modules_frozen);
  reg.set("regen.nets_kept", c.nets_kept);
  reg.set("regen.nets_rerouted", c.nets_rerouted);
  reg.set("regen.nets_extended", c.nets_extended);
  reg.set("regen.cells_scrubbed", c.cells_scrubbed);
  reg.set("regen.route_expansions", c.route_expansions);
  reg.set("regen.region_validations", c.region_validations);
  reg.set("regen.full_validations", c.full_validations);
  reg.set("regen.validate_ms", c.validate_ms);
}

/// Phase timings of one generator run.
inline void absorb(MetricsRegistry& reg, const GeneratorResult& r) {
  reg.set("generate.place_ms", r.place_seconds * 1e3);
  reg.set("generate.route_ms", r.route_seconds * 1e3);
  absorb(reg, r.route);
  absorb(reg, r.speculation);
  absorb(reg, r.stats);
}

}  // namespace na::obs
