// Structured diagnostics: the stderr channel for warnings and debug
// traces from parallel code.
//
// Raw fprintf from worker/committer threads interleaves garbage on stderr
// the moment two threads emit at once.  diagf() instead formats the whole
// line into a private buffer and hands it to the stream in a single write,
// prefixed "na[<category>] " so downstream log scrapers can filter by
// subsystem.  Each category is rate-limited per process run: after `limit`
// lines one final "suppressed" notice is printed and the category goes
// quiet (counters keep counting, so a later limit raise would be honest).
// Every emitted line is mirrored as a trace instant when tracing is on,
// so diagnostics land on the same timeline as the spans around them.
#pragma once

#include <cstdarg>

namespace na::obs {

class MetricsRegistry;

/// Default per-category line budget.
inline constexpr int kDiagDefaultLimit = 64;

/// printf-style rate-limited diagnostic.  Thread-safe; one atomic write
/// per line.  `category` must be a string literal (it is stored and also
/// becomes the trace-event name).
#if defined(__GNUC__)
__attribute__((format(printf, 3, 4)))
#endif
void diagf(const char* category, int limit, const char* fmt, ...);

/// Diagnostic lines attempted (including suppressed) for `category` — test hook.
int diag_emitted(const char* category);

/// Exports every category's counters into `reg`: `diag.lines.<cat>`
/// (lines attempted) and `diag.suppressed.<cat>` (attempted past the
/// category's rate limit — the lines that never reached stderr).  A
/// nonzero suppressed count in a stats emission is the tell that the
/// visible log understates what happened.  Category iteration order is
/// sorted, so the emission stays byte-stable.
void diag_absorb(MetricsRegistry& reg);

/// Resets every category's counters — test hook.
void diag_reset();

/// Redirects diagnostics to `path` instead of stderr (nullptr restores
/// stderr) — test hook for asserting on output without capturing stderr.
void diag_set_sink_for_testing(const char* path);

}  // namespace na::obs
