// Incremental placement — layer 2b of the incremental regeneration engine.
//
// Clean modules are frozen at their cached absolute positions (the
// Appendix-E "-g" idea: the preplaced part forms a partition of its own);
// only the dirty module set is re-run through the pipeline of section 4.6 —
// seed-and-grow partitioning, box formation, module/box gravity placement.
// Each re-formed dirty partition is pinned back into the rectangular hole
// its modules vacated when the new layout still fits there (keeping the
// artwork visually stable across edits, the property the ESCHER editor
// loop and Weave-style verified layouts both care about); otherwise the
// partition-level gravity placement finds it a fresh spot around the
// frozen hull.
//
// The caller is expected to fall back to a full re-place when the result
// reports `feasible == false` (frozen placement could not be completed
// without overlap) — the second half of the fallback rule; the first half
// (too many dirty partitions) is decided by the session before calling.
#pragma once

#include "incremental/dirty.hpp"
#include "schematic/diagram.hpp"

namespace na {

struct IncPlaceResult {
  PlacementInfo info;        ///< merged partition/box structure, NEW ids
  int modules_replaced = 0;  ///< dirty modules placed this pass
  int modules_frozen = 0;    ///< clean modules kept at cached positions
  bool feasible = true;      ///< false: overlap — caller must re-place fully
};

/// Places `dia` (a fresh diagram over the edited network) incrementally
/// against the cached `old_dia`/`old_info`.  System terminals that survive
/// the edit keep their positions when possible; new ones go on the ring.
IncPlaceResult incremental_place(Diagram& dia, const Diagram& old_dia,
                                 const NetlistDiff& diff, const DirtyInfo& dirty,
                                 const PlacementInfo& old_info,
                                 const PlacerOptions& opt);

}  // namespace na
