// Structural netlist diff — layer 1 of the incremental regeneration engine.
//
// Two Network objects are compared by *stable identities*: modules and
// nets by name, terminals by (owning module name, terminal name) — the
// identities the ESCHER edit loop of paper section 6 preserves across
// edits, while the dense integer ids may be renumbered arbitrarily by the
// edit.  The diff classifies every element as kept, added, removed or
// changed, and carries the id translation maps the dirty tracker and the
// patch router need to relate the cached diagram to the edited network.
//
// Classification rules:
//   * a module is "changed" when its template, size, or terminal shape
//     (names, types, relative positions, count) differ — the properties
//     placement depends on.  Net membership changes alone do NOT change a
//     module; they change the *net*.
//   * a net is "changed" when its terminal set differs (a terminal was
//     re-pinned to or from it, or one of its terminals vanished).
#pragma once

#include <vector>

#include "netlist/network.hpp"

namespace na {

struct NetlistDiff {
  // ----- identity maps (kNone where no counterpart exists) -----------------
  std::vector<ModuleId> module_to_old;  ///< new module id -> old module id
  std::vector<ModuleId> module_to_new;  ///< old module id -> new module id
  std::vector<NetId> net_to_old;        ///< new net id -> old net id
  std::vector<NetId> net_to_new;        ///< old net id -> new net id
  std::vector<TermId> term_to_old;      ///< new term id -> old term id
  std::vector<TermId> term_to_new;      ///< old term id -> new term id

  // ----- deltas: added/changed hold NEW ids, removed holds OLD ids ----------
  std::vector<ModuleId> added_modules;
  std::vector<ModuleId> changed_modules;
  std::vector<ModuleId> removed_modules;
  std::vector<NetId> added_nets;
  std::vector<NetId> changed_nets;
  std::vector<NetId> removed_nets;

  /// No structural difference at all (every element kept unchanged).
  bool empty() const {
    return added_modules.empty() && changed_modules.empty() &&
           removed_modules.empty() && added_nets.empty() &&
           changed_nets.empty() && removed_nets.empty();
  }

  /// Modules touched by the edit (added + changed + removed).
  int modules_touched() const {
    return static_cast<int>(added_modules.size() + changed_modules.size() +
                            removed_modules.size());
  }

  /// Nets touched by the edit (added + changed + removed).
  int nets_touched() const {
    return static_cast<int>(added_nets.size() + changed_nets.size() +
                            removed_nets.size());
  }
};

/// Diffs `after` against `before`.  Symmetric in information content: every
/// delta list together with the maps describes the edit completely.
NetlistDiff diff_networks(const Network& before, const Network& after);

}  // namespace na
