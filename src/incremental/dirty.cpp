#include "incremental/dirty.hpp"

namespace na {

DirtyInfo map_dirty(const NetlistDiff& diff, const Network& before,
                    const Network& after, const PlacementInfo& placement) {
  DirtyInfo info;
  info.partition_dirty.assign(placement.partitions.size(), false);
  info.module_dirty.assign(after.module_count(), false);

  // Partition index of every old module (kNone when uncovered — possible
  // for a PlacementInfo reconstructed after adopt()).
  std::vector<int> part_of(before.module_count(), kNone);
  for (size_t p = 0; p < placement.partitions.size(); ++p) {
    for (ModuleId m : placement.partitions[p]) {
      if (m >= 0 && m < before.module_count()) part_of[m] = static_cast<int>(p);
    }
  }

  auto dirty_old_module = [&](ModuleId om) {
    const int p = part_of[om];
    if (p != kNone) {
      info.partition_dirty[p] = true;
    } else if (diff.module_to_new[om] != kNone) {
      // Uncovered by any partition: dirty the module alone.
      info.module_dirty[diff.module_to_new[om]] = true;
    }
  };

  // Seeds: changed modules (their old partition), removed modules.
  for (ModuleId nm : diff.changed_modules) dirty_old_module(diff.module_to_old[nm]);
  for (ModuleId om : diff.removed_modules) dirty_old_module(om);

  // Re-pinned nets: dirty exactly the delta modules.  A terminal counts as
  // delta when its membership on the changed net differs between versions.
  for (NetId nn : diff.changed_nets) {
    const NetId on = diff.net_to_old[nn];
    for (TermId nt : after.net(nn).terms) {
      const Terminal& term = after.term(nt);
      if (term.is_system()) continue;
      const TermId ot = diff.term_to_old[nt];
      const bool was_member = ot != kNone && on != kNone && before.term(ot).net == on;
      if (!was_member) {
        // Gained end: dirty on the NEW side (module may be added).
        const ModuleId om = diff.module_to_old[term.module];
        if (om != kNone) {
          dirty_old_module(om);
        } else {
          info.module_dirty[term.module] = true;
        }
      }
    }
    if (on == kNone) continue;
    for (TermId ot : before.net(on).terms) {
      const Terminal& term = before.term(ot);
      if (term.is_system()) continue;
      const TermId nt = diff.term_to_new[ot];
      const bool still_member = nt != kNone && after.term(nt).net == nn;
      if (!still_member) dirty_old_module(term.module);  // lost end
    }
  }

  // Closure: every surviving module of a dirty partition is re-placed.
  for (size_t p = 0; p < placement.partitions.size(); ++p) {
    if (!info.partition_dirty[p]) continue;
    ++info.dirty_partitions;
    for (ModuleId om : placement.partitions[p]) {
      const ModuleId nm = diff.module_to_new[om];
      if (nm != kNone) info.module_dirty[nm] = true;
    }
  }
  // Added modules are always dirty (they have no cached position).
  for (ModuleId nm : diff.added_modules) info.module_dirty[nm] = true;

  for (const bool d : info.module_dirty) info.dirty_modules += d ? 1 : 0;
  return info;
}

}  // namespace na
