#include "incremental/session.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "incremental/dirty.hpp"
#include "incremental/inc_place.hpp"
#include "incremental/inc_route.hpp"
#include "obs/trace.hpp"
#include "place/partition.hpp"
#include "place/boxes.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

/// Copies placement and routing of `src` onto a diagram over `net` — the
/// session's own network copy.  Ids must correspond 1:1 (same build order).
Diagram clone_onto(const Network& net, const Diagram& src) {
  Diagram dia(net);
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (!src.module_placed(m)) continue;
    const PlacedModule& pm = src.placed(m);
    dia.place_module(m, pm.pos, pm.rot, pm.fixed);
  }
  for (TermId st : net.system_terms()) {
    if (src.system_term_placed(st)) dia.place_system_term(st, src.term_pos(st));
  }
  for (NetId n = 0; n < net.net_count(); ++n) {
    dia.route(n) = src.route(n);
  }
  return dia;
}

/// Partition/box structure for an adopted diagram: re-derive it with the
/// session's own limits (partitioning is a pure function of the network,
/// so this is exactly what a from-scratch placement would have used).
PlacementInfo derive_structure(const Network& net, const PlacerOptions& opt) {
  PlacementInfo info;
  const PartitionLimits limits{opt.max_part_size, opt.max_connections};
  info.partitions = partition_network(net, limits);
  for (const auto& partition : info.partitions) {
    info.boxes.push_back(form_boxes(net, partition, opt.max_box_size));
  }
  return info;
}

}  // namespace

RegenSession::RegenSession(RegenOptions opt) : opt_(std::move(opt)) {}
RegenSession::~RegenSession() = default;
RegenSession::RegenSession(RegenSession&&) noexcept = default;
RegenSession& RegenSession::operator=(RegenSession&&) noexcept = default;

const Diagram& RegenSession::diagram() const {
  if (!dia_) throw std::logic_error("RegenSession: no diagram yet");
  return *dia_;
}

const Network& RegenSession::network() const {
  if (!net_) throw std::logic_error("RegenSession: no network yet");
  return *net_;
}

void RegenSession::account(const RegenCounters& one) {
  last_ = one;
  totals_.updates += one.updates;
  totals_.incremental += one.incremental;
  totals_.full_regens += one.full_regens;
  totals_.modules_replaced += one.modules_replaced;
  totals_.modules_frozen += one.modules_frozen;
  totals_.nets_kept += one.nets_kept;
  totals_.nets_rerouted += one.nets_rerouted;
  totals_.nets_extended += one.nets_extended;
  totals_.cells_scrubbed += one.cells_scrubbed;
  totals_.route_expansions += one.route_expansions;
  totals_.region_validations += one.region_validations;
  totals_.full_validations += one.full_validations;
  totals_.validate_ms += one.validate_ms;
  totals_.dirty_region = totals_.dirty_region.hull(one.dirty_region);
}

void RegenSession::account_speculation(const ParallelRouteStats& one) {
  spec_totals_.nets_speculated += one.nets_speculated;
  spec_totals_.commits_clean += one.commits_clean;
  spec_totals_.reroutes += one.reroutes;
  spec_totals_.nets_gated += one.nets_gated;
  spec_totals_.nets_respeculated += one.nets_respeculated;
  spec_totals_.respec_hits += one.respec_hits;
  spec_totals_.respec_stale += one.respec_stale;
  spec_totals_.pool_peak_queued =
      std::max(spec_totals_.pool_peak_queued, one.pool_peak_queued);
  spec_totals_.pool_urgent_drains += one.pool_urgent_drains;
}

void RegenSession::full_regen(const Network& next) {
  NA_TRACE_SPAN(span, "regen.full_regen");
  span.arg("modules", next.module_count());
  auto net = std::make_unique<Network>(next);
  auto dia = std::make_unique<Diagram>(*net);
  GeneratorResult result = generate(*dia, opt_.generator);
  info_ = std::move(result.placement);
  net_ = std::move(net);
  dia_ = std::move(dia);

  RegenCounters one;
  one.updates = 1;
  one.full_regens = 1;
  one.modules_replaced = next.module_count();
  one.nets_rerouted = result.route.nets_routed;
  one.route_expansions = result.route.total_expansions;
  account(one);
  account_speculation(result.speculation);
}

void RegenSession::adopt(const Network& net, const Diagram& dia) {
  auto copy = std::make_unique<Network>(net);
  auto cloned = std::make_unique<Diagram>(clone_onto(*copy, dia));
  info_ = derive_structure(*copy, opt_.generator.placer);
  net_ = std::move(copy);
  dia_ = std::move(cloned);
}

const Diagram& RegenSession::update(const Network& next) {
  if (!net_ || !dia_ || net_->module_count() == 0 || !dia_->all_placed()) {
    full_regen(next);
    return *dia_;
  }

  const NetlistDiff diff = [&] {
    NA_TRACE_SPAN(span, "regen.diff");
    NetlistDiff d = diff_networks(*net_, next);
    span.arg("modules_changed",
             static_cast<long long>(d.added_modules.size() +
                                    d.changed_modules.size() +
                                    d.removed_modules.size()));
    span.arg("nets_changed",
             static_cast<long long>(d.added_nets.size() +
                                    d.changed_nets.size() +
                                    d.removed_nets.size()));
    return d;
  }();
  if (diff.empty()) {
    RegenCounters one;
    one.updates = 1;
    one.incremental = 1;
    one.nets_kept = dia_->routed_count();
    account(one);
    return *dia_;
  }

  // Fallback rule, part 1: edit too large for patching.
  const DirtyInfo dirty = map_dirty(diff, *net_, next, info_);
  if (next.module_count() == 0 ||
      dirty.dirty_fraction() > opt_.max_dirty_fraction) {
    full_regen(next);
    return *dia_;
  }

  auto net = std::make_unique<Network>(next);
  auto dia = std::make_unique<Diagram>(*net);
  IncPlaceResult placed = [&] {
    NA_TRACE_SPAN(span, "regen.patch_place");
    IncPlaceResult r = incremental_place(*dia, *dia_, diff, dirty, info_,
                                         opt_.generator.placer);
    span.arg("feasible", r.feasible ? 1 : 0);
    span.arg("modules_replaced", r.modules_replaced);
    span.arg("modules_frozen", r.modules_frozen);
    return r;
  }();
  if (!placed.feasible) {  // fallback rule, part 2
    full_regen(next);
    return *dia_;
  }
  PatchRouteResult routed = [&] {
    NA_TRACE_SPAN(span, "regen.patch_route");
    PatchRouteResult r = patch_route(*dia, *dia_, diff, opt_.generator.router);
    span.arg("nets_kept", r.nets_kept);
    span.arg("nets_rerouted", r.nets_rerouted);
    span.arg("nets_extended", r.nets_extended);
    span.arg("cells_scrubbed", r.cells_scrubbed);
    return r;
  }();

  // Region-scoped validity check: only the union of the patched-net hulls
  // and the moved-module footprints (the patch router's dirty_region) is
  // re-checked.  Any in-region issue escalates to the whole-diagram check
  // — the region verdict is trusted only when it is clean.
  int region_validations = 0;
  int full_validations = 0;
  double validate_ms = 0.0;
  if (opt_.validate) {
    NA_TRACE_SPAN(span, "regen.validate");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::string> issues;
    if (opt_.validate_full) {
      issues = validate_diagram(*dia);
      ++full_validations;
    } else {
      issues = validate_region(*dia, routed.dirty_region);
      ++region_validations;
      if (!issues.empty()) {
        issues = validate_diagram(*dia);
        ++full_validations;
      }
    }
    validate_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    span.arg("region", region_validations);
    span.arg("full", full_validations);
    span.arg("issues", static_cast<long long>(issues.size()));
    if (!issues.empty()) {
      full_regen(next);  // patched diagram broke a drawing rule
      return *dia_;
    }
  }

  info_ = std::move(placed.info);
  net_ = std::move(net);
  dia_ = std::move(dia);

  RegenCounters one;
  one.updates = 1;
  one.incremental = 1;
  one.modules_replaced = placed.modules_replaced;
  one.modules_frozen = placed.modules_frozen;
  one.nets_kept = routed.nets_kept;
  one.nets_rerouted = routed.nets_rerouted;
  one.nets_extended = routed.nets_extended;
  one.cells_scrubbed = routed.cells_scrubbed;
  one.route_expansions = routed.report.total_expansions;
  one.region_validations = region_validations;
  one.full_validations = full_validations;
  one.validate_ms = validate_ms;
  one.dirty_region = routed.dirty_region;
  account(one);
  account_speculation(routed.speculation);
  return *dia_;
}

}  // namespace na
