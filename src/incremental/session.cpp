#include "incremental/session.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "incremental/dirty.hpp"
#include "incremental/inc_place.hpp"
#include "incremental/inc_route.hpp"
#include "obs/trace.hpp"
#include "place/partition.hpp"
#include "place/boxes.hpp"
#include "schematic/escher_reader.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

/// Copies placement and routing of `src` onto a diagram over `net` — the
/// session's own network copy.  Ids must correspond 1:1 (same build order).
Diagram clone_onto(const Network& net, const Diagram& src) {
  Diagram dia(net);
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (!src.module_placed(m)) continue;
    const PlacedModule& pm = src.placed(m);
    dia.place_module(m, pm.pos, pm.rot, pm.fixed);
  }
  for (TermId st : net.system_terms()) {
    if (src.system_term_placed(st)) dia.place_system_term(st, src.term_pos(st));
  }
  for (NetId n = 0; n < net.net_count(); ++n) {
    dia.route(n) = src.route(n);
  }
  return dia;
}

/// Partition/box structure for an adopted diagram: re-derive it with the
/// session's own limits (partitioning is a pure function of the network,
/// so this is exactly what a from-scratch placement would have used).
PlacementInfo derive_structure(const Network& net, const PlacerOptions& opt) {
  PlacementInfo info;
  const PartitionLimits limits{opt.max_part_size, opt.max_connections};
  info.partitions = partition_network(net, limits);
  for (const auto& partition : info.partitions) {
    info.boxes.push_back(form_boxes(net, partition, opt.max_box_size));
  }
  return info;
}

// ----- session persistence ---------------------------------------------------
// save()/restore() serialise the whole session state: a `#NA-SESSION-1`
// header, the network replayed as construction records in id order (so the
// rebuilt ids match exactly), the partition/box structure verbatim (NOT
// re-derived — incremental updates patch it away from what a fresh
// partitioning would produce), and the routed diagram as an embedded
// ESCHER file.  Names are whitespace-free in every format of this repo;
// save() enforces that rather than emit an unparseable file.

constexpr const char* kSessionHeader = "#NA-SESSION-1";
constexpr const char* kSessionStateEnd = "end-session-state";

void check_name(const std::string& s, const char* what) {
  if (s.empty() || s.find_first_of(" \t\r\n") != std::string::npos) {
    throw std::runtime_error(std::string("RegenSession::save: unsupported ") +
                             what + " name '" + s + "'");
  }
}

[[noreturn]] void restore_fail(int line, const std::string& why) {
  throw std::runtime_error("RegenSession::restore: line " +
                           std::to_string(line) + ": " + why);
}

int restore_int(std::string_view tok, int line, const char* what, int lo,
                int hi) {
  int v = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    restore_fail(line, std::string("bad ") + what + " '" + std::string(tok) + "'");
  }
  if (v < lo || v > hi) {
    restore_fail(line, std::string(what) + " " + std::to_string(v) +
                           " out of range");
  }
  return v;
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

}  // namespace

std::string RegenSession::save() const {
  if (!net_ || !dia_) {
    throw std::logic_error("RegenSession::save: no diagram yet");
  }
  const Network& net = *net_;
  std::ostringstream os;
  os << kSessionHeader << '\n';
  for (const Module& m : net.modules()) {
    check_name(m.name, "module");
    os << "module " << m.size.x << ' ' << m.size.y << ' ' << m.name;
    if (!m.template_name.empty()) {
      check_name(m.template_name, "template");
      os << ' ' << m.template_name;
    }
    os << '\n';
  }
  // Terminals in global TermId order — module and system terminal records
  // interleave exactly as they were created, so replay rebuilds equal ids.
  for (TermId t = 0; t < net.term_count(); ++t) {
    const Terminal& term = net.term(t);
    check_name(term.name, "terminal");
    if (term.is_system()) {
      os << "systerm " << to_string(term.type) << ' ' << term.name << '\n';
    } else {
      os << "term " << term.module << ' ' << to_string(term.type) << ' '
         << term.pos.x << ' ' << term.pos.y << ' ' << term.name << '\n';
    }
  }
  for (const Net& n : net.nets()) {
    check_name(n.name, "net");
    os << "net " << n.name << '\n';
  }
  for (NetId n = 0; n < net.net_count(); ++n) {
    for (TermId t : net.net(n).terms) os << "conn " << n << ' ' << t << '\n';
  }
  for (const auto& part : info_.partitions) {
    os << "part";
    for (ModuleId m : part) os << ' ' << m;
    os << '\n';
  }
  for (size_t p = 0; p < info_.boxes.size(); ++p) {
    for (const Box& b : info_.boxes[p]) {
      os << "box " << p;
      for (ModuleId m : b) os << ' ' << m;
      os << '\n';
    }
  }
  // Flags the ESCHER diagram section cannot carry: the reader marks every
  // loaded module fixed and every loaded route prerouted (its
  // editor-handoff semantics) — a restored *session* must get back the
  // flags it actually had, or the next update() patches differently.
  auto flag_line = [&os](const char* kind, const std::vector<int>& ids) {
    if (ids.empty()) return;
    os << kind;
    for (const int id : ids) os << ' ' << id;
    os << '\n';
  };
  std::vector<int> fixed, routed, prerouted;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (dia_->placed(m).fixed) fixed.push_back(m);
  }
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (dia_->route(n).routed) routed.push_back(n);
    if (dia_->route(n).prerouted) prerouted.push_back(n);
  }
  flag_line("fixed", fixed);
  flag_line("routed", routed);
  flag_line("prerouted", prerouted);
  os << kSessionStateEnd << '\n';
  os << to_escher_diagram(*dia_, "session");
  return os.str();
}

void RegenSession::restore(std::string_view text) {
  Network net;
  PlacementInfo info;
  std::vector<int> fixed, routed, prerouted;
  size_t pos = 0;
  int lineno = 0;
  bool saw_header = false;
  size_t diagram_off = std::string_view::npos;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    const size_t next = eol + 1;
    ++lineno;
    if (!saw_header) {
      if (line != kSessionHeader) restore_fail(lineno, "missing #NA-SESSION-1 header");
      saw_header = true;
      pos = next;
      continue;
    }
    const std::vector<std::string_view> toks = split_tokens(line);
    if (toks.empty()) {
      if (pos >= text.size()) break;
      pos = next;
      continue;
    }
    const std::string_view kind = toks[0];
    if (kind == kSessionStateEnd) {
      diagram_off = next;
      break;
    }
    if (kind == "module") {
      if (toks.size() != 4 && toks.size() != 5) restore_fail(lineno, "module record needs 4 or 5 fields");
      const int w = restore_int(toks[1], lineno, "module width", 0, 1 << 24);
      const int h = restore_int(toks[2], lineno, "module height", 0, 1 << 24);
      net.add_module(std::string(toks[3]),
                     toks.size() == 5 ? std::string(toks[4]) : std::string(),
                     {w, h});
    } else if (kind == "term") {
      if (toks.size() != 6) restore_fail(lineno, "term record needs 6 fields");
      const int m = restore_int(toks[1], lineno, "module id", 0,
                                net.module_count() - 1);
      const auto type = parse_term_type(toks[2]);
      if (!type) restore_fail(lineno, "bad terminal type '" + std::string(toks[2]) + "'");
      const int x = restore_int(toks[3], lineno, "terminal x", -(1 << 24), 1 << 24);
      const int y = restore_int(toks[4], lineno, "terminal y", -(1 << 24), 1 << 24);
      net.add_terminal(m, std::string(toks[5]), *type, {x, y});
    } else if (kind == "systerm") {
      if (toks.size() != 3) restore_fail(lineno, "systerm record needs 3 fields");
      const auto type = parse_term_type(toks[1]);
      if (!type) restore_fail(lineno, "bad terminal type '" + std::string(toks[1]) + "'");
      net.add_system_terminal(std::string(toks[2]), *type);
    } else if (kind == "net") {
      if (toks.size() != 2) restore_fail(lineno, "net record needs 2 fields");
      net.add_net(std::string(toks[1]));
    } else if (kind == "conn") {
      if (toks.size() != 3) restore_fail(lineno, "conn record needs 3 fields");
      const int n = restore_int(toks[1], lineno, "net id", 0, net.net_count() - 1);
      const int t = restore_int(toks[2], lineno, "term id", 0, net.term_count() - 1);
      net.connect(n, t);
    } else if (kind == "part") {
      std::vector<ModuleId> part;
      for (size_t i = 1; i < toks.size(); ++i) {
        part.push_back(restore_int(toks[i], lineno, "module id", 0,
                                   net.module_count() - 1));
      }
      info.partitions.push_back(std::move(part));
    } else if (kind == "box") {
      if (toks.size() < 2) restore_fail(lineno, "box record needs a partition id");
      const int p = restore_int(toks[1], lineno, "partition id", 0,
                                static_cast<int>(info.partitions.size()) - 1);
      if (info.boxes.size() < info.partitions.size()) {
        info.boxes.resize(info.partitions.size());
      }
      Box box;
      for (size_t i = 2; i < toks.size(); ++i) {
        box.push_back(restore_int(toks[i], lineno, "module id", 0,
                                  net.module_count() - 1));
      }
      info.boxes[p].push_back(std::move(box));
    } else if (kind == "fixed" || kind == "routed" || kind == "prerouted") {
      std::vector<int>& out = kind == "fixed"    ? fixed
                              : kind == "routed" ? routed
                                                 : prerouted;
      const int hi = kind == "fixed" ? net.module_count() - 1
                                     : net.net_count() - 1;
      for (size_t i = 1; i < toks.size(); ++i) {
        out.push_back(restore_int(toks[i], lineno,
                                  kind == "fixed" ? "module id" : "net id", 0,
                                  hi));
      }
    } else {
      restore_fail(lineno, "unknown record '" + std::string(kind) + "'");
    }
    if (pos >= text.size()) break;
    pos = next;
  }
  if (!saw_header) restore_fail(lineno, "missing #NA-SESSION-1 header");
  if (diagram_off == std::string_view::npos) {
    restore_fail(lineno, "missing end-session-state record");
  }
  if (diagram_off >= text.size()) restore_fail(lineno, "missing embedded diagram");
  info.boxes.resize(info.partitions.size());

  auto copy = std::make_unique<Network>(std::move(net));
  auto dia = std::make_unique<Diagram>(
      parse_escher_diagram(*copy, text.substr(diagram_off)));
  // Override the reader's editor-handoff flags (everything fixed and
  // prerouted) with the session's recorded ones.
  for (ModuleId m = 0; m < copy->module_count(); ++m) {
    const PlacedModule& pm = dia->placed(m);
    if (pm.placed) dia->place_module(m, pm.pos, pm.rot, /*fixed=*/false);
  }
  for (NetId n = 0; n < copy->net_count(); ++n) {
    dia->route(n).routed = false;
    dia->route(n).prerouted = false;
  }
  for (const int m : fixed) dia->place_module(m, dia->placed(m).pos,
                                              dia->placed(m).rot, true);
  for (const int n : routed) dia->route(n).routed = true;
  for (const int n : prerouted) dia->route(n).prerouted = true;
  info_ = std::move(info);
  net_ = std::move(copy);
  dia_ = std::move(dia);
  totals_ = {};
  last_ = {};
  spec_totals_ = {};
}

RegenSession::RegenSession(RegenOptions opt) : opt_(std::move(opt)) {}
RegenSession::~RegenSession() = default;
RegenSession::RegenSession(RegenSession&&) noexcept = default;
RegenSession& RegenSession::operator=(RegenSession&&) noexcept = default;

const Diagram& RegenSession::diagram() const {
  if (!dia_) throw std::logic_error("RegenSession: no diagram yet");
  return *dia_;
}

const Network& RegenSession::network() const {
  if (!net_) throw std::logic_error("RegenSession: no network yet");
  return *net_;
}

void RegenSession::account(const RegenCounters& one) {
  last_ = one;
  totals_.updates += one.updates;
  totals_.incremental += one.incremental;
  totals_.full_regens += one.full_regens;
  totals_.edits_composed += one.edits_composed;
  totals_.modules_replaced += one.modules_replaced;
  totals_.modules_frozen += one.modules_frozen;
  totals_.nets_kept += one.nets_kept;
  totals_.nets_rerouted += one.nets_rerouted;
  totals_.nets_extended += one.nets_extended;
  totals_.cells_scrubbed += one.cells_scrubbed;
  totals_.route_expansions += one.route_expansions;
  totals_.region_validations += one.region_validations;
  totals_.full_validations += one.full_validations;
  totals_.validate_ms += one.validate_ms;
  totals_.dirty_region = totals_.dirty_region.hull(one.dirty_region);
}

void RegenSession::account_speculation(const ParallelRouteStats& one) {
  spec_totals_.nets_speculated += one.nets_speculated;
  spec_totals_.commits_clean += one.commits_clean;
  spec_totals_.reroutes += one.reroutes;
  spec_totals_.nets_gated += one.nets_gated;
  spec_totals_.nets_respeculated += one.nets_respeculated;
  spec_totals_.respec_hits += one.respec_hits;
  spec_totals_.respec_stale += one.respec_stale;
  spec_totals_.pool_peak_queued =
      std::max(spec_totals_.pool_peak_queued, one.pool_peak_queued);
  spec_totals_.pool_urgent_drains += one.pool_urgent_drains;
}

void RegenSession::full_regen(const Network& next) {
  NA_TRACE_SPAN(span, "regen.full_regen");
  span.arg("modules", next.module_count());
  auto net = std::make_unique<Network>(next);
  auto dia = std::make_unique<Diagram>(*net);
  GeneratorResult result = generate(*dia, opt_.generator);
  info_ = std::move(result.placement);
  net_ = std::move(net);
  dia_ = std::move(dia);

  RegenCounters one;
  one.updates = 1;
  one.full_regens = 1;
  one.modules_replaced = next.module_count();
  one.nets_rerouted = result.route.nets_routed;
  one.route_expansions = result.route.total_expansions;
  account(one);
  account_speculation(result.speculation);
}

void RegenSession::adopt(const Network& net, const Diagram& dia) {
  auto copy = std::make_unique<Network>(net);
  auto cloned = std::make_unique<Diagram>(clone_onto(*copy, dia));
  info_ = derive_structure(*copy, opt_.generator.placer);
  net_ = std::move(copy);
  dia_ = std::move(cloned);
}

const Diagram& RegenSession::update(const Network& next) {
  if (!net_ || !dia_ || net_->module_count() == 0 || !dia_->all_placed()) {
    full_regen(next);
    return *dia_;
  }

  const NetlistDiff diff = [&] {
    NA_TRACE_SPAN(span, "regen.diff");
    NetlistDiff d = diff_networks(*net_, next);
    span.arg("modules_changed", d.modules_touched());
    span.arg("nets_changed", d.nets_touched());
    return d;
  }();
  if (diff.empty()) {
    RegenCounters one;
    one.updates = 1;
    one.incremental = 1;
    one.nets_kept = dia_->routed_count();
    account(one);
    return *dia_;
  }

  // Fallback rule, part 1: edit too large for patching.
  const DirtyInfo dirty = map_dirty(diff, *net_, next, info_);
  if (next.module_count() == 0 ||
      dirty.dirty_fraction() > opt_.max_dirty_fraction) {
    full_regen(next);
    return *dia_;
  }

  auto net = std::make_unique<Network>(next);
  auto dia = std::make_unique<Diagram>(*net);
  IncPlaceResult placed = [&] {
    NA_TRACE_SPAN(span, "regen.patch_place");
    IncPlaceResult r = incremental_place(*dia, *dia_, diff, dirty, info_,
                                         opt_.generator.placer);
    span.arg("feasible", r.feasible ? 1 : 0);
    span.arg("modules_replaced", r.modules_replaced);
    span.arg("modules_frozen", r.modules_frozen);
    return r;
  }();
  if (!placed.feasible) {  // fallback rule, part 2
    full_regen(next);
    return *dia_;
  }
  PatchRouteResult routed = [&] {
    NA_TRACE_SPAN(span, "regen.patch_route");
    PatchRouteResult r = patch_route(*dia, *dia_, diff, opt_.generator.router);
    span.arg("nets_kept", r.nets_kept);
    span.arg("nets_rerouted", r.nets_rerouted);
    span.arg("nets_extended", r.nets_extended);
    span.arg("cells_scrubbed", r.cells_scrubbed);
    return r;
  }();

  // Region-scoped validity check: only the union of the patched-net hulls
  // and the moved-module footprints (the patch router's dirty_region) is
  // re-checked.  Any in-region issue escalates to the whole-diagram check
  // — the region verdict is trusted only when it is clean.
  int region_validations = 0;
  int full_validations = 0;
  double validate_ms = 0.0;
  if (opt_.validate) {
    NA_TRACE_SPAN(span, "regen.validate");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::string> issues;
    if (opt_.validate_full) {
      issues = validate_diagram(*dia);
      ++full_validations;
    } else {
      issues = validate_region(*dia, routed.dirty_region);
      ++region_validations;
      if (!issues.empty()) {
        issues = validate_diagram(*dia);
        ++full_validations;
      }
    }
    validate_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    span.arg("region", region_validations);
    span.arg("full", full_validations);
    span.arg("issues", static_cast<long long>(issues.size()));
    if (!issues.empty()) {
      full_regen(next);  // patched diagram broke a drawing rule
      return *dia_;
    }
  }

  info_ = std::move(placed.info);
  net_ = std::move(net);
  dia_ = std::move(dia);

  RegenCounters one;
  one.updates = 1;
  one.incremental = 1;
  one.modules_replaced = placed.modules_replaced;
  one.modules_frozen = placed.modules_frozen;
  one.nets_kept = routed.nets_kept;
  one.nets_rerouted = routed.nets_rerouted;
  one.nets_extended = routed.nets_extended;
  one.cells_scrubbed = routed.cells_scrubbed;
  one.route_expansions = routed.report.total_expansions;
  one.region_validations = region_validations;
  one.full_validations = full_validations;
  one.validate_ms = validate_ms;
  one.dirty_region = routed.dirty_region;
  account(one);
  account_speculation(routed.speculation);
  return *dia_;
}

const Diagram& RegenSession::update_composed(const Network& next, int edits) {
  const Diagram& dia = update(next);
  // update() ran exactly one diff/patch pass; credit it with the composed
  // edit count so callers can verify one-regen-per-flush in the counters.
  last_.edits_composed = edits;
  totals_.edits_composed += edits;
  return dia;
}

}  // namespace na
