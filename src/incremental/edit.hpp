// NetworkEditor — edit scripts over an immutable Network.
//
// A Network is immutable after build (the diagram flow depends on that), so
// the ESCHER-style edit loop needs a way to derive "the same network with a
// small change".  The editor copies a network into an editable form keyed
// by names, applies edits, and emits a fresh Network.  Identities (module,
// net and terminal names) and declaration order are preserved for every
// untouched element, which is what keeps diff_networks deltas minimal.
//
// Used by the incremental benches and tests as the edit-script vocabulary:
// add module, delete net, re-pin terminal, resize, reconnect.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/network.hpp"

namespace na {

class NetworkEditor {
 public:
  explicit NetworkEditor(const Network& base);

  // ----- module edits --------------------------------------------------------
  /// Appends a new module (terminals added via add_module_terminal).
  void add_module(std::string name, std::string template_name, geom::Point size);
  /// Removes a module and detaches all its terminals from their nets.
  void remove_module(std::string_view name);
  void resize_module(std::string_view name, geom::Point size);

  // ----- terminal edits ------------------------------------------------------
  void add_module_terminal(std::string_view module, std::string name,
                           TermType type, geom::Point rel);
  /// Re-pins a terminal to a new position on the module perimeter.
  void move_terminal(std::string_view module, std::string_view term,
                     geom::Point rel);
  void add_system_terminal(std::string name, TermType type);
  void remove_system_terminal(std::string_view name);

  // ----- net edits -----------------------------------------------------------
  /// Attaches a terminal to `net` (created if absent); empty `module` means
  /// a system terminal.  A terminal joins at most one net, so this also
  /// detaches it from its previous net.
  void connect(std::string_view net, std::string_view module,
               std::string_view term);
  /// Detaches a terminal from its net.
  void disconnect(std::string_view module, std::string_view term);
  /// Removes a net, detaching every terminal it had.
  void remove_net(std::string_view name);

  /// Emits the edited network.  Nets left without any terminal are dropped;
  /// everything else keeps its declaration order.
  Network build() const;

 private:
  struct ETerm {
    std::string name;
    TermType type;
    geom::Point pos;
    std::string net;  ///< empty = unconnected
  };
  struct EModule {
    std::string name;
    std::string template_name;
    geom::Point size;
    std::vector<ETerm> terms;
  };
  struct ESysTerm {
    std::string name;
    TermType type;
    std::string net;
  };

  EModule& module_ref(std::string_view name);
  ETerm& term_ref(std::string_view module, std::string_view term);

  std::vector<EModule> modules_;
  std::vector<ESysTerm> system_terms_;
  std::vector<std::string> net_order_;  ///< net creation order, for stable ids
};

// ScriptComposer — compose k edit scripts into one pending Network.
//
// Each `apply` runs one script transactionally: a fresh NetworkEditor copy
// of the pending network, the script, then build() — a throwing script
// leaves the composition exactly as it was.  The per-script build() is not
// an implementation convenience but load-bearing for byte-identity with
// sequential execution: build() drops nets left without any terminal, so a
// net emptied by script i and re-populated by script i+1 must be re-created
// at the *end* of net declaration order, exactly as it would be if each
// script had produced its own Network.  Composing k scripts on one shared
// editor (building once) would instead keep the original slot.
//
// The composer tracks how many scripts are pending since the last flush;
// the owner regenerates from network() at an observation point and calls
// flushed().
class ScriptComposer {
 public:
  explicit ScriptComposer(Network base) : net_(std::move(base)) {}

  /// Replaces the pending network (e.g. after a session restore) and
  /// clears the pending-step count.
  void rebase(Network base) {
    net_ = std::move(base);
    steps_ = 0;
  }

  /// Applies one edit script transactionally.  Propagates whatever the
  /// script throws; on throw the pending network is unchanged.
  void apply(const std::function<void(NetworkEditor&)>& script) {
    NetworkEditor ed(net_);
    script(ed);
    net_ = ed.build();
    ++steps_;
  }

  const Network& network() const { return net_; }

  /// Scripts applied since construction/rebase/flushed().
  int steps() const { return steps_; }

  /// Marks the pending scripts as regenerated-from.
  void flushed() { steps_ = 0; }

 private:
  Network net_;
  int steps_ = 0;
};

}  // namespace na
