// NetworkEditor — edit scripts over an immutable Network.
//
// A Network is immutable after build (the diagram flow depends on that), so
// the ESCHER-style edit loop needs a way to derive "the same network with a
// small change".  The editor copies a network into an editable form keyed
// by names, applies edits, and emits a fresh Network.  Identities (module,
// net and terminal names) and declaration order are preserved for every
// untouched element, which is what keeps diff_networks deltas minimal.
//
// Used by the incremental benches and tests as the edit-script vocabulary:
// add module, delete net, re-pin terminal, resize, reconnect.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/network.hpp"

namespace na {

class NetworkEditor {
 public:
  explicit NetworkEditor(const Network& base);

  // ----- module edits --------------------------------------------------------
  /// Appends a new module (terminals added via add_module_terminal).
  void add_module(std::string name, std::string template_name, geom::Point size);
  /// Removes a module and detaches all its terminals from their nets.
  void remove_module(std::string_view name);
  void resize_module(std::string_view name, geom::Point size);

  // ----- terminal edits ------------------------------------------------------
  void add_module_terminal(std::string_view module, std::string name,
                           TermType type, geom::Point rel);
  /// Re-pins a terminal to a new position on the module perimeter.
  void move_terminal(std::string_view module, std::string_view term,
                     geom::Point rel);
  void add_system_terminal(std::string name, TermType type);
  void remove_system_terminal(std::string_view name);

  // ----- net edits -----------------------------------------------------------
  /// Attaches a terminal to `net` (created if absent); empty `module` means
  /// a system terminal.  A terminal joins at most one net, so this also
  /// detaches it from its previous net.
  void connect(std::string_view net, std::string_view module,
               std::string_view term);
  /// Detaches a terminal from its net.
  void disconnect(std::string_view module, std::string_view term);
  /// Removes a net, detaching every terminal it had.
  void remove_net(std::string_view name);

  /// Emits the edited network.  Nets left without any terminal are dropped;
  /// everything else keeps its declaration order.
  Network build() const;

 private:
  struct ETerm {
    std::string name;
    TermType type;
    geom::Point pos;
    std::string net;  ///< empty = unconnected
  };
  struct EModule {
    std::string name;
    std::string template_name;
    geom::Point size;
    std::vector<ETerm> terms;
  };
  struct ESysTerm {
    std::string name;
    TermType type;
    std::string net;
  };

  EModule& module_ref(std::string_view name);
  ETerm& term_ref(std::string_view module, std::string_view term);

  std::vector<EModule> modules_;
  std::vector<ESysTerm> system_terms_;
  std::vector<std::string> net_order_;  ///< net creation order, for stable ids
};

}  // namespace na
