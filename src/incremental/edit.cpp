#include "incremental/edit.hpp"

#include <algorithm>
#include <stdexcept>

namespace na {
namespace {

[[noreturn]] void missing(std::string_view what, std::string_view name) {
  throw std::invalid_argument("NetworkEditor: no " + std::string(what) + " '" +
                              std::string(name) + "'");
}

}  // namespace

NetworkEditor::NetworkEditor(const Network& base) {
  modules_.reserve(base.module_count());
  for (ModuleId m = 0; m < base.module_count(); ++m) {
    const Module& mod = base.module(m);
    EModule em{mod.name, mod.template_name, mod.size, {}};
    em.terms.reserve(mod.terms.size());
    for (TermId t : mod.terms) {
      const Terminal& term = base.term(t);
      em.terms.push_back({term.name, term.type, term.pos,
                          term.net == kNone ? "" : base.net(term.net).name});
    }
    modules_.push_back(std::move(em));
  }
  for (TermId t : base.system_terms()) {
    const Terminal& term = base.term(t);
    system_terms_.push_back({term.name, term.type,
                             term.net == kNone ? "" : base.net(term.net).name});
  }
  net_order_.reserve(base.net_count());
  for (NetId n = 0; n < base.net_count(); ++n) {
    net_order_.push_back(base.net(n).name);
  }
}

NetworkEditor::EModule& NetworkEditor::module_ref(std::string_view name) {
  for (EModule& m : modules_) {
    if (m.name == name) return m;
  }
  missing("module", name);
}

NetworkEditor::ETerm& NetworkEditor::term_ref(std::string_view module,
                                              std::string_view term) {
  for (ETerm& t : module_ref(module).terms) {
    if (t.name == term) return t;
  }
  missing("terminal", term);
}

void NetworkEditor::add_module(std::string name, std::string template_name,
                               geom::Point size) {
  modules_.push_back({std::move(name), std::move(template_name), size, {}});
}

void NetworkEditor::remove_module(std::string_view name) {
  const auto it = std::find_if(modules_.begin(), modules_.end(),
                               [&](const EModule& m) { return m.name == name; });
  if (it == modules_.end()) missing("module", name);
  modules_.erase(it);
}

void NetworkEditor::resize_module(std::string_view name, geom::Point size) {
  module_ref(name).size = size;
}

void NetworkEditor::add_module_terminal(std::string_view module, std::string name,
                                        TermType type, geom::Point rel) {
  module_ref(module).terms.push_back({std::move(name), type, rel, ""});
}

void NetworkEditor::move_terminal(std::string_view module, std::string_view term,
                                  geom::Point rel) {
  term_ref(module, term).pos = rel;
}

void NetworkEditor::add_system_terminal(std::string name, TermType type) {
  system_terms_.push_back({std::move(name), type, ""});
}

void NetworkEditor::remove_system_terminal(std::string_view name) {
  const auto it =
      std::find_if(system_terms_.begin(), system_terms_.end(),
                   [&](const ESysTerm& t) { return t.name == name; });
  if (it == system_terms_.end()) missing("system terminal", name);
  system_terms_.erase(it);
}

void NetworkEditor::connect(std::string_view net, std::string_view module,
                            std::string_view term) {
  std::string* slot = nullptr;
  if (module.empty()) {
    for (ESysTerm& t : system_terms_) {
      if (t.name == term) slot = &t.net;
    }
    if (slot == nullptr) missing("system terminal", term);
  } else {
    slot = &term_ref(module, term).net;
  }
  *slot = std::string(net);
  if (std::find(net_order_.begin(), net_order_.end(), *slot) == net_order_.end()) {
    net_order_.push_back(*slot);
  }
}

void NetworkEditor::disconnect(std::string_view module, std::string_view term) {
  if (module.empty()) {
    for (ESysTerm& t : system_terms_) {
      if (t.name == term) {
        t.net.clear();
        return;
      }
    }
    missing("system terminal", term);
  }
  term_ref(module, term).net.clear();
}

void NetworkEditor::remove_net(std::string_view name) {
  const auto it = std::find(net_order_.begin(), net_order_.end(), name);
  if (it == net_order_.end()) missing("net", name);
  net_order_.erase(it);
  for (EModule& m : modules_) {
    for (ETerm& t : m.terms) {
      if (t.net == name) t.net.clear();
    }
  }
  for (ESysTerm& t : system_terms_) {
    if (t.net == name) t.net.clear();
  }
}

Network NetworkEditor::build() const {
  Network net;
  // Nets first, in declaration order, so untouched nets keep their relative
  // order; nets that lost every terminal are dropped afterwards by virtue
  // of never being referenced — so collect usage first.
  std::vector<std::string> used;
  auto is_used = [&](const std::string& name) {
    return std::find(used.begin(), used.end(), name) != used.end();
  };
  for (const EModule& m : modules_) {
    for (const ETerm& t : m.terms) {
      if (!t.net.empty() && !is_used(t.net)) used.push_back(t.net);
    }
  }
  for (const ESysTerm& t : system_terms_) {
    if (!t.net.empty() && !is_used(t.net)) used.push_back(t.net);
  }
  for (const std::string& name : net_order_) {
    if (is_used(name)) net.add_net(name);
  }
  for (const EModule& m : modules_) {
    const ModuleId id = net.add_module(m.name, m.template_name, m.size);
    for (const ETerm& t : m.terms) {
      const TermId tid = net.add_terminal(id, t.name, t.type, t.pos);
      if (!t.net.empty()) net.connect(*net.net_by_name(t.net), tid);
    }
  }
  for (const ESysTerm& t : system_terms_) {
    const TermId tid = net.add_system_terminal(t.name, t.type);
    if (!t.net.empty()) net.connect(*net.net_by_name(t.net), tid);
  }
  return net;
}

}  // namespace na
