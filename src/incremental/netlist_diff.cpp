#include "incremental/netlist_diff.hpp"

namespace na {
namespace {

/// Terminal shape equality — the placement-relevant properties.  Net
/// membership is deliberately excluded (that is a net-level change).
bool same_term_shape(const Terminal& a, const Terminal& b) {
  return a.name == b.name && a.type == b.type && a.pos == b.pos;
}

bool same_module_shape(const Network& before, const Network& after,
                       ModuleId om, ModuleId nm) {
  const Module& a = before.module(om);
  const Module& b = after.module(nm);
  if (a.template_name != b.template_name || a.size != b.size) return false;
  if (a.terms.size() != b.terms.size()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (!same_term_shape(before.term(a.terms[i]), after.term(b.terms[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

NetlistDiff diff_networks(const Network& before, const Network& after) {
  NetlistDiff d;
  d.module_to_old.assign(after.module_count(), kNone);
  d.module_to_new.assign(before.module_count(), kNone);
  d.net_to_old.assign(after.net_count(), kNone);
  d.net_to_new.assign(before.net_count(), kNone);
  d.term_to_old.assign(after.term_count(), kNone);
  d.term_to_new.assign(before.term_count(), kNone);

  // ----- modules, matched by name -------------------------------------------
  for (ModuleId nm = 0; nm < after.module_count(); ++nm) {
    const auto om = before.module_by_name(after.module(nm).name);
    if (!om) {
      d.added_modules.push_back(nm);
      continue;
    }
    d.module_to_old[nm] = *om;
    d.module_to_new[*om] = nm;
    if (!same_module_shape(before, after, *om, nm)) {
      d.changed_modules.push_back(nm);
    }
  }
  for (ModuleId om = 0; om < before.module_count(); ++om) {
    if (d.module_to_new[om] == kNone) d.removed_modules.push_back(om);
  }

  // ----- terminals, matched by (module identity, name) ----------------------
  for (TermId nt = 0; nt < after.term_count(); ++nt) {
    const Terminal& term = after.term(nt);
    ModuleId om = kNone;
    if (!term.is_system()) {
      om = d.module_to_old[term.module];
      if (om == kNone) continue;  // terminal of an added module
    }
    if (const auto ot = before.term_by_name(om, term.name)) {
      d.term_to_old[nt] = *ot;
      d.term_to_new[*ot] = nt;
    }
  }

  // ----- nets, matched by name; changed = terminal set differs --------------
  for (NetId nn = 0; nn < after.net_count(); ++nn) {
    const auto on = before.net_by_name(after.net(nn).name);
    if (!on) {
      d.added_nets.push_back(nn);
      continue;
    }
    d.net_to_old[nn] = *on;
    d.net_to_new[*on] = nn;
    const Net& a = before.net(*on);
    const Net& b = after.net(nn);
    bool same = a.terms.size() == b.terms.size();
    for (size_t i = 0; same && i < b.terms.size(); ++i) {
      const TermId ot = d.term_to_old[b.terms[i]];
      same = ot != kNone && before.term(ot).net == *on;
    }
    if (!same) d.changed_nets.push_back(nn);
  }
  for (NetId on = 0; on < before.net_count(); ++on) {
    if (d.net_to_new[on] == kNone) d.removed_nets.push_back(on);
  }
  return d;
}

}  // namespace na
