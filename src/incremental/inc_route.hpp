// Patch routing — layer 3 of the incremental regeneration engine.
//
// Keeps the drawn geometry of every *clean* net (same terminal set, every
// terminal at the same absolute position, fully routed in the cached
// diagram) and re-routes only the rest: nets the diff changed, nets of
// re-placed modules, nets whose kept path would now collide with a module
// that appeared or moved (the scrub), and nets that had failed before.
//
// Re-routed nets are not scrubbed wholesale: the polylines that are still
// valid (no collision with an appeared/moved symbol, no contact with a
// stale terminal position) survive as partial prerouted geometry, reduced
// to their largest connected figure, and the route pass merely *attaches*
// the open terminals to it.  Adding one terminal to a global net is then a
// local insertion near the new pin instead of a whole-plane re-search.
//
// The actual searching is the ordinary route_all driver (rip-up semantics
// of route/ripup.cpp: surviving geometry acts as obstacles and as join
// targets for its own net), so the patch pass inherits claimpoints, the
// section-5.7 retry pass, and — via RouterOptions::threads — the PR-1
// speculative parallel driver unchanged.
#pragma once

#include "incremental/netlist_diff.hpp"
#include "route/router.hpp"

namespace na {

struct PatchRouteResult {
  /// Whole-diagram report from the underlying route_all pass.  Note that
  /// `nets_routed` counts kept nets too (they end the pass fully
  /// connected); the patch-specific counters below separate the work.
  RouteReport report;
  /// Speculation counters of that pass (all zero when it ran sequentially).
  ParallelRouteStats speculation;
  int nets_kept = 0;      ///< clean nets whose geometry survived verbatim
  int nets_rerouted = 0;  ///< nets (re)routed by this pass
  int nets_extended = 0;  ///< rerouted nets that kept partial geometry
  int cells_scrubbed = 0; ///< grid track cells of stale geometry discarded
  /// Hull of everything the patch actually touched: footprints of modules
  /// that appeared or moved, system terminals that moved, and the old and
  /// new geometry of every net this pass (re)routed or scrubbed.  Empty
  /// when the update changed no geometry.  RegenSession validates only
  /// this region (validate_region) instead of the whole diagram.
  geom::Rect dirty_region;
};

/// Patch-routes `dia` (placed, unrouted) against the cached `old_dia`.
PatchRouteResult patch_route(Diagram& dia, const Diagram& old_dia,
                             const NetlistDiff& diff, const RouterOptions& opt);

}  // namespace na
