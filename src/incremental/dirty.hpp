// Dirty-region tracking — layer 2a of the incremental regeneration engine.
//
// Maps a NetlistDiff onto the partition structure the placement produced
// (paper section 4.6.3): an edit invalidates placement at *partition*
// granularity, because seed-and-grow, box formation and the gravity
// placements all operate per partition.  The rules:
//
//   * a changed module dirties its partition (its shape drives the box
//     layout it sits in);
//   * a removed module dirties the partition it was in (the survivors may
//     re-group);
//   * a changed net dirties the partitions of exactly the modules whose
//     membership on that net changed (the re-pinned end), not of every
//     module on the net;
//   * an added module is dirty but belongs to no old partition;
//   * added and removed nets do NOT dirty placement — connecting or
//     deleting a net is a pure routing change, handled by the patch router.
//
// Every module of a dirty partition becomes dirty (it will be re-placed by
// seed-and-grow over the dirty set); everything else stays frozen.
#pragma once

#include "incremental/netlist_diff.hpp"
#include "place/placer.hpp"

namespace na {

struct DirtyInfo {
  std::vector<bool> partition_dirty;  ///< per partition of the old PlacementInfo
  std::vector<bool> module_dirty;     ///< per NEW module id: must be (re)placed
  int dirty_modules = 0;
  int dirty_partitions = 0;

  /// Share of partitions invalidated — the fallback criterion: above the
  /// threshold (RegenOptions::max_dirty_fraction, default 0.5) a full
  /// re-place is cheaper and better than patching.
  double dirty_fraction() const {
    return partition_dirty.empty()
               ? 1.0
               : static_cast<double>(dirty_partitions) /
                     static_cast<double>(partition_dirty.size());
  }
};

/// Projects `diff` onto `placement` (the cached PlacementInfo, in OLD ids).
DirtyInfo map_dirty(const NetlistDiff& diff, const Network& before,
                    const Network& after, const PlacementInfo& placement);

}  // namespace na
