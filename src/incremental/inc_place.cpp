#include "incremental/inc_place.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_set>

#include "place/box_place.hpp"
#include "place/boxes.hpp"
#include "place/gravity.hpp"
#include "place/module_place.hpp"
#include "place/partition.hpp"
#include "place/partition_place.hpp"
#include "place/terminal_place.hpp"

namespace na {
namespace {

/// The frozen modules as one pinned pseudo-partition (the placer's own
/// preplaced-part treatment, Appendix E option -g).
PartitionLayout frozen_layout(const Diagram& dia,
                              const std::vector<ModuleId>& frozen,
                              geom::Rect hull) {
  PartitionLayout part;
  for (ModuleId m : frozen) {
    BoxLayout box;
    box.modules = {m};
    box.rot = {dia.placed(m).rot};
    box.pos = {{0, 0}};
    box.size = dia.module_size(m);
    part.boxes.push_back(std::move(box));
    part.box_pos.push_back(dia.placed(m).pos - hull.lo);
  }
  part.size = {hull.width(), hull.height()};
  return part;
}

/// The old arrangement of a dirty partition whose membership and module
/// sizes are unchanged, rebuilt as a pinnable layout over the NEW ids.
PartitionLayout refresh_layout(const Diagram& old_dia, const NetlistDiff& diff,
                               const std::vector<ModuleId>& partition,
                               geom::Rect hull) {
  PartitionLayout part;
  for (ModuleId m : partition) {
    const ModuleId om = diff.module_to_old[m];
    BoxLayout box;
    box.modules = {m};
    box.rot = {old_dia.placed(om).rot};
    box.pos = {{0, 0}};
    box.size = old_dia.module_size(om);
    part.boxes.push_back(std::move(box));
    part.box_pos.push_back(old_dia.placed(om).pos - hull.lo);
  }
  part.size = {hull.width(), hull.height()};
  return part;
}

/// Gravity centre of a dirty partition's nets over the endpoints whose
/// positions are already known — frozen module terminals (placed in `dia`)
/// and system terminals surviving from the old diagram.  This is the
/// partition-level GRAVITY_PLACED_BOXES sum of section 4.6.6, taken over
/// the preplaced part instead of over previously placed partitions, so an
/// *added* module is pulled toward the modules it talks to (readability
/// rule 2) instead of toward whatever edge of the frozen hull is nearest.
std::optional<geom::Point> net_gravity_center(
    const Diagram& dia, const Diagram& old_dia, const NetlistDiff& diff,
    const std::vector<ModuleId>& partition) {
  const Network& net = dia.network();
  std::unordered_set<ModuleId> members(partition.begin(), partition.end());
  std::unordered_set<NetId> nets;
  for (ModuleId m : partition) {
    for (TermId t : net.module(m).terms) {
      if (net.term(t).net != kNone) nets.insert(net.term(t).net);
    }
  }
  std::int64_t sx = 0, sy = 0, cnt = 0;
  for (NetId n : nets) {
    for (TermId t : net.net(n).terms) {
      const Terminal& term = net.term(t);
      geom::Point p;
      if (term.is_system()) {
        const TermId ot = diff.term_to_old[t];
        if (ot == kNone || !old_dia.system_term_placed(ot)) continue;
        p = old_dia.term_pos(ot);
      } else {
        if (members.contains(term.module) || !dia.module_placed(term.module)) {
          continue;
        }
        p = dia.term_pos(t);
      }
      sx += p.x;
      sy += p.y;
      ++cnt;
    }
  }
  if (cnt == 0) return std::nullopt;
  return geom::Point{static_cast<int>(sx / cnt), static_cast<int>(sy / cnt)};
}

/// Grid points occupied by the cached diagram's routed nets — the "is this
/// vacancy really vacant" oracle for the gravity-seeded insertion below.
struct RoutedCells {
  std::unordered_set<std::uint64_t> cells;

  static std::uint64_t key(geom::Point p) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
           static_cast<std::uint32_t>(p.y);
  }

  explicit RoutedCells(const Diagram& dia) {
    const Network& net = dia.network();
    for (NetId n = 0; n < net.net_count(); ++n) {
      for (const auto& pl : dia.route(n).polylines) {
        if (pl.size() == 1) cells.insert(key(pl[0]));
        for (size_t i = 1; i < pl.size(); ++i) {
          const geom::Point a = pl[i - 1];
          const geom::Point b = pl[i];
          if (a.x != b.x && a.y != b.y) continue;
          const geom::Point step = {(b.x > a.x) - (b.x < a.x),
                                    (b.y > a.y) - (b.y < a.y)};
          for (geom::Point p = a;; p += step) {
            cells.insert(key(p));
            if (p == b) break;
          }
        }
      }
    }
  }

  /// Routed track cells under `r` — each one a net the insertion would
  /// displace (scrub + re-route) if a symbol landed here.
  int covered(geom::Rect r) const {
    int hits = 0;
    for (int x = r.lo.x; x <= r.hi.x; ++x) {
      for (int y = r.lo.y; y <= r.hi.y; ++y) {
        hits += cells.contains(key({x, y})) ? 1 : 0;
      }
    }
    return hits;
  }
};

/// The gravity-seeded vacancy search: the position for a `size` rectangle
/// near `ideal` minimising squared gravity distance plus a displacement
/// penalty per routed cell the footprint would sit on.  "Hole-pinned
/// vacancies first" — a spot a few tracks further that tears up no routing
/// beats one directly on a channel — "then local hull expansion": ring by
/// ring until the score bound proves no better cell exists, out to
/// `max_radius`.
std::optional<geom::Point> gravity_vacancy(geom::Point ideal, geom::Point size,
                                           std::span<const geom::Rect> placed,
                                           int spacing, int max_radius,
                                           const RoutedCells& routed) {
  // One displaced routed cell weighs like four extra tracks of distance:
  // proximity still dominates, but dense channels repel the insertion.
  constexpr std::int64_t kCellPenalty = 16;
  auto feasible = [&](geom::Point pos) {
    const geom::Rect candidate = geom::Rect::from_size(pos, size).expanded(spacing);
    for (const geom::Rect& r : placed) {
      if (candidate.overlaps(r)) return false;
    }
    return true;
  };
  auto score = [&](geom::Point pos) {
    return geom::dist2(pos, ideal) +
           kCellPenalty * routed.covered(geom::Rect::from_size(pos, size));
  };

  std::optional<geom::Point> best;
  std::int64_t best_score = std::numeric_limits<std::int64_t>::max();
  auto consider = [&](geom::Point pos) {
    if (geom::dist2(pos, ideal) >= best_score || !feasible(pos)) return;
    const std::int64_t s = score(pos);
    if (s < best_score) {
      best = pos;
      best_score = s;
    }
  };
  consider(ideal);
  for (int r = 1; r <= max_radius; ++r) {
    // Every position on ring r is at least r tracks out, so its score is
    // at least r*r; once that exceeds the best score, no later ring wins.
    if (best_score < static_cast<std::int64_t>(r) * r) break;
    for (int dx = -r; dx <= r; ++dx) {
      consider(ideal + geom::Point{dx, r});
      consider(ideal + geom::Point{dx, -r});
    }
    for (int dy = -r + 1; dy < r; ++dy) {
      consider(ideal + geom::Point{r, dy});
      consider(ideal + geom::Point{-r, dy});
    }
  }
  return best;
}

}  // namespace

IncPlaceResult incremental_place(Diagram& dia, const Diagram& old_dia,
                                 const NetlistDiff& diff, const DirtyInfo& dirty,
                                 const PlacementInfo& old_info,
                                 const PlacerOptions& opt) {
  const Network& net = dia.network();
  IncPlaceResult result;

  // ----- freeze clean modules at their cached positions ----------------------
  std::vector<ModuleId> frozen;
  std::vector<bool> dirty_mask(net.module_count(), false);
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    const ModuleId om = diff.module_to_old[m];
    if (!dirty.module_dirty[m] && om != kNone && old_dia.module_placed(om)) {
      const PlacedModule& pm = old_dia.placed(om);
      dia.place_module(m, pm.pos, pm.rot);
      frozen.push_back(m);
    } else {
      dirty_mask[m] = true;
    }
  }
  result.modules_frozen = static_cast<int>(frozen.size());

  // ----- re-place the dirty set through the section-4.6 pipeline -------------
  std::vector<std::vector<ModuleId>> new_partitions;
  std::vector<std::vector<Box>> new_boxes;
  if (result.modules_frozen < net.module_count()) {
    const PartitionLimits limits{opt.max_part_size, opt.max_connections};
    new_partitions = partition_network(net, limits, dirty_mask);

    std::vector<PartitionLayout> layouts;
    std::vector<std::optional<geom::Point>> fixed_pos;
    geom::Rect frozen_hull;
    for (ModuleId m : frozen) frozen_hull = frozen_hull.hull(dia.module_rect(m));
    if (!frozen.empty()) {
      layouts.push_back(frozen_layout(dia, frozen, frozen_hull));
      fixed_pos.push_back(frozen_hull.lo);
    }

    // Old module -> old partition index, for the in-place refresh test.
    const Network& old_net = old_dia.network();
    std::vector<int> old_part_of(old_net.module_count(), -1);
    for (size_t p = 0; p < old_info.partitions.size(); ++p) {
      for (ModuleId om : old_info.partitions[p]) {
        old_part_of[om] = static_cast<int>(p);
      }
    }

    std::vector<geom::Rect> pinned;  // holes already promised to a partition
    std::optional<RoutedCells> routed_cells;  // built on first gravity seed
    for (const auto& partition : new_partitions) {
      // In-place refresh: when the partition's membership and module sizes
      // are unchanged (the edit moved a terminal pin or rewired a net), the
      // old arrangement is still the right one — re-running the box layout
      // would spread the group into space it does not have and tear up
      // every net it touches.  Keep the old geometry verbatim.
      int old_part = -1;
      bool unchanged = !partition.empty();
      for (ModuleId m : partition) {
        const ModuleId om = diff.module_to_old[m];
        if (om == kNone || !old_dia.module_placed(om) ||
            old_net.module(om).size != net.module(m).size ||
            old_part_of[om] == -1 ||
            (old_part != -1 && old_part_of[om] != old_part)) {
          unchanged = false;
          break;
        }
        old_part = old_part_of[om];
      }
      if (unchanged &&
          old_info.partitions[old_part].size() == partition.size()) {
        geom::Rect hull;
        for (ModuleId m : partition) {
          hull = hull.hull(old_dia.module_rect(diff.module_to_old[m]));
        }
        bool clear = true;  // old rects cannot hit frozen ones, only holes
        for (const geom::Rect& r : pinned) {
          if (hull.overlaps(r)) clear = false;
        }
        if (clear) {
          layouts.push_back(refresh_layout(old_dia, diff, partition, hull));
          fixed_pos.push_back(hull.lo);
          pinned.push_back(hull);
          std::vector<Box> boxes;
          for (const Box& ob : old_info.boxes[old_part]) {
            Box nb;
            for (ModuleId om : ob) nb.push_back(diff.module_to_new[om]);
            boxes.push_back(std::move(nb));
          }
          new_boxes.push_back(std::move(boxes));
          continue;
        }
      }

      auto boxes = form_boxes(net, partition, opt.max_box_size);
      std::vector<BoxLayout> box_layouts;
      box_layouts.reserve(boxes.size());
      for (const Box& b : boxes) {
        box_layouts.push_back(place_box_modules(net, b, opt.module_spacing));
      }
      PartitionLayout layout =
          place_boxes(net, std::move(box_layouts), opt.box_spacing);

      // Hole pinning: the hull the partition's modules vacated in the old
      // diagram.  Pin the new layout there when it fits and collides with
      // nothing frozen and no other pinned hole.
      std::optional<geom::Point> pin;
      geom::Rect hole;
      bool all_existed = !partition.empty();
      for (ModuleId m : partition) {
        const ModuleId om = diff.module_to_old[m];
        if (om == kNone || !old_dia.module_placed(om)) {
          all_existed = false;
          break;
        }
        hole = hole.hull(old_dia.module_rect(om));
      }
      if (all_existed && layout.size.x <= hole.width() &&
          layout.size.y <= hole.height()) {
        const geom::Rect target = geom::Rect::from_size(hole.lo, layout.size);
        bool clear = true;
        for (ModuleId m : frozen) {
          if (target.expanded(opt.partition_spacing)
                  .overlaps(dia.module_rect(m))) {
            clear = false;
            break;
          }
        }
        for (const geom::Rect& r : pinned) {
          if (target.overlaps(r)) clear = false;
        }
        if (clear) {
          pin = hole.lo;
          pinned.push_back(target);
        }
      }

      // Gravity seeding: a partition without a vacated hole (added modules,
      // or a refreshed group that outgrew its hole) is pulled toward the
      // gravity centre of its nets' already-placed endpoints and dropped on
      // the nearest vacancy — testing against the *individual* frozen
      // module rectangles, so holes inside the frozen hull are usable and
      // the ring search expands the hull locally when they are not.  Only
      // when no legal cell exists within the bounded radius does the
      // partition fall through to place_partitions, which treats the
      // frozen part as one solid rectangle and lines it up at the edge.
      if (!pin && !frozen.empty()) {
        if (const auto center =
                net_gravity_center(dia, old_dia, diff, partition)) {
          const geom::Point ideal = *center - geom::Point{layout.size.x / 2,
                                                          layout.size.y / 2};
          const int spacing = std::max(opt.module_spacing, 1);
          const int max_radius =
              std::max(frozen_hull.width(), frozen_hull.height()) / 2 +
              std::max(layout.size.x, layout.size.y) + spacing + 1;
          std::vector<geom::Rect> obstacles;
          obstacles.reserve(frozen.size() + pinned.size());
          for (ModuleId m : frozen) obstacles.push_back(dia.module_rect(m));
          obstacles.insert(obstacles.end(), pinned.begin(), pinned.end());
          if (!routed_cells) routed_cells.emplace(old_dia);
          if (const auto spot =
                  gravity_vacancy(ideal, layout.size, obstacles, spacing,
                                  max_radius, *routed_cells)) {
            pin = *spot;
            pinned.push_back(geom::Rect::from_size(*spot, layout.size));
          }
        }
      }
      layouts.push_back(std::move(layout));
      fixed_pos.push_back(pin);
      new_boxes.push_back(std::move(boxes));
    }

    const FullLayout full =
        place_partitions(net, std::move(layouts), opt.partition_spacing, fixed_pos);
    for (size_t p = 0; p < full.partitions.size(); ++p) {
      const PartitionLayout& part = full.partitions[p];
      for (size_t b = 0; b < part.boxes.size(); ++b) {
        const BoxLayout& box = part.boxes[b];
        for (size_t i = 0; i < box.modules.size(); ++i) {
          const ModuleId m = box.modules[i];
          if (dia.module_placed(m)) continue;  // frozen stays put
          dia.place_module(m, full.partition_pos[p] + part.box_pos[b] + box.pos[i],
                           box.rot[i]);
          ++result.modules_replaced;
        }
      }
    }
  }

  // ----- system terminals: keep survivors, ring-place the rest ---------------
  for (TermId st : net.system_terms()) {
    const TermId ot = diff.term_to_old[st];
    if (ot == kNone || !old_dia.system_term_placed(ot)) continue;
    const geom::Point pos = old_dia.term_pos(ot);
    bool clear = true;  // a re-placed partition may have grown over the spot
    for (ModuleId m = 0; m < net.module_count(); ++m) {
      if (dia.module_placed(m) && dia.module_rect(m).contains(pos)) {
        clear = false;
        break;
      }
    }
    if (clear) dia.place_system_term(st, pos);
  }
  place_system_terminals(dia);

  // ----- feasibility: frozen placement must stay overlap-free ----------------
  for (ModuleId a = 0; a < net.module_count() && result.feasible; ++a) {
    if (!dia.module_placed(a)) {
      result.feasible = false;
      break;
    }
    for (ModuleId b = a + 1; b < net.module_count(); ++b) {
      if (dia.module_placed(b) &&
          dia.module_rect(a).overlaps(dia.module_rect(b))) {
        result.feasible = false;
        break;
      }
    }
  }

  // ----- merged structure: carried-over clean partitions + the new ones ------
  for (size_t p = 0; p < old_info.partitions.size(); ++p) {
    if (p < dirty.partition_dirty.size() && dirty.partition_dirty[p]) continue;
    std::vector<ModuleId> mapped;
    for (ModuleId om : old_info.partitions[p]) {
      const ModuleId nm = diff.module_to_new[om];
      if (nm != kNone) mapped.push_back(nm);
    }
    if (mapped.empty()) continue;
    std::vector<Box> boxes;
    if (p < old_info.boxes.size()) {
      for (const Box& ob : old_info.boxes[p]) {
        Box nb;
        for (ModuleId om : ob) {
          const ModuleId nm = diff.module_to_new[om];
          if (nm != kNone) nb.push_back(nm);
        }
        if (!nb.empty()) boxes.push_back(std::move(nb));
      }
    }
    result.info.partitions.push_back(std::move(mapped));
    result.info.boxes.push_back(std::move(boxes));
  }
  for (size_t p = 0; p < new_partitions.size(); ++p) {
    result.info.partitions.push_back(std::move(new_partitions[p]));
    result.info.boxes.push_back(std::move(new_boxes[p]));
  }
  return result;
}

}  // namespace na
