// RegenSession — the re-entrant facade of the incremental regeneration
// engine: the piece the ESCHER-style edit loop (paper sections 2 and 6)
// talks to.  It owns the cached network copy, diagram and partition
// structure, and turns each edited Network handed to update() into a new
// diagram by diffing, patching placement, and patch-routing — falling back
// to a full regeneration when the edit is too large (dirty-partition share
// above `max_dirty_fraction`), the frozen placement becomes infeasible, or
// the patched diagram fails the geometric validity check.
//
//   RegenSession session(options);
//   session.update(net);          // first call: full generation
//   ...user edits net...
//   session.update(edited_net);   // small delta => small work
//   session.last().nets_rerouted; // what the update actually cost
#pragma once

#include <memory>

#include "core/generator.hpp"
#include "geom/rect.hpp"
#include "incremental/netlist_diff.hpp"

namespace na {

/// Work counters for one update (last()) or the session lifetime (totals()).
struct RegenCounters {
  int updates = 0;
  int incremental = 0;    ///< updates served by the patch path
  int full_regens = 0;    ///< updates that fell back to full generation
  int edits_composed = 0;  ///< edit scripts covered by update_composed calls
  int modules_replaced = 0;
  int modules_frozen = 0;
  int nets_kept = 0;
  int nets_rerouted = 0;
  int nets_extended = 0;  ///< rerouted nets that kept partial geometry
  int cells_scrubbed = 0;
  long route_expansions = 0;  ///< search work of the (patch) routing pass
  int region_validations = 0;  ///< patches checked by validate_region only
  int full_validations = 0;    ///< whole-diagram checks (forced or fallback)
  double validate_ms = 0.0;    ///< wall time spent validating the patch
  /// Dirty hull the last patch validated (empty for full regens and no-op
  /// updates); in totals() the hull of every patch's region.
  geom::Rect dirty_region;
};

struct RegenOptions {
  GeneratorOptions generator;
  /// Fallback rule, part 1: full re-place when more than this share of
  /// partitions is dirtied by the edit.
  double max_dirty_fraction = 0.5;
  /// Check every patched result against the drawing rules and fall back to
  /// a full regeneration when it reports problems.  The check is region-
  /// scoped (validate_region over the patch's dirty hull, escalating to a
  /// whole-diagram validate_diagram only when the region reports an
  /// issue); disable only when the caller validates anyway.
  bool validate = true;
  /// Force the whole-diagram check on every patch instead of the region-
  /// scoped one — the pre-region behavior, kept for measurement and as an
  /// escape hatch.
  bool validate_full = false;
};

class RegenSession {
 public:
  explicit RegenSession(RegenOptions opt = {});
  ~RegenSession();
  RegenSession(RegenSession&&) noexcept;
  RegenSession& operator=(RegenSession&&) noexcept;

  /// Regenerates the cached diagram for `next` and returns it.  The first
  /// call (or any too-large edit) is a full generation; small edits take
  /// the incremental path.  The returned reference stays valid until the
  /// next update()/adopt() call.
  const Diagram& update(const Network& next);

  /// Multi-edit entry point: regenerates for `next` exactly as update()
  /// would, but records that the one diff/update covered `edits` composed
  /// edit scripts (ScriptComposer::steps() at flush time).  The service
  /// tier uses this at observation points so k deferred edits cost one
  /// netlist diff and one patch pass instead of k.
  const Diagram& update_composed(const Network& next, int edits);

  /// Re-seeds the session from an externally produced diagram — e.g. one
  /// reloaded through escher_reader after an editor restart, or a careful
  /// hand placement.  `dia` must wrap a network equal to `net`.
  /// Partition/box structure is re-derived from scratch; for an exact
  /// continuation of a previous session use save()/restore().
  void adopt(const Network& net, const Diagram& dia);

  /// Serialises the whole session — network, partition/box structure, and
  /// the routed diagram (as an ESCHER file via escher_writer) — into one
  /// text blob a later process can restore().  Requires a diagram.
  std::string save() const;

  /// Rebuilds a session from save() output: the restored session holds an
  /// equal network, the *same* partition/box structure (not a re-derived
  /// one), and a geometry-identical diagram, so the next update() produces
  /// byte-identical output to the session that was saved.  Counters start
  /// at zero.  Throws std::runtime_error with a line number on malformed
  /// input.
  void restore(std::string_view text);

  bool has_diagram() const { return dia_ != nullptr; }
  const Diagram& diagram() const;
  const Network& network() const;
  const PlacementInfo& placement() const { return info_; }
  const RegenCounters& totals() const { return totals_; }
  /// Counters of the most recent update() only.
  const RegenCounters& last() const { return last_; }
  /// Session-lifetime speculation counters of the routing passes behind
  /// every update (all zero when the router ran sequentially).
  const ParallelRouteStats& speculation() const { return spec_totals_; }

 private:
  void full_regen(const Network& next);
  void account(const RegenCounters& one);
  void account_speculation(const ParallelRouteStats& one);

  RegenOptions opt_;
  std::unique_ptr<Network> net_;  ///< owned copy; dia_ points into it
  std::unique_ptr<Diagram> dia_;
  PlacementInfo info_;
  RegenCounters totals_;
  RegenCounters last_;
  ParallelRouteStats spec_totals_;
};

}  // namespace na
