#include "incremental/inc_route.hpp"

#include <vector>

namespace na {
namespace {

/// Can the net's geometry be carried over unchanged?  Requires an old
/// counterpart the diff left untouched, a complete old routing, and every
/// terminal sitting at the exact same absolute position in both diagrams.
bool is_clean(const Diagram& dia, const Diagram& old_dia, const NetlistDiff& diff,
              NetId n, const std::vector<bool>& changed) {
  const NetId on = diff.net_to_old[n];
  if (on == kNone || changed[n]) return false;
  if (!old_dia.route(on).routed) return false;
  const Network& net = dia.network();
  for (TermId t : net.net(n).terms) {
    const TermId ot = diff.term_to_old[t];
    if (ot == kNone) return false;
    const Terminal& term = net.term(t);
    const bool placed = term.is_system() ? dia.system_term_placed(t)
                                         : dia.module_placed(term.module);
    const Terminal& old_term = old_dia.network().term(ot);
    const bool old_placed = old_term.is_system()
                                ? old_dia.system_term_placed(ot)
                                : old_dia.module_placed(old_term.module);
    if (!placed || !old_placed) return false;
    if (dia.term_pos(t) != old_dia.term_pos(ot)) return false;
  }
  return true;
}

int geometry_cells(const NetRoute& r) {
  int cells = 0;
  for (const auto& pl : r.polylines) cells += static_cast<int>(pl.size());
  return r.total_length() + cells;  // track slots ~ unit steps + node points
}

}  // namespace

PatchRouteResult patch_route(Diagram& dia, const Diagram& old_dia,
                             const NetlistDiff& diff, const RouterOptions& opt) {
  const Network& net = dia.network();
  PatchRouteResult result;

  std::vector<bool> changed(net.net_count(), false);
  for (NetId n : diff.changed_nets) changed[n] = true;

  // ----- dirty geometry: rects of modules that appeared or moved -------------
  std::vector<geom::Rect> moved_rects;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) continue;
    const ModuleId om = diff.module_to_old[m];
    if (om == kNone || !old_dia.module_placed(om) ||
        dia.module_rect(m) != old_dia.module_rect(om)) {
      moved_rects.push_back(dia.module_rect(m));
    }
  }
  std::vector<geom::Point> moved_points;  // system terminals that appeared/moved
  for (TermId st : net.system_terms()) {
    if (!dia.system_term_placed(st)) continue;
    const TermId ot = diff.term_to_old[st];
    if (ot == kNone || !old_dia.system_term_placed(ot) ||
        dia.term_pos(st) != old_dia.term_pos(ot)) {
      moved_points.push_back(dia.term_pos(st));
    }
  }
  auto collides = [&](const NetRoute& r) {
    for (const auto& pl : r.polylines) {
      for (size_t i = 0; i < pl.size(); ++i) {
        const geom::Segment seg{pl[i > 0 ? i - 1 : 0], pl[i]};
        for (const geom::Rect& rect : moved_rects) {
          if (seg.bounds().overlaps(rect)) return true;
        }
        for (const geom::Point p : moved_points) {
          if (seg.contains(p)) return true;
        }
      }
    }
    return false;
  };

  // ----- carry clean geometry over; scrub the rest ---------------------------
  int old_cells = 0;
  for (NetId on = 0; on < old_dia.network().net_count(); ++on) {
    old_cells += geometry_cells(old_dia.route(on));
  }
  int kept_cells = 0;
  std::vector<bool> kept(net.net_count(), false);
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (!is_clean(dia, old_dia, diff, n, changed)) continue;
    const NetRoute& old_route = old_dia.route(diff.net_to_old[n]);
    if (collides(old_route)) continue;
    NetRoute& r = dia.route(n);
    r.polylines = old_route.polylines;
    r.routed = true;
    kept[n] = true;
    ++result.nets_kept;
    kept_cells += geometry_cells(old_route);
  }
  result.cells_scrubbed = old_cells - kept_cells;

  // ----- route everything still open against the preserved plane -------------
  result.report = route_all(dia, opt);
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (!kept[n] && !dia.route(n).polylines.empty()) ++result.nets_rerouted;
  }
  return result;
}

}  // namespace na
