#include "incremental/inc_route.hpp"

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geom/polyline.hpp"

namespace na {
namespace {

/// Can the net's geometry be carried over unchanged?  Requires an old
/// counterpart the diff left untouched, a complete old routing, and every
/// terminal sitting at the exact same absolute position in both diagrams.
bool is_clean(const Diagram& dia, const Diagram& old_dia, const NetlistDiff& diff,
              NetId n, const std::vector<bool>& changed) {
  const NetId on = diff.net_to_old[n];
  if (on == kNone || changed[n]) return false;
  if (!old_dia.route(on).routed) return false;
  const Network& net = dia.network();
  for (TermId t : net.net(n).terms) {
    const TermId ot = diff.term_to_old[t];
    if (ot == kNone) return false;
    const Terminal& term = net.term(t);
    const bool placed = term.is_system() ? dia.system_term_placed(t)
                                         : dia.module_placed(term.module);
    const Terminal& old_term = old_dia.network().term(ot);
    const bool old_placed = old_term.is_system()
                                ? old_dia.system_term_placed(ot)
                                : old_dia.module_placed(old_term.module);
    if (!placed || !old_placed) return false;
    if (dia.term_pos(t) != old_dia.term_pos(ot)) return false;
  }
  return true;
}

int polyline_cells(const std::vector<geom::Point>& pl) {
  int length = 0;
  for (size_t i = 1; i < pl.size(); ++i) {
    length += geom::manhattan(pl[i - 1], pl[i]);
  }
  return length + static_cast<int>(pl.size());
}

int geometry_cells(const NetRoute& r) {
  int cells = 0;
  for (const auto& pl : r.polylines) cells += polyline_cells(pl);
  return cells;
}

std::uint64_t key_of(geom::Point p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
         static_cast<std::uint32_t>(p.y);
}

geom::Point point_of(std::uint64_t k) {
  return {static_cast<std::int32_t>(k >> 32),
          static_cast<std::int32_t>(k & 0xffffffffu)};
}

/// Every grid point a polyline chain occupies.
template <typename F>
void for_each_point(const std::vector<geom::Point>& pl, F f) {
  if (pl.size() == 1) {
    f(pl[0]);
    return;
  }
  for (size_t i = 1; i < pl.size(); ++i) {
    const geom::Point a = pl[i - 1];
    const geom::Point b = pl[i];
    if (a.x != b.x && a.y != b.y) continue;
    const geom::Point step = {(b.x > a.x) - (b.x < a.x), (b.y > a.y) - (b.y < a.y)};
    for (geom::Point p = a;; p += step) {
      f(p);
      if (p == b) break;
    }
  }
}

/// Of the polylines in `pls`, the indices forming the largest connected
/// figure (unit adjacency over occupied points — the same notion the
/// validator's connectivity check uses, so whatever survives here is one
/// figure by its rules).
std::vector<size_t> largest_figure(
    const std::vector<std::vector<geom::Point>>& pls) {
  std::unordered_map<std::uint64_t, int> comp;  // point -> component id
  std::unordered_set<std::uint64_t> points;
  for (const auto& pl : pls) {
    for_each_point(pl, [&](geom::Point p) { points.insert(key_of(p)); });
  }
  int next_comp = 0;
  std::vector<int> comp_cells;
  for (const std::uint64_t seed : points) {
    if (comp.contains(seed)) continue;
    const int id = next_comp++;
    comp_cells.push_back(0);
    std::queue<std::uint64_t> frontier;
    frontier.push(seed);
    comp.emplace(seed, id);
    while (!frontier.empty()) {
      const geom::Point p = point_of(frontier.front());
      frontier.pop();
      ++comp_cells[id];
      for (geom::Dir d : geom::kAllDirs) {
        const std::uint64_t q = key_of(p + geom::delta(d));
        if (points.contains(q) && comp.emplace(q, id).second) frontier.push(q);
      }
    }
  }
  int best = 0;
  for (int id = 1; id < next_comp; ++id) {
    if (comp_cells[id] > comp_cells[best]) best = id;
  }
  std::vector<size_t> kept;
  for (size_t i = 0; i < pls.size(); ++i) {
    if (!pls[i].empty() && comp.at(key_of(pls[i][0])) == best) kept.push_back(i);
  }
  return kept;
}

geom::Rect polyline_hull(geom::Rect hull, const std::vector<geom::Point>& pl) {
  for (geom::Point p : pl) hull = hull.hull(p);
  return hull;
}

}  // namespace

PatchRouteResult patch_route(Diagram& dia, const Diagram& old_dia,
                             const NetlistDiff& diff, const RouterOptions& opt) {
  const Network& net = dia.network();
  const Network& old_net = old_dia.network();
  PatchRouteResult result;

  std::vector<bool> changed(net.net_count(), false);
  for (NetId n : diff.changed_nets) changed[n] = true;

  // ----- dirty geometry: rects of modules that appeared or moved -------------
  std::vector<geom::Rect> moved_rects;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (!dia.module_placed(m)) continue;
    const ModuleId om = diff.module_to_old[m];
    if (om == kNone || !old_dia.module_placed(om) ||
        dia.module_rect(m) != old_dia.module_rect(om)) {
      moved_rects.push_back(dia.module_rect(m));
    }
  }
  std::vector<geom::Point> moved_points;  // system terminals that appeared/moved
  for (TermId st : net.system_terms()) {
    if (!dia.system_term_placed(st)) continue;
    const TermId ot = diff.term_to_old[st];
    if (ot == kNone || !old_dia.system_term_placed(ot) ||
        dia.term_pos(st) != old_dia.term_pos(ot)) {
      moved_points.push_back(dia.term_pos(st));
    }
  }
  auto segment_dirty = [&](const geom::Segment& seg,
                           const std::vector<geom::Point>& stale) {
    for (const geom::Rect& rect : moved_rects) {
      if (seg.bounds().overlaps(rect)) return true;
    }
    for (const geom::Point p : moved_points) {
      if (seg.contains(p)) return true;
    }
    for (const geom::Point p : stale) {
      if (seg.contains(p)) return true;
    }
    return false;
  };
  auto polyline_dirty = [&](const std::vector<geom::Point>& pl,
                            const std::vector<geom::Point>& stale) {
    for (size_t i = 0; i < pl.size(); ++i) {
      if (segment_dirty({pl[i > 0 ? i - 1 : 0], pl[i]}, stale)) return true;
    }
    return false;
  };

  geom::Rect region;
  for (const geom::Rect& r : moved_rects) region = region.hull(r);
  for (const geom::Point p : moved_points) region = region.hull(p);

  // ----- carry clean geometry over verbatim ----------------------------------
  int old_cells = 0;
  for (NetId on = 0; on < old_net.net_count(); ++on) {
    old_cells += geometry_cells(old_dia.route(on));
  }
  int kept_cells = 0;
  std::vector<bool> kept(net.net_count(), false);
  static const std::vector<geom::Point> kNoStale;
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (!is_clean(dia, old_dia, diff, n, changed)) continue;
    const NetRoute& old_route = old_dia.route(diff.net_to_old[n]);
    bool dirty = false;
    for (const auto& pl : old_route.polylines) {
      if (polyline_dirty(pl, kNoStale)) dirty = true;
    }
    if (dirty) continue;
    NetRoute& r = dia.route(n);
    r.polylines = old_route.polylines;
    r.routed = true;
    kept[n] = true;
    ++result.nets_kept;
    kept_cells += geometry_cells(old_route);
  }

  // ----- partial keep: surviving figures of the nets to be (re)routed --------
  // Only the polylines under an appeared/moved symbol or touching a stale
  // terminal position are really invalid; everything else is legal drawn
  // geometry.  Keep the largest still-connected figure of it as prerouted
  // partial geometry — the route pass then merely attaches the open
  // terminals (join_own_net), so e.g. a global net that gained one pin is
  // extended near that pin instead of being re-searched across the plane.
  std::vector<int> carried(net.net_count(), 0);  // kept polylines per net
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (kept[n]) continue;
    const NetId on = diff.net_to_old[n];
    if (on == kNone) continue;
    if (!old_dia.route(on).routed) {
      // A net that had failed before is re-searched whole; its partial old
      // geometry (if any) is scrubbed and belongs to the dirty region.
      for (const auto& pl : old_dia.route(on).polylines) {
        region = polyline_hull(region, pl);
      }
      continue;
    }

    // Stale endpoints: old terminal positions that no longer carry a
    // terminal of this net at the same spot.  A kept polyline ending there
    // would dangle against a module wall (or a foreign pin) — drop it.
    std::vector<geom::Point> stale;
    for (TermId ot : old_net.net(on).terms) {
      const TermId t = diff.term_to_new[ot];
      bool survives = t != kNone && net.term(t).net == n;
      if (survives) {
        const Terminal& term = net.term(t);
        const bool placed = term.is_system() ? dia.system_term_placed(t)
                                             : dia.module_placed(term.module);
        survives = placed && dia.term_pos(t) == old_dia.term_pos(ot);
      }
      if (!survives) stale.push_back(old_dia.term_pos(ot));
    }

    const NetRoute& old_route = old_dia.route(on);
    std::vector<std::vector<geom::Point>> candidates;
    for (const auto& pl : old_route.polylines) {
      if (!polyline_dirty(pl, stale)) {
        candidates.push_back(pl);
      } else {
        // Split at segment granularity: only the dirty segments are
        // scrubbed into the patch region, the clean runs survive as
        // candidates — a long net crossing the region keeps its clean
        // middle instead of being re-searched whole.  Cuts land on the
        // net's own corners; build_grid seals such mid-plane endpoints
        // in both orientations, so no foreign net can touch the node.
        for (size_t i = 0; i + 1 < pl.size(); ++i) {
          const geom::Segment seg{pl[i], pl[i + 1]};
          if (segment_dirty(seg, stale)) region = region.hull(seg.bounds());
        }
        auto pieces = geom::split_polyline(pl, [&](const geom::Segment& seg) {
          return !segment_dirty(seg, stale);
        });
        for (auto& piece : pieces) candidates.push_back(std::move(piece));
      }
    }
    if (candidates.empty()) continue;  // nothing survives: full re-route
    NetRoute& r = dia.route(n);
    std::vector<bool> in_figure(candidates.size(), false);
    for (size_t i : largest_figure(candidates)) in_figure[i] = true;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!in_figure[i]) {  // disconnected leftover: scrubbed too
        region = polyline_hull(region, candidates[i]);
        continue;
      }
      kept_cells += polyline_cells(candidates[i]);
      r.polylines.push_back(std::move(candidates[i]));
      ++carried[n];
    }
    r.routed = false;  // open terminals attach during the route pass
    ++result.nets_extended;
  }
  result.cells_scrubbed = old_cells - kept_cells;

  // ----- route everything still open against the preserved plane -------------
  result.report = route_all(dia, opt, &result.speculation);
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (kept[n] || dia.route(n).polylines.empty()) continue;
    ++result.nets_rerouted;
    const NetId on = diff.net_to_old[n];
    if (on != kNone && carried[n] == 0) {
      // Fully scrubbed: all old geometry was discarded, hull it whole.
      for (const auto& pl : old_dia.route(on).polylines) {
        region = polyline_hull(region, pl);
      }
    }
    // New geometry: everything beyond the carried-over prefix.  (For a
    // fully re-routed net that prefix is empty, so this is all of it.)
    const auto& pls = dia.route(n).polylines;
    for (size_t i = carried[n]; i < pls.size(); ++i) {
      region = polyline_hull(region, pls[i]);
    }
  }
  for (NetId on : diff.removed_nets) {  // dead geometry scrubbed silently
    for (const auto& pl : old_dia.route(on).polylines) {
      region = polyline_hull(region, pl);
    }
  }
  if (!region.empty()) region = region.expanded(1);
  result.dirty_region = region;
  return result;
}

}  // namespace na
