// Parameterised bit-sliced datapath generator: an n-bit ripple-carry
// accumulator (adder + register + write-back mux per bit, one controller).
// The scalable workload family for the timing studies — the "complex
// VLSI-circuits generated from a high level description" the paper's
// introduction motivates, at adjustable size.
#pragma once

#include "netlist/network.hpp"

namespace na::gen {

struct DatapathOptions {
  int bits = 4;
};

/// 3*bits + 1 modules; ~6*bits nets; bits+3 system terminals
/// (per-bit data inputs, clk, carry-in, carry-out).
Network datapath_network(const DatapathOptions& opt = {});

}  // namespace na::gen
