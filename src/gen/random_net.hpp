// Random network generator for property tests and scaling benches:
// connected, mostly feed-forward networks over the standard cell library,
// with controllable size, extra fan-out nets and system terminals.
#pragma once

#include <cstdint>

#include "netlist/network.hpp"

namespace na::gen {

struct RandomNetOptions {
  int modules = 10;
  int extra_nets = 8;      ///< fan-out nets beyond the connecting spine
  int max_fanout = 3;      ///< sinks per extra net
  bool system_terms = true;
  std::uint32_t seed = 1;
};

/// Deterministic for a given option set.  Every module is reachable from
/// the first through the net graph; every net has >= 2 terminals.
Network random_network(const RandomNetOptions& opt = {});

}  // namespace na::gen
