#include "gen/controller.hpp"

#include "netlist/module_library.hpp"

namespace na::gen {

Network controller_network() {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId ctrl = lib.instantiate(net, "ctrl", "ctrl");

  auto term = [&](ModuleId m, const char* name) {
    return *net.term_by_name(m, name);
  };

  // Three functional clusters, each a 5-module loop:
  //   reg -> and2 -> or2 -> inv -> dff -> (feedback) reg
  for (int c = 0; c < 3; ++c) {
    const std::string p = "u" + std::to_string(c) + "_";
    const ModuleId reg = lib.instantiate(net, "reg", p + "reg");
    const ModuleId a = lib.instantiate(net, "and2", p + "and");
    const ModuleId o = lib.instantiate(net, "or2", p + "or");
    const ModuleId i = lib.instantiate(net, "inv", p + "inv");
    const ModuleId d = lib.instantiate(net, "dff", p + "dff");

    auto link = [&](const std::string& name, ModuleId from, const char* fr,
                    ModuleId to, const char* tt) {
      const NetId n = net.add_net(p + name);
      net.connect(n, term(from, fr));
      net.connect(n, term(to, tt));
    };
    link("q", reg, "q", a, "a");
    link("s0", a, "y", o, "a");
    link("s1", o, "y", i, "a");
    link("s2", i, "y", d, "d");
    link("fb", d, "q", reg, "d");

    // Controller steering: c0..c2 gate the and stage, c3..c5 the or stage.
    const NetId gate = net.add_net(p + "gate");
    net.connect(gate, term(ctrl, ("c" + std::to_string(c)).c_str()));
    net.connect(gate, term(a, "b"));
    const NetId sel = net.add_net(p + "sel");
    net.connect(sel, term(ctrl, ("c" + std::to_string(3 + c)).c_str()));
    net.connect(sel, term(o, "b"));
    // Status feedback from the first two clusters into the controller.
    if (c < 2) {
      const NetId st = net.add_net(p + "st");
      net.connect(st, term(d, "qn"));
      net.connect(st, term(ctrl, c == 0 ? "i0" : "i1"));
    }
  }

  // The controller's last command leaves the system.
  const NetId done = net.add_net("done");
  net.connect(done, term(ctrl, "c6"));
  net.connect(done, net.add_system_terminal("done", TermType::Out));
  return net;
}

}  // namespace na::gen
