// Chain (string) network generator — the shape of the paper's Example 1
// (figure 6.1): one string of signal-flow-connected modules that the
// placement must lay out as a single box with minimum-bend chain nets.
#pragma once

#include "netlist/network.hpp"

namespace na::gen {

struct ChainOptions {
  int length = 6;           ///< number of modules
  bool with_input = false;  ///< system in-terminal driving the head
  bool with_output = true;  ///< system out-terminal after the tail
};

/// Figure 6.1 shape: `length` modules in a driving chain.  With the
/// defaults (6 modules, output only) the network has exactly the paper's
/// 6 modules and 6 nets.
Network chain_network(const ChainOptions& opt = {});

}  // namespace na::gen
