#include "gen/datapath.hpp"

#include "netlist/module_library.hpp"

namespace na::gen {

Network datapath_network(const DatapathOptions& opt) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId ctl = lib.instantiate(net, "ctrl", "ctl");
  auto t = [&](ModuleId m, const char* name) { return *net.term_by_name(m, name); };
  auto wire = [&](const std::string& name, std::initializer_list<TermId> terms) {
    const NetId n = net.add_net(name);
    for (TermId term : terms) net.connect(n, term);
    return n;
  };

  const TermId clk_in = net.add_system_terminal("clk", TermType::In);
  const NetId clk = net.add_net("nclk");
  net.connect(clk, clk_in);

  TermId carry = net.add_system_terminal("cin", TermType::In);
  const NetId sel =
      wire("sel", {t(ctl, "c0")});  // write-back select, fans out to all bits
  for (int b = 0; b < opt.bits; ++b) {
    const std::string p = "b" + std::to_string(b) + "_";
    const ModuleId add = lib.instantiate(net, "adder", p + "add");
    const ModuleId mux = lib.instantiate(net, "mux2", p + "mux");
    const ModuleId reg = lib.instantiate(net, "dff", p + "reg");

    const TermId din =
        net.add_system_terminal("d" + std::to_string(b), TermType::In);
    wire(p + "din", {din, t(mux, "b")});
    wire(p + "sum", {t(add, "s"), t(mux, "a")});
    wire(p + "wb", {t(mux, "y"), t(reg, "d")});
    wire(p + "acc", {t(reg, "q"), t(add, "a"), t(add, "b")});
    net.connect(clk, t(reg, "ck"));
    net.connect(sel, t(mux, "s"));
    // Ripple carry: previous stage (or the system cin) into this adder.
    wire(p + "ci", {carry, t(add, "cin")});
    carry = t(add, "cout");
  }
  wire("cout", {carry, net.add_system_terminal("cout", TermType::Out)});
  // Status back into the controller.
  wire("stat", {t(net.module_count() - 1, "qn"), t(ctl, "i0")});
  return net;
}

}  // namespace na::gen
