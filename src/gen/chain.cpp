#include "gen/chain.hpp"

#include <stdexcept>

#include "netlist/module_library.hpp"

namespace na::gen {

Network chain_network(const ChainOptions& opt) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  // Alternate a few shapes so rotations and terminal sides get exercised.
  const char* shapes[] = {"buf", "and2", "dff", "inv", "or2", "mux2"};
  std::vector<ModuleId> mods;
  for (int i = 0; i < opt.length; ++i) {
    mods.push_back(lib.instantiate(net, shapes[i % std::size(shapes)],
                                   "m" + std::to_string(i)));
  }
  auto out_term = [&](ModuleId m) {
    for (TermId t : net.module(m).terms) {
      if (net.term(t).type == TermType::Out && net.term(t).net == kNone) return t;
    }
    throw std::logic_error("no free out terminal");
  };
  auto in_term = [&](ModuleId m) {
    for (TermId t : net.module(m).terms) {
      if (net.term(t).type == TermType::In && net.term(t).net == kNone) return t;
    }
    throw std::logic_error("no free in terminal");
  };

  for (int i = 0; i + 1 < opt.length; ++i) {
    const NetId n = net.add_net("chain" + std::to_string(i));
    net.connect(n, out_term(mods[i]));
    net.connect(n, in_term(mods[i + 1]));
  }
  if (opt.with_input && opt.length > 0) {
    const NetId n = net.add_net("nin");
    net.connect(n, net.add_system_terminal("in", TermType::In));
    net.connect(n, in_term(mods[0]));
  }
  if (opt.with_output && opt.length > 0) {
    const NetId n = net.add_net("nout");
    net.connect(n, out_term(mods[opt.length - 1]));
    net.connect(n, net.add_system_terminal("out", TermType::Out));
  }
  return net;
}

}  // namespace na::gen
