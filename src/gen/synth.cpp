#include "gen/synth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace na::gen {
namespace {

/// splitmix64 (Steele/Lea/Flood) — the whole generator's randomness.  A
/// tiny counter-based stream: state advances by the golden-gamma constant,
/// each output is a finalised mix of the state.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform draw in [0, n) by rejection-free modulo — bias is irrelevant
  /// here (n is tiny against 2^64) and the modulo keeps it reproducible.
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

std::string idx_name(const char* prefix, int i) {
  return std::string(prefix) + std::to_string(i);
}

// ----- mesh / torus ----------------------------------------------------------

Network mesh_network(const SynthOptions& opt, bool wrap) {
  const int count = std::max(1, opt.modules);
  const int rows = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(count))));
  const int cols = (count + rows - 1) / rows;
  SplitMix64 rng(opt.seed);

  Network net;
  // Cell modules with seed-jittered sizes: misaligned neighbour terminals
  // keep the router honest (pure straight-line fabrics route trivially).
  std::vector<ModuleId> cell(static_cast<size_t>(rows) * cols, kNone);
  std::vector<TermId> in_w(cell.size(), kNone), in_s(cell.size(), kNone);
  std::vector<TermId> out_e(cell.size(), kNone), out_n(cell.size(), kNone);
  int made = 0;
  for (int r = 0; r < rows && made < count; ++r) {
    for (int c = 0; c < cols && made < count; ++c, ++made) {
      const int w = 4 + static_cast<int>(rng.below(3));
      const int h = 4 + static_cast<int>(rng.below(3));
      const size_t i = static_cast<size_t>(r) * cols + c;
      const ModuleId m = net.add_module(
          "m" + std::to_string(r) + "_" + std::to_string(c), "", {w, h});
      cell[i] = m;
      in_w[i] = net.add_terminal(m, "w", TermType::In, {0, 1 + static_cast<int>(rng.below(h - 1))});
      in_s[i] = net.add_terminal(m, "s", TermType::In, {1 + static_cast<int>(rng.below(w - 1)), 0});
      out_e[i] = net.add_terminal(m, "e", TermType::Out, {w, 1 + static_cast<int>(rng.below(h - 1))});
      out_n[i] = net.add_terminal(m, "n", TermType::Out, {1 + static_cast<int>(rng.below(w - 1)), h});
    }
  }

  auto at = [&](int r, int c) -> size_t { return static_cast<size_t>(r) * cols + c; };
  auto connect2 = [&](const std::string& name, TermId a, TermId b) {
    const NetId n = net.add_net(name);
    net.connect(n, a);
    net.connect(n, b);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const size_t i = at(r, c);
      if (cell[i] == kNone) continue;
      // East net: to the right neighbour, or (torus) wrapped to column 0.
      int ec = c + 1;
      if (ec >= cols || cell[at(r, ec)] == kNone) ec = wrap ? 0 : -1;
      if (ec >= 0 && ec != c && cell[at(r, ec)] != kNone) {
        connect2("e" + std::to_string(r) + "_" + std::to_string(c), out_e[i],
                 in_w[at(r, ec)]);
      }
      // North net: to the upper neighbour, or (torus) wrapped to row 0.
      int nr = r + 1;
      if (nr >= rows || cell[at(nr, c)] == kNone) nr = wrap ? 0 : -1;
      if (nr >= 0 && nr != r && cell[at(nr, c)] != kNone) {
        connect2("n" + std::to_string(r) + "_" + std::to_string(c), out_n[i],
                 in_s[at(nr, c)]);
      }
    }
  }

  if (opt.system_terms && !wrap) {
    // A few board pins: the first west inputs and last east outputs that
    // stayed open.
    const int pins = std::min(rows, 4);
    for (int r = 0; r < pins; ++r) {
      const size_t i = at(r, 0);
      if (cell[i] == kNone || net.term(in_w[i]).net != kNone) continue;
      const NetId n = net.add_net(idx_name("sysin", r));
      net.connect(n, net.add_system_terminal(idx_name("IN", r), TermType::In));
      net.connect(n, in_w[i]);
    }
    for (int r = 0; r < pins; ++r) {
      const size_t i = at(r, cols - 1);
      if (cell[i] == kNone || net.term(out_e[i]).net != kNone) continue;
      const NetId n = net.add_net(idx_name("sysout", r));
      net.connect(n, out_e[i]);
      net.connect(n, net.add_system_terminal(idx_name("OUT", r), TermType::Out));
    }
  }
  return net;
}

// ----- random DAG ------------------------------------------------------------

Network dag_network(const SynthOptions& opt) {
  const int count = std::max(1, opt.modules);
  SplitMix64 rng(opt.seed);

  // Edge list first: a spine edge parent(i) -> i keeps the DAG connected,
  // then extra forward edges until the total sink count per driving module
  // averages fanout_mean.
  std::vector<std::vector<int>> sinks(count);   // per driver, sink modules
  std::vector<int> in_degree(count, 0);
  for (int i = 1; i < count; ++i) {
    const int p = static_cast<int>(rng.below(i));
    sinks[p].push_back(i);
    ++in_degree[i];
  }
  const long long target_edges =
      std::llround(std::max(0.0, opt.fanout_mean) * count);
  long long edges = count - 1;
  while (edges < target_edges && count > 1) {
    const int driver = static_cast<int>(rng.below(count - 1));
    const int sink = driver + 1 + static_cast<int>(rng.below(count - 1 - driver));
    sinks[driver].push_back(sink);
    ++in_degree[sink];
    ++edges;
  }

  Network net;
  std::vector<TermId> out_term(count, kNone);
  std::vector<std::vector<TermId>> in_terms(count);
  for (int i = 0; i < count; ++i) {
    const int ins = std::max(1, in_degree[i]);
    const int w = 3 + static_cast<int>(rng.below(3));
    const int h = std::max(2, ins + 1);
    const ModuleId m = net.add_module(idx_name("m", i), "", {w, h});
    for (int k = 0; k < ins; ++k) {
      in_terms[i].push_back(
          net.add_terminal(m, idx_name("i", k), TermType::In, {0, 1 + k}));
    }
    out_term[i] = net.add_terminal(m, "o", TermType::Out,
                                   {w, 1 + static_cast<int>(rng.below(h - 1))});
  }

  // One net per driving module, fanning out to one input slot per sink.
  std::vector<int> next_in(count, 0);
  for (int i = 0; i < count; ++i) {
    if (sinks[i].empty()) continue;
    const NetId n = net.add_net(idx_name("n", i));
    net.connect(n, out_term[i]);
    for (int s : sinks[i]) net.connect(n, in_terms[s][next_in[s]++]);
  }

  if (opt.system_terms) {
    // The source module's open input and the final module's (possibly
    // sink-less) output become the board pins.
    {
      const NetId n = net.add_net("sysin");
      net.connect(n, net.add_system_terminal("IN", TermType::In));
      net.connect(n, in_terms[0][next_in[0]++]);
    }
    const int last = count - 1;
    if (sinks[last].empty()) {
      const NetId n = net.add_net("sysout");
      net.connect(n, out_term[last]);
      net.connect(n, net.add_system_terminal("OUT", TermType::Out));
    }
  }
  return net;
}

}  // namespace

std::optional<SynthTopology> parse_topology(std::string_view s) {
  if (s == "grid") return SynthTopology::GridMesh;
  if (s == "torus") return SynthTopology::Torus;
  if (s == "dag") return SynthTopology::RandomDag;
  return std::nullopt;
}

std::string_view to_string(SynthTopology t) {
  switch (t) {
    case SynthTopology::GridMesh: return "grid";
    case SynthTopology::Torus: return "torus";
    case SynthTopology::RandomDag: return "dag";
  }
  return "?";
}

Network synth_network(const SynthOptions& opt) {
  if (opt.modules < 1) throw std::invalid_argument("synth_network: modules < 1");
  switch (opt.topology) {
    case SynthTopology::GridMesh: return mesh_network(opt, /*wrap=*/false);
    case SynthTopology::Torus: return mesh_network(opt, /*wrap=*/true);
    case SynthTopology::RandomDag: return dag_network(opt);
  }
  throw std::invalid_argument("synth_network: unknown topology");
}

}  // namespace na::gen
