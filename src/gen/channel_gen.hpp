// Random channel-routing problems for the left-edge baseline's tests and
// benches.
#pragma once

#include <cstdint>

#include "route/channel.hpp"

namespace na::gen {

struct ChannelGenOptions {
  int columns = 20;
  int nets = 8;
  std::uint32_t seed = 1;
};

/// Each net gets 2-4 pins on random columns of random sides; deterministic
/// for a given option set.
ChannelProblem random_channel(const ChannelGenOptions& opt = {});

}  // namespace na::gen
