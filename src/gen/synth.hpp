// Parameterised synthetic netlists for the scale tier: workloads far past
// the paper's hundred-module figures, with known structure so benches can
// reason about the expected routing pattern.
//
// Three topologies:
//   * GridMesh  — an R x C mesh of cells, each driving its east and north
//     neighbour (a systolic-array-like fabric; nets are short and local,
//     the best case for region sharding);
//   * Torus     — the mesh plus wrap-around nets row/column ends, like the
//     LIFE board's edge wrapping (a controlled share of plane-spanning
//     nets, the stress case for the halo stitch pass);
//   * RandomDag — a connected random DAG whose per-net sink count targets
//     `fanout_mean` (irregular structure, exercises partitioning).
//
// Every draw comes from a splitmix64 stream seeded by `seed` alone, so a
// given option set produces byte-identical networks on every platform and
// standard-library implementation (no std::uniform_* distributions).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "netlist/network.hpp"

namespace na::gen {

enum class SynthTopology { GridMesh, Torus, RandomDag };

/// CLI spelling ("grid" / "torus" / "dag"); nullopt on anything else.
std::optional<SynthTopology> parse_topology(std::string_view s);
std::string_view to_string(SynthTopology t);

struct SynthOptions {
  SynthTopology topology = SynthTopology::GridMesh;
  /// Target module count.  Honoured exactly (a mesh's last row may be
  /// partial).
  int modules = 1000;
  /// RandomDag: target mean sink count per driving net.
  double fanout_mean = 2.0;
  /// Seeds every random draw (cell-size jitter, DAG edges).
  std::uint64_t seed = 1;
  /// Attach a handful of system terminals at the fabric edges (ignored for
  /// Torus, whose wrap nets leave no open pins).
  bool system_terms = true;
};

/// Builds the network.  Deterministic: equal options => identical network,
/// including every name and id.  The result passes Network::validate().
Network synth_network(const SynthOptions& opt = {});

}  // namespace na::gen
