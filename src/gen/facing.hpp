// Facing-pairs workload: the figure 5.10 claimpoint scenario scaled up.
//
// Rows of module pairs stare at each other across a narrow channel; the
// connections between their terminals are permuted so most nets must bend
// inside the channel.  Without claimpoints, the first nets routed bend
// right in front of the later nets' terminals and seal them in — the exact
// failure mode section 5.7's claimpoints were invented for.
#pragma once

#include <cstdint>

#include "schematic/diagram.hpp"

namespace na::gen {

struct FacingOptions {
  int pairs = 3;          ///< rows of facing module pairs
  int terms_per_side = 6; ///< terminals per facing side
  int channel = 4;        ///< free tracks between the facing modules
  std::uint32_t seed = 1; ///< permutation seed
};

/// Builds the network: `pairs` module pairs, `pairs * terms_per_side`
/// point-to-point nets with permuted endpoints.
Network facing_pairs(const FacingOptions& opt = {});

/// The canonical placement for the workload (the diagram must wrap the
/// network returned by facing_pairs with the same options).
void facing_placement(Diagram& dia, const FacingOptions& opt = {});

}  // namespace na::gen
