#include "gen/facing.hpp"

#include <string>
#include <vector>

namespace na::gen {
namespace {

int side_height(const FacingOptions& opt) { return 2 * opt.terms_per_side + 2; }

}  // namespace

Network facing_pairs(const FacingOptions& opt) {
  Network net;
  std::uint32_t state = opt.seed * 2654435761u + 7;
  auto rnd = [&]() { return state = state * 1664525u + 1013904223u; };
  const int h = side_height(opt);
  for (int p = 0; p < opt.pairs; ++p) {
    const ModuleId l = net.add_module("L" + std::to_string(p), "", {6, h});
    const ModuleId r = net.add_module("R" + std::to_string(p), "", {6, h});
    for (int t = 0; t < opt.terms_per_side; ++t) {
      net.add_terminal(l, "o" + std::to_string(t), TermType::Out, {6, 1 + 2 * t});
      net.add_terminal(r, "i" + std::to_string(t), TermType::In, {0, 1 + 2 * t});
    }
    // Fisher-Yates permutation: nets leave terminal t and enter perm[t].
    std::vector<int> perm(opt.terms_per_side);
    for (int t = 0; t < opt.terms_per_side; ++t) perm[t] = t;
    for (int t = opt.terms_per_side - 1; t > 0; --t) {
      std::swap(perm[t], perm[rnd() % (t + 1)]);
    }
    for (int t = 0; t < opt.terms_per_side; ++t) {
      const NetId n =
          net.add_net("p" + std::to_string(p) + "_" + std::to_string(t));
      net.connect(n, *net.term_by_name(l, "o" + std::to_string(t)));
      net.connect(n, *net.term_by_name(r, "i" + std::to_string(perm[t])));
    }
  }
  return net;
}

void facing_placement(Diagram& dia, const FacingOptions& opt) {
  const Network& net = dia.network();
  const int h = side_height(opt);
  for (int p = 0; p < opt.pairs; ++p) {
    dia.place_module(*net.module_by_name("L" + std::to_string(p)),
                     {0, p * (h + 3)});
    dia.place_module(*net.module_by_name("R" + std::to_string(p)),
                     {6 + opt.channel + 1, p * (h + 3)});
  }
}

}  // namespace na::gen
