#include "gen/life.hpp"

#include <stdexcept>

#include "place/terminal_place.hpp"

namespace na::gen {
namespace {

// The 8 neighbour directions of a LIFE cell (row delta, column delta).
constexpr int kDirs[8][2] = {{-1, -1}, {-1, 0}, {-1, 1}, {0, -1},
                             {0, 1},   {1, -1}, {1, 0},  {1, 1}};

int opposite_dir(int k) {
  for (int j = 0; j < 8; ++j) {
    if (kDirs[j][0] == -kDirs[k][0] && kDirs[j][1] == -kDirs[k][1]) return j;
  }
  throw std::logic_error("no opposite direction");
}

int cell_of(int r, int c) { return ((r % 3) + 3) % 3 * 3 + ((c % 3) + 3) % 3; }

bool is_tap_cell(int i) { return i == 0 || i == 4 || i == 8; }

}  // namespace

Network life_network() {
  Network net;
  std::vector<ModuleId> sum(9), rule(9), reg(9);

  for (int i = 0; i < 9; ++i) {
    const std::string suffix = std::to_string(i / 3) + std::to_string(i % 3);
    // sum: one-hot + binary neighbour counter.
    // Terminal rows follow the neighbour direction: northern connections
    // near the top of the side, southern near the bottom — the ordering a
    // designer picks to keep the neighbour bundles untangled.
    sum[i] = net.add_module("sum" + suffix, "life_sum", {6, 14});
    for (int k = 0; k < 8; ++k) {
      net.add_terminal(sum[i], "n" + std::to_string(k), TermType::In, {0, 9 - k});
    }
    for (int k = 0; k <= 8; ++k) {
      net.add_terminal(sum[i], "c" + std::to_string(k), TermType::Out, {6, 1 + k});
    }
    for (int k = 0; k < 4; ++k) {
      net.add_terminal(sum[i], "b" + std::to_string(k), TermType::Out, {6, 10 + k});
    }
    // rule: B3/S23 next-state logic.
    rule[i] = net.add_module("rule" + suffix, "life_rule", {6, 16});
    for (int k = 0; k <= 8; ++k) {
      net.add_terminal(rule[i], "c" + std::to_string(k), TermType::In, {0, 1 + k});
    }
    for (int k = 0; k < 4; ++k) {
      net.add_terminal(rule[i], "b" + std::to_string(k), TermType::In, {0, 10 + k});
    }
    net.add_terminal(rule[i], "self", TermType::In, {0, 15});
    net.add_terminal(rule[i], "mode", TermType::In, {3, 0});
    net.add_terminal(rule[i], "next", TermType::Out, {6, 7});
    net.add_terminal(rule[i], "we", TermType::Out, {6, 9});
    // reg: state register with one fan-out driver per neighbour.
    reg[i] = net.add_module("reg" + suffix, "life_reg", {6, 10});
    net.add_terminal(reg[i], "d", TermType::In, {0, 8});
    net.add_terminal(reg[i], "we", TermType::In, {0, 6});
    net.add_terminal(reg[i], "ck", TermType::In, {2, 0});
    net.add_terminal(reg[i], "rst", TermType::In, {4, 0});
    for (int k = 0; k < 8; ++k) {
      net.add_terminal(reg[i], "q" + std::to_string(k), TermType::Out, {6, 8 - k});
    }
    net.add_terminal(reg[i], "q_self", TermType::Out, {3, 10});
    if (is_tap_cell(i)) {
      net.add_terminal(reg[i], "q_tap", TermType::Out, {5, 10});
    }
  }

  auto term = [&](ModuleId m, const std::string& name) {
    auto t = net.term_by_name(m, name);
    if (!t) throw std::logic_error("missing terminal " + name);
    return *t;
  };
  auto link2 = [&](const std::string& name, TermId a, TermId b) {
    const NetId n = net.add_net(name);
    net.connect(n, a);
    net.connect(n, b);
    return n;
  };

  // Neighbour wiring: reg q_k of a cell drives n_{opposite(k)} of the
  // neighbour in direction k — 72 point-to-point nets on the 3x3 torus.
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const int i = cell_of(r, c);
      for (int k = 0; k < 8; ++k) {
        const int j = cell_of(r + kDirs[k][0], c + kDirs[k][1]);
        link2("st" + std::to_string(i) + "d" + std::to_string(k),
              term(reg[i], "q" + std::to_string(k)),
              term(sum[j], "n" + std::to_string(opposite_dir(k))));
      }
    }
  }
  // Per-cell internal nets: 16 each.
  for (int i = 0; i < 9; ++i) {
    const std::string p = "x" + std::to_string(i) + "_";
    for (int k = 0; k <= 8; ++k) {
      link2(p + "c" + std::to_string(k), term(sum[i], "c" + std::to_string(k)),
            term(rule[i], "c" + std::to_string(k)));
    }
    for (int k = 0; k < 4; ++k) {
      link2(p + "b" + std::to_string(k), term(sum[i], "b" + std::to_string(k)),
            term(rule[i], "b" + std::to_string(k)));
    }
    link2(p + "self", term(reg[i], "q_self"), term(rule[i], "self"));
    link2(p + "next", term(rule[i], "next"), term(reg[i], "d"));
    link2(p + "we", term(rule[i], "we"), term(reg[i], "we"));
  }
  // Global nets and observation taps.
  const NetId clk = net.add_net("clk");
  net.connect(clk, net.add_system_terminal("clk", TermType::In));
  const NetId rst = net.add_net("rst");
  net.connect(rst, net.add_system_terminal("rst", TermType::In));
  const NetId mode = net.add_net("mode");
  net.connect(mode, net.add_system_terminal("mode", TermType::In));
  for (int i = 0; i < 9; ++i) {
    net.connect(clk, term(reg[i], "ck"));
    net.connect(rst, term(reg[i], "rst"));
    net.connect(mode, term(rule[i], "mode"));
  }
  for (int i : {0, 4, 8}) {
    link2("alive" + std::to_string(i), term(reg[i], "q_tap"),
          net.add_system_terminal("alive" + std::to_string(i), TermType::Out));
  }
  return net;
}

void life_hand_placement(Diagram& dia) {
  const Network& net = dia.network();
  // Cell groups on a regular 3x3 grid, sum -> rule -> reg left to right —
  // the arrangement a designer would draw by hand (figure 6.6).  The sum
  // and rule symbols are levelled so the thirteen count nets run straight
  // (c_k leaves sum at y0+5+k and enters rule at y0+5+k), and the channels
  // between cells are kept wide for the 72 neighbour nets.
  constexpr int kPitchX = 52;
  constexpr int kPitchY = 40;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const int i = cell_of(r, c);
      const std::string suffix = std::to_string(i / 3) + std::to_string(i % 3);
      const geom::Point base{c * kPitchX, (2 - r) * kPitchY};
      dia.place_module(*net.module_by_name("sum" + suffix), base + geom::Point{4, 6});
      dia.place_module(*net.module_by_name("rule" + suffix),
                       base + geom::Point{18, 6});  // count nets dead level
      dia.place_module(*net.module_by_name("reg" + suffix),
                       base + geom::Point{32, 5});  // rule.next level with reg.d
    }
  }
  place_system_terminals(dia);
  dia.normalize();
}

}  // namespace na::gen
