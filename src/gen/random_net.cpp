#include "gen/random_net.hpp"

#include <algorithm>
#include <random>

#include "netlist/module_library.hpp"

namespace na::gen {

Network random_network(const RandomNetOptions& opt) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  std::mt19937 rng(opt.seed);
  const std::vector<std::string> shapes = {"buf", "inv",  "and2", "or2", "xor2",
                                           "dff", "mux2", "reg",  "adder"};

  std::vector<ModuleId> mods;
  for (int i = 0; i < opt.modules; ++i) {
    const auto& shape = shapes[rng() % shapes.size()];
    mods.push_back(lib.instantiate(net, shape, "m" + std::to_string(i)));
  }

  auto free_terms = [&](ModuleId m, TermType type) {
    std::vector<TermId> out;
    for (TermId t : net.module(m).terms) {
      if (net.term(t).type == type && net.term(t).net == kNone) out.push_back(t);
    }
    return out;
  };

  // Spine: each module's first free input is driven from a random earlier
  // module, keeping the network connected and mostly left-to-right.
  int net_no = 0;
  for (int i = 1; i < opt.modules; ++i) {
    const auto ins = free_terms(mods[i], TermType::In);
    if (ins.empty()) continue;
    // Earlier module with a free output; fall back to reusing a driven net.
    for (int tries = 0; tries < 8; ++tries) {
      const ModuleId src = mods[rng() % i];
      const auto outs = free_terms(src, TermType::Out);
      if (!outs.empty()) {
        const NetId n = net.add_net("n" + std::to_string(net_no++));
        net.connect(n, outs[rng() % outs.size()]);
        net.connect(n, ins[0]);
        break;
      }
      // Reuse an existing driven net of src (multi-point fan-out).
      const auto nets = net.nets_of(src);
      if (!nets.empty()) {
        net.connect(nets[rng() % nets.size()], ins[0]);
        break;
      }
    }
  }

  // Extra fan-out nets between random free outputs and free inputs.
  for (int e = 0; e < opt.extra_nets; ++e) {
    std::vector<TermId> outs;
    std::vector<TermId> ins;
    for (ModuleId m : mods) {
      for (TermId t : free_terms(m, TermType::Out)) outs.push_back(t);
      for (TermId t : free_terms(m, TermType::In)) ins.push_back(t);
    }
    if (outs.empty() || ins.empty()) break;
    const TermId src = outs[rng() % outs.size()];
    const NetId n = net.add_net("e" + std::to_string(e));
    net.connect(n, src);
    const int fanout = 1 + static_cast<int>(rng() % opt.max_fanout);
    std::shuffle(ins.begin(), ins.end(), rng);
    int connected = 0;
    for (TermId t : ins) {
      if (net.term(t).module == net.term(src).module) continue;  // no self loop
      if (net.term(t).net != kNone) continue;
      net.connect(n, t);
      if (++connected >= fanout) break;
    }
    if (connected == 0) {
      // Keep the invariant "every net >= 2 terminals": tie to a system out.
      net.connect(n, net.add_system_terminal("eo" + std::to_string(e), TermType::Out));
    }
  }

  if (opt.system_terms) {
    // A couple of primary inputs and outputs on remaining free terminals.
    int made = 0;
    for (ModuleId m : mods) {
      for (TermId t : free_terms(m, TermType::In)) {
        if (made >= 3) break;
        const NetId n = net.add_net("pi" + std::to_string(made));
        net.connect(n, net.add_system_terminal("in" + std::to_string(made), TermType::In));
        net.connect(n, t);
        ++made;
      }
      if (made >= 3) break;
    }
    made = 0;
    for (auto it = mods.rbegin(); it != mods.rend() && made < 2; ++it) {
      const auto outs = free_terms(*it, TermType::Out);
      if (outs.empty()) continue;
      const NetId n = net.add_net("po" + std::to_string(made));
      net.connect(n, outs[0]);
      net.connect(n, net.add_system_terminal("out" + std::to_string(made), TermType::Out));
      ++made;
    }
  }
  return net;
}

}  // namespace na::gen
