#include "gen/channel_gen.hpp"

#include <random>

namespace na::gen {

ChannelProblem random_channel(const ChannelGenOptions& opt) {
  ChannelProblem p;
  p.top.assign(opt.columns, ChannelTrunk::kNoNet);
  p.bottom.assign(opt.columns, ChannelTrunk::kNoNet);
  std::mt19937 rng(opt.seed);
  for (int n = 0; n < opt.nets; ++n) {
    const int pins = 2 + static_cast<int>(rng() % 3);
    int placed = 0;
    for (int tries = 0; tries < 50 && placed < pins; ++tries) {
      auto& row = (rng() % 2 == 0) ? p.top : p.bottom;
      const int col = static_cast<int>(rng() % opt.columns);
      if (row[col] == ChannelTrunk::kNoNet) {
        row[col] = n;
        ++placed;
      }
    }
  }
  return p;
}

}  // namespace na::gen
