// The LIFE network — the paper's Example 3 (figures 6.6/6.7): "a network
// showing the game LIFE", 27 modules and 222 nets.
//
// The original schematic is lost; this generator reconstructs a hardware
// Game-of-Life with the same counts and the same character (a regular cell
// array with very dense point-to-point neighbour wiring):
//
//   * a 3x3 torus of cells, each cell built from three modules —
//     `sum` (one-hot + binary neighbour count), `rule` (B3/S23 next-state
//     logic), `reg` (state register with one fan-out output per neighbour)
//     => 27 modules;
//   * per cell: 8 incoming neighbour nets, 9 one-hot count nets, 4 binary
//     count nets, self-state, next-state and write-enable nets => 9*24
//     = 216 nets;
//   * global clk / rst / mode nets and three observation taps => 6 nets;
//   * total 222 nets over 6 system terminals.
#pragma once

#include "schematic/diagram.hpp"

namespace na::gen {

/// Builds the 27-module / 222-net LIFE network.
Network life_network();

/// "Hand" placement for figure 6.6: the regular arrangement a careful
/// designer would draw — cells on a 3x3 grid, sum -> rule -> reg left to
/// right inside each cell — plus system terminals on the ring.
/// The diagram must wrap the network returned by life_network().
void life_hand_placement(Diagram& dia);

}  // namespace na::gen
