// Controller network generator — the shape of the paper's Example 2
// (figures 6.2-6.5): 16 modules and 24 nets, three functional clusters
// around a central controller ("the only common nets are the ones coming
// from the controller in the center").
#pragma once

#include "netlist/network.hpp"

namespace na::gen {

/// Exactly 16 modules, 24 nets, 1 system terminal: a central `ctrl`
/// instance steering three 5-module datapath loops.
Network controller_network();

}  // namespace na::gen
