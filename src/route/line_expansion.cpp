// The line-expansion router (paper chapter 5) and its shared search core.
//
// The search explores states (grid point, heading).  A straight step costs
// one length unit (plus one crossing when it passes over a foreign
// perpendicular net); a turn in place costs one bend and requires the whole
// grid point to be free (a bend occupies both orientations).  With costs
// ordered lexicographically (bends, crossings, length) the first goal state
// popped is exactly the path section 5.4 asks for: minimum bends, then
// minimum crossovers, then minimum wire length.  The `-s` option of
// Appendix F swaps the last two keys.
//
// The search state lives in a SearchWorkspace (generation-stamped arrays
// plus a reusable binary heap) so repeated searches stop paying a per-call
// O(W*H) allocation; a caller that passes no workspace gets a private one.
// An optional per-problem window restricts the explored plane: points
// outside it count as blocked, and the driver retries without the window
// when a windowed search fails.
#include "route/dijkstra.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace na {
namespace detail {
namespace {

/// Packs the cost triple into one comparable 64-bit key.  Field widths:
/// 20 bits per component (grids here are far smaller than 2^20 tracks).
std::uint64_t pack(const SearchCosts& c, CostMode mode) {
  auto clamp20 = [](int v) {
    return static_cast<std::uint64_t>(v) & ((1u << 20) - 1);
  };
  switch (mode) {
    case CostMode::BendsCrossingsLength:
      return (clamp20(c.bends) << 40) | (clamp20(c.crossings) << 20) |
             clamp20(c.length);
    case CostMode::BendsLengthCrossings:
      return (clamp20(c.bends) << 40) | (clamp20(c.length) << 20) |
             clamp20(c.crossings);
    case CostMode::LengthOnly:
      return clamp20(c.length);
  }
  return 0;
}

/// Min-heap on the key (same ordering std::priority_queue<_, _, greater<>>
/// used before, so pop order — ties included — is unchanged).  A functor
/// type, not a function: std::push_heap with a function pointer comparator
/// costs an indirect call per comparison.
struct HeapAfter {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.key > b.key;
  }
};

}  // namespace

// Deliberately one function with runtime checks for the window and the
// observation mask: specializing the hot loop per feature combination
// multiplies its inlining call sites, at which point GCC stops inlining
// the heap sift and key packing (~25% slower on the LIFE workload).
std::optional<SearchResult> grid_search(const RoutingGrid& grid,
                                        const SearchProblem& prob, CostMode mode,
                                        SearchWorkspace* ws, ObservedMask* observed) {
  if (prob.starts.empty()) return std::nullopt;
  if (!prob.target && !prob.join_own_net) {
    throw std::invalid_argument("search problem without destination");
  }
  SearchWorkspace local;
  if (!ws) ws = &local;
  const geom::Rect area = grid.area();
  const int w = area.width() + 1;
  const int h = area.height() + 1;
  const int ncells = w * h;
  const int nstates = ncells * 4;
  const int goal_state = nstates;  // virtual goal
  const bool windowed = prob.window.has_value();
  const geom::Rect win = windowed ? *prob.window : area;

  auto cell_index = [&](geom::Point p) {
    return (p.y - area.lo.y) * w + (p.x - area.lo.x);
  };
  auto state_of = [&](geom::Point p, geom::Dir d) {
    return cell_index(p) * 4 + static_cast<int>(d);
  };
  auto point_of = [&](int state) {
    const int cell = state / 4;
    return geom::Point{area.lo.x + cell % w, area.lo.y + cell / w};
  };
  auto dir_of = [&](int state) { return static_cast<geom::Dir>(state % 4); };

  ws->begin(nstates + 1);
  const SearchWorkspace::View visited = ws->view();
  std::vector<HeapEntry>& open = ws->heap();

  auto relax = [&](int state, int from, const SearchCosts& c) {
    const std::uint64_t key = pack(c, mode);
    if (key < visited.best(state)) {
      visited.record(state, key, from);
      open.push_back({key, state, c});
      std::push_heap(open.begin(), open.end(), HeapAfter{});
    }
  };

  for (const SearchStart& s : prob.starts) {
    if (windowed && !win.contains(s.p)) continue;
    if (observed) observed->mark(s.p);
    // The start point becomes a node of this net as well.
    if (!grid.in_bounds(s.p) || !grid.node_free(s.p, prob.net)) continue;
    if (s.dir) {
      relax(state_of(s.p, *s.dir), -1, {});
    } else {
      for (geom::Dir d : geom::kAllDirs) relax(state_of(s.p, d), -1, {});
    }
  }

  long expansions = 0;
  SearchCosts goal_costs{};
  while (!open.empty()) {
    std::pop_heap(open.begin(), open.end(), HeapAfter{});
    const HeapEntry e = open.back();
    open.pop_back();
    if (e.key != visited.best(e.state)) continue;  // stale
    if (e.state == goal_state) {
      goal_costs = e.costs;
      break;
    }
    if (++expansions > prob.max_expansions) return std::nullopt;

    const geom::Point p = point_of(e.state);
    const geom::Dir d = dir_of(e.state);
    const NetId net = prob.net;
    if (observed) observed->mark(p);

    // Straight step: extend the escape line one track.
    {
      const geom::Point q = p + geom::delta(d);
      if (!windowed || win.contains(q)) {
        if (observed) observed->mark(q);  // q's grid state is read below
        const bool horiz = geom::is_horizontal(d);
        SearchCosts c = e.costs;
        c.length += 1;
        // Destination tests come first: a terminal cell is enterable only by
        // its own net and join cells are occupied, so `passable` would veto
        // them.
        // Arrival makes q a node of this net, so no foreign net may touch q.
        const bool arrivable = grid.enterable(q, net) && grid.node_free(q, net);
        const bool is_target = prob.target && q == prob.target->p &&
                               (!prob.target->facing ||
                                d == geom::opposite(*prob.target->facing)) &&
                               arrivable;
        const bool is_join =
            prob.join_own_net && arrivable && grid.occupied_by(q, net);
        if (is_target || is_join) {
          relax(goal_state, e.state, c);
        } else if (grid.passable(q, net, horiz) && !grid.occupied_by(q, net)) {
          c.crossings += grid.crosses_at(q, net, horiz) ? 1 : 0;
          relax(state_of(q, d), e.state, c);
        }
      }
    }
    // Turns: start a perpendicular expansion wave (one bend deeper).  The
    // bend occupies the whole point, so both orientations must be free.
    if (grid.can_turn(p, prob.net)) {
      for (geom::Dir nd : geom::kAllDirs) {
        if (geom::is_horizontal(nd) == geom::is_horizontal(d)) continue;
        SearchCosts c = e.costs;
        c.bends += 1;
        relax(state_of(p, nd), e.state, c);
      }
    }
  }

  if (ws->best(goal_state) == SearchWorkspace::kUnvisited) return std::nullopt;

  // Trace back the state chain and compress it into polyline corners.
  std::vector<geom::Point> chain;
  for (int s = ws->parent(goal_state); s != -1; s = ws->parent(s)) {
    chain.push_back(point_of(s));
  }
  std::reverse(chain.begin(), chain.end());
  chain.push_back(prob.target ? prob.target->p
                              : point_of(ws->parent(goal_state)) +
                                    geom::delta(dir_of(ws->parent(goal_state))));
  std::vector<geom::Point> path;
  for (const geom::Point& p : chain) {
    if (!path.empty() && path.back() == p) continue;  // turn-in-place states
    if (path.size() >= 2) {
      const geom::Point& a = path[path.size() - 2];
      const geom::Point& b = path.back();
      const bool collinear = (a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y);
      if (collinear) {
        path.back() = p;
        continue;
      }
    }
    path.push_back(p);
  }

  SearchResult result;
  result.path = std::move(path);
  result.cost = {goal_costs.bends, goal_costs.crossings, goal_costs.length};
  result.expansions = expansions;
  return result;
}

}  // namespace detail

std::optional<SearchResult> line_expansion_search(const RoutingGrid& grid,
                                                  const SearchProblem& prob) {
  const auto mode = prob.order == CostOrder::BendsLengthCrossings
                        ? detail::CostMode::BendsLengthCrossings
                        : detail::CostMode::BendsCrossingsLength;
  return detail::grid_search(grid, prob, mode);
}

std::optional<SearchResult> straight_line(const RoutingGrid& grid, NetId net,
                                          const SearchStart& a, const SearchTarget& b) {
  const geom::Point pa = a.p;
  const geom::Point pb = b.p;
  if (pa.x != pb.x && pa.y != pb.y) return std::nullopt;
  if (pa == pb) return std::nullopt;
  const geom::Dir d = pa.x == pb.x ? (pb.y > pa.y ? geom::Dir::Up : geom::Dir::Down)
                                   : (pb.x > pa.x ? geom::Dir::Right : geom::Dir::Left);
  // Side compatibility (paper STRAIGHT_LINE): the start must exit toward the
  // destination and the destination must accept entry from that direction.
  if (a.dir && *a.dir != d) return std::nullopt;
  // `facing` is the destination's outward side; entry runs against it.
  if (b.facing && *b.facing != geom::opposite(d)) return std::nullopt;
  const bool horiz = geom::is_horizontal(d);
  int crossings = 0;
  for (geom::Point p = pa + geom::delta(d); p != pb; p += geom::delta(d)) {
    if (!grid.passable(p, net, horiz) || grid.occupied_by(p, net)) {
      return std::nullopt;
    }
    crossings += grid.crosses_at(p, net, horiz) ? 1 : 0;
  }
  if (!grid.enterable(pb, net) || !grid.node_free(pb, net)) return std::nullopt;
  SearchResult r;
  r.path = {pa, pb};
  r.cost = {0, crossings, manhattan(pa, pb)};
  r.expansions = 0;
  return r;
}

}  // namespace na
