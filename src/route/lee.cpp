// Lee maze router baseline (paper section 5.2.2, Lee [9]).
//
// Wave propagation from the start points; guarantees a minimum-*length*
// connection whenever one exists, regardless of maze complexity.  It shares
// the wavefront core with the line-expansion router but orders the open set
// purely by path length, which is exactly the cost function of the simple
// Lee algorithm the paper sketches.  Serves as the completeness oracle in
// the test suite: line expansion must succeed whenever Lee does.
#include "route/dijkstra.hpp"

namespace na {

std::optional<SearchResult> lee_search(const RoutingGrid& grid,
                                       const SearchProblem& prob) {
  return detail::grid_search(grid, prob, detail::CostMode::LengthOnly);
}

}  // namespace na
