// Internal shared search core for the grid routers.
//
// Both the line-expansion router (lexicographic bends/crossings/length) and
// the Lee baseline (pure length) are instances of a priority-first wavefront
// over states (grid point, heading).  The line-expansion principle of paper
// section 5.5.2 appears here as the cost structure: straight moves extend
// the current escape line for free (in bends), a turn starts a new expansion
// wave one bend deeper — so the search visits the plane zone by zone in
// exactly the wave order of the paper, and the guaranteed-solution property
// (5.5.4) holds because every reachable state is eventually expanded.
#pragma once

#include <cstdint>

#include "route/router.hpp"
#include "route/search_workspace.hpp"

namespace na::detail {

/// Cost key composition for the priority queue.
enum class CostMode {
  BendsCrossingsLength,
  BendsLengthCrossings,
  LengthOnly,  ///< Lee
};

/// Runs the search; returns std::nullopt when no path exists (or the
/// expansion budget is exhausted).  With a workspace the search reuses its
/// scratch arrays instead of allocating per call (identical results either
/// way); with an observation mask it records every examined cell for the
/// speculative parallel driver's commit-time validation.
std::optional<SearchResult> grid_search(const RoutingGrid& grid,
                                        const SearchProblem& prob, CostMode mode,
                                        SearchWorkspace* ws = nullptr,
                                        ObservedMask* observed = nullptr);

}  // namespace na::detail
