// Rip-up and reroute — the paper's interactive repair workflow (section 6):
// "After adjusting some nets by hand, the routing program was started again
// to complete the diagram" / "A net in the network has been shifted by hand
// and the diagram has been rerouted."
#pragma once

#include <span>

#include "route/router.hpp"

namespace na {

/// Deletes a net's drawn geometry (keeps everything else).
void rip_up(Diagram& dia, NetId n);

/// Rips up the listed nets and routes everything still unconnected (the
/// listed nets plus any net that had failed before).  Other nets' geometry
/// stays as obstacles, exactly as in the historical rerun-after-fix flow.
RouteReport reroute(Diagram& dia, std::span<const NetId> nets,
                    const RouterOptions& opt = {});

/// The full repair loop: while unrouted nets remain, rip up the `k` most
/// recently routed neighbours crossing near each failed net's terminals and
/// reroute; gives the router the slack a human edit used to provide.
/// Returns the final report.  `max_rounds` bounds the loop.
RouteReport repair_failed(Diagram& dia, const RouterOptions& opt = {},
                          int max_rounds = 3, int victims_per_fail = 2);

}  // namespace na
