// The whole-diagram routing driver: claimpoints, net ordering, per-net
// initiation + expansion, and the post-pass retry of section 5.7.
#include "route/router.hpp"

#include <algorithm>
#include <limits>

#include "route/net_order.hpp"

namespace na {
namespace {

SearchStart start_for(const Diagram& dia, TermId t) {
  const Terminal& term = dia.network().term(t);
  if (term.is_system()) return {dia.term_pos(t), std::nullopt};
  return {dia.term_pos(t), dia.term_facing(t)};
}

SearchTarget target_for(const Diagram& dia, TermId t) {
  const Terminal& term = dia.network().term(t);
  if (term.is_system()) return {dia.term_pos(t), std::nullopt};
  return {dia.term_pos(t), dia.term_facing(t)};
}

/// All unordered terminal pairs of a net, nearest first (the initiation
/// tries pairs until one connects — "another pair of points has to be
/// selected").
std::vector<std::pair<TermId, TermId>> pairs_by_distance(
    const Diagram& dia, const std::vector<TermId>& terms) {
  std::vector<std::pair<TermId, TermId>> pairs;
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      pairs.emplace_back(terms[i], terms[j]);
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(), [&](const auto& a, const auto& b) {
    return manhattan(dia.term_pos(a.first), dia.term_pos(a.second)) <
           manhattan(dia.term_pos(b.first), dia.term_pos(b.second));
  });
  return pairs;
}

}  // namespace

std::optional<SearchResult> find_path(Engine e, const RoutingGrid& grid,
                                      const SearchProblem& prob) {
  switch (e) {
    case Engine::LineExpansion: return line_expansion_search(grid, prob);
    case Engine::Lee: return lee_search(grid, prob);
    case Engine::Hightower: return hightower_search(grid, prob);
    case Engine::SegmentExpansion: return segment_expansion_search(grid, prob);
  }
  return std::nullopt;
}

RouteReport route_all(Diagram& dia, const RouterOptions& opt) {
  const Network& net = dia.network();
  RoutingGrid grid = build_grid(dia, opt.margin);
  RouteReport report;

  // Terminals of each net that still need connecting.  With prerouted
  // geometry, terminals already covered by it count as connected.
  std::vector<std::vector<TermId>> pending(net.net_count());
  std::vector<bool> has_geometry(net.net_count(), false);
  for (NetId n = 0; n < net.net_count(); ++n) {
    has_geometry[n] = !dia.route(n).polylines.empty();
    for (TermId t : net.net(n).terms) {
      const Terminal& term = net.term(t);
      const bool placeable = term.is_system() ? dia.system_term_placed(t)
                                              : dia.module_placed(term.module);
      if (!placeable) continue;
      if (has_geometry[n] && grid.occupied_by(dia.term_pos(t), n)) continue;
      pending[n].push_back(t);
    }
  }

  // Claimpoints: every still-unconnected subsystem terminal claims the
  // first track outside its module side (section 5.7).
  std::vector<std::pair<geom::Point, NetId>> claims;
  if (opt.use_claimpoints) {
    for (NetId n = 0; n < net.net_count(); ++n) {
      for (TermId t : pending[n]) {
        if (net.term(t).is_system()) continue;
        const geom::Point cell =
            dia.term_pos(t) + geom::delta(dia.term_facing(t));
        if (grid.in_bounds(cell) && !grid.blocked(cell) &&
            grid.claim_owner(cell) == kNone) {
          grid.set_claim(cell, n);
          claims.emplace_back(cell, n);
        }
      }
    }
  }
  auto release_claims = [&](NetId n) {
    for (auto& [cell, owner] : claims) {
      if (owner == n) {
        grid.clear_claim(cell);
        owner = kNone;
      }
    }
  };
  auto restore_claim = [&](TermId t, NetId n) {
    if (!opt.use_claimpoints || net.term(t).is_system()) return;
    const geom::Point cell = dia.term_pos(t) + geom::delta(dia.term_facing(t));
    if (grid.in_bounds(cell) && !grid.blocked(cell) &&
        grid.claim_owner(cell) == kNone && grid.h_net(cell) == kNone &&
        grid.v_net(cell) == kNone) {
      grid.set_claim(cell, n);
      claims.emplace_back(cell, n);
    }
  };

  auto commit = [&](NetId n, const SearchResult& res) {
    grid.occupy_polyline(n, res.path);
    dia.add_polyline(n, res.path);
    has_geometry[n] = true;
    ++report.connections_made;
    report.total_expansions += res.expansions;
  };

  auto try_connection = [&](const SearchProblem& prob,
                            const SearchStart& s) -> std::optional<SearchResult> {
    // Straight-line fast path (paper STRAIGHT_LINE) for fixed destinations.
    if (prob.target) {
      if (auto r = straight_line(grid, prob.net, s, *prob.target)) return r;
    }
    return find_path(opt.engine, grid, prob);
  };

  // Routes as much of net `n` as possible; returns terminals still pending.
  auto route_net = [&](NetId n, std::vector<TermId> todo) -> std::vector<TermId> {
    if (todo.empty()) return todo;
    release_claims(n);
    // ----- initiation: first point-to-point connection --------------------
    if (!has_geometry[n]) {
      if (todo.size() < 2) return todo;  // nothing to connect against
      constexpr size_t kMaxPairTries = 8;
      size_t tries = 0;
      for (auto [t0, t1] : pairs_by_distance(dia, todo)) {
        if (++tries > kMaxPairTries) break;
        SearchProblem prob;
        prob.net = n;
        prob.starts = {start_for(dia, t0)};
        prob.target = target_for(dia, t1);
        prob.order = opt.order;
        prob.max_expansions = opt.max_expansions;
        if (auto res = try_connection(prob, prob.starts[0])) {
          commit(n, *res);
          std::erase(todo, t0);
          std::erase(todo, t1);
          break;
        }
      }
      if (!has_geometry[n]) return todo;  // initiation impossible for now
    }
    // ----- expansion: attach remaining terminals one at a time ------------
    // Nearest-to-the-net terminal first (cheap estimate over net geometry).
    std::vector<TermId> failed;
    while (!todo.empty()) {
      auto nearest = std::min_element(
          todo.begin(), todo.end(), [&](TermId a, TermId b) {
            auto dist_to_net = [&](TermId t) {
              int best = std::numeric_limits<int>::max();
              for (const auto& pl : dia.route(n).polylines) {
                for (geom::Point p : pl) {
                  best = std::min(best, manhattan(p, dia.term_pos(t)));
                }
              }
              return best;
            };
            return dist_to_net(a) < dist_to_net(b);
          });
      const TermId t = *nearest;
      todo.erase(nearest);
      SearchProblem prob;
      prob.net = n;
      prob.starts = {start_for(dia, t)};
      prob.join_own_net = true;
      prob.order = opt.order;
      prob.max_expansions = opt.max_expansions;
      if (auto res = find_path(opt.engine, grid, prob)) {
        commit(n, *res);
      } else {
        failed.push_back(t);
      }
    }
    return failed;
  };

  // ----- pass 1 --------------------------------------------------------------
  auto order = order_nets(dia, static_cast<NetOrderCriterion>(opt.order_criterion));
  if (!opt.route_first.empty()) {
    std::vector<NetId> prioritized;
    std::vector<bool> is_first(net.net_count(), false);
    for (NetId n : opt.route_first) {
      if (n >= 0 && n < net.net_count() && !is_first[n]) {
        is_first[n] = true;
        prioritized.push_back(n);
      }
    }
    for (NetId n : order) {
      if (!is_first[n]) prioritized.push_back(n);
    }
    order = std::move(prioritized);
  }
  for (NetId n : order) {
    pending[n] = route_net(n, std::move(pending[n]));
    for (TermId t : pending[n]) restore_claim(t, n);
  }

  // ----- pass 2: retry after every claim is gone (section 5.7) ---------------
  if (opt.retry_failed) {
    for (auto& [cell, owner] : claims) {
      if (owner != kNone) grid.clear_claim(cell);
    }
    claims.clear();
    for (NetId n : order) {
      if (pending[n].empty()) continue;
      const int before = static_cast<int>(pending[n].size());
      pending[n] = route_net(n, std::move(pending[n]));
      report.retried_connections += before - static_cast<int>(pending[n].size());
    }
  }

  // ----- accounting -----------------------------------------------------------
  for (NetId n = 0; n < net.net_count(); ++n) {
    int placeable = 0;
    for (TermId t : net.net(n).terms) {
      const Terminal& term = net.term(t);
      placeable += (term.is_system() ? dia.system_term_placed(t)
                                     : dia.module_placed(term.module))
                       ? 1
                       : 0;
    }
    if (placeable < 2) continue;  // not a routable net
    if (pending[n].empty() && has_geometry[n]) {
      dia.route(n).routed = true;
      ++report.nets_routed;
    } else {
      ++report.nets_failed;
      report.failed_nets.push_back(n);
      report.connections_failed += static_cast<int>(pending[n].size());
    }
  }
  return report;
}

}  // namespace na
