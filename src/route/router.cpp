// The whole-diagram routing driver: claimpoints, net ordering, per-net
// initiation + expansion, and the post-pass retry of section 5.7.
//
// The per-net work lives in route/net_task.cpp (shared with the
// speculative parallel driver); this file keeps the engine dispatch and
// the sequential commit loop.  With opt.threads != 1 the driver hands the
// whole pass to parallel_route_all, which produces a byte-identical
// diagram and report.
#include "route/router.hpp"

#include <algorithm>
#include <thread>

#include "obs/trace.hpp"
#include "route/net_task.hpp"
#include "route/parallel_route.hpp"

namespace na {

std::optional<SearchResult> find_path(Engine e, const RoutingGrid& grid,
                                      const SearchProblem& prob) {
  switch (e) {
    case Engine::LineExpansion: return line_expansion_search(grid, prob);
    case Engine::Lee: return lee_search(grid, prob);
    case Engine::Hightower: return hightower_search(grid, prob);
    case Engine::SegmentExpansion: return segment_expansion_search(grid, prob);
  }
  return std::nullopt;
}

RouteReport route_all(Diagram& dia, const RouterOptions& opt,
                      ParallelRouteStats* spec_stats) {
  if (spec_stats) *spec_stats = {};
  int threads = opt.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Speculative validation needs the observable grid-search engines; the
  // baselines always route sequentially.
  if (threads > 1 &&
      (opt.engine == Engine::LineExpansion || opt.engine == Engine::Lee)) {
    return parallel_route_all(dia, opt, threads, spec_stats);
  }

  detail::DriverSetup setup = detail::prepare_driver(dia, opt);
  const std::vector<NetId> order = detail::ordered_nets(dia, opt);
  RouteReport report;
  detail::SearchWorkspace ws;

  // ----- pass 1 --------------------------------------------------------------
  {
    NA_TRACE_SPAN(span, "route.pass1");
    span.arg("threads", 1);
    span.arg("nets", static_cast<long long>(order.size()));
    for (NetId n : order) {
      if (setup.pending[n].empty()) continue;
      setup.release_claims(n);
      detail::NetTaskResult res =
          detail::route_single_net(setup.grid, dia, n, std::move(setup.pending[n]),
                                   opt, setup.has_geometry[n], ws);
      detail::commit_connections(dia, n, res, setup, report);
      setup.pending[n] = std::move(res.failed);
      for (TermId t : setup.pending[n]) setup.restore_claim(dia, opt, t, n);
    }
  }

  // ----- pass 2: retry after every claim is gone (section 5.7) ---------------
  detail::retry_pass(dia, opt, setup, order, report, ws);

  // ----- accounting -----------------------------------------------------------
  detail::finish_report(dia, setup, report);
  return report;
}

}  // namespace na
