#include "route/channel.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace na {

ChannelResult left_edge_route(const ChannelProblem& p) {
  // Gather each net's trunk interval over both pin rows.
  std::map<int, ChannelTrunk> by_net;
  auto account = [&](const std::vector<int>& pins) {
    for (int col = 0; col < static_cast<int>(pins.size()); ++col) {
      const int net = pins[col];
      if (net == ChannelTrunk::kNoNet) continue;
      auto [it, inserted] = by_net.try_emplace(net, ChannelTrunk{net, col, col, -1});
      it->second.lo = std::min(it->second.lo, col);
      it->second.hi = std::max(it->second.hi, col);
    }
  };
  account(p.top);
  account(p.bottom);

  ChannelResult result;
  for (auto& [net, trunk] : by_net) result.trunks.push_back(trunk);
  // Left-edge order: by left endpoint, ties by right endpoint.
  std::sort(result.trunks.begin(), result.trunks.end(),
            [](const ChannelTrunk& a, const ChannelTrunk& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });

  // Fill tracks bottom-up, each as dense as possible with free segments.
  std::vector<bool> assigned(result.trunks.size(), false);
  size_t remaining = result.trunks.size();
  int track = 0;
  while (remaining > 0) {
    ++track;
    int reach = std::numeric_limits<int>::min();
    for (size_t i = 0; i < result.trunks.size(); ++i) {
      if (assigned[i]) continue;
      if (result.trunks[i].lo > reach) {
        result.trunks[i].track = track;
        reach = result.trunks[i].hi;
        assigned[i] = true;
        --remaining;
      }
    }
  }
  result.tracks_used = track;

  // Vertical constraints: at a column with both a top pin (net t) and a
  // bottom pin (net b != t), net t's drop from the top edge must not cross
  // net b's trunk — i.e. track(t) must exceed track(b).  Plain left-edge
  // ignores this; report where it bites.
  std::map<int, int> track_of;
  for (const ChannelTrunk& t : result.trunks) track_of[t.net] = t.track;
  const int cols = std::min(p.top.size(), p.bottom.size());
  for (int col = 0; col < cols; ++col) {
    const int t = p.top[col];
    const int b = p.bottom[col];
    if (t == ChannelTrunk::kNoNet || b == ChannelTrunk::kNoNet || t == b) continue;
    if (track_of[t] <= track_of[b]) result.constraint_violations.push_back(col);
  }
  return result;
}

int channel_density(const ChannelProblem& p) {
  std::map<int, std::pair<int, int>> span;
  auto account = [&](const std::vector<int>& pins) {
    for (int col = 0; col < static_cast<int>(pins.size()); ++col) {
      const int net = pins[col];
      if (net == ChannelTrunk::kNoNet) continue;
      auto [it, inserted] = span.try_emplace(net, std::pair{col, col});
      it->second.first = std::min(it->second.first, col);
      it->second.second = std::max(it->second.second, col);
    }
  };
  account(p.top);
  account(p.bottom);
  int density = 0;
  for (int col = 0; col < p.columns(); ++col) {
    int crossing = 0;
    for (const auto& [net, s] : span) {
      if (s.first <= col && col <= s.second) ++crossing;
    }
    density = std::max(density, crossing);
  }
  return density;
}

std::vector<std::vector<geom::Segment>> ChannelResult::wires(
    const ChannelProblem& p) const {
  std::vector<std::vector<geom::Segment>> out;
  const int top_row = tracks_used + 1;
  for (const ChannelTrunk& t : trunks) {
    std::vector<geom::Segment> segs;
    segs.push_back({{t.lo, t.track}, {t.hi, t.track}});
    for (int col = t.lo; col <= t.hi; ++col) {
      if (col < static_cast<int>(p.top.size()) && p.top[col] == t.net) {
        segs.push_back({{col, t.track}, {col, top_row}});
      }
      if (col < static_cast<int>(p.bottom.size()) && p.bottom[col] == t.net) {
        segs.push_back({{col, 0}, {col, t.track}});
      }
    }
    out.push_back(std::move(segs));
  }
  return out;
}

}  // namespace na
