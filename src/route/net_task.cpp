#include "route/net_task.hpp"

#include <algorithm>
#include <limits>

#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "route/dijkstra.hpp"
#include "route/net_order.hpp"

namespace na::detail {
namespace {

SearchStart start_for(const Diagram& dia, TermId t) {
  const Terminal& term = dia.network().term(t);
  if (term.is_system()) return {dia.term_pos(t), std::nullopt};
  return {dia.term_pos(t), dia.term_facing(t)};
}

SearchTarget target_for(const Diagram& dia, TermId t) {
  const Terminal& term = dia.network().term(t);
  if (term.is_system()) return {dia.term_pos(t), std::nullopt};
  return {dia.term_pos(t), dia.term_facing(t)};
}

/// All unordered terminal pairs of a net, nearest first (the initiation
/// tries pairs until one connects — "another pair of points has to be
/// selected").  The manhattan keys are computed once per pair, not inside
/// the sort comparator.
struct ScoredPair {
  TermId a, b;
  int key;
};

std::vector<ScoredPair> pairs_by_distance(const Diagram& dia,
                                          const std::vector<TermId>& terms) {
  std::vector<geom::Point> pos(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) pos[i] = dia.term_pos(terms[i]);
  std::vector<ScoredPair> pairs;
  pairs.reserve(terms.size() * (terms.size() - 1) / 2);
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      pairs.push_back({terms[i], terms[j], manhattan(pos[i], pos[j])});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const ScoredPair& a, const ScoredPair& b) {
                     return a.key < b.key;
                   });
  return pairs;
}

/// Engine dispatch with workspace/observation support for the grid-search
/// engines (the baselines allocate internally and cannot be observed, so
/// the parallel driver never runs them speculatively).
std::optional<SearchResult> find_path_ws(Engine e, const RoutingGrid& grid,
                                         const SearchProblem& prob,
                                         SearchWorkspace& ws, ObservedMask* observed) {
  switch (e) {
    case Engine::LineExpansion:
      return grid_search(grid, prob,
                         prob.order == CostOrder::BendsLengthCrossings
                             ? CostMode::BendsLengthCrossings
                             : CostMode::BendsCrossingsLength,
                         &ws, observed);
    case Engine::Lee:
      return grid_search(grid, prob, CostMode::LengthOnly, &ws, observed);
    default:
      return find_path(e, grid, prob);
  }
}

}  // namespace

void apply_ops(RoutingGrid& grid, const std::vector<CellOp>& ops) {
  for (const CellOp& op : ops) {
    switch (op.kind) {
      case CellOp::kSetH: grid.set_track(op.p, true, op.net); break;
      case CellOp::kSetV: grid.set_track(op.p, false, op.net); break;
      case CellOp::kSetClaim: grid.set_claim(op.p, op.net); break;
      case CellOp::kClearClaim: grid.clear_claim(op.p); break;
    }
  }
}

bool speculation_exact(const ObservedMask& observed,
                       const std::vector<std::vector<CellOp>>& journal,
                       int from, int to) {
  for (int i = from; i < to; ++i) {
    for (const CellOp& op : journal[i]) {
      if (observed.covers(op.p)) return false;
    }
  }
  return true;
}

namespace {

NetTaskResult route_single_net_impl(RoutingGrid& grid, const Diagram& dia, NetId n,
                                    std::vector<TermId> todo, const RouterOptions& opt,
                                    bool has_geometry, SearchWorkspace& ws,
                                    ObservedMask* observed,
                                    std::vector<RoutingGrid::TrackWrite>* occupancy) {
  NetTaskResult out;
  if (todo.empty()) return out;

  // Window support only exists in the grid-search engines.
  const bool windowable =
      opt.window_slack >= 0 &&
      (opt.engine == Engine::LineExpansion || opt.engine == Engine::Lee);

  // Running hull of the net's geometry (polyline corners bound the cells).
  geom::Rect net_bbox;
  for (const auto& pl : dia.route(n).polylines) {
    for (geom::Point p : pl) net_bbox = net_bbox.hull(p);
  }

  auto commit = [&](SearchResult res) {
    grid.occupy_polyline(n, res.path, occupancy);
    for (geom::Point p : res.path) net_bbox = net_bbox.hull(p);
    out.connections.push_back(std::move(res));
    has_geometry = true;
  };

  // Windowed search with full-plane fallback (identical results whenever
  // the windowed attempt fails; a windowed success may be a window-local
  // optimum, which is why the knob defaults to off).
  auto engine_search = [&](SearchProblem& prob,
                           geom::Rect focus) -> std::optional<SearchResult> {
    if (windowable) {
      const geom::Rect win = focus.expanded(opt.window_slack);
      if (!win.contains(grid.area())) {
        prob.window = win;
        auto r = find_path_ws(opt.engine, grid, prob, ws, observed);
        prob.window.reset();
        if (r) return r;
      }
    }
    return find_path_ws(opt.engine, grid, prob, ws, observed);
  };

  // ----- initiation: first point-to-point connection --------------------
  if (!has_geometry) {
    if (todo.size() < 2) {  // nothing to connect against
      out.failed = std::move(todo);
      return out;
    }
    constexpr size_t kMaxPairTries = 8;
    size_t tries = 0;
    for (const ScoredPair& pair : pairs_by_distance(dia, todo)) {
      if (++tries > kMaxPairTries) break;
      SearchProblem prob;
      prob.net = n;
      prob.starts = {start_for(dia, pair.a)};
      prob.target = target_for(dia, pair.b);
      prob.order = opt.order;
      prob.max_expansions = opt.max_expansions;
      // Straight-line fast path (paper STRAIGHT_LINE) for fixed destinations.
      const geom::Point pa = prob.starts[0].p;
      const geom::Point pb = prob.target->p;
      std::optional<SearchResult> res;
      if (pa != pb && (pa.x == pb.x || pa.y == pb.y)) {
        if (observed) observed->mark_segment(pa, pb);
        res = straight_line(grid, n, prob.starts[0], *prob.target);
      }
      if (!res) res = engine_search(prob, geom::Rect{pa, pa}.hull(pb));
      if (res) {
        commit(std::move(*res));
        std::erase(todo, pair.a);
        std::erase(todo, pair.b);
        break;
      }
    }
    if (!has_geometry) {  // initiation impossible for now
      out.failed = std::move(todo);
      return out;
    }
  }

  // ----- expansion: attach remaining terminals one at a time ------------
  // Nearest-to-the-net terminal first.  Each terminal's distance to the
  // net's polyline corners is seeded once and refreshed only against newly
  // committed paths, instead of being recomputed over the whole geometry
  // inside a min_element comparator.
  std::vector<int> dist(todo.size(), std::numeric_limits<int>::max());
  for (const auto& pl : dia.route(n).polylines) {
    for (geom::Point p : pl) {
      for (size_t i = 0; i < todo.size(); ++i) {
        dist[i] = std::min(dist[i], manhattan(p, dia.term_pos(todo[i])));
      }
    }
  }
  for (const SearchResult& c : out.connections) {
    for (geom::Point p : c.path) {
      for (size_t i = 0; i < todo.size(); ++i) {
        dist[i] = std::min(dist[i], manhattan(p, dia.term_pos(todo[i])));
      }
    }
  }
  while (!todo.empty()) {
    size_t nearest = 0;
    for (size_t i = 1; i < todo.size(); ++i) {
      if (dist[i] < dist[nearest]) nearest = i;
    }
    const TermId t = todo[nearest];
    todo.erase(todo.begin() + nearest);
    dist.erase(dist.begin() + nearest);
    SearchProblem prob;
    prob.net = n;
    prob.starts = {start_for(dia, t)};
    prob.join_own_net = true;
    prob.order = opt.order;
    prob.max_expansions = opt.max_expansions;
    if (auto res = engine_search(prob, net_bbox.hull(prob.starts[0].p))) {
      for (size_t i = 0; i < todo.size(); ++i) {
        for (geom::Point p : res->path) {
          dist[i] = std::min(dist[i], manhattan(p, dia.term_pos(todo[i])));
        }
      }
      commit(std::move(*res));
    } else {
      out.failed.push_back(t);
    }
  }
  return out;
}

}  // namespace

NetTaskResult route_single_net(RoutingGrid& grid, const Diagram& dia, NetId n,
                               std::vector<TermId> todo, const RouterOptions& opt,
                               bool has_geometry, SearchWorkspace& ws,
                               ObservedMask* observed,
                               std::vector<RoutingGrid::TrackWrite>* occupancy) {
  // Per-net telemetry span shared by every driver: the sequential pass,
  // the speculative workers (worker >= 0, speculative = 1) and the
  // committer's serial re-routes all funnel through here.
  NA_TRACE_SPAN(span, "route.net");
  NetTaskResult out =
      route_single_net_impl(grid, dia, n, std::move(todo), opt, has_geometry,
                            ws, observed, occupancy);
  span.arg("net", n);
  span.arg("worker", ThreadPool::worker_index());
  span.arg("speculative", observed != nullptr ? 1 : 0);
  long long expansions = 0;
  for (const SearchResult& c : out.connections) expansions += c.expansions;
  span.arg("expansions", expansions);
  // Cumulative per-thread expansion counter: viewers derive the router's
  // expansion *rate* from the slope of this series.
  {
    thread_local long long tl_expansions = 0;
    tl_expansions += expansions;
    NA_TRACE_COUNTER("route.expansions", "cumulative", tl_expansions);
  }
  span.arg("connections", static_cast<long long>(out.connections.size()));
  span.arg("failed_terms", static_cast<long long>(out.failed.size()));
  return out;
}

void DriverSetup::release_claims(NetId n, std::vector<CellOp>* ops) {
  for (auto& [cell, owner] : claims) {
    if (owner == n) {
      grid.clear_claim(cell);
      if (ops) ops->push_back({cell, CellOp::kClearClaim, kNone});
      owner = kNone;
    }
  }
}

void DriverSetup::restore_claim(const Diagram& dia, const RouterOptions& opt,
                                TermId t, NetId n, std::vector<CellOp>* ops) {
  if (!opt.use_claimpoints || dia.network().term(t).is_system()) return;
  const geom::Point cell = dia.term_pos(t) + geom::delta(dia.term_facing(t));
  if (grid.in_bounds(cell) && !grid.blocked(cell) &&
      grid.claim_owner(cell) == kNone && grid.h_net(cell) == kNone &&
      grid.v_net(cell) == kNone) {
    grid.set_claim(cell, n);
    if (ops) ops->push_back({cell, CellOp::kSetClaim, n});
    claims.emplace_back(cell, n);
  }
}

DriverSetup prepare_driver(const Diagram& dia, const RouterOptions& opt) {
  const Network& net = dia.network();
  DriverSetup setup(build_grid(dia, opt.margin));

  // Terminals of each net that still need connecting.  With prerouted
  // geometry, terminals already covered by it count as connected.
  setup.pending.resize(net.net_count());
  setup.has_geometry.assign(net.net_count(), false);
  for (NetId n = 0; n < net.net_count(); ++n) {
    setup.has_geometry[n] = !dia.route(n).polylines.empty();
    for (TermId t : net.net(n).terms) {
      const Terminal& term = net.term(t);
      const bool placeable = term.is_system() ? dia.system_term_placed(t)
                                              : dia.module_placed(term.module);
      if (!placeable) continue;
      if (setup.has_geometry[n] && setup.grid.occupied_by(dia.term_pos(t), n)) {
        continue;
      }
      setup.pending[n].push_back(t);
    }
  }

  // Claimpoints: every still-unconnected subsystem terminal claims the
  // first track outside its module side (section 5.7).
  if (opt.use_claimpoints) {
    for (NetId n = 0; n < net.net_count(); ++n) {
      for (TermId t : setup.pending[n]) {
        if (net.term(t).is_system()) continue;
        const geom::Point cell =
            dia.term_pos(t) + geom::delta(dia.term_facing(t));
        if (setup.grid.in_bounds(cell) && !setup.grid.blocked(cell) &&
            setup.grid.claim_owner(cell) == kNone) {
          setup.grid.set_claim(cell, n);
          setup.claims.emplace_back(cell, n);
        }
      }
    }
  }
  return setup;
}

std::vector<NetId> ordered_nets(const Diagram& dia, const RouterOptions& opt) {
  auto order =
      order_nets(dia, static_cast<NetOrderCriterion>(opt.order_criterion));
  if (!opt.route_first.empty()) {
    const int count = dia.network().net_count();
    std::vector<NetId> prioritized;
    std::vector<bool> is_first(count, false);
    for (NetId n : opt.route_first) {
      if (n >= 0 && n < count && !is_first[n]) {
        is_first[n] = true;
        prioritized.push_back(n);
      }
    }
    for (NetId n : order) {
      if (!is_first[n]) prioritized.push_back(n);
    }
    order = std::move(prioritized);
  }
  return order;
}

void commit_connections(Diagram& dia, NetId n, NetTaskResult& res,
                        DriverSetup& setup, RouteReport& report) {
  for (SearchResult& c : res.connections) {
    dia.add_polyline(n, std::move(c.path));
    setup.has_geometry[n] = true;
    ++report.connections_made;
    report.total_expansions += c.expansions;
  }
}

void retry_pass(Diagram& dia, const RouterOptions& opt, DriverSetup& setup,
                const std::vector<NetId>& order, RouteReport& report,
                SearchWorkspace& ws) {
  if (!opt.retry_failed) return;
  NA_TRACE_SCOPE("route.retry");
  for (auto& [cell, owner] : setup.claims) {
    if (owner != kNone) setup.grid.clear_claim(cell);
  }
  setup.claims.clear();
  for (NetId n : order) {
    if (setup.pending[n].empty()) continue;
    const int before = static_cast<int>(setup.pending[n].size());
    NetTaskResult res =
        route_single_net(setup.grid, dia, n, std::move(setup.pending[n]), opt,
                         setup.has_geometry[n], ws);
    commit_connections(dia, n, res, setup, report);
    setup.pending[n] = std::move(res.failed);
    report.retried_connections +=
        before - static_cast<int>(setup.pending[n].size());
  }
}

void finish_report(Diagram& dia, DriverSetup& setup, RouteReport& report) {
  const Network& net = dia.network();
  for (NetId n = 0; n < net.net_count(); ++n) {
    int placeable = 0;
    for (TermId t : net.net(n).terms) {
      const Terminal& term = net.term(t);
      placeable += (term.is_system() ? dia.system_term_placed(t)
                                     : dia.module_placed(term.module))
                       ? 1
                       : 0;
    }
    if (placeable < 2) continue;  // not a routable net
    if (setup.pending[n].empty() && setup.has_geometry[n]) {
      dia.route(n).routed = true;
      ++report.nets_routed;
    } else {
      ++report.nets_failed;
      report.failed_nets.push_back(n);
      report.connections_failed += static_cast<int>(setup.pending[n].size());
    }
  }
}

}  // namespace na::detail
