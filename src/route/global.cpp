#include "route/global.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace na {
namespace {

struct QueueEntry {
  double cost;
  int cell;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

}  // namespace

GlobalRouteResult global_route(const Diagram& dia, const GlobalRouteOptions& opt) {
  const Network& net = dia.network();
  GlobalRouteResult result;
  geom::Rect bounds = dia.placement_bounds();
  if (bounds.empty()) return result;
  result.area = bounds.expanded(opt.margin);
  const int g = std::max(opt.gcell_size, 2);
  result.cols = (result.area.width() + g) / g;
  result.rows = (result.area.height() + g) / g;
  if (result.cols < 1 || result.rows < 1) return result;

  // Module coverage mask over track space for capacity computation.
  std::vector<geom::Rect> blocks;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (dia.module_placed(m)) blocks.push_back(dia.module_rect(m));
  }
  auto blocked = [&](geom::Point p) {
    for (const geom::Rect& r : blocks) {
      if (r.contains(p)) return true;
    }
    return false;
  };

  // Boundary capacities: free tracks along each gcell-to-gcell edge.
  result.h_capacity.assign(static_cast<size_t>(result.cols) *
                               std::max(result.rows - 1, 0),
                           0);
  result.v_capacity.assign(static_cast<size_t>(std::max(result.cols - 1, 0)) *
                               result.rows,
                           0);
  result.h_demand = result.h_capacity;
  result.v_demand = result.v_capacity;
  auto x_of = [&](int col) { return result.area.lo.x + col * g; };
  auto y_of = [&](int row) { return result.area.lo.y + row * g; };
  for (int row = 0; row + 1 < result.rows; ++row) {
    const int by = std::min(y_of(row + 1) - 1, result.area.hi.y);
    for (int col = 0; col < result.cols; ++col) {
      int cap = 0;
      const int x_end = std::min(x_of(col + 1) - 1, result.area.hi.x);
      for (int x = x_of(col); x <= x_end; ++x) {
        if (!blocked({x, by}) && !blocked({x, by + 1})) ++cap;
      }
      result.h_capacity[result.h_index(col, row)] = cap;
    }
  }
  for (int row = 0; row < result.rows; ++row) {
    const int y_end = std::min(y_of(row + 1) - 1, result.area.hi.y);
    for (int col = 0; col + 1 < result.cols; ++col) {
      const int bx = std::min(x_of(col + 1) - 1, result.area.hi.x);
      int cap = 0;
      for (int y = y_of(row); y <= y_end; ++y) {
        if (!blocked({bx, y}) && !blocked({bx + 1, y})) ++cap;
      }
      result.v_capacity[result.v_index(col, row)] = cap;
    }
  }

  auto gcell_of = [&](geom::Point p) {
    return geom::Point{std::clamp((p.x - result.area.lo.x) / g, 0, result.cols - 1),
                       std::clamp((p.y - result.area.lo.y) / g, 0, result.rows - 1)};
  };
  auto cell_index = [&](geom::Point c) { return c.y * result.cols + c.x; };
  auto cell_point = [&](int idx) {
    return geom::Point{idx % result.cols, idx / result.cols};
  };

  // Congestion-aware edge cost: crossing a full boundary costs 1; each unit
  // of demand at or beyond capacity adds the overflow penalty, steering
  // later nets around bottlenecks (the paper's "routed around to avoid
  // critical bottlenecks").
  auto edge_cost = [&](int demand, int capacity) {
    double cost = 1.0;
    if (demand + 1 > capacity) cost += opt.overflow_cost * (demand + 1 - capacity);
    return cost;
  };

  // Nets, longest span first.
  struct Job {
    NetId n;
    std::vector<geom::Point> pins;  // gcell coordinates, deduplicated
    int span;
  };
  std::vector<Job> jobs;
  for (NetId n = 0; n < net.net_count(); ++n) {
    Job job{n, {}, 0};
    geom::Rect box;
    for (TermId t : net.net(n).terms) {
      const Terminal& term = net.term(t);
      const bool placeable = term.is_system() ? dia.system_term_placed(t)
                                              : dia.module_placed(term.module);
      if (!placeable) continue;
      const geom::Point cell = gcell_of(dia.term_pos(t));
      box = box.hull(cell);
      if (std::find(job.pins.begin(), job.pins.end(), cell) == job.pins.end()) {
        job.pins.push_back(cell);
      }
    }
    if (job.pins.size() < 1 ||
        (job.pins.size() < 2 && net.net(n).terms.size() < 2)) {
      continue;
    }
    job.span = box.width() + box.height();
    jobs.push_back(std::move(job));
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) { return a.span > b.span; });

  const int ncells = result.cols * result.rows;
  for (const Job& job : jobs) {
    GlobalNetRoute gr;
    gr.net = job.n;
    std::vector<bool> in_tree(ncells, false);
    in_tree[cell_index(job.pins[0])] = true;
    gr.routed = true;
    for (size_t p = 1; p < job.pins.size(); ++p) {
      // Dijkstra from the pin to the growing tree.
      std::vector<double> best(ncells, std::numeric_limits<double>::max());
      std::vector<int> parent(ncells, -1);
      std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> open;
      const int start = cell_index(job.pins[p]);
      best[start] = 0;
      open.push({0, start});
      int reached = -1;
      while (!open.empty()) {
        const QueueEntry e = open.top();
        open.pop();
        if (e.cost != best[e.cell]) continue;
        if (in_tree[e.cell]) {
          reached = e.cell;
          break;
        }
        const geom::Point c = cell_point(e.cell);
        auto relax = [&](geom::Point to, int demand, int capacity) {
          const int ti = cell_index(to);
          const double cost = e.cost + edge_cost(demand, capacity);
          if (cost < best[ti]) {
            best[ti] = cost;
            parent[ti] = e.cell;
            open.push({cost, ti});
          }
        };
        if (c.y + 1 < result.rows) {
          relax({c.x, c.y + 1}, result.h_demand[result.h_index(c.x, c.y)],
                result.h_capacity[result.h_index(c.x, c.y)]);
        }
        if (c.y > 0) {
          relax({c.x, c.y - 1}, result.h_demand[result.h_index(c.x, c.y - 1)],
                result.h_capacity[result.h_index(c.x, c.y - 1)]);
        }
        if (c.x + 1 < result.cols) {
          relax({c.x + 1, c.y}, result.v_demand[result.v_index(c.x, c.y)],
                result.v_capacity[result.v_index(c.x, c.y)]);
        }
        if (c.x > 0) {
          relax({c.x - 1, c.y}, result.v_demand[result.v_index(c.x - 1, c.y)],
                result.v_capacity[result.v_index(c.x - 1, c.y)]);
        }
      }
      if (reached < 0) {
        gr.routed = false;
        break;
      }
      // Commit the path: bump demands, extend the tree.
      for (int cur = reached; parent[cur] != -1; cur = parent[cur]) {
        const geom::Point a = cell_point(parent[cur]);
        const geom::Point b = cell_point(cur);
        gr.segments.push_back({a, b});
        in_tree[cell_index(a)] = true;
        in_tree[cell_index(b)] = true;
        if (a.x == b.x) {
          result.h_demand[result.h_index(a.x, std::min(a.y, b.y))] += 1;
        } else {
          result.v_demand[result.v_index(std::min(a.x, b.x), a.y)] += 1;
        }
      }
    }
    (gr.routed ? result.assigned : result.failed) += 1;
    result.nets.push_back(std::move(gr));
  }

  for (size_t i = 0; i < result.h_demand.size(); ++i) {
    result.total_overflow += std::max(0, result.h_demand[i] - result.h_capacity[i]);
    result.max_congestion = std::max(result.max_congestion, result.h_demand[i]);
  }
  for (size_t i = 0; i < result.v_demand.size(); ++i) {
    result.total_overflow += std::max(0, result.v_demand[i] - result.v_capacity[i]);
    result.max_congestion = std::max(result.max_congestion, result.v_demand[i]);
  }
  return result;
}

}  // namespace na
