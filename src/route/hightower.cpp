// Hightower line-search router baseline (paper section 5.2.3, Hightower [8]).
//
// Runs escape lines from both endpoints, alternating sides, picking a small
// set of escape points per line (the origin projection and the line ends —
// "if there is a multiple choice, the escape line nearest to the starting
// terminal is taken").  Fast on simple mazes; famously *not* guaranteed to
// find an existing connection — the paper cites exactly this draw-back as
// the reason to move to line expansion, and the benches reproduce it.
#include <algorithm>
#include <optional>
#include <vector>

#include "route/router.hpp"

namespace na {
namespace {

struct Line {
  bool horizontal = false;
  int index = 0;            ///< y for horizontal lines, x for vertical
  int lo = 0, hi = 0;       ///< coordinate range along the line
  geom::Point origin;       ///< escape point this line was drawn through
  int parent = -1;          ///< index into the owning side's line list
  int depth = 0;
};

geom::Point line_point(const Line& l, int coord) {
  return l.horizontal ? geom::Point{coord, l.index} : geom::Point{l.index, coord};
}

struct Maze {
  const RoutingGrid& grid;
  const SearchProblem& prob;

  bool cell_ok(geom::Point p, bool horizontal) const {
    return grid.passable(p, prob.net, horizontal) && !grid.occupied_by(p, prob.net);
  }

  /// Is `q`, entered moving `d`, a completion of the search?  The arrival
  /// point becomes a node of this net, so no foreign net may touch it.
  bool is_goal(geom::Point q, geom::Dir d) const {
    const bool arrivable =
        grid.enterable(q, prob.net) && grid.node_free(q, prob.net);
    if (prob.target && q == prob.target->p &&
        (!prob.target->facing || d == geom::opposite(*prob.target->facing)) &&
        arrivable) {
      return true;
    }
    return prob.join_own_net && arrivable && grid.occupied_by(q, prob.net);
  }
};

/// Extends a line from `from` through free cells in both (or one) direction;
/// records a completion if the line runs into the goal.
Line trace_line(const Maze& mz, geom::Point from, bool horizontal, int parent,
                int depth, std::optional<geom::Dir> only_dir,
                std::optional<geom::Point>* goal_hit) {
  Line l;
  l.horizontal = horizontal;
  l.index = horizontal ? from.y : from.x;
  const int start = horizontal ? from.x : from.y;
  l.lo = l.hi = start;
  l.origin = from;
  l.parent = parent;
  l.depth = depth;
  const geom::Dir pos_dir = horizontal ? geom::Dir::Right : geom::Dir::Up;
  const geom::Dir neg_dir = geom::opposite(pos_dir);
  for (geom::Dir d : {pos_dir, neg_dir}) {
    if (only_dir && *only_dir != d) continue;
    int coord = start;
    while (true) {
      const geom::Point q = line_point(l, coord) + geom::delta(d);
      if (goal_hit && !goal_hit->has_value() && mz.is_goal(q, d)) {
        *goal_hit = q;
        // The goal cell terminates the line; include it in the range so the
        // traceback can bend onto it.
        coord += (d == pos_dir) ? 1 : -1;
        break;
      }
      if (!mz.cell_ok(q, horizontal)) break;
      coord += (d == pos_dir) ? 1 : -1;
    }
    if (d == pos_dir) {
      l.hi = coord;
    } else {
      l.lo = coord;
    }
  }
  return l;
}

std::vector<geom::Point> traceback(const std::vector<Line>& lines, int idx,
                                   geom::Point from) {
  std::vector<geom::Point> pts{from};
  while (idx != -1) {
    const Line& l = lines[idx];
    // Bend from the current point onto this line's origin: the current
    // point lies on the line, so move along it to the origin first.
    if (pts.back() != l.origin) pts.push_back(l.origin);
    idx = l.parent;
  }
  return pts;
}

int count_bends(const std::vector<geom::Point>& pl) {
  int bends = 0;
  for (size_t i = 2; i < pl.size(); ++i) {
    const bool ph = pl[i - 1].y == pl[i - 2].y && pl[i - 1].x != pl[i - 2].x;
    const bool ch = pl[i].y == pl[i - 1].y && pl[i].x != pl[i - 1].x;
    if (ph != ch) ++bends;
  }
  return bends;
}

int path_length(const std::vector<geom::Point>& pl) {
  int len = 0;
  for (size_t i = 1; i < pl.size(); ++i) len += manhattan(pl[i - 1], pl[i]);
  return len;
}

}  // namespace

std::optional<SearchResult> hightower_search(const RoutingGrid& grid,
                                             const SearchProblem& prob) {
  if (prob.starts.empty()) return std::nullopt;
  constexpr int kMaxDepth = 40;
  constexpr int kMaxLines = 4000;
  const Maze mz{grid, prob};
  long expansions = 0;

  std::vector<Line> a_lines;
  std::vector<Line> b_lines;
  std::optional<geom::Point> a_goal;  // goal reached directly by an A line

  auto finish_via = [&](const std::vector<Line>& lines, int idx,
                        geom::Point goal) -> SearchResult {
    auto pts = traceback(lines, idx, goal);
    std::reverse(pts.begin(), pts.end());
    SearchResult r;
    r.cost.bends = count_bends(pts);
    r.cost.length = path_length(pts);
    r.expansions = expansions;
    r.path = std::move(pts);
    return r;
  };

  // Initial escape lines from every start (the start is a node of the net).
  for (const SearchStart& s : prob.starts) {
    if (!grid.node_free(s.p, prob.net)) continue;
    if (s.dir) {
      a_lines.push_back(trace_line(mz, s.p, geom::is_horizontal(*s.dir), -1, 0,
                                   *s.dir, &a_goal));
    } else {
      a_lines.push_back(trace_line(mz, s.p, true, -1, 0, std::nullopt, &a_goal));
      a_lines.push_back(trace_line(mz, s.p, false, -1, 0, std::nullopt, &a_goal));
    }
    if (a_goal) {
      return finish_via(a_lines, static_cast<int>(a_lines.size()) - 1, *a_goal);
    }
  }
  // Target-side lines only exist for fixed terminal destinations; join
  // searches run single-sided.
  if (prob.target) {
    const geom::Dir entry = prob.target->facing ? *prob.target->facing
                                                : geom::Dir::Right;
    b_lines.push_back(
        trace_line(mz, prob.target->p, geom::is_horizontal(entry), -1, 0,
                   prob.target->facing, nullptr));
  }

  auto intersection = [&](const Line& x, const Line& y) -> std::optional<geom::Point> {
    const Line& hl = x.horizontal ? x : y;
    const Line& vl = x.horizontal ? y : x;
    if (x.horizontal == y.horizontal) return std::nullopt;
    if (vl.index < hl.lo || vl.index > hl.hi) return std::nullopt;
    if (hl.index < vl.lo || hl.index > vl.hi) return std::nullopt;
    const geom::Point p{vl.index, hl.index};
    // Both nets bend at p (unless p is an endpoint of the whole search).
    if (!grid.can_turn(p, prob.net) && !grid.occupied_by(p, prob.net) &&
        !(prob.target && p == prob.target->p)) {
      return std::nullopt;
    }
    return p;
  };

  auto check_cross_intersections =
      [&](bool new_is_a, int new_idx) -> std::optional<SearchResult> {
    const Line& nl = (new_is_a ? a_lines : b_lines)[new_idx];
    const auto& others = new_is_a ? b_lines : a_lines;
    for (int j = 0; j < static_cast<int>(others.size()); ++j) {
      if (auto p = intersection(nl, others[j])) {
        const int a_idx = new_is_a ? new_idx : j;
        const int b_idx = new_is_a ? j : new_idx;
        auto a_part = traceback(a_lines, a_idx, *p);
        std::reverse(a_part.begin(), a_part.end());
        auto b_part = traceback(b_lines, b_idx, *p);
        // b_part starts at *p and walks to the target; drop its first point.
        a_part.insert(a_part.end(), b_part.begin() + 1, b_part.end());
        SearchResult r;
        r.cost.bends = count_bends(a_part);
        r.cost.length = path_length(a_part);
        r.expansions = expansions;
        r.path = std::move(a_part);
        return r;
      }
    }
    return std::nullopt;
  };

  // Seed intersections (straight or one-bend connections).
  for (int i = 0; i < static_cast<int>(a_lines.size()); ++i) {
    if (auto r = check_cross_intersections(true, i)) return r;
  }

  size_t a_next = 0;
  size_t b_next = 0;
  for (int depth = 1; depth <= kMaxDepth; ++depth) {
    bool progressed = false;
    for (bool side_a : {true, false}) {
      auto& lines = side_a ? a_lines : b_lines;
      size_t& next = side_a ? a_next : b_next;
      const size_t end = lines.size();
      for (size_t i = next; i < end; ++i) {
        const Line l = lines[i];
        ++expansions;
        // Escape points: the origin projection and both line ends (nearest-
        // to-origin first, per Hightower's tie rule).
        int candidates[3] = {l.horizontal ? l.origin.x : l.origin.y, l.lo, l.hi};
        for (int coord : candidates) {
          if (coord < l.lo || coord > l.hi) continue;
          const geom::Point ep = line_point(l, coord);
          if (!grid.can_turn(ep, prob.net)) continue;
          std::optional<geom::Point> goal;
          Line nl = trace_line(mz, ep, !l.horizontal, static_cast<int>(i),
                               depth, std::nullopt, side_a ? &goal : nullptr);
          if (nl.lo == nl.hi && nl.origin == ep && !goal) continue;  // no escape
          lines.push_back(nl);
          progressed = true;
          if (static_cast<int>(lines.size()) > kMaxLines) return std::nullopt;
          if (side_a && goal) {
            return finish_via(a_lines, static_cast<int>(a_lines.size()) - 1, *goal);
          }
          if (auto r = check_cross_intersections(side_a,
                                                 static_cast<int>(lines.size()) - 1)) {
            return r;
          }
        }
      }
      next = end;
    }
    if (!progressed) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace na
