// Segment-wise line expansion — the wavefront formulation of paper
// sections 5.5/5.6, as a second, independent implementation of the same
// router.
//
// Where line_expansion.cpp relaxes unit steps in lexicographic cost order,
// this engine works exactly like the paper's EUREKA: a wavefront of
// *active segments* is expanded wave by wave; expanding a segment sweeps
// every escape line it can reach (the full expansion zone), and each wave
// adds one bend.  The first wave that reaches the destination therefore
// carries the minimum-bend solutions; among the candidates of that wave
// the one with the fewest crossings (then shortest length) is selected —
// with the crossing count tracked per reached segment exactly the way the
// paper's active tuples carry their `c` field (an approximation the paper
// itself uses: different routes onto one segment may differ in crossings,
// the first one recorded wins).
//
// The engine is used in tests to cross-validate the two formulations:
// both must agree on reachability and on the minimum bend count.
#include <algorithm>
#include <limits>
#include <vector>

#include "route/router.hpp"

namespace na {
namespace {

struct CellState {
  int level = -1;       ///< wave number = bends; -1 unseen
  int crossings = 0;    ///< crossings along the recorded route here
  geom::Point pivot;    ///< corner this sweep started from
};

struct Candidate {
  geom::Point goal;
  geom::Point pivot;     ///< last corner before the goal
  int orientation = 0;   ///< orientation index of the final sweep
  int crossings = 0;
  int length_hint = 0;   ///< reconstructed exactly later
};

}  // namespace

std::optional<SearchResult> segment_expansion_search(const RoutingGrid& grid,
                                                     const SearchProblem& prob) {
  const geom::Rect area = grid.area();
  const int w = area.width() + 1;
  const int h = area.height() + 1;
  const NetId net = prob.net;

  // Two orientation planes: 0 = horizontal sweeps, 1 = vertical sweeps.
  std::vector<CellState> state[2];
  state[0].resize(static_cast<size_t>(w) * h);
  state[1].resize(static_cast<size_t>(w) * h);
  auto idx = [&](geom::Point p) {
    return static_cast<size_t>(p.y - area.lo.y) * w + (p.x - area.lo.x);
  };

  struct Front {
    geom::Point p;
    int orientation;
  };
  std::vector<Front> frontier;
  std::vector<Candidate> candidates;
  long expansions = 0;

  // Sweeps one escape line from `pivot` in direction `d`; marks newly
  // reached cells at `level` and records goal hits.  The pivot cell itself
  // is not marked (it belongs to the previous wave).
  auto sweep = [&](geom::Point pivot, geom::Dir d, int level, int base_cross) {
    const bool horiz = geom::is_horizontal(d);
    const int orientation = horiz ? 0 : 1;
    int crossings = base_cross;
    geom::Point q = pivot;
    while (true) {
      q += geom::delta(d);
      ++expansions;
      const bool arrivable = grid.enterable(q, net) && grid.node_free(q, net);
      const bool is_target = prob.target && q == prob.target->p &&
                             (!prob.target->facing ||
                              d == geom::opposite(*prob.target->facing)) &&
                             arrivable;
      const bool is_join =
          prob.join_own_net && arrivable && grid.occupied_by(q, net);
      if (is_target || is_join) {
        candidates.push_back({q, pivot, orientation, crossings, 0});
        return;  // the goal cell ends the line like an obstacle
      }
      if (!grid.passable(q, net, horiz) || grid.occupied_by(q, net)) return;
      crossings += grid.crosses_at(q, net, horiz) ? 1 : 0;
      CellState& cs = state[orientation][idx(q)];
      if (cs.level == -1) {
        cs.level = level;
        cs.crossings = crossings;
        cs.pivot = pivot;
        frontier.push_back({q, orientation});
      }
      // Already reached cells end this sweep's novelty but not the line:
      // the paper cuts the overlap out of the reached segment; continuing
      // the scan is equivalent and simpler.
    }
  };

  // Wave 0: the initial escape lines out of the start terminals.
  for (const SearchStart& s : prob.starts) {
    if (!grid.in_bounds(s.p) || !grid.node_free(s.p, net)) continue;
    if (s.dir) {
      sweep(s.p, *s.dir, 0, 0);
    } else {
      for (geom::Dir d : geom::kAllDirs) sweep(s.p, d, 0, 0);
    }
  }

  int wave = 0;
  while (candidates.empty() && !frontier.empty()) {
    if (expansions > prob.max_expansions) return std::nullopt;
    ++wave;
    std::vector<Front> current;
    current.swap(frontier);
    // Expanding in ascending crossing order lets the cheapest route claim
    // each cell first (the tie-break the per-cell `c` approximates).
    std::stable_sort(current.begin(), current.end(),
                     [&](const Front& a, const Front& b) {
                       return state[a.orientation][idx(a.p)].crossings <
                              state[b.orientation][idx(b.p)].crossings;
                     });
    for (const Front& f : current) {
      if (!grid.can_turn(f.p, net)) continue;  // a bend must own the point
      const CellState& cs = state[f.orientation][idx(f.p)];
      const geom::Dir dirs[2][2] = {{geom::Dir::Up, geom::Dir::Down},
                                    {geom::Dir::Left, geom::Dir::Right}};
      for (geom::Dir d : dirs[f.orientation]) {
        sweep(f.p, d, wave, cs.crossings);
      }
    }
  }
  if (candidates.empty()) return std::nullopt;

  // Reconstruct every candidate of the winning wave and select by
  // (crossings, length) — or (length, crossings) under -s.
  std::optional<SearchResult> best;
  for (const Candidate& c : candidates) {
    std::vector<geom::Point> path{c.goal};
    geom::Point corner = c.pivot;
    // The pivot of a sweep was marked in the perpendicular plane.
    int orientation = c.orientation ^ 1;
    while (true) {
      if (path.back() != corner) path.push_back(corner);
      const CellState& cs = state[orientation][idx(corner)];
      if (cs.level == -1) break;  // a start terminal (pivot of wave 0)
      if (cs.level == 0) {
        // Wave-0 cells chain straight back to the start terminal.
        if (path.back() != cs.pivot) path.push_back(cs.pivot);
        break;
      }
      corner = cs.pivot;
      orientation ^= 1;
    }
    std::reverse(path.begin(), path.end());
    int length = 0;
    for (size_t i = 1; i < path.size(); ++i) length += manhattan(path[i - 1], path[i]);
    SearchResult r;
    r.path = std::move(path);
    r.cost = {static_cast<int>(r.path.size()) - 2, c.crossings, length};
    r.expansions = expansions;
    auto key = [&](const SearchResult& x) {
      return prob.order == CostOrder::BendsLengthCrossings
                 ? std::pair<int, int>{x.cost.length, x.cost.crossings}
                 : std::pair<int, int>{x.cost.crossings, x.cost.length};
    };
    if (!best || key(r) < key(*best)) best = std::move(r);
  }
  return best;
}

}  // namespace na
