#include "route/ripup.hpp"

#include <algorithm>
#include <unordered_set>

namespace na {

void rip_up(Diagram& dia, NetId n) { dia.route(n) = {}; }

RouteReport reroute(Diagram& dia, std::span<const NetId> nets,
                    const RouterOptions& opt) {
  for (NetId n : nets) rip_up(dia, n);
  return route_all(dia, opt);
}

RouteReport repair_failed(Diagram& dia, const RouterOptions& opt, int max_rounds,
                          int victims_per_fail) {
  RouteReport report = route_all(dia, opt);
  for (int round = 0; round < max_rounds && report.nets_failed > 0; ++round) {
    const Network& net = dia.network();
    const RoutingGrid grid = build_grid(dia, opt.margin);
    // Victims: routed nets occupying tracks near a failed net's terminals —
    // the nets a human would shift aside.  The search window grows with
    // each round.
    const int radius = 2 + 2 * round;
    std::unordered_set<NetId> to_rip(report.failed_nets.begin(),
                                     report.failed_nets.end());
    for (NetId failed : report.failed_nets) {
      std::vector<NetId> victims;
      for (TermId t : net.net(failed).terms) {
        const Terminal& term = net.term(t);
        const bool placeable = term.is_system() ? dia.system_term_placed(t)
                                                : dia.module_placed(term.module);
        if (!placeable) continue;
        const geom::Point p = dia.term_pos(t);
        for (int dx = -radius; dx <= radius; ++dx) {
          for (int dy = -radius; dy <= radius; ++dy) {
            const geom::Point q = p + geom::Point{dx, dy};
            for (NetId occ : {grid.h_net(q), grid.v_net(q)}) {
              if (occ != kNone && occ != failed && !dia.route(occ).prerouted &&
                  std::find(victims.begin(), victims.end(), occ) == victims.end()) {
                victims.push_back(occ);
              }
            }
          }
        }
      }
      for (int i = 0; i < victims_per_fail && i < static_cast<int>(victims.size());
           ++i) {
        to_rip.insert(victims[i]);
      }
    }
    const std::vector<NetId> rip_list(to_rip.begin(), to_rip.end());
    RouterOptions round_opt = opt;
    round_opt.route_first = report.failed_nets;  // freed tracks go to them first
    report = reroute(dia, rip_list, round_opt);
  }
  return report;
}

}  // namespace na
