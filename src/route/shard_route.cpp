#include "route/shard_route.hpp"

#include <algorithm>
#include <thread>

#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "route/net_task.hpp"

namespace na {
namespace {

using detail::DriverSetup;
using detail::NetTaskResult;

/// What one shard job produced for one of its nets, in processing order.
/// The merge replays these onto the live plane: paths become occupancy +
/// diagram polylines, `new_claims` are the claimpoints the job restored
/// for terminals that stayed unconnected.
struct ShardNetResult {
  NetId net = kNone;
  NetTaskResult res;
  std::vector<std::pair<geom::Point, NetId>> new_claims;
};

struct ShardJob {
  geom::Rect region;
  std::vector<NetId> nets;  ///< assigned nets, in global processing order
  std::vector<ShardNetResult> results;
};

/// The worker side of DriverSetup::restore_claim, against the job's local
/// grid (the live claims list is patched at merge from `new_claims`).
void local_restore_claim(RoutingGrid& grid, const Diagram& dia,
                         const RouterOptions& opt, TermId t, NetId n,
                         std::vector<std::pair<geom::Point, NetId>>& out) {
  if (!opt.use_claimpoints || dia.network().term(t).is_system()) return;
  const geom::Point cell = dia.term_pos(t) + geom::delta(dia.term_facing(t));
  if (grid.in_bounds(cell) && !grid.blocked(cell) &&
      grid.claim_owner(cell) == kNone && grid.h_net(cell) == kNone &&
      grid.v_net(cell) == kNone) {
    grid.set_claim(cell, n);
    out.emplace_back(cell, n);
  }
}

/// Routes one shard's nets against a clipped copy of the plane.  Pure
/// function of (setup snapshot, dia, job.nets, opt) — safe to run
/// concurrently with other shards, and byte-identical at any thread count.
void run_shard(ShardJob& job, const DriverSetup& setup, const Diagram& dia,
               const RouterOptions& opt, int shard_idx) {
  NA_TRACE_SPAN(span, "route.shard");
  span.arg("shard", shard_idx);
  span.arg("nets", static_cast<long long>(job.nets.size()));
  RoutingGrid local = setup.grid.clipped(job.region);
  detail::SearchWorkspace ws;
  job.results.reserve(job.nets.size());
  for (NetId n : job.nets) {
    ShardNetResult r;
    r.net = n;
    // Mirror of the sequential driver's per-net step: release the net's
    // own claims, route, re-claim the escape tracks of what failed.  All
    // of net n's claims lie inside the region (assignment guarantees the
    // net hull + 1 fits), so clearing by the shared claims snapshot hits
    // exactly the cells the live-plane release will clear at merge.
    for (const auto& [cell, owner] : setup.claims) {
      if (owner == n) local.clear_claim(cell);
    }
    r.res = detail::route_single_net(local, dia, n, setup.pending[n], opt,
                                     setup.has_geometry[n], ws);
    for (TermId t : r.res.failed) {
      local_restore_claim(local, dia, opt, t, n, r.new_claims);
    }
    job.results.push_back(std::move(r));
  }
}

/// The exact sequential route_all pass-1 body, shared by the shards<=1
/// degenerate path and the stitch pass (which only differs in options).
void sequential_pass(Diagram& dia, const RouterOptions& opt, DriverSetup& setup,
                     const std::vector<NetId>& nets, RouteReport& report,
                     detail::SearchWorkspace& ws) {
  for (NetId n : nets) {
    if (setup.pending[n].empty()) continue;
    setup.release_claims(n);
    NetTaskResult res =
        detail::route_single_net(setup.grid, dia, n, std::move(setup.pending[n]),
                                 opt, setup.has_geometry[n], ws);
    detail::commit_connections(dia, n, res, setup, report);
    setup.pending[n] = std::move(res.failed);
    for (TermId t : setup.pending[n]) setup.restore_claim(dia, opt, t, n);
  }
}

}  // namespace

std::vector<geom::Rect> shard_regions(geom::Rect area, int shards) {
  std::vector<geom::Rect> out;
  if (area.empty() || shards < 1) return out;
  const int cols = area.width() + 1;
  const int n = std::min(shards, cols);
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Column ranges [i*cols/n, (i+1)*cols/n): exact cover, widths within 1.
    const int x0 = area.lo.x + static_cast<int>(static_cast<long long>(cols) * i / n);
    const int x1 = area.lo.x + static_cast<int>(static_cast<long long>(cols) * (i + 1) / n) - 1;
    out.push_back({{x0, area.lo.y}, {x1, area.hi.y}});
  }
  return out;
}

RouteReport shard_route_all(Diagram& dia, const RouterOptions& opt,
                            const ShardOptions& sopt, ShardRouteStats* stats) {
  if (stats) *stats = {};
  DriverSetup setup = detail::prepare_driver(dia, opt);
  const std::vector<NetId> order = detail::ordered_nets(dia, opt);
  RouteReport report;
  detail::SearchWorkspace ws;

  const std::vector<geom::Rect> regions =
      shard_regions(setup.grid.area(), sopt.shards);

  if (regions.size() <= 1) {
    // Degenerate single shard: the exact sequential route_all loop.
    if (stats) {
      int assigned = 0;
      for (NetId n : order) assigned += setup.pending[n].empty() ? 0 : 1;
      stats->shard_nets = {assigned};
      stats->nets_intra = assigned;
    }
    NA_TRACE_SPAN(span, "route.pass1");
    span.arg("threads", 1);
    span.arg("nets", static_cast<long long>(order.size()));
    sequential_pass(dia, opt, setup, order, report, ws);
    detail::retry_pass(dia, opt, setup, order, report, ws);
    detail::finish_report(dia, setup, report);
    return report;
  }

  // ----- assignment ----------------------------------------------------------
  // A net belongs to shard s iff the hull of its pending terminals and its
  // prerouted geometry, inflated by one track (claimpoints sit one step
  // outside a terminal), fits inside region s.  Everything else stitches.
  std::vector<ShardJob> jobs(regions.size());
  for (size_t s = 0; s < regions.size(); ++s) jobs[s].region = regions[s];
  std::vector<NetId> stitch;
  for (NetId n : order) {
    if (setup.pending[n].empty()) continue;
    geom::Rect hull;
    for (TermId t : setup.pending[n]) hull = hull.hull(dia.term_pos(t));
    for (const auto& pl : dia.route(n).polylines) {
      for (geom::Point p : pl) hull = hull.hull(p);
    }
    const geom::Rect need = hull.expanded(1);
    bool placed = false;
    for (size_t s = 0; s < regions.size(); ++s) {
      if (regions[s].contains(need)) {
        jobs[s].nets.push_back(n);
        placed = true;
        break;
      }
    }
    if (!placed) stitch.push_back(n);
  }

  // ----- shard pass ----------------------------------------------------------
  {
    NA_TRACE_SPAN(span, "route.shard_pass");
    span.arg("shards", static_cast<long long>(jobs.size()));
    span.arg("stitch_nets", static_cast<long long>(stitch.size()));
    int threads = sopt.threads;
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<int>(threads, static_cast<int>(jobs.size()));
    if (threads > 1) {
      span.arg("threads", threads);
      ThreadPool pool(threads);
      for (size_t s = 0; s < jobs.size(); ++s) {
        pool.submit([&, s] {
          run_shard(jobs[s], setup, dia, opt, static_cast<int>(s));
        });
      }
      pool.wait_idle();
    } else {
      for (size_t s = 0; s < jobs.size(); ++s) {
        run_shard(jobs[s], setup, dia, opt, static_cast<int>(s));
      }
    }
  }

  // ----- merge (shard index order — deterministic) ---------------------------
  {
    NA_TRACE_SCOPE("route.shard_merge");
    for (ShardJob& job : jobs) {
      for (ShardNetResult& r : job.results) {
        setup.release_claims(r.net);
        for (const SearchResult& c : r.res.connections) {
          setup.grid.occupy_polyline(r.net, c.path);
        }
        detail::commit_connections(dia, r.net, r.res, setup, report);
        setup.pending[r.net] = std::move(r.res.failed);
        for (const auto& [cell, owner] : r.new_claims) {
          setup.grid.set_claim(cell, owner);
          setup.claims.emplace_back(cell, owner);
        }
      }
    }
  }

  // ----- stitch pass: boundary-spanning nets on the live plane ---------------
  {
    NA_TRACE_SPAN(span, "route.stitch");
    span.arg("nets", static_cast<long long>(stitch.size()));
    RouterOptions stitch_opt = opt;
    stitch_opt.window_slack = std::max(sopt.halo, opt.window_slack);
    sequential_pass(dia, stitch_opt, setup, stitch, report, ws);
  }

  if (stats) {
    stats->shard_nets.reserve(jobs.size());
    for (const ShardJob& job : jobs) {
      stats->shard_nets.push_back(static_cast<int>(job.nets.size()));
      stats->nets_intra += static_cast<int>(job.nets.size());
    }
    stats->nets_stitch = static_cast<int>(stitch.size());
    if (stats->nets_intra > 0) {
      const double mean =
          static_cast<double>(stats->nets_intra) / static_cast<double>(jobs.size());
      const int peak =
          *std::max_element(stats->shard_nets.begin(), stats->shard_nets.end());
      stats->balance = static_cast<double>(peak) / mean;
    }
  }

  detail::retry_pass(dia, opt, setup, order, report, ws);
  detail::finish_report(dia, setup, report);
  return report;
}

}  // namespace na
