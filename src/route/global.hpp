// Global routing (paper section 5.2.1) — the stage of traditional layout
// the paper describes and then deliberately skips ("To keep the routing
// simple, the split up in global routing and local routing will not be
// made").  Implemented here as a substrate so the trade-off is measurable:
//
//   "Global routing deals with the assignment of nets to certain routing
//    areas between the modules.  The global router decides through which
//    areas the nets will run. ... The main consideration is the flow
//    through narrow or important channels.  Some connections may be routed
//    around to avoid critical bottlenecks."
//
// The plane is partitioned into coarse cells (gcells); each gcell boundary
// has a capacity equal to its free (non-module) tracks.  Every net is
// assigned a tree of gcells via congestion-aware shortest-path search, so
// heavily used boundaries push later nets around bottlenecks.  The result
// is the decomposition a local router would consume, plus the congestion
// statistics (overflow) that predict where detailed routing will struggle.
#pragma once

#include <vector>

#include "schematic/diagram.hpp"

namespace na {

struct GlobalRouteOptions {
  int gcell_size = 8;       ///< tracks per gcell edge
  int margin = 4;           ///< empty ring around the placement
  double overflow_cost = 8; ///< extra cost per unit demand beyond capacity
};

/// One gcell-to-gcell boundary crossing used by a net.
struct GlobalSegment {
  geom::Point from;  ///< gcell coordinates (column, row)
  geom::Point to;
};

struct GlobalNetRoute {
  NetId net = kNone;
  bool routed = false;
  std::vector<GlobalSegment> segments;  ///< tree edges over gcells
};

struct GlobalRouteResult {
  int cols = 0;
  int rows = 0;
  geom::Rect area;  ///< track-space area covered by the gcell grid
  std::vector<GlobalNetRoute> nets;
  /// Demand and capacity per boundary: horizontal boundaries (between
  /// vertically adjacent gcells) and vertical boundaries, row-major.
  std::vector<int> h_demand, h_capacity;  ///< (cols) x (rows-1)
  std::vector<int> v_demand, v_capacity;  ///< (cols-1) x (rows)
  int total_overflow = 0;   ///< sum of max(0, demand - capacity)
  int max_congestion = 0;   ///< worst demand on any boundary
  int assigned = 0;         ///< nets with a complete assignment
  int failed = 0;

  int h_index(int col, int row) const { return row * cols + col; }
  int v_index(int col, int row) const { return row * (cols - 1) + col; }
};

/// Globally routes every net (>= 2 placeable terminals) of a placed
/// diagram.  Nets are processed longest span first; multi-terminal nets
/// are assembled star-wise (each terminal joins the growing gcell tree).
GlobalRouteResult global_route(const Diagram& dia,
                               const GlobalRouteOptions& opt = {});

}  // namespace na
