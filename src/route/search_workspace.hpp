// Reusable scratch state for the grid search core.
//
// Every connection search used to allocate O(W*H) `best`/`parent` vectors
// and a fresh priority queue; on large planes the allocation and paging
// cost rivals the search itself.  A SearchWorkspace keeps those arrays
// alive across searches and invalidates them in O(1) with a generation
// stamp: a slot's contents are only meaningful when its stamp equals the
// workspace's current generation, so "clearing" the arrays is a counter
// increment.  One workspace serves one thread; the parallel driver keeps
// one per worker.
//
// ObservedMask records exactly which grid cells a search batch read (every
// grid query in the search core is single-cell, so the searches mark each
// queried point).  The speculative parallel router uses it to decide
// whether a net routed against a stale grid is still exact: if no later
// commit touched a queried cell, re-running the searches on the live grid
// would read identical state and take identical decisions at every step,
// so the speculative result can be committed as-is.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "geom/rect.hpp"

namespace na::detail {

struct SearchCosts {
  int bends = 0;
  int crossings = 0;
  int length = 0;
};

struct HeapEntry {
  std::uint64_t key;
  int state;
  SearchCosts costs;
};

class SearchWorkspace {
 public:
  static constexpr std::uint64_t kUnvisited =
      std::numeric_limits<std::uint64_t>::max();

  /// Search keys pack three 20-bit cost fields, so the top 4 bits of each
  /// slot are free to hold a generation stamp.  A slot is valid only when
  /// its stamp matches the current one; stamps cycle 1..15 (0 means
  /// scrubbed), and every 15th begin() re-scrubs the array so a stale slot
  /// can never alias a live stamp.  The array stays 8 bytes per state —
  /// the same cache footprint as the plain `best` vector it replaces —
  /// while "clearing" costs 1/15th of a fill on average instead of a full
  /// allocate-and-fill per search.
  static constexpr int kKeyBits = 60;
  static constexpr std::uint64_t kKeyMask = (std::uint64_t{1} << kKeyBits) - 1;

  /// Prepares the workspace for a search over `nstates` states: grows the
  /// arrays if needed and invalidates previous contents (amortized O(1)).
  void begin(int nstates) {
    const size_t need = static_cast<size_t>(nstates);
    if (slots_.size() < need) {
      slots_.resize(need);
      parent_.resize(need);
    }
    stamp_ = stamp_ % 15 + 1;
    if (stamp_ == 1) std::fill(slots_.begin(), slots_.end(), 0);
    heap_.clear();
  }

  /// Raw pointers into the (already sized) arrays for the search hot loop.
  /// Holding them as locals lets the optimizer keep them in registers: heap
  /// pushes mutate the workspace object, so access through the workspace
  /// itself would force a data-pointer reload after every relax.  Valid
  /// until the next begin().
  struct View {
    std::uint64_t* slots;
    std::int32_t* parent;
    std::uint64_t tag;  ///< current stamp, pre-shifted into the top bits

    std::uint64_t best(int s) const {
      const std::uint64_t v = slots[s];
      return (v & ~kKeyMask) == tag ? (v & kKeyMask) : kUnvisited;
    }
    void record(int s, std::uint64_t key, int from) const {
      slots[s] = key | tag;
      parent[s] = from;
    }
  };
  View view() {
    return {slots_.data(), parent_.data(),
            static_cast<std::uint64_t>(stamp_) << kKeyBits};
  }

  std::uint64_t best(int s) const {
    const std::uint64_t v = slots_[s];
    const std::uint64_t tag = static_cast<std::uint64_t>(stamp_) << kKeyBits;
    return (v & ~kKeyMask) == tag ? (v & kKeyMask) : kUnvisited;
  }
  /// Only meaningful for states recorded in the current generation.
  int parent(int s) const { return parent_[s]; }

  /// Heap storage for the open set (managed by the search loop).
  std::vector<HeapEntry>& heap() { return heap_; }

 private:
  std::vector<std::uint64_t> slots_;
  std::vector<std::int32_t> parent_;
  std::vector<HeapEntry> heap_;
  std::uint32_t stamp_ = 0;
};

/// Set of grid cells examined by the searches of one net-routing task.
class ObservedMask {
 public:
  void reset(geom::Rect area) {
    area_ = area;
    width_ = area.width() + 1;
    bits_.assign(static_cast<size_t>(width_) * (area.height() + 1), 0);
  }

  void mark(geom::Point p) {
    if (area_.contains(p)) bits_[index(p)] = 1;
  }

  /// Marks every cell of an axis-parallel segment (both endpoints included).
  void mark_segment(geom::Point a, geom::Point b) {
    const geom::Point step = {a.x == b.x ? 0 : (b.x > a.x ? 1 : -1),
                              a.y == b.y ? 0 : (b.y > a.y ? 1 : -1)};
    for (geom::Point p = a;; p += step) {
      mark(p);
      if (p == b) break;
    }
  }

  /// Was `p` queried by any of the task's searches?  A commit at a cell
  /// for which this returns false cannot have influenced the task.
  bool covers(geom::Point p) const { return test(p); }

  /// Number of marked cells (diagnostics / tests).
  int marked_count() const {
    return static_cast<int>(std::count(bits_.begin(), bits_.end(), 1));
  }

 private:
  bool test(geom::Point p) const {
    return area_.contains(p) && bits_[index(p)] != 0;
  }
  size_t index(geom::Point p) const {
    return static_cast<size_t>(p.y - area_.lo.y) * width_ + (p.x - area_.lo.x);
  }

  geom::Rect area_;
  int width_ = 0;
  std::vector<std::uint8_t> bits_;
};

}  // namespace na::detail
