// Router front end: the search-problem vocabulary shared by all routing
// engines, and the whole-diagram routing driver (the paper's EUREKA).
//
// Driver behaviour (paper sections 5.5.3, 5.7, Appendix F):
//   * every net is routed as an initial point-to-point connection followed
//     by one expansion per remaining terminal toward the grown net;
//   * claimpoints: before anything is routed, every connected terminal
//     claims its first adjacent track; a net's own claims are released when
//     its routing starts; nets that failed are retried in a second pass
//     once all claims are gone;
//   * objective: minimum bends, then minimum crossings, then minimum length
//     (the `-s` flag swaps the last two keys);
//   * prerouted polylines already present in the diagram are kept and act
//     as obstacles (and as join targets for their own net).
#pragma once

#include <optional>
#include <vector>

#include "schematic/diagram.hpp"
#include "schematic/grid.hpp"

namespace na {

/// Tie-breaking order among minimum-bend paths (Appendix F `-s`).
enum class CostOrder {
  BendsCrossingsLength,  ///< default: fewest crossings first
  BendsLengthCrossings,  ///< -s: shortest first
};

/// A search start: a terminal grid point plus its forced exit direction
/// (nullopt for system terminals, which expand in all four directions —
/// INIT_ACTIVES in the paper).
struct SearchStart {
  geom::Point p;
  std::optional<geom::Dir> dir;
};

/// A fixed destination terminal: the path must end here, entering against
/// the terminal's outward side (nullopt direction accepts any entry).
struct SearchTarget {
  geom::Point p;
  std::optional<geom::Dir> facing;
};

/// One point-to-point (or point-to-net) search problem on a grid.
struct SearchProblem {
  NetId net = kNone;
  std::vector<SearchStart> starts;
  std::optional<SearchTarget> target;  ///< fixed terminal destination...
  bool join_own_net = false;           ///< ...or attach to own routed geometry
  CostOrder order = CostOrder::BendsCrossingsLength;
  long max_expansions = 2'000'000;     ///< safety valve for the search loops
  /// Optional search window: the grid-search engines treat points outside
  /// it as blocked.  The driver uses it to keep searches on large planes
  /// from touching O(W*H) state, retrying without the window on failure.
  std::optional<geom::Rect> window;
};

/// Cost of a found path, in the lexicographic objective's terms.
struct PathCost {
  int bends = 0;
  int crossings = 0;
  int length = 0;
};

/// A found path: corner points from the start terminal to the destination.
struct SearchResult {
  std::vector<geom::Point> path;
  PathCost cost;
  long expansions = 0;  ///< states expanded (effort measure for benches)
};

/// Which engine the driver uses for every connection search.
enum class Engine {
  LineExpansion,     ///< the paper's router: min bends/crossings/length, complete
  Lee,               ///< baseline: breadth-first, min length, complete
  Hightower,         ///< baseline: escape lines, fast, incomplete
  SegmentExpansion,  ///< the paper's router in its wavefront/segment form
};

struct RouterOptions {
  Engine engine = Engine::LineExpansion;
  CostOrder order = CostOrder::BendsCrossingsLength;
  bool use_claimpoints = true;
  bool retry_failed = true;  ///< second pass after all claims are released
  int margin = 4;            ///< empty tracks around the placement
  long max_expansions = 2'000'000;
  /// Net processing order (section 7 recommends studying this; see
  /// net_order.hpp for the available criteria).
  int order_criterion = 0;
  /// Nets routed before everything else (in the given order), overriding
  /// the criterion — used by the repair loop to give previously failed
  /// nets first pick of the freed tracks.
  std::vector<NetId> route_first;
  /// Routing threads: 1 routes sequentially (the exact historical
  /// behaviour), 0 uses the hardware concurrency, N > 1 routes nets
  /// speculatively in parallel with an in-order committer.  Any thread
  /// count produces a byte-identical diagram and report.
  int threads = 1;
  /// >= 0 enables windowed searches: each connection first searches inside
  /// the hull of its endpoints (or of the net's geometry) inflated by this
  /// many tracks, falling back to the full plane when that fails.  Faster
  /// on large grids but may pick window-local optima, so off by default.
  int window_slack = -1;
  /// Parallel mode only: how many times an invalidated speculation is
  /// re-dispatched as a fresh speculation against the newest published
  /// epoch before the committer re-routes it serially.  0 restores the
  /// PR-1 "speculate once, serialize on miss" behaviour.  Re-speculation
  /// only changes which thread routes a net and when — any budget produces
  /// the same byte-identical diagram and report as threads=1.
  int respec_budget = 2;
};

/// Effectiveness counters of the speculative parallel driver (kept out of
/// RouteReport — the report must be identical across thread counts).  All
/// zero when routing ran sequentially.
struct ParallelRouteStats {
  int nets_speculated = 0;   ///< pass-1 nets routed by workers
  int commits_clean = 0;     ///< speculations committed without re-routing
  int reroutes = 0;          ///< speculated nets the committer re-routed
  int nets_gated = 0;        ///< plane-spanning nets routed by the committer only
  int nets_respeculated = 0; ///< re-speculation dispatches after invalidation
  int respec_hits = 0;       ///< nets whose committed result came from a re-speculation
  int respec_stale = 0;      ///< re-speculated nets that still validated stale
  /// Scheduling counters of the worker pool behind the run (obs layer):
  /// deepest the queues got, and urgent-lane tasks drained by workers.
  int pool_peak_queued = 0;
  int pool_urgent_drains = 0;
};

struct RouteReport {
  int nets_routed = 0;          ///< nets with every terminal connected
  int nets_failed = 0;
  int connections_made = 0;     ///< individual point-to-point/net connections
  int connections_failed = 0;
  int retried_connections = 0;  ///< connections completed only in pass 2
  long total_expansions = 0;
  std::vector<NetId> failed_nets;
};

/// Routes every unrouted net of a placed diagram in place.  When
/// `spec_stats` is given and the parallel driver runs, it receives the
/// speculation-effectiveness counters (zeroed otherwise).
RouteReport route_all(Diagram& dia, const RouterOptions& opt = {},
                      ParallelRouteStats* spec_stats = nullptr);

/// Single-connection searches (exposed for tests and benches).
std::optional<SearchResult> line_expansion_search(const RoutingGrid& grid,
                                                  const SearchProblem& prob);
std::optional<SearchResult> lee_search(const RoutingGrid& grid,
                                       const SearchProblem& prob);
std::optional<SearchResult> hightower_search(const RoutingGrid& grid,
                                             const SearchProblem& prob);
std::optional<SearchResult> segment_expansion_search(const RoutingGrid& grid,
                                                     const SearchProblem& prob);

/// Dispatch by engine.
std::optional<SearchResult> find_path(Engine e, const RoutingGrid& grid,
                                      const SearchProblem& prob);

/// Fast straight-line check (paper STRAIGHT_LINE): if the two endpoints
/// align and the track between them is free for `net`, returns the
/// two-point path.  Foreign nets crossing the line perpendicularly do not
/// block it, their corners/endpoints do.
std::optional<SearchResult> straight_line(const RoutingGrid& grid, NetId net,
                                          const SearchStart& a, const SearchTarget& b);

}  // namespace na
