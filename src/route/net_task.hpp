// Per-net routing, factored out of the route_all driver so the sequential
// and the speculative parallel drivers share one implementation.
//
// route_single_net reproduces the paper's per-net procedure exactly
// (initiation by nearest terminal pairs, then one expansion per remaining
// terminal toward the grown net) but against *any* RoutingGrid — the live
// one for the sequential driver and the committer's re-routes, a private
// clone for the speculative workers.  It occupies its own paths on that
// grid as it goes and never touches the Diagram; committing the polylines
// to the diagram (and the claimpoint bookkeeping around the call) stays
// with the drivers.
//
// DriverSetup is the state both drivers build before routing: the routing
// plane, the pending-terminal lists, and the claimpoint table of paper
// section 5.7.
#pragma once

#include <cstdint>
#include <vector>

#include "route/router.hpp"
#include "route/search_workspace.hpp"

namespace na::detail {

/// One cell-level grid mutation a net's commit performed.  The committer
/// journals these so speculative workers can replay commits onto their
/// private grids, and so commit-time validation knows which cells changed.
struct CellOp {
  enum Kind : std::uint8_t { kSetH, kSetV, kSetClaim, kClearClaim };
  geom::Point p;
  Kind kind;
  NetId net;
};

void apply_ops(RoutingGrid& grid, const std::vector<CellOp>& ops);

/// Exactness check of the speculative drivers: true iff no commit in
/// journal[from..to) touched a cell the speculation's searches read.  A
/// speculation routed after replaying journal[0..e) must be validated
/// over [e, p) before committing at position p; a re-speculation may have
/// had a prefix validated incrementally, in which case `from` is the
/// position it was already cleared against — it must never exceed the
/// entries actually checked, or a stale path could be committed.
bool speculation_exact(const ObservedMask& observed,
                       const std::vector<std::vector<CellOp>>& journal,
                       int from, int to);

/// What routing one net produced: the connections committed to the grid
/// (in order — their paths become the diagram polylines) and the terminals
/// still unconnected.
struct NetTaskResult {
  std::vector<SearchResult> connections;
  std::vector<TermId> failed;
};

/// Routes as much of net `n` as possible on `grid`, starting from the
/// `todo` terminals.  Occupies every found path on `grid` (journalling the
/// slot writes into `occupancy` when given, so a speculative worker can
/// undo them); marks every examined cell into `observed` when given.
NetTaskResult route_single_net(RoutingGrid& grid, const Diagram& dia, NetId n,
                               std::vector<TermId> todo, const RouterOptions& opt,
                               bool has_geometry, SearchWorkspace& ws,
                               ObservedMask* observed = nullptr,
                               std::vector<RoutingGrid::TrackWrite>* occupancy = nullptr);

/// Driver state shared by the sequential and parallel route_all.
struct DriverSetup {
  RoutingGrid grid;  ///< the live routing plane
  std::vector<std::vector<TermId>> pending;  ///< per net, terminals to connect
  std::vector<bool> has_geometry;
  std::vector<std::pair<geom::Point, NetId>> claims;

  explicit DriverSetup(RoutingGrid g) : grid(std::move(g)) {}

  /// Releases net `n`'s remaining claimpoints (done when its routing
  /// starts); journals the clears when `ops` is given.
  void release_claims(NetId n, std::vector<CellOp>* ops = nullptr);
  /// Re-claims the escape track of a terminal that stayed unconnected.
  void restore_claim(const Diagram& dia, const RouterOptions& opt, TermId t,
                     NetId n, std::vector<CellOp>* ops = nullptr);
};

/// Builds the routing plane, the pending lists and the claimpoint table
/// for a placed diagram (the common preamble of both drivers).
DriverSetup prepare_driver(const Diagram& dia, const RouterOptions& opt);

/// Net processing order: the configured criterion with the route_first
/// overrides applied.
std::vector<NetId> ordered_nets(const Diagram& dia, const RouterOptions& opt);

/// Adds a net-task result to the diagram and the report (the grid was
/// already updated by route_single_net).
void commit_connections(Diagram& dia, NetId n, NetTaskResult& res,
                        DriverSetup& setup, RouteReport& report);

/// The section-5.7 retry pass: all remaining claims released, failed nets
/// re-tried in order.  Runs on the live grid (sequentially in both
/// drivers; the retry set is small by construction).
void retry_pass(Diagram& dia, const RouterOptions& opt, DriverSetup& setup,
                const std::vector<NetId>& order, RouteReport& report,
                SearchWorkspace& ws);

/// Final per-net accounting into the report.
void finish_report(Diagram& dia, DriverSetup& setup, RouteReport& report);

}  // namespace na::detail
