#include "route/parallel_route.hpp"

#include <cstdlib>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/diag.hpp"
#include "obs/trace.hpp"
#include "route/net_task.hpp"

namespace na {

using detail::CellOp;
using detail::DriverSetup;
using detail::NetTaskResult;
using detail::ObservedMask;
using detail::SearchWorkspace;

namespace {

/// What a worker hands the committer for one net.
struct Outcome {
  int epoch = 0;  ///< commits visible to the speculation: journal[0..epoch)
  /// Commits the outcome has been cleared against: journal[0..validated_to)
  /// is known not to touch any observed cell.  Starts at `epoch` and only
  /// advances when the re-speculation scan re-checks the outcome against
  /// newly published commits — the commit-time exactness check covers the
  /// remaining [validated_to, p) suffix, so no journal entry is ever
  /// skipped no matter how often the net was re-dispatched.
  int validated_to = 0;
  /// Set by the scan when a conflict was found but the net will not be
  /// re-speculated (budget exhausted or freshness heuristic declined):
  /// the committer re-routes it without re-checking the journal.
  bool doomed = false;
  NetTaskResult result;
  ObservedMask observed;
};

/// Per-worker private state: a clone of the routing plane plus a cursor
/// into the commit journal (the clone equals the live grid of `cursor`
/// commits ago), and the reusable search scratch.
struct Worker {
  std::optional<RoutingGrid> grid;
  int cursor = 0;
  SearchWorkspace ws;
  std::vector<RoutingGrid::TrackWrite> occupancy;
};

/// A re-speculation the committer decided to dispatch (built under the
/// lock, submitted outside it).
struct RespecJob {
  int p = 0;
  NetId net = kNone;
  bool has_geometry = false;
  std::vector<TermId> todo;
};

}  // namespace

RouteReport parallel_route_all(Diagram& dia, const RouterOptions& opt,
                               int threads, ParallelRouteStats* stats) {
  DriverSetup setup = detail::prepare_driver(dia, opt);
  const std::vector<NetId> order = detail::ordered_nets(dia, opt);
  const int npos = static_cast<int>(order.size());
  RouteReport report;
  ParallelRouteStats local_stats;
  if (!stats) stats = &local_stats;
  *stats = {};

  // Pristine copy of the plane (with all claims set) that workers clone;
  // the live `setup.grid` belongs to the committer alone.
  const RoutingGrid initial_grid = setup.grid;

  std::mutex mu;
  std::condition_variable outcome_cv;
  std::condition_variable epoch_cv;
  std::vector<std::vector<CellOp>> journal(npos);  // journal[i]: commit i's cell writes
  std::vector<std::unique_ptr<Outcome>> outcomes(npos);
  std::vector<int> attempts(npos, 0);  // re-speculation dispatches per position
  std::deque<RespecJob> respec_queue;  // dispatched re-speculations, guarded by mu
  int epoch = 0;  // commits published; journal[0..epoch) is stable
  std::vector<Worker> workers(threads);

  // Backpressure window: a speculation for commit position p starts only
  // once fewer than `window` commits can still race it.  Without the
  // throttle workers sprint far ahead of the committer and validate
  // against hopelessly stale grids; with it the raced-commit count is
  // bounded by `window` and most speculations survive.  Progress is
  // guaranteed: the task at the committer's own position always satisfies
  // the wait predicate (p - epoch == 0), and every earlier task has
  // already produced its outcome.  Re-speculations are the one exception —
  // a re-dispatched position has no initial task left — so workers parked
  // on the window drain `respec_queue` inline instead of sleeping; without
  // that, every worker could sit beyond the window while the committer
  // waits forever on a re-dispatched outcome nobody is free to route.
  const int window = 2 * threads;

  // Re-speculation budget: how often an invalidated outcome is re-dispatched
  // as a fresh speculation before the committer serializes the re-route.
  const int respec_budget = std::max(0, opt.respec_budget);
  // Test hook: re-dispatch every first outcome once, even valid ones, so
  // the retry pipeline (and its stale-commit handling) is exercised on
  // workloads where organic invalidations are timing-dependent.
  const bool force_respec = std::getenv("NA_PAR_FORCE_RESPEC") != nullptr;

  // Speculation gate: a net whose terminal hull spans a large fraction of
  // the plane forces whole-plane expansion waves, so its searches read —
  // and any earlier commit invalidates — nearly everything.  Speculating
  // such a net is deterministic wasted work; the committer routes it on
  // the live grid instead.  The gate only chooses who routes the net, so
  // results stay byte-identical.  The per-position hulls double as the
  // re-speculation freshness heuristic's overlap test.
  const geom::Rect plane = initial_grid.area();
  const long plane_area =
      static_cast<long>(plane.width() + 1) * (plane.height() + 1);
  std::vector<char> speculated(npos, 0);
  std::vector<geom::Rect> hulls(npos);
  for (int p = 0; p < npos; ++p) {
    const NetId n = order[p];
    if (setup.pending[n].empty()) continue;
    geom::Rect hull;
    for (TermId t : setup.pending[n]) hull = hull.hull(dia.term_pos(t));
    for (const auto& pl : dia.route(n).polylines) {
      for (geom::Point pt : pl) hull = hull.hull(pt);
    }
    hulls[p] = hull;
    const long hull_area =
        static_cast<long>(hull.width() + 1) * (hull.height() + 1);
    speculated[p] = hull_area * 4 <= plane_area;
  }

  ThreadPool pool(threads);

  // One speculation attempt for commit position p: catch the private grid
  // up with the published commits, route the net against that snapshot,
  // undo its own occupancy and deposit the outcome.  Initial attempts wait
  // out the backpressure window first — running any queued re-speculation
  // inline while parked, see the progress note above; re-speculations are
  // dispatched by the committer within the window and skip the wait.
  std::function<void(int, NetId, std::vector<TermId>, bool, bool)> run_task =
      [&](int p, NetId n, std::vector<TermId> todo, bool hasgeo, bool initial) {
    NA_TRACE_SPAN(task_span, "route.speculate");
    task_span.arg("pos", p);
    task_span.arg("net", n);
    task_span.arg("worker", ThreadPool::worker_index());
    task_span.arg("initial", initial ? 1 : 0);
    Worker& w = workers[ThreadPool::worker_index()];
    if (!w.grid) w.grid.emplace(initial_grid);
    auto out = std::make_unique<Outcome>();
    {
      std::unique_lock lock(mu);
      while (initial && p - epoch > window) {
        if (!respec_queue.empty()) {
          RespecJob job = std::move(respec_queue.front());
          respec_queue.pop_front();
          lock.unlock();
          run_task(job.p, job.net, std::move(job.todo), job.has_geometry,
                   /*initial=*/false);
          lock.lock();
          continue;
        }
        epoch_cv.wait(lock);
      }
      for (int i = w.cursor; i < epoch; ++i) {
        detail::apply_ops(*w.grid, journal[i]);
      }
      w.cursor = epoch;
      out->epoch = epoch;
      out->validated_to = epoch;
    }
    task_span.arg("epoch", out->epoch);
    out->observed.reset(w.grid->area());
    w.occupancy.clear();
    out->result =
        detail::route_single_net(*w.grid, dia, n, std::move(todo), opt, hasgeo,
                                 w.ws, &out->observed, &w.occupancy);
    // Leave the private grid exactly one journal replay behind the live
    // one again: undo this net's own occupancy.
    for (auto it = w.occupancy.rbegin(); it != w.occupancy.rend(); ++it) {
      w.grid->clear_track(it->p, it->horizontal);
    }
    {
      std::lock_guard lock(mu);
      outcomes[p] = std::move(out);
    }
    outcome_cv.notify_all();
  };

  for (int p = 0; p < npos; ++p) {
    const NetId n = order[p];
    if (!speculated[p]) continue;  // empty or gated: committer handles it
    pool.submit([&run_task, p, n, todo = setup.pending[n],
                 hasgeo = static_cast<bool>(setup.has_geometry[n])]() mutable {
      run_task(p, n, std::move(todo), hasgeo, /*initial=*/true);
    });
  }

  // Freshness heuristic for re-dispatching position q (caller holds `mu`):
  // an earlier uncommitted position whose hull overlaps q's and whose
  // final geometry is still unknown (no deposited, so-far-valid outcome)
  // will likely write into the region q's searches read — a re-speculation
  // raced against it is wasted work, so q keeps the committer fallback.
  auto respec_fresh = [&](int q) {
    for (int i = epoch; i < q; ++i) {
      if (setup.pending[order[i]].empty()) continue;
      if (!hulls[i].overlaps(hulls[q])) continue;
      const Outcome* o = outcomes[i].get();
      if (!speculated[i] || o == nullptr || o->doomed) return false;
    }
    return true;
  };

  // ----- pass 1: in-order commit ---------------------------------------------
  SearchWorkspace committer_ws;
  std::vector<RoutingGrid::TrackWrite> track_writes;
  {
  NA_TRACE_SPAN(pass_span, "route.pass1");
  pass_span.arg("threads", threads);
  pass_span.arg("nets", npos);
  for (int p = 0; p < npos; ++p) {
    const NetId n = order[p];
    std::vector<CellOp> ops;
    if (!setup.pending[n].empty()) {
      NA_TRACE_SPAN(commit_span, "route.commit");
      commit_span.arg("pos", p);
      commit_span.arg("net", n);
      std::unique_ptr<Outcome> out;
      bool exact = false;
      if (speculated[p]) {
        {
          std::unique_lock lock(mu);
          outcome_cv.wait(lock, [&] { return outcomes[p] != nullptr; });
          out = std::move(outcomes[p]);
        }
        ++stats->nets_speculated;
        // Exactness check: did any commit the speculation missed touch a
        // cell its searches read?  journal[0..p) is only written by this
        // thread, so no lock is needed to read it here.  The scan already
        // cleared journal[..validated_to); only the suffix remains.
        exact = !out->doomed && detail::speculation_exact(
                                    out->observed, journal, out->validated_to, p);
      } else {
        ++stats->nets_gated;
      }
      setup.release_claims(n, &ops);
      if (exact) {
        // Insurance against validation bugs: a speculative path — initial
        // or re-speculated — must still fit the live grid.  (Unreachable
        // when the mask logic is sound.)
        for (const SearchResult& c : out->result.connections) {
          if (!setup.grid.polyline_fits(n, c.path)) {
            exact = false;
            break;
          }
        }
      }
      NetTaskResult res;
      track_writes.clear();
      if (exact) {
        ++stats->commits_clean;
        if (attempts[p] > 0) ++stats->respec_hits;
        res = std::move(out->result);
        for (const SearchResult& c : res.connections) {
          setup.grid.occupy_polyline(n, c.path, &track_writes);
        }
      } else {
        if (out) {
          ++stats->reroutes;
          if (attempts[p] > 0) ++stats->respec_stale;
        }
        res = detail::route_single_net(setup.grid, dia, n,
                                       std::move(setup.pending[n]), opt,
                                       setup.has_geometry[n], committer_ws,
                                       nullptr, &track_writes);
      }
      const char* outcome = !speculated[p] ? "gated" : exact ? "clean" : "reroute";
      commit_span.arg("outcome", outcome);
      commit_span.arg("attempts", attempts[p]);
      commit_span.arg("lag", out ? p - out->epoch : -1);
      if (std::getenv("NA_PAR_DEBUG")) {
        // Per-position trace: lag/marked for speculated nets (lag=-1 for
        // gated ones), whether the commit was exact, and the committed
        // searches' expansion count — the serial-share input of the
        // critical-path model in EXPERIMENTS.md.  Routed through the obs
        // diagnostic channel: one atomic line per net, rate-limited so a
        // huge run cannot flood stderr, and always naming the net.
        long exp = 0;
        for (const SearchResult& c : res.connections) exp += c.expansions;
        obs::diagf("route.par", /*limit=*/512,
                   "net=%d p=%d lag=%d marked=%d attempts=%d outcome=%s exp=%ld",
                   n, p, out ? p - out->epoch : -1,
                   out ? out->observed.marked_count() : 0, attempts[p], outcome,
                   exp);
      }
      for (const RoutingGrid::TrackWrite& t : track_writes) {
        ops.push_back({t.p, t.horizontal ? CellOp::kSetH : CellOp::kSetV, n});
      }
      detail::commit_connections(dia, n, res, setup, report);
      setup.pending[n] = std::move(res.failed);
      for (TermId t : setup.pending[n]) {
        setup.restore_claim(dia, opt, t, n, &ops);
      }
    }
    int dispatched = 0;
    {
      std::lock_guard lock(mu);
      journal[p] = std::move(ops);
      epoch = p + 1;
      // Re-speculation scan: check every deposited outcome the new commit
      // can still race.  A doomed outcome is re-dispatched as a fresh
      // speculation against the newest epoch (within budget and when the
      // freshness heuristic expects it to survive); otherwise it is marked
      // so the committer serializes the re-route without re-validating.
      const int hi = std::min(npos, epoch + window + 1);
      for (int q = epoch; q < hi; ++q) {
        if (!speculated[q] || setup.pending[order[q]].empty()) continue;
        Outcome* o = outcomes[q].get();
        if (o == nullptr || o->doomed) continue;
        bool redo = false;
        if (detail::speculation_exact(o->observed, journal, o->validated_to,
                                      epoch)) {
          o->validated_to = epoch;
          redo = force_respec && attempts[q] == 0;
        } else if (attempts[q] < respec_budget && respec_fresh(q)) {
          redo = true;
        } else {
          o->doomed = true;
        }
        if (redo && attempts[q] < respec_budget) {
          ++attempts[q];
          ++stats->nets_respeculated;
          outcomes[q].reset();
          const NetId qn = order[q];
          respec_queue.push_back({q, qn,
                                  static_cast<bool>(setup.has_geometry[qn]),
                                  setup.pending[qn]});
          ++dispatched;
        }
      }
    }
    epoch_cv.notify_all();
    // Urgent lane: re-speculations sit on the committer's critical path —
    // the committer will reach them within `window` commits — so they must
    // not queue behind far-future initial speculations.  The drain task
    // pops from respec_queue rather than carrying the job itself because a
    // window-parked worker may have taken it inline already.
    for (int i = 0; i < dispatched; ++i) {
      pool.submit_urgent([&] {
        std::optional<RespecJob> job;
        {
          std::lock_guard lock(mu);
          if (!respec_queue.empty()) {
            job = std::move(respec_queue.front());
            respec_queue.pop_front();
          }
        }
        if (job) {
          run_task(job->p, job->net, std::move(job->todo), job->has_geometry,
                   /*initial=*/false);
        }
      });
    }
  }
  pool.wait_idle();
  }

  // Scheduling counters for the metrics registry: how hard the urgent
  // lane worked and how deep the queues got.  Inline drains by
  // window-parked workers bypass the pool, so drained < submitted is
  // normal — the difference is exactly the inline-drain count.
  const ThreadPool::Stats pool_stats = pool.stats();
  stats->pool_peak_queued = pool_stats.peak_queued;
  stats->pool_urgent_drains = static_cast<int>(pool_stats.urgent_drained);

  // ----- pass 2 + accounting: identical to the sequential driver -------------
  detail::retry_pass(dia, opt, setup, order, report, committer_ws);
  detail::finish_report(dia, setup, report);
  return report;
}

}  // namespace na
