#include "route/parallel_route.hpp"

#include <cstdio>
#include <cstdlib>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "route/net_task.hpp"

namespace na {

using detail::CellOp;
using detail::DriverSetup;
using detail::NetTaskResult;
using detail::ObservedMask;
using detail::SearchWorkspace;

namespace {

/// What a worker hands the committer for one net.
struct Outcome {
  int epoch = 0;  ///< commits visible to the speculation: journal[0..epoch)
  NetTaskResult result;
  ObservedMask observed;
};

/// Per-worker private state: a clone of the routing plane plus a cursor
/// into the commit journal (the clone equals the live grid of `cursor`
/// commits ago), and the reusable search scratch.
struct Worker {
  std::optional<RoutingGrid> grid;
  int cursor = 0;
  SearchWorkspace ws;
  std::vector<RoutingGrid::TrackWrite> occupancy;
};

}  // namespace

RouteReport parallel_route_all(Diagram& dia, const RouterOptions& opt,
                               int threads, ParallelRouteStats* stats) {
  DriverSetup setup = detail::prepare_driver(dia, opt);
  const std::vector<NetId> order = detail::ordered_nets(dia, opt);
  const int npos = static_cast<int>(order.size());
  RouteReport report;
  ParallelRouteStats local_stats;
  if (!stats) stats = &local_stats;

  // Pristine copy of the plane (with all claims set) that workers clone;
  // the live `setup.grid` belongs to the committer alone.
  const RoutingGrid initial_grid = setup.grid;

  std::mutex mu;
  std::condition_variable outcome_cv;
  std::condition_variable epoch_cv;
  std::vector<std::vector<CellOp>> journal(npos);  // journal[i]: commit i's cell writes
  std::vector<std::unique_ptr<Outcome>> outcomes(npos);
  int epoch = 0;  // commits published; journal[0..epoch) is stable
  std::vector<Worker> workers(threads);

  // Backpressure window: a speculation for commit position p starts only
  // once fewer than `window` commits can still race it.  Without the
  // throttle workers sprint far ahead of the committer and validate
  // against hopelessly stale grids; with it the raced-commit count is
  // bounded by `window` and most speculations survive.  Progress is
  // guaranteed: the task at the committer's own position always satisfies
  // the wait predicate (p - epoch == 0), and every earlier task has
  // already produced its outcome.
  const int window = 2 * threads;

  // Speculation gate: a net whose terminal hull spans a large fraction of
  // the plane forces whole-plane expansion waves, so its searches read —
  // and any earlier commit invalidates — nearly everything.  Speculating
  // such a net is deterministic wasted work; the committer routes it on
  // the live grid instead.  The gate only chooses who routes the net, so
  // results stay byte-identical.
  const geom::Rect plane = initial_grid.area();
  const long plane_area =
      static_cast<long>(plane.width() + 1) * (plane.height() + 1);
  std::vector<char> speculated(npos, 0);
  for (int p = 0; p < npos; ++p) {
    const NetId n = order[p];
    if (setup.pending[n].empty()) continue;
    geom::Rect hull;
    for (TermId t : setup.pending[n]) hull = hull.hull(dia.term_pos(t));
    for (const auto& pl : dia.route(n).polylines) {
      for (geom::Point pt : pl) hull = hull.hull(pt);
    }
    const long hull_area =
        static_cast<long>(hull.width() + 1) * (hull.height() + 1);
    speculated[p] = hull_area * 4 <= plane_area;
  }

  ThreadPool pool(threads);
  for (int p = 0; p < npos; ++p) {
    const NetId n = order[p];
    if (!speculated[p]) continue;  // empty or gated: committer handles it
    pool.submit([&, p, n, todo = setup.pending[n],
                 hasgeo = static_cast<bool>(setup.has_geometry[n])]() mutable {
      Worker& w = workers[ThreadPool::worker_index()];
      if (!w.grid) w.grid.emplace(initial_grid);
      auto out = std::make_unique<Outcome>();
      {
        // Wait out the backpressure window, then catch up with the
        // published commits and speculate from there.
        std::unique_lock lock(mu);
        epoch_cv.wait(lock, [&] { return p - epoch <= window; });
        for (int i = w.cursor; i < epoch; ++i) {
          detail::apply_ops(*w.grid, journal[i]);
        }
        w.cursor = epoch;
        out->epoch = epoch;
      }
      out->observed.reset(w.grid->area());
      w.occupancy.clear();
      out->result =
          detail::route_single_net(*w.grid, dia, n, std::move(todo), opt, hasgeo,
                                   w.ws, &out->observed, &w.occupancy);
      // Leave the private grid exactly one journal replay behind the live
      // one again: undo this net's own occupancy.
      for (auto it = w.occupancy.rbegin(); it != w.occupancy.rend(); ++it) {
        w.grid->clear_track(it->p, it->horizontal);
      }
      {
        std::lock_guard lock(mu);
        outcomes[p] = std::move(out);
      }
      outcome_cv.notify_all();
    });
  }

  // ----- pass 1: in-order commit ---------------------------------------------
  SearchWorkspace committer_ws;
  std::vector<RoutingGrid::TrackWrite> track_writes;
  for (int p = 0; p < npos; ++p) {
    const NetId n = order[p];
    std::vector<CellOp> ops;
    if (!setup.pending[n].empty()) {
      std::unique_ptr<Outcome> out;
      bool exact = false;
      if (speculated[p]) {
        {
          std::unique_lock lock(mu);
          outcome_cv.wait(lock, [&] { return outcomes[p] != nullptr; });
          out = std::move(outcomes[p]);
        }
        ++stats->nets_speculated;
        // Exactness check: did any commit the speculation missed touch a
        // cell its searches read?  journal[0..p) is only written by this
        // thread, so no lock is needed to read it here.
        exact = true;
        for (int i = out->epoch; exact && i < p; ++i) {
          for (const CellOp& op : journal[i]) {
            if (out->observed.covers(op.p)) {
              exact = false;
              break;
            }
          }
        }
      } else {
        ++stats->nets_gated;
      }
      setup.release_claims(n, &ops);
      if (exact) {
        // Insurance against validation bugs: a speculative path must still
        // fit the live grid.  (Unreachable when the mask logic is sound.)
        for (const SearchResult& c : out->result.connections) {
          if (!setup.grid.polyline_fits(n, c.path)) {
            exact = false;
            break;
          }
        }
      }
      if (out && std::getenv("NA_PAR_DEBUG")) {
        std::fprintf(stderr, "net p=%d lag=%d marked=%d exact=%d\n", p,
                     p - out->epoch, out->observed.marked_count(), (int)exact);
      }
      NetTaskResult res;
      track_writes.clear();
      if (exact) {
        ++stats->commits_clean;
        res = std::move(out->result);
        for (const SearchResult& c : res.connections) {
          setup.grid.occupy_polyline(n, c.path, &track_writes);
        }
      } else {
        if (out) ++stats->reroutes;
        res = detail::route_single_net(setup.grid, dia, n,
                                       std::move(setup.pending[n]), opt,
                                       setup.has_geometry[n], committer_ws,
                                       nullptr, &track_writes);
      }
      for (const RoutingGrid::TrackWrite& t : track_writes) {
        ops.push_back({t.p, t.horizontal ? CellOp::kSetH : CellOp::kSetV, n});
      }
      detail::commit_connections(dia, n, res, setup, report);
      setup.pending[n] = std::move(res.failed);
      for (TermId t : setup.pending[n]) {
        setup.restore_claim(dia, opt, t, n, &ops);
      }
    }
    {
      std::lock_guard lock(mu);
      journal[p] = std::move(ops);
      epoch = p + 1;
    }
    epoch_cv.notify_all();
  }
  pool.wait_idle();

  // ----- pass 2 + accounting: identical to the sequential driver -------------
  detail::retry_pass(dia, opt, setup, order, report, committer_ws);
  detail::finish_report(dia, setup, report);
  return report;
}

}  // namespace na
