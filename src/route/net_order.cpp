#include "route/net_order.hpp"

#include <algorithm>
#include <numeric>

namespace na {
namespace {

/// Half perimeter of the net's terminal bounding box: a routing-effort
/// estimate available before any routing.
int span_estimate(const Diagram& dia, NetId n) {
  geom::Rect box;
  for (TermId t : dia.network().net(n).terms) box = box.hull(dia.term_pos(t));
  return box.empty() ? 0 : box.width() + box.height();
}

}  // namespace

std::vector<NetId> order_nets(const Diagram& dia, NetOrderCriterion criterion) {
  std::vector<NetId> order(dia.network().net_count());
  std::iota(order.begin(), order.end(), 0);
  auto stable_by = [&](auto key) {
    std::stable_sort(order.begin(), order.end(),
                     [&](NetId a, NetId b) { return key(a) < key(b); });
  };
  switch (criterion) {
    case NetOrderCriterion::AsGiven:
      break;
    case NetOrderCriterion::ShortestFirst:
      stable_by([&](NetId n) { return span_estimate(dia, n); });
      break;
    case NetOrderCriterion::LongestFirst:
      stable_by([&](NetId n) { return -span_estimate(dia, n); });
      break;
    case NetOrderCriterion::FewestTermsFirst:
      stable_by([&](NetId n) { return dia.network().net(n).terms.size(); });
      break;
    case NetOrderCriterion::MostTermsFirst:
      stable_by([&](NetId n) {
        return -static_cast<int>(dia.network().net(n).terms.size());
      });
      break;
  }
  return order;
}

}  // namespace na
