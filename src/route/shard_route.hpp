// Sharded routing: the scale tier of the EUREKA driver.
//
// The routing plane is split into disjoint vertical region shards.  A net
// whose pending terminals and prerouted geometry (inflated by one track
// for its claimpoints) fit inside one shard is routed against a *clipped*
// copy of that shard only — the clip boundary acts blocked, so per-shard
// searches touch O(shard) state instead of O(plane), and two shards can
// never write the same cell.  Shard jobs run on the work-stealing pool;
// their results are journalled and merged into the live plane in shard
// index order, so any thread count produces a byte-identical diagram and
// report for a fixed shard count.
//
// Nets spanning a shard boundary are *stitch* nets: they are routed after
// the merge, sequentially on the live plane, with a halo search window
// (the hull of the net inflated by `halo` tracks, full-plane fallback) —
// the cross-shard stitch protocol.  The section-5.7 retry pass and the
// report accounting are shared with route_all.
//
// With shards <= 1 the driver degenerates to the exact sequential
// route_all loop (byte-identical diagram and report).
#pragma once

#include <vector>

#include "route/router.hpp"

namespace na {

struct ShardOptions {
  /// Number of vertical region shards the plane is cut into (<= 1 routes
  /// sequentially on the whole plane).
  int shards = 1;
  /// Stitch-pass search window slack in tracks around a stitch net's hull
  /// (full-plane fallback when the windowed search fails).
  int halo = 16;
  /// Worker threads for the shard jobs: 1 runs them inline in shard
  /// order, 0 uses the hardware concurrency.  Byte-identical output at
  /// any value.
  int threads = 1;
};

/// Work-distribution counters of one sharded run (kept out of RouteReport,
/// which must stay comparable with route_all's).
struct ShardRouteStats {
  std::vector<int> shard_nets;  ///< nets assigned to each shard
  int nets_intra = 0;           ///< nets routed inside one shard
  int nets_stitch = 0;          ///< boundary-spanning nets (halo pass)
  /// max(shard_nets) / mean(shard_nets); 1.0 is a perfectly even split.
  double balance = 1.0;
};

/// The disjoint vertical strips `shard_route_all` cuts `area` into:
/// `shards` rects covering `area` exactly, widths differing by at most
/// one column.  Exposed for tests and the scale bench.
std::vector<geom::Rect> shard_regions(geom::Rect area, int shards);

/// Routes every unrouted net of a placed diagram in place, sharded.
RouteReport shard_route_all(Diagram& dia, const RouterOptions& opt,
                            const ShardOptions& sopt,
                            ShardRouteStats* stats = nullptr);

}  // namespace na
