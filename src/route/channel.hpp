// Left-edge channel router baseline (paper section 5.2.4).
//
// A channel is a rectangular routing area with terminals on the top and
// bottom edge only.  Each net reduces to a horizontal trunk interval
// spanning its leftmost..rightmost pin column; the left-edge algorithm
// fills one track at a time as densely as possible with non-overlapping
// trunks.  The two classic limitations the paper lists — vertical
// constraint loops and the opposite-side terminal requirement — are
// surfaced rather than solved: vertical-constraint violations are reported
// in the result.
#pragma once

#include <vector>

#include "geom/rect.hpp"

namespace na {

/// Pin columns of a channel: pins_top[i] / pins_bottom[i] give the net id at
/// column i (kNone for no pin).
struct ChannelProblem {
  std::vector<int> top;
  std::vector<int> bottom;

  int columns() const { return static_cast<int>(top.size()); }
};

struct ChannelTrunk {
  int net = kNoNet;
  int lo = 0;  ///< leftmost pin column
  int hi = 0;  ///< rightmost pin column
  int track = -1;

  static constexpr int kNoNet = -1;
};

struct ChannelResult {
  std::vector<ChannelTrunk> trunks;  ///< one per net with >= 1 pin
  int tracks_used = 0;
  /// Columns where a net's vertical drop from the top pin passes the trunk
  /// of the bottom pin's net placed on a lower track index (the classic
  /// vertical constraint the plain left-edge router ignores).
  std::vector<int> constraint_violations;

  /// Wire geometry for rendering: the channel occupies rows 1..tracks_used,
  /// top pins sit on row tracks_used + 1, bottom pins on row 0.  Returns,
  /// per trunk, a polyline tree (trunk plus pin drops) flattened as a list
  /// of segments.
  std::vector<std::vector<geom::Segment>> wires(const ChannelProblem& p) const;
};

/// Runs the left-edge algorithm.  Track 1 is nearest the bottom edge.
ChannelResult left_edge_route(const ChannelProblem& p);

/// Channel density: the maximum number of trunks crossing any column —
/// a lower bound on the number of tracks any channel router needs; the
/// left-edge algorithm meets it when no vertical constraints interfere.
int channel_density(const ChannelProblem& p);

}  // namespace na
