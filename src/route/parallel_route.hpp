// Speculative parallel net routing.
//
// Workers route independent nets concurrently, each against a private
// clone of the routing plane kept in sync by replaying the commit journal;
// a single committer (the calling thread) then walks the nets in the
// deterministic sequential order and, for each one, either commits the
// speculative result or re-routes the net on the live grid.
//
// The commit decision is exact, not heuristic: every search records the
// set of grid cells it read (ObservedMask).  If no commit that the
// speculation missed touched a read cell, a re-run of the same searches
// on the live grid would take identical decisions at every step — so the
// speculative paths, costs and expansion counts are committed as-is.
// Otherwise the net is *re-speculated*: as soon as a published commit
// dooms a deposited outcome, the committer re-dispatches the net on the
// pool's urgent lane as a fresh speculation against the newest epoch
// (bounded by RouterOptions::respec_budget, skipped when an earlier
// still-unknown commit's hull overlaps the net's — it would likely doom
// it again).  Only when the budget is exhausted, the heuristic declines,
// or the re-speculation is itself invalidated does the committer fall
// back to the serial re-route.  Every committed result still observes
// exactly the grid state the sequential driver would have shown it,
// which is why any thread count and any re-speculation budget produce a
// byte-identical diagram and RouteReport.
//
// Claimpoint bookkeeping (release on routing start, re-claim for failed
// terminals) happens on the live grid at commit time, and the section-5.7
// retry pass runs after the parallel pass exactly as in the sequential
// driver.
#pragma once

#include "route/router.hpp"

namespace na {

/// Routes every unrouted net of `dia` with `threads` workers (>= 2).
/// Requires a grid-search engine (LineExpansion or Lee); route_all
/// enforces that before dispatching here.
RouteReport parallel_route_all(Diagram& dia, const RouterOptions& opt,
                               int threads, ParallelRouteStats* stats = nullptr);

}  // namespace na
