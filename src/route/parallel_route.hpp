// Speculative parallel net routing.
//
// Workers route independent nets concurrently, each against a private
// clone of the routing plane kept in sync by replaying the commit journal;
// a single committer (the calling thread) then walks the nets in the
// deterministic sequential order and, for each one, either commits the
// speculative result or re-routes the net on the live grid.
//
// The commit decision is exact, not heuristic: every search records the
// set of grid cells it read (ObservedMask).  If no commit that the
// speculation missed touched a read cell, a re-run of the same searches
// on the live grid would take identical decisions at every step — so the
// speculative paths, costs and expansion counts are committed as-is.
// Otherwise the committer re-routes the net sequentially.  Either way
// every net observes exactly the grid state the sequential driver would
// have shown it, which is why any thread count produces a byte-identical
// diagram and RouteReport.
//
// Claimpoint bookkeeping (release on routing start, re-claim for failed
// terminals) happens on the live grid at commit time, and the section-5.7
// retry pass runs after the parallel pass exactly as in the sequential
// driver.
#pragma once

#include "route/router.hpp"

namespace na {

/// Effectiveness counters (not part of RouteReport — the report must be
/// identical across thread counts).
struct ParallelRouteStats {
  int nets_speculated = 0;  ///< pass-1 nets routed by workers
  int commits_clean = 0;    ///< speculations committed without re-routing
  int reroutes = 0;         ///< speculations invalidated by earlier commits
  int nets_gated = 0;       ///< plane-spanning nets routed by the committer only
};

/// Routes every unrouted net of `dia` with `threads` workers (>= 2).
/// Requires a grid-search engine (LineExpansion or Lee); route_all
/// enforces that before dispatching here.
RouteReport parallel_route_all(Diagram& dia, const RouterOptions& opt,
                               int threads, ParallelRouteStats* stats = nullptr);

}  // namespace na
