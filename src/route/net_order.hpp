// Net-ordering criteria for the routing driver.
//
// Paper section 7 ("recommendations for further research"): "Routing of the
// nets is done successively.  It is probably better to construct a certain
// criterion for selecting the next net to be routed."  This module provides
// the orderings the ablation bench compares.
#pragma once

#include <vector>

#include "schematic/diagram.hpp"

namespace na {

enum class NetOrderCriterion {
  AsGiven = 0,        ///< net-list order (the historical behaviour)
  ShortestFirst = 1,  ///< ascending estimated span (terminal bounding box)
  LongestFirst = 2,   ///< descending estimated span
  FewestTermsFirst = 3,  ///< two-point nets before multi-point nets
  MostTermsFirst = 4,
};

/// Returns the net ids to route, ordered by the criterion.  Nets without
/// terminals (or already fully prerouted) are included; the driver skips
/// what it must.
std::vector<NetId> order_nets(const Diagram& dia, NetOrderCriterion criterion);

}  // namespace na
