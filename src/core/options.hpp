// Command-line option parsing in the dialect of the historical programs
// (Appendix E: PABLO, Appendix F: EUREKA), so the examples can be driven
// exactly like the 1989 tools:
//
//   pablo  -p <int> -b <int> -c <int> -e <int> -i <int> -s <int> [-g]
//   eureka [-u -d -l -r] [-s] [-L|-H]   (engine letters are an extension)
#pragma once

#include <string>
#include <vector>

#include "core/generator.hpp"

namespace na {

/// Parses PABLO-style placement flags into `opt.placer` and EUREKA-style
/// routing flags into `opt.router`.  Unknown flags raise std::runtime_error
/// naming the flag.  Returns the non-flag (positional) arguments.
std::vector<std::string> parse_generator_args(const std::vector<std::string>& args,
                                              GeneratorOptions& opt);

/// One-line usage text for the examples.
std::string generator_usage();

}  // namespace na
