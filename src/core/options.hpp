// Command-line option parsing in the dialect of the historical programs
// (Appendix E: PABLO, Appendix F: EUREKA), so the examples can be driven
// exactly like the 1989 tools:
//
//   pablo  -p <int> -b <int> -c <int> -e <int> -i <int> -s <int> [-g]
//   eureka [-u -d -l -r] [-s] [-L|-H]   (engine letters are an extension)
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "obs/obs_options.hpp"

namespace na {

/// Parses PABLO-style placement flags into `opt.placer` and EUREKA-style
/// routing flags into `opt.router`.  Unknown flags and malformed values
/// raise std::runtime_error naming the flag (e.g. "bad value 'foo' for
/// -p"); size, spacing and margin flags reject negative values.  Returns
/// the non-flag (positional) arguments.
///
/// When `obs` is given, the observability flags `--trace <file>` and
/// `--stats <text|json|off>` are accepted too (rejected as unknown
/// otherwise) — pass the result to obs::obs_begin/obs_finish.
std::vector<std::string> parse_generator_args(const std::vector<std::string>& args,
                                              GeneratorOptions& opt,
                                              obs::ObsOptions* obs = nullptr);

/// Strict full-string integer parse for a flag value: rejects empty
/// strings, trailing garbage ("5x"), overflow, and — when `min_value` is
/// given — anything below it.  Throws std::runtime_error with a one-line
/// diagnostic naming `flag` and the offending text.
int parse_int_arg(const std::string& value, const std::string& flag,
                  int min_value = std::numeric_limits<int>::min());

/// One-line usage text for the examples.
std::string generator_usage();

}  // namespace na
