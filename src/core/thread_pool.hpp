// A small work-stealing thread pool for the routing subsystem.
//
// Each worker owns a deque; submit() deals tasks round-robin, a worker
// drains its own deque front-first and steals the oldest task of a
// neighbour when it runs dry.  Oldest-first stealing matters here: the
// speculative router submits net tasks in commit order, and the closer the
// execution order tracks it, the fewer commits a speculation races with.
// A shared urgent lane (submit_urgent) jumps every per-worker queue: the
// router uses it for re-speculations of invalidated nets, which sit on the
// committer's critical path and must not wait behind far-future tasks.
// Synchronisation is one mutex + condition variables — the tasks this pool
// exists for (net routings) run for milliseconds, so queue contention is
// noise and the simple scheme stays ThreadSanitizer-clean.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace na {

namespace obs {
class Histogram;
}  // namespace obs


class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw.
  void submit(std::function<void()> task);

  /// Enqueues a task on the urgent lane: the next free worker runs it
  /// before anything submitted with submit(), in submission order among
  /// urgent tasks.  Tasks must not throw.
  void submit_urgent(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Scheduling counters for the metrics registry: how deep the queues
  /// got and how much the urgent lane was used.  Snapshot under the pool
  /// lock — callable at any time, cheap enough to read once per run.
  struct Stats {
    int peak_queued = 0;           ///< high-water mark of waiting tasks
    long long urgent_submitted = 0;
    long long urgent_drained = 0;  ///< urgent tasks run by pool workers
  };
  Stats stats() const;

  /// Routes per-task queue-wait samples (submit to dequeue, microseconds)
  /// into `h`; nullptr (the default) turns the probe off — then submit and
  /// dequeue skip the clock reads entirely.  `h` must outlive the pool or
  /// a later set_queue_wait_histogram(nullptr).  Histogram recording is
  /// wait-free, so the sample happens under the pool lock without adding
  /// contention beyond the two steady_clock reads.
  void set_queue_wait_histogram(obs::Histogram* h);

  /// Tasks currently waiting across the urgent lane and every per-worker
  /// queue — the live gauge the daemon's watchdog samples.
  int queue_depth() const;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling thread within its pool, -1 off-pool.  Lets task
  /// code address per-worker state without locking.
  static int worker_index();

 private:
  /// A queued task plus its submission timestamp (0 when the queue-wait
  /// probe was off at submit time — such tasks are not sampled).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void worker_loop(int index);
  Task make_task(std::function<void()> fn) const;
  void sample_wait(const Task& task) const;

  std::vector<std::deque<Task>> queues_;
  std::deque<Task> urgent_;
  std::atomic<obs::Histogram*> wait_hist_{nullptr};
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::thread> workers_;
  size_t next_queue_ = 0;
  int queued_ = 0;
  int active_ = 0;
  bool stop_ = false;
  Stats stats_;
};

}  // namespace na
