#include "core/options.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace na {

int parse_int_arg(const std::string& value, const std::string& flag,
                  int min_value) {
  int v = 0;
  const char* first = value.data();
  const char* last = first + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || value.empty()) {
    throw std::runtime_error("bad value '" + value + "' for " + flag);
  }
  if (v < min_value) {
    throw std::runtime_error("bad value '" + value + "' for " + flag +
                             " (must be >= " + std::to_string(min_value) + ")");
  }
  return v;
}

std::vector<std::string> parse_generator_args(const std::vector<std::string>& args,
                                              GeneratorOptions& opt,
                                              obs::ObsOptions* obs) {
  std::vector<std::string> positional;
  // Size, spacing and margin flags must be non-negative; a stray "-5"
  // would otherwise silently disable partitioning or invert a margin.
  auto next_int = [&](size_t& i, const std::string& flag, int min_value = 0) {
    if (i + 1 >= args.size()) {
      throw std::runtime_error("missing value after " + flag);
    }
    return parse_int_arg(args[++i], flag, min_value);
  };
  auto next_str = [&](size_t& i, const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size()) {
      throw std::runtime_error("missing value after " + flag);
    }
    return args[++i];
  };
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.empty() || a[0] != '-') {
      positional.push_back(a);
      continue;
    }
    if (a == "-p") {
      opt.placer.max_part_size = next_int(i, a);
    } else if (a == "-b") {
      opt.placer.max_box_size = next_int(i, a);
    } else if (a == "-c") {
      opt.placer.max_connections = next_int(i, a);
    } else if (a == "-e") {
      opt.placer.partition_spacing = next_int(i, a);
    } else if (a == "-i") {
      opt.placer.box_spacing = next_int(i, a);
    } else if (a == "-s" && i + 1 < args.size() && !args[i + 1].empty() &&
               (std::isdigit(args[i + 1][0]) != 0)) {
      opt.placer.module_spacing = next_int(i, a);
    } else if (a == "-s") {
      // EUREKA -s: prefer wire length over crossing count among min-bend paths.
      opt.router.order = CostOrder::BendsLengthCrossings;
    } else if (a == "-noclaim") {
      opt.router.use_claimpoints = false;
    } else if (a == "-noretry") {
      opt.router.retry_failed = false;
    } else if (a == "-L") {
      opt.router.engine = Engine::Lee;
    } else if (a == "-H") {
      opt.router.engine = Engine::Hightower;
    } else if (a == "-S") {
      opt.router.engine = Engine::SegmentExpansion;
    } else if (a == "-m") {
      opt.router.margin = next_int(i, a);
    } else if (a == "--threads" || a == "-threads") {
      // Routing threads (PR-1 speculative parallel driver): 1 = sequential
      // (default), 0 = hardware concurrency.  Any value produces a
      // byte-identical diagram and report.
      opt.router.threads = next_int(i, a);
    } else if (a == "--respec" || a == "-respec") {
      // Re-speculation budget of the parallel driver (0 = speculate once,
      // serialize on miss).  Also byte-identical for any value.
      opt.router.respec_budget = next_int(i, a);
    } else if (obs != nullptr && a == "--trace") {
      obs->trace_path = next_str(i, a);
    } else if (obs != nullptr && a == "--stats") {
      obs->stats = obs::parse_stats_mode(next_str(i, a));
    } else if (a == "-u" || a == "-d" || a == "-l" || a == "-r") {
      // Border-pinning flags of Appendix F; the grid always reserves a
      // margin on all four sides, so these are accepted no-ops.
    } else {
      throw std::runtime_error("unknown flag '" + a + "'\n" + generator_usage());
    }
  }
  return positional;
}

std::string generator_usage() {
  return "options: -p <part-size> -b <box-size> -c <max-conns> -e <part-space>\n"
         "         -i <box-space> -s <module-space|length-first> -m <margin>\n"
         "         -L (Lee) -H (Hightower) -S (segment expansion) -noclaim\n"
         "         -noretry -u -d -l -r --threads <n (0 = all cores, default 1)>\n"
         "         --respec <retries (re-speculations per invalidated net, default 2)>\n"
         "         " +
         std::string(obs::obs_usage());
}

}  // namespace na
