// The automatic schematic diagram generator — placement plus routing, the
// complete system of paper figure 3.2.
//
// This facade drives the two phases the way the historical PABLO/EUREKA
// pair did: the placer fills a diagram with module and terminal positions,
// the router adds the nets; either phase accepts partially filled input
// (preplaced modules, prerouted nets), so "generate" is also the
// incremental re-entry point the paper's editor workflow relies on.
#pragma once

#include "place/placer.hpp"
#include "route/router.hpp"
#include "schematic/metrics.hpp"

namespace na {

struct GeneratorOptions {
  PlacerOptions placer;
  RouterOptions router;
};

struct GeneratorResult {
  PlacementInfo placement;
  RouteReport route;
  /// Speculation-effectiveness counters of the parallel routing driver
  /// (all zero when routing ran sequentially).  Not part of RouteReport:
  /// the report is byte-identical across thread counts, these are not.
  ParallelRouteStats speculation;
  DiagramStats stats;
  double place_seconds = 0.0;
  double route_seconds = 0.0;
};

/// Runs placement (unless the diagram is already fully placed) and routing
/// on `dia`, which wraps the target network.
GeneratorResult generate(Diagram& dia, const GeneratorOptions& opt = {});

/// Convenience: builds a fresh diagram for `net` and generates it.
Diagram generate_diagram(const Network& net, const GeneratorOptions& opt = {},
                         GeneratorResult* result = nullptr);

}  // namespace na
