#include "core/thread_pool.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace na {
namespace {
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  queues_.resize(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    stats_.peak_queued = std::max(stats_.peak_queued, queued_);
    NA_TRACE_COUNTER("pool.queue", "queued", queued_);
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_urgent(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    urgent_.push_back(std::move(task));
    ++queued_;
    stats_.peak_queued = std::max(stats_.peak_queued, queued_);
    ++stats_.urgent_submitted;
    NA_TRACE_COUNTER("pool.queue", "queued", queued_);
  }
  work_cv_.notify_one();
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

int ThreadPool::worker_index() { return tl_worker_index; }

void ThreadPool::worker_loop(int index) {
  tl_worker_index = index;
  std::unique_lock lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (!urgent_.empty()) {
      task = std::move(urgent_.front());
      urgent_.pop_front();
      ++stats_.urgent_drained;
    } else if (!queues_[index].empty()) {
      task = std::move(queues_[index].front());
      queues_[index].pop_front();
    } else {
      // Steal the oldest task of the first non-empty neighbour.
      for (size_t j = 1; j < queues_.size(); ++j) {
        auto& q = queues_[(index + j) % queues_.size()];
        if (!q.empty()) {
          task = std::move(q.front());
          q.pop_front();
          break;
        }
      }
    }
    if (task) {
      --queued_;
      NA_TRACE_COUNTER("pool.queue", "queued", queued_);
      ++active_;
      lock.unlock();
      task();
      lock.lock();
      --active_;
      if (queued_ == 0 && active_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) break;
    work_cv_.wait(lock);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return queued_ == 0 && active_ == 0; });
}

}  // namespace na
