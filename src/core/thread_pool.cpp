#include "core/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace na {
namespace {
thread_local int tl_worker_index = -1;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  queues_.resize(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool::Task ThreadPool::make_task(std::function<void()> fn) const {
  Task t{std::move(fn), 0};
  if (wait_hist_.load(std::memory_order_relaxed) != nullptr) {
    t.enqueue_ns = steady_ns();
  }
  return t;
}

void ThreadPool::sample_wait(const Task& task) const {
  if (task.enqueue_ns == 0) return;
  obs::Histogram* h = wait_hist_.load(std::memory_order_relaxed);
  if (h == nullptr) return;
  const std::uint64_t now = steady_ns();
  const std::uint64_t wait = now > task.enqueue_ns ? now - task.enqueue_ns : 0;
  h->record(static_cast<long long>(wait / 1000));  // histogram unit: µs
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queues_[next_queue_].push_back(make_task(std::move(task)));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    stats_.peak_queued = std::max(stats_.peak_queued, queued_);
    NA_TRACE_COUNTER("pool.queue", "queued", queued_);
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_urgent(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    urgent_.push_back(make_task(std::move(task)));
    ++queued_;
    stats_.peak_queued = std::max(stats_.peak_queued, queued_);
    ++stats_.urgent_submitted;
    NA_TRACE_COUNTER("pool.queue", "queued", queued_);
  }
  work_cv_.notify_one();
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void ThreadPool::set_queue_wait_histogram(obs::Histogram* h) {
  wait_hist_.store(h, std::memory_order_relaxed);
}

int ThreadPool::queue_depth() const {
  std::lock_guard lock(mu_);
  return queued_;
}

int ThreadPool::worker_index() { return tl_worker_index; }

void ThreadPool::worker_loop(int index) {
  tl_worker_index = index;
  std::unique_lock lock(mu_);
  for (;;) {
    Task task;
    if (!urgent_.empty()) {
      task = std::move(urgent_.front());
      urgent_.pop_front();
      ++stats_.urgent_drained;
    } else if (!queues_[index].empty()) {
      task = std::move(queues_[index].front());
      queues_[index].pop_front();
    } else {
      // Steal the oldest task of the first non-empty neighbour.
      for (size_t j = 1; j < queues_.size(); ++j) {
        auto& q = queues_[(index + j) % queues_.size()];
        if (!q.empty()) {
          task = std::move(q.front());
          q.pop_front();
          break;
        }
      }
    }
    if (task.fn) {
      sample_wait(task);
      --queued_;
      NA_TRACE_COUNTER("pool.queue", "queued", queued_);
      ++active_;
      lock.unlock();
      task.fn();
      lock.lock();
      --active_;
      if (queued_ == 0 && active_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) break;
    work_cv_.wait(lock);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return queued_ == 0 && active_ == 0; });
}

}  // namespace na
