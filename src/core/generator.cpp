#include "core/generator.hpp"

#include <chrono>

#include "obs/trace.hpp"

namespace na {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

GeneratorResult generate(Diagram& dia, const GeneratorOptions& opt) {
  GeneratorResult result;
  if (!dia.all_placed()) {
    NA_TRACE_SPAN(span, "place");
    const auto t0 = std::chrono::steady_clock::now();
    result.placement = place(dia, opt.placer);
    result.place_seconds = seconds_since(t0);
    span.arg("partitions", static_cast<long long>(result.placement.partitions.size()));
  }
  {
    NA_TRACE_SPAN(span, "route");
    const auto t0 = std::chrono::steady_clock::now();
    result.route = route_all(dia, opt.router, &result.speculation);
    result.route_seconds = seconds_since(t0);
    span.arg("nets_routed", result.route.nets_routed);
    span.arg("nets_failed", result.route.nets_failed);
    span.arg("expansions", result.route.total_expansions);
  }
  {
    NA_TRACE_SCOPE("stats");
    result.stats = compute_stats(dia);
  }
  return result;
}

Diagram generate_diagram(const Network& net, const GeneratorOptions& opt,
                         GeneratorResult* result) {
  Diagram dia(net);
  GeneratorResult r = generate(dia, opt);
  if (result != nullptr) *result = std::move(r);
  return dia;
}

}  // namespace na
