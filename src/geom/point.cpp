#include "geom/point.hpp"

#include <ostream>

namespace na::geom {

std::string to_string(Point p) {
  return "(" + std::to_string(p.x) + "," + std::to_string(p.y) + ")";
}

std::ostream& operator<<(std::ostream& os, Point p) { return os << to_string(p); }

std::string to_string(Dir d) {
  switch (d) {
    case Dir::Left: return "left";
    case Dir::Right: return "right";
    case Dir::Up: return "up";
    case Dir::Down: return "down";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Dir d) { return os << to_string(d); }

}  // namespace na::geom
