#include "geom/orientation.hpp"

#include <ostream>

namespace na::geom {

std::string to_string(Rot r) {
  switch (r) {
    case Rot::R0: return "R0";
    case Rot::R90: return "R90";
    case Rot::R180: return "R180";
    case Rot::R270: return "R270";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Rot r) { return os << to_string(r); }

}  // namespace na::geom
