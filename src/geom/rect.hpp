// Axis-aligned integer rectangles and 1-D intervals.
//
// Rectangles are closed on both ends: a module of size (w, h) placed at
// lower-left (x, y) occupies every grid point with x <= px <= x+w and
// y <= py <= y+h.  This matches the paper's obstacle model where module
// boundings themselves are obstacles (ADD_OBSTACLE_BOUNDINGS).
#pragma once

#include <algorithm>
#include <iosfwd>
#include <string>

#include "geom/point.hpp"

namespace na::geom {

/// Closed integer interval [lo, hi].  Empty iff lo > hi.
struct Interval {
  int lo = 0;
  int hi = -1;

  constexpr bool empty() const { return lo > hi; }
  constexpr int length() const { return empty() ? 0 : hi - lo; }
  constexpr bool contains(int v) const { return lo <= v && v <= hi; }
  constexpr bool overlaps(Interval o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }
  constexpr Interval intersect(Interval o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }
  constexpr Interval hull(Interval o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }
  constexpr Interval expanded(int by) const { return {lo - by, hi + by}; }
  friend constexpr bool operator==(Interval, Interval) = default;
};

/// Closed integer rectangle.  Empty iff either axis interval is empty.
struct Rect {
  Point lo;         // lower-left corner (inclusive)
  Point hi{-1, -1}; // upper-right corner (inclusive)

  static constexpr Rect from_size(Point lower_left, Point size) {
    return {lower_left, lower_left + size};
  }

  constexpr bool empty() const { return lo.x > hi.x || lo.y > hi.y; }
  constexpr int width() const { return empty() ? 0 : hi.x - lo.x; }
  constexpr int height() const { return empty() ? 0 : hi.y - lo.y; }
  constexpr Interval xs() const { return {lo.x, hi.x}; }
  constexpr Interval ys() const { return {lo.y, hi.y}; }

  constexpr bool contains(Point p) const {
    return xs().contains(p.x) && ys().contains(p.y);
  }
  constexpr bool contains(Rect o) const {
    return !o.empty() && contains(o.lo) && contains(o.hi);
  }
  constexpr bool overlaps(Rect o) const {
    return xs().overlaps(o.xs()) && ys().overlaps(o.ys());
  }
  constexpr Rect expanded(int by) const {
    return {{lo.x - by, lo.y - by}, {hi.x + by, hi.y + by}};
  }
  /// Smallest rectangle containing both.
  constexpr Rect hull(Rect o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)},
            {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)}};
  }
  constexpr Rect hull(Point p) const { return hull(Rect{p, p}); }
  constexpr Point center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }
  /// True when `p` lies on the rectangle's boundary.
  constexpr bool on_boundary(Point p) const {
    if (!contains(p)) return false;
    return p.x == lo.x || p.x == hi.x || p.y == lo.y || p.y == hi.y;
  }
  friend constexpr bool operator==(Rect, Rect) = default;
};

/// An axis-parallel segment between two grid points (either orientation,
/// possibly degenerate).  Net paths are stored as chains of these.
struct Segment {
  Point a;
  Point b;

  constexpr bool horizontal() const { return a.y == b.y; }
  constexpr bool vertical() const { return a.x == b.x; }
  constexpr bool degenerate() const { return a == b; }
  constexpr int length() const { return manhattan(a, b); }
  /// Bounding rectangle (lo <= hi normalised).
  constexpr Rect bounds() const {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }
  constexpr bool contains(Point p) const {
    return bounds().contains(p) && (horizontal() || vertical());
  }
  friend constexpr bool operator==(Segment, Segment) = default;
};

std::string to_string(Rect r);
std::ostream& operator<<(std::ostream& os, Rect r);
std::string to_string(Segment s);
std::ostream& operator<<(std::ostream& os, Segment s);

}  // namespace na::geom
