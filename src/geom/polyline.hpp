// Orthogonal polyline chains: splitting and clipping.
//
// Routed nets are stored as corner-point chains.  Two consumers need to
// take such a chain apart:
//   * the incremental patch router keeps the clean runs of a polyline
//     whose middle crosses a dirty region — split_polyline cuts at
//     segment granularity, so every cut lands on an existing corner (a
//     node the net already owned, which no other net may touch — the new
//     endpoints stay safe under the validator's node-contact rule);
//   * the sharded router attributes stitch-net geometry to region shards
//     — clip_polyline cuts segments exactly at a rectangle's boundary
//     (pure accounting; clipped pieces are never re-committed as
//     geometry).
#pragma once

#include <functional>
#include <vector>

#include "geom/rect.hpp"

namespace na::geom {

using Polyline = std::vector<Point>;

/// Splits `pl` into the maximal sub-chains whose every segment satisfies
/// `keep`.  Cuts happen only at existing corner points; pieces that
/// degenerate to a single point are dropped.  A chain with fewer than two
/// points yields nothing.
std::vector<Polyline> split_polyline(const Polyline& pl,
                                     const std::function<bool(const Segment&)>& keep);

/// The sub-chains of `pl` inside `rect`.  Segments crossing the boundary
/// are cut at it (introducing non-corner cut points), segments fully
/// outside are dropped.  Degenerate single-point pieces are dropped.
std::vector<Polyline> clip_polyline(const Polyline& pl, const Rect& rect);

}  // namespace na::geom
