// Integer 2-D points and directions on the schematic grid.
//
// All coordinates in this library are integers: the paper's generator works
// on a track grid (module sizes and terminal positions are grid-aligned,
// Appendix B demands coordinates divisible by the track pitch).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <iosfwd>
#include <string>

namespace na::geom {

struct Point {
  int x = 0;
  int y = 0;

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, int k) { return {a.x * k, a.y * k}; }
  constexpr Point& operator+=(Point b) { x += b.x; y += b.y; return *this; }
  constexpr Point& operator-=(Point b) { x -= b.x; y -= b.y; return *this; }
  friend constexpr bool operator==(Point, Point) = default;
  friend constexpr auto operator<=>(Point, Point) = default;
};

/// Manhattan (L1) distance — the router's wire-length measure.
constexpr int manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Squared Euclidean distance — the placer's gravity-centre measure
/// (PLACE_BOX / PLACE_PARTITION / PLACE_TERMINAL compare squared sums).
constexpr std::int64_t dist2(Point a, Point b) {
  const std::int64_t dx = a.x - b.x;
  const std::int64_t dy = a.y - b.y;
  return dx * dx + dy * dy;
}

std::string to_string(Point p);
std::ostream& operator<<(std::ostream& os, Point p);

/// The four orthogonal routing directions.  The paper uses
/// { left, right, up, down } both for terminal sides and for the expansion
/// direction of active segments.
enum class Dir : std::uint8_t { Left = 0, Right = 1, Up = 2, Down = 3 };

inline constexpr Dir kAllDirs[] = {Dir::Left, Dir::Right, Dir::Up, Dir::Down};

constexpr Point delta(Dir d) {
  switch (d) {
    case Dir::Left: return {-1, 0};
    case Dir::Right: return {1, 0};
    case Dir::Up: return {0, 1};
    case Dir::Down: return {0, -1};
  }
  return {};
}

constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::Left: return Dir::Right;
    case Dir::Right: return Dir::Left;
    case Dir::Up: return Dir::Down;
    case Dir::Down: return Dir::Up;
  }
  return Dir::Left;
}

constexpr bool is_horizontal(Dir d) { return d == Dir::Left || d == Dir::Right; }
constexpr bool is_vertical(Dir d) { return !is_horizontal(d); }

/// Direction of the unit step from `a` to an orthogonally adjacent `b`.
/// Precondition: manhattan(a, b) == 1.
constexpr Dir step_dir(Point a, Point b) {
  if (b.x > a.x) return Dir::Right;
  if (b.x < a.x) return Dir::Left;
  if (b.y > a.y) return Dir::Up;
  return Dir::Down;
}

std::string to_string(Dir d);
std::ostream& operator<<(std::ostream& os, Dir d);

}  // namespace na::geom
