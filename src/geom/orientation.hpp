// Module orientations (rotations in steps of 90 degrees) and terminal sides.
//
// PLACE_MODULE rotates each module so that the side carrying the connecting
// input terminal faces left (and the first module of a string so its output
// side faces right).  These helpers transform module sizes, terminal
// positions and terminal sides under such rotations.
//
// A terminal's *side* is derived from its position on the module perimeter
// exactly as in paper section 4.6.2:
//   x == 0       -> left        x == size.x  -> right
//   y == 0       -> down        y == size.y  -> up
// (corners resolve to left/right first, mirroring the paper's definition
// which gives left/right the closed y-range).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "geom/point.hpp"

namespace na::geom {

/// Counter-clockwise rotation applied to a module symbol.
enum class Rot : std::uint8_t { R0 = 0, R90 = 1, R180 = 2, R270 = 3 };

inline constexpr Rot kAllRots[] = {Rot::R0, Rot::R90, Rot::R180, Rot::R270};

/// Terminal sides reuse the direction type: the side names in the paper
/// ({left, right, up, down}) coincide with the outward routing direction.
using Side = Dir;

/// Size of a module after rotation (90/270 swap the axes).
constexpr Point rotate_size(Point size, Rot r) {
  if (r == Rot::R90 || r == Rot::R270) return {size.y, size.x};
  return size;
}

/// Position of a point of a (size.x x size.y) module after rotating the
/// module counter-clockwise by `r` and re-normalising so the lower-left
/// corner is again at (0,0).
constexpr Point rotate_point(Point p, Point size, Rot r) {
  switch (r) {
    case Rot::R0: return p;
    case Rot::R90: return {size.y - p.y, p.x};
    case Rot::R180: return {size.x - p.x, size.y - p.y};
    case Rot::R270: return {p.y, size.x - p.x};
  }
  return p;
}

/// Side of a module edge after counter-clockwise rotation.
constexpr Side rotate_side(Side s, Rot r) {
  // One CCW step maps right->up->left->down->right.
  constexpr Side ccw[4] = {/*Left*/ Side::Down, /*Right*/ Side::Up,
                           /*Up*/ Side::Left, /*Down*/ Side::Right};
  auto side = s;
  for (int i = 0; i < static_cast<int>(r); ++i) side = ccw[static_cast<int>(side)];
  return side;
}

/// Rotation that brings side `from` onto side `to` (counter-clockwise).
constexpr Rot rotation_taking(Side from, Side to) {
  for (Rot r : kAllRots) {
    if (rotate_side(from, r) == to) return r;
  }
  return Rot::R0;
}

/// Side of the module perimeter a relative terminal position lies on
/// (paper 4.6.2).  Positions strictly inside the module yield Side::Left
/// as a safe default; callers validate perimeter membership separately.
constexpr Side side_of(Point rel, Point size) {
  if (rel.x == 0) return Side::Left;
  if (rel.x == size.x) return Side::Right;
  if (rel.y == 0) return Side::Down;
  if (rel.y == size.y) return Side::Up;
  return Side::Left;
}

/// True when a relative terminal position lies on the module perimeter.
constexpr bool on_perimeter(Point rel, Point size) {
  const bool in_x = 0 <= rel.x && rel.x <= size.x;
  const bool in_y = 0 <= rel.y && rel.y <= size.y;
  if (!in_x || !in_y) return false;
  return rel.x == 0 || rel.x == size.x || rel.y == 0 || rel.y == size.y;
}

std::string to_string(Rot r);
std::ostream& operator<<(std::ostream& os, Rot r);

}  // namespace na::geom
