#include "geom/rect.hpp"

#include <ostream>

namespace na::geom {

std::string to_string(Rect r) {
  return "[" + to_string(r.lo) + ".." + to_string(r.hi) + "]";
}

std::ostream& operator<<(std::ostream& os, Rect r) { return os << to_string(r); }

std::string to_string(Segment s) {
  return to_string(s.a) + "-" + to_string(s.b);
}

std::ostream& operator<<(std::ostream& os, Segment s) { return os << to_string(s); }

}  // namespace na::geom
