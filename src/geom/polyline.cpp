#include "geom/polyline.hpp"

#include <algorithm>
#include <optional>

namespace na::geom {

std::vector<Polyline> split_polyline(
    const Polyline& pl, const std::function<bool(const Segment&)>& keep) {
  std::vector<Polyline> out;
  if (pl.size() < 2) return out;
  Polyline run;
  for (size_t i = 0; i + 1 < pl.size(); ++i) {
    const Segment seg{pl[i], pl[i + 1]};
    if (keep(seg)) {
      if (run.empty()) run.push_back(pl[i]);
      run.push_back(pl[i + 1]);
    } else if (!run.empty()) {
      out.push_back(std::move(run));
      run.clear();
    }
  }
  if (!run.empty()) out.push_back(std::move(run));
  return out;
}

namespace {

/// Clamps an axis-parallel segment to `rect`.  Returns the clipped segment
/// (possibly degenerate) or nothing when the segment misses the rectangle.
std::optional<Segment> clip_segment(const Segment& seg, const Rect& rect) {
  if (!seg.bounds().overlaps(rect)) return std::nullopt;
  Segment c = seg;
  c.a.x = std::clamp(c.a.x, rect.lo.x, rect.hi.x);
  c.a.y = std::clamp(c.a.y, rect.lo.y, rect.hi.y);
  c.b.x = std::clamp(c.b.x, rect.lo.x, rect.hi.x);
  c.b.y = std::clamp(c.b.y, rect.lo.y, rect.hi.y);
  return c;
}

}  // namespace

std::vector<Polyline> clip_polyline(const Polyline& pl, const Rect& rect) {
  std::vector<Polyline> out;
  if (pl.size() < 2 || rect.empty()) return out;
  Polyline run;
  for (size_t i = 0; i + 1 < pl.size(); ++i) {
    const auto clipped = clip_segment({pl[i], pl[i + 1]}, rect);
    if (!clipped || clipped->degenerate()) {
      // Outside, or only touching: a degenerate clip carries no segment —
      // flush whatever run is open.  (A corner point shared by two kept
      // segments is re-added by the next kept segment.)
      if (run.size() >= 2) out.push_back(std::move(run));
      run.clear();
      continue;
    }
    if (run.empty() || run.back() != clipped->a) {
      if (run.size() >= 2) out.push_back(std::move(run));
      run.clear();
      run.push_back(clipped->a);
    }
    run.push_back(clipped->b);
  }
  if (run.size() >= 2) out.push_back(std::move(run));
  return out;
}

}  // namespace na::geom
