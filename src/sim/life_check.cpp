#include "sim/life_check.hpp"

#include "sim/simulator.hpp"

namespace na::sim {

std::array<bool, 9> life_reference_step(const std::array<bool, 9>& board) {
  // On the 3x3 torus every cell sees every other cell exactly once.
  int alive = 0;
  for (bool b : board) alive += b ? 1 : 0;
  std::array<bool, 9> next{};
  for (int i = 0; i < 9; ++i) {
    const int neighbours = alive - (board[i] ? 1 : 0);
    next[i] = neighbours == 3 || (board[i] && neighbours == 2);
  }
  return next;
}

std::vector<std::string> verify_life(const Network& net,
                                     const std::array<bool, 9>& initial,
                                     int generations) {
  std::vector<std::string> problems;
  Simulator simulator(net);

  std::array<ModuleId, 9> regs{};
  for (int i = 0; i < 9; ++i) {
    const std::string name =
        "reg" + std::to_string(i / 3) + std::to_string(i % 3);
    const auto m = net.module_by_name(name);
    if (!m) {
      problems.push_back("missing module '" + name + "'");
      return problems;
    }
    regs[i] = *m;
    simulator.set_state(*m, initial[i] ? 1 : 0);
  }
  for (TermId st : net.system_terms()) {
    simulator.set_input(st, false);  // mode = 0 (run), rst = 0
  }

  std::array<bool, 9> expected = initial;
  auto check_generation = [&](int gen) {
    for (int i = 0; i < 9; ++i) {
      const bool got = (simulator.state(regs[i]) & 1) != 0;
      if (got != expected[i]) {
        problems.push_back("generation " + std::to_string(gen) + ", cell " +
                           std::to_string(i) + ": hardware says " +
                           (got ? "alive" : "dead") + ", reference says " +
                           (expected[i] ? "alive" : "dead"));
      }
    }
    // The observation taps mirror the register states.
    for (int i : {0, 4, 8}) {
      const auto tap = net.net_by_name("alive" + std::to_string(i));
      if (tap && simulator.value(*tap) != ((simulator.state(regs[i]) & 1) != 0)) {
        problems.push_back("generation " + std::to_string(gen) + ": tap alive" +
                           std::to_string(i) + " disagrees with its register");
      }
    }
  };

  simulator.settle();
  check_generation(0);
  for (int gen = 1; gen <= generations; ++gen) {
    expected = life_reference_step(expected);
    simulator.tick();
    check_generation(gen);
  }
  return problems;
}

}  // namespace na::sim
