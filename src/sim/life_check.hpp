// LIFE verification — the paper's acceptance test for Example 3, replayed:
// the generated diagram was "simulated by the simulator in ESCHER+" and
// behaved as the game of LIFE.  Here the reconstructed LIFE network is
// simulated for several generations and compared cell-by-cell against a
// plain software Game of Life on the same 3x3 torus.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "netlist/network.hpp"

namespace na::sim {

/// One software-reference generation on the 3x3 torus (where every cell
/// neighbours every other cell).
std::array<bool, 9> life_reference_step(const std::array<bool, 9>& board);

/// Simulates `generations` clock ticks of the LIFE network produced by
/// gen::life_network(), starting from `initial` (row-major cells), and
/// checks every generation against the reference.  Returns mismatch
/// descriptions; empty means the hardware behaves as the game of LIFE.
std::vector<std::string> verify_life(const Network& net,
                                     const std::array<bool, 9>& initial,
                                     int generations);

}  // namespace na::sim
