// Gate-level network simulator — the stand-in for the ESCHER simulator the
// paper used to verify generated diagrams (section 6: "To check whether the
// routing has been done correctly, the schematic diagram has been simulated
// by the simulator in ESCHER+.  The results were positive.").
//
// Combined with validate_diagram (which proves the drawn geometry connects
// exactly the net-list's terminals), simulating the net-list is equivalent
// to simulating the artwork — which is precisely the check the paper ran.
//
// The model is synchronous two-valued logic:
//   * combinational behaviours settle to a fixpoint each cycle
//     (bounded iteration; non-converging feedback raises an error);
//   * stateful behaviours (registers) capture their next state during
//     tick() and publish it afterwards — standard two-phase semantics;
//   * behaviours are looked up by module *template* name; the standard
//     cell library and the LIFE modules are built in, custom templates can
//     be registered.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/network.hpp"

namespace na::sim {

class Simulator;

/// Combinational evaluation: read input nets, write output nets.
using EvalFn = std::function<void(Simulator&, ModuleId)>;
/// State capture at the clock edge: compute the module's next state word.
using CaptureFn = std::function<std::uint64_t(Simulator&, ModuleId)>;

struct Behavior {
  EvalFn eval;          ///< combinational outputs (may read state())
  CaptureFn capture;    ///< empty for pure combinational modules
};

class Simulator {
 public:
  /// Builds a simulator with the built-in behaviours (standard cells +
  /// LIFE modules).  Throws when the network contains a template without a
  /// behaviour at settle() time, not before (so partial use works).
  explicit Simulator(const Network& net);

  /// Registers/overrides the behaviour of a template.
  void register_behavior(std::string template_name, Behavior b);

  // ----- value plane ----------------------------------------------------------
  /// Drives a system input terminal.
  void set_input(TermId system_term, bool v);
  /// Value of a net (false when undriven).
  bool value(NetId n) const { return values_.at(n); }
  /// Value seen by any terminal (its net's value).
  bool value_at(TermId t) const;
  /// Writes an output terminal's net (used by behaviours).
  void drive(TermId t, bool v);
  /// Convenience: value of module terminal looked up by name.
  bool input(ModuleId m, std::string_view term) const;
  void output(ModuleId m, std::string_view term, bool v);

  // ----- state plane ----------------------------------------------------------
  std::uint64_t state(ModuleId m) const { return state_.at(m); }
  void set_state(ModuleId m, std::uint64_t s) { state_.at(m) = s; }

  // ----- execution -------------------------------------------------------------
  /// Propagates combinational logic to a fixpoint.  Throws std::runtime_error
  /// on oscillation (no fixpoint within max_passes) or a missing behaviour.
  void settle(int max_passes = 64);
  /// One synchronous clock edge: capture all register inputs, update state,
  /// settle.
  void tick();

  const Network& network() const { return *net_; }

 private:
  void eval_all();

  const Network* net_;
  std::vector<bool> values_;        // per net
  std::vector<std::uint64_t> state_;  // per module
  std::unordered_map<std::string, Behavior> behaviors_;
};

/// The built-in behaviour table (standard cells and LIFE modules); exposed
/// for tests.
std::unordered_map<std::string, Behavior> builtin_behaviors();

}  // namespace na::sim
