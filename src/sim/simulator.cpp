#include "sim/simulator.hpp"

#include <stdexcept>

namespace na::sim {
namespace {

/// Helper: behaviour from a plain combinational lambda over named terminals.
Behavior comb(EvalFn fn) { return {std::move(fn), nullptr}; }

bool in(Simulator& s, ModuleId m, const char* t) { return s.input(m, t); }

}  // namespace

std::unordered_map<std::string, Behavior> builtin_behaviors() {
  std::unordered_map<std::string, Behavior> b;
  b["buf"] = comb([](Simulator& s, ModuleId m) { s.output(m, "y", in(s, m, "a")); });
  b["inv"] = comb([](Simulator& s, ModuleId m) { s.output(m, "y", !in(s, m, "a")); });
  b["and2"] = comb([](Simulator& s, ModuleId m) {
    s.output(m, "y", in(s, m, "a") && in(s, m, "b"));
  });
  b["or2"] = comb([](Simulator& s, ModuleId m) {
    s.output(m, "y", in(s, m, "a") || in(s, m, "b"));
  });
  b["xor2"] = comb([](Simulator& s, ModuleId m) {
    s.output(m, "y", in(s, m, "a") != in(s, m, "b"));
  });
  b["nand2"] = comb([](Simulator& s, ModuleId m) {
    s.output(m, "y", !(in(s, m, "a") && in(s, m, "b")));
  });
  b["nor2"] = comb([](Simulator& s, ModuleId m) {
    s.output(m, "y", !(in(s, m, "a") || in(s, m, "b")));
  });
  b["and3"] = comb([](Simulator& s, ModuleId m) {
    s.output(m, "y", in(s, m, "a") && in(s, m, "b") && in(s, m, "c"));
  });
  b["mux2"] = comb([](Simulator& s, ModuleId m) {
    s.output(m, "y", in(s, m, "s") ? in(s, m, "b") : in(s, m, "a"));
  });
  b["adder"] = comb([](Simulator& s, ModuleId m) {
    const bool a = in(s, m, "a"), x = in(s, m, "b"), c = in(s, m, "cin");
    s.output(m, "s", (a != x) != c);
    s.output(m, "cout", (a && x) || (a && c) || (x && c));
  });
  b["alu"] = comb([](Simulator& s, ModuleId m) {
    const bool y = in(s, m, "op") ? (in(s, m, "a") != in(s, m, "b"))
                                  : (in(s, m, "a") && in(s, m, "b"));
    s.output(m, "y", y);
    s.output(m, "flags", !y);
  });
  b["ctrl"] = comb([](Simulator& s, ModuleId m) {
    const bool i0 = in(s, m, "i0"), i1 = in(s, m, "i1");
    s.output(m, "c0", i0);
    s.output(m, "c1", i1);
    s.output(m, "c2", i0 != i1);
    s.output(m, "c3", i0 && i1);
    s.output(m, "c4", i0 || i1);
    s.output(m, "c5", !i0);
    s.output(m, "c6", !i1);
  });
  b["dff"] = {[](Simulator& s, ModuleId m) {
                const bool q = s.state(m) & 1;
                s.output(m, "q", q);
                s.output(m, "qn", !q);
              },
              [](Simulator& s, ModuleId m) -> std::uint64_t {
                return in(s, m, "d") ? 1 : 0;
              }};
  b["reg"] = {[](Simulator& s, ModuleId m) { s.output(m, "q", s.state(m) & 1); },
              [](Simulator& s, ModuleId m) -> std::uint64_t {
                return in(s, m, "en") ? (in(s, m, "d") ? 1 : 0) : s.state(m);
              }};

  // ----- LIFE modules --------------------------------------------------------
  b["life_sum"] = comb([](Simulator& s, ModuleId m) {
    int count = 0;
    for (int k = 0; k < 8; ++k) {
      count += in(s, m, ("n" + std::to_string(k)).c_str()) ? 1 : 0;
    }
    for (int k = 0; k <= 8; ++k) {
      s.output(m, ("c" + std::to_string(k)).c_str(), count == k);
    }
    for (int k = 0; k < 4; ++k) {
      s.output(m, ("b" + std::to_string(k)).c_str(), ((count >> k) & 1) != 0);
    }
  });
  b["life_rule"] = comb([](Simulator& s, ModuleId m) {
    int count = 0;
    for (int k = 0; k <= 8; ++k) {
      if (in(s, m, ("c" + std::to_string(k)).c_str())) count = k;
    }
    const bool self = in(s, m, "self");
    // Conway B3/S23; mode=1 freezes the board.
    const bool next = in(s, m, "mode")
                          ? self
                          : (count == 3 || (self && count == 2));
    s.output(m, "next", next);
    s.output(m, "we", true);
  });
  b["life_reg"] = {[](Simulator& s, ModuleId m) {
                     const bool q = s.state(m) & 1;
                     for (int k = 0; k < 8; ++k) {
                       s.output(m, ("q" + std::to_string(k)).c_str(), q);
                     }
                     s.output(m, "q_self", q);
                     if (s.network().term_by_name(m, "q_tap")) {
                       s.output(m, "q_tap", q);
                     }
                   },
                   [](Simulator& s, ModuleId m) -> std::uint64_t {
                     if (in(s, m, "rst")) return 0;
                     if (in(s, m, "we")) return in(s, m, "d") ? 1 : 0;
                     return s.state(m);
                   }};
  return b;
}

Simulator::Simulator(const Network& net)
    : net_(&net),
      values_(net.net_count(), false),
      state_(net.module_count(), 0),
      behaviors_(builtin_behaviors()) {}

void Simulator::register_behavior(std::string template_name, Behavior b) {
  behaviors_[std::move(template_name)] = std::move(b);
}

void Simulator::set_input(TermId system_term, bool v) {
  const Terminal& t = net_->term(system_term);
  if (!t.is_system()) throw std::invalid_argument("set_input: not a system terminal");
  if (t.net == kNone) return;
  values_.at(t.net) = v;
}

bool Simulator::value_at(TermId t) const {
  const NetId n = net_->term(t).net;
  return n == kNone ? false : values_.at(n);
}

void Simulator::drive(TermId t, bool v) {
  const NetId n = net_->term(t).net;
  if (n != kNone) values_.at(n) = v;
}

bool Simulator::input(ModuleId m, std::string_view term) const {
  const auto t = net_->term_by_name(m, term);
  if (!t) throw std::runtime_error("no terminal '" + std::string(term) + "' on '" +
                                   net_->module(m).name + "'");
  return value_at(*t);
}

void Simulator::output(ModuleId m, std::string_view term, bool v) {
  const auto t = net_->term_by_name(m, term);
  if (!t) throw std::runtime_error("no terminal '" + std::string(term) + "' on '" +
                                   net_->module(m).name + "'");
  drive(*t, v);
}

void Simulator::eval_all() {
  for (ModuleId m = 0; m < net_->module_count(); ++m) {
    const std::string& tmpl = net_->module(m).template_name;
    const auto it = behaviors_.find(tmpl);
    if (it == behaviors_.end()) {
      throw std::runtime_error("no behaviour for template '" + tmpl + "' (module '" +
                               net_->module(m).name + "')");
    }
    it->second.eval(*this, m);
  }
}

void Simulator::settle(int max_passes) {
  for (int pass = 0; pass < max_passes; ++pass) {
    const std::vector<bool> before = values_;
    eval_all();
    if (values_ == before) return;
  }
  throw std::runtime_error("combinational logic did not settle (oscillation?)");
}

void Simulator::tick() {
  settle();
  std::vector<std::uint64_t> next = state_;
  for (ModuleId m = 0; m < net_->module_count(); ++m) {
    const auto it = behaviors_.find(net_->module(m).template_name);
    if (it != behaviors_.end() && it->second.capture) {
      next[m] = it->second.capture(*this, m);
    }
  }
  state_ = std::move(next);
  settle();
}

}  // namespace na::sim
