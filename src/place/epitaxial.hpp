// Epitaxial-growth placement baseline (paper section 4.2.2).
//
// The textbook form the paper sketches: seed the placement with the most
// connected module, then repeatedly take the unplaced module with the most
// connections to the placed structure and drop it on the free grid slot
// with the smallest total estimated wire length.  Implemented on a slot
// grid sized for the largest module (the paper notes the algorithm "is
// usually implemented on a grid").
#pragma once

#include "schematic/diagram.hpp"

namespace na {

struct EpitaxialOptions {
  int gap = 2;  ///< empty tracks between slot boundaries
};

/// Places every module of the diagram and the system terminals.
void epitaxial_place(Diagram& dia, const EpitaxialOptions& opt = {});

}  // namespace na
