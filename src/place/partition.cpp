#include "place/partition.hpp"

#include <stdexcept>

namespace na {

ModuleId take_a_seed(const Network& net, const std::vector<bool>& free_mask) {
  ModuleId seed = kNone;
  int seed_free_conns = -1;
  int seed_placed_conns = 0;
  // "not free" = already included in a partition.
  std::vector<bool> placed_mask(free_mask.size());
  for (size_t i = 0; i < free_mask.size(); ++i) placed_mask[i] = !free_mask[i];

  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (!free_mask[m]) continue;
    // Connections to the remaining free modules (excluding m itself —
    // connections_to never counts self).
    std::vector<bool> others = free_mask;
    others[m] = false;
    const int free_conns = net.connections_to(m, others);
    const int placed_conns = net.connections_to(m, placed_mask);
    if (seed == kNone || free_conns > seed_free_conns ||
        (free_conns == seed_free_conns && placed_conns < seed_placed_conns)) {
      seed = m;
      seed_free_conns = free_conns;
      seed_placed_conns = placed_conns;
    }
  }
  if (seed == kNone) throw std::logic_error("take_a_seed: no free module");
  return seed;
}

std::vector<ModuleId> form_partition(const Network& net, std::vector<bool>& free_mask,
                                     ModuleId seed, const PartitionLimits& limits) {
  std::vector<ModuleId> partition{seed};
  std::vector<bool> in_partition(net.module_count(), false);
  in_partition[seed] = true;
  free_mask[seed] = false;

  int connections = net.external_connections(in_partition);

  while (static_cast<int>(partition.size()) < limits.max_part_size &&
         connections < limits.max_connections) {
    // Next module: most connections into the partition, tie -> fewest
    // connections to the modules outside it.
    ModuleId best = kNone;
    int best_inside = -1;
    int best_outside = 0;
    for (ModuleId m = 0; m < net.module_count(); ++m) {
      if (!free_mask[m]) continue;
      const int inside = net.connections_to(m, in_partition);
      if (inside == 0) continue;  // keep partitions connected
      std::vector<bool> outside_mask(net.module_count());
      for (ModuleId o = 0; o < net.module_count(); ++o) {
        outside_mask[o] = !in_partition[o] && o != m;
      }
      const int outside = net.connections_to(m, outside_mask);
      if (best == kNone || inside > best_inside ||
          (inside == best_inside && outside < best_outside)) {
        best = m;
        best_inside = inside;
        best_outside = outside;
      }
    }
    if (best == kNone) break;  // no connected free module left
    partition.push_back(best);
    in_partition[best] = true;
    free_mask[best] = false;
    connections = net.external_connections(in_partition);
  }
  return partition;
}

std::vector<std::vector<ModuleId>> partition_network(
    const Network& net, const PartitionLimits& limits,
    const std::vector<bool>& include) {
  std::vector<bool> free_mask = include;
  std::vector<std::vector<ModuleId>> partitions;
  int remaining = 0;
  for (bool b : free_mask) remaining += b ? 1 : 0;
  while (remaining > 0) {
    const ModuleId seed = take_a_seed(net, free_mask);
    auto part = form_partition(net, free_mask, seed, limits);
    remaining -= static_cast<int>(part.size());
    partitions.push_back(std::move(part));
  }
  return partitions;
}

std::vector<std::vector<ModuleId>> partition_network(const Network& net,
                                                     const PartitionLimits& limits) {
  return partition_network(net, limits, std::vector<bool>(net.module_count(), true));
}

}  // namespace na
