#include "place/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace na {

ModuleId take_a_seed(const Network& net, const std::vector<bool>& free_mask) {
  ModuleId seed = kNone;
  int seed_free_conns = -1;
  int seed_placed_conns = 0;
  // "not free" = already included in a partition.
  std::vector<bool> placed_mask(free_mask.size());
  for (size_t i = 0; i < free_mask.size(); ++i) placed_mask[i] = !free_mask[i];

  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (!free_mask[m]) continue;
    // Connections to the remaining free modules (excluding m itself —
    // connections_to never counts self).
    std::vector<bool> others = free_mask;
    others[m] = false;
    const int free_conns = net.connections_to(m, others);
    const int placed_conns = net.connections_to(m, placed_mask);
    if (seed == kNone || free_conns > seed_free_conns ||
        (free_conns == seed_free_conns && placed_conns < seed_placed_conns)) {
      seed = m;
      seed_free_conns = free_conns;
      seed_placed_conns = placed_conns;
    }
  }
  if (seed == kNone) throw std::logic_error("take_a_seed: no free module");
  return seed;
}

std::vector<ModuleId> form_partition(const Network& net, std::vector<bool>& free_mask,
                                     ModuleId seed, const PartitionLimits& limits) {
  std::vector<ModuleId> partition{seed};
  std::vector<bool> in_partition(net.module_count(), false);
  in_partition[seed] = true;
  free_mask[seed] = false;

  int connections = net.external_connections(in_partition);

  while (static_cast<int>(partition.size()) < limits.max_part_size &&
         connections < limits.max_connections) {
    // Next module: most connections into the partition, tie -> fewest
    // connections to the modules outside it.
    ModuleId best = kNone;
    int best_inside = -1;
    int best_outside = 0;
    for (ModuleId m = 0; m < net.module_count(); ++m) {
      if (!free_mask[m]) continue;
      const int inside = net.connections_to(m, in_partition);
      if (inside == 0) continue;  // keep partitions connected
      std::vector<bool> outside_mask(net.module_count());
      for (ModuleId o = 0; o < net.module_count(); ++o) {
        outside_mask[o] = !in_partition[o] && o != m;
      }
      const int outside = net.connections_to(m, outside_mask);
      if (best == kNone || inside > best_inside ||
          (inside == best_inside && outside < best_outside)) {
        best = m;
        best_inside = inside;
        best_outside = outside;
      }
    }
    if (best == kNone) break;  // no connected free module left
    partition.push_back(best);
    in_partition[best] = true;
    free_mask[best] = false;
    connections = net.external_connections(in_partition);
  }
  return partition;
}

std::vector<std::vector<ModuleId>> partition_network_reference(
    const Network& net, const PartitionLimits& limits,
    const std::vector<bool>& include) {
  std::vector<bool> free_mask = include;
  std::vector<std::vector<ModuleId>> partitions;
  int remaining = 0;
  for (bool b : free_mask) remaining += b ? 1 : 0;
  while (remaining > 0) {
    const ModuleId seed = take_a_seed(net, free_mask);
    auto part = form_partition(net, free_mask, seed, limits);
    remaining -= static_cast<int>(part.size());
    partitions.push_back(std::move(part));
  }
  return partitions;
}

namespace {

/// The incremental partitioning engine.  Reproduces the reference loop
/// (take_a_seed + form_partition, above) exactly, but replaces its
/// repeated whole-network rescans with per-net distinct-module counters
/// and lazy max-heaps, so a 100k-module netlist partitions in near-linear
/// time instead of super-cubic.
///
/// Exactness argument: every selection the reference makes is a maximum
/// under a total order — take_a_seed maximises (free_conns desc,
/// placed_conns asc, id asc), the growth step maximises (inside desc,
/// outside asc, id asc); the id key makes the strict-improvement id-order
/// scans equivalent to the total-order maximum.  The engine maintains the
/// same quantities through counters:
///   free_conns(m)   = #{nets of m : fcnt >= 2}       (fcnt = free modules on net)
///   placed_conns(m) = #{nets of m : pcnt >= 1}       (pcnt = non-free modules)
///   inside(m)       = #{nets of m : icnt >= 1}       (icnt = partition members)
///   outside(m)      = #{nets of m : mods - icnt >= 2} (m itself is outside)
/// and external_connections(partition) by the per-net predicate
/// icnt >= 1 && (icnt < mods || net has a system terminal).  The seed keys
/// only ever worsen (fcnt falls, pcnt rises), so a popped-stale entry is
/// reinserted at its current key; the growth keys only ever improve and do
/// so exactly at counter boundary crossings, where fresh entries are
/// pushed — in both disciplines the heap top, once its key verifies, is
/// the true maximum.
class PartitionEngine {
 public:
  PartitionEngine(const Network& net, const std::vector<bool>& include)
      : net_(net), free_(include) {
    const int modules = net.module_count();
    const int nets = net.net_count();
    mod_nets_.resize(modules);
    net_mods_.resize(nets);
    net_has_sys_.assign(nets, false);
    {
      // Dedup helpers (epoch-stamped to avoid per-module set churn).
      std::vector<int> seen(nets, -1);
      for (ModuleId m = 0; m < modules; ++m) {
        for (TermId t : net.module(m).terms) {
          const NetId n = net.term(t).net;
          if (n == kNone || seen[n] == m) continue;
          seen[n] = m;
          mod_nets_[m].push_back(n);
          net_mods_[n].push_back(m);
        }
      }
    }
    for (NetId n = 0; n < nets; ++n) {
      for (TermId t : net.net(n).terms) {
        if (net.term(t).module == kNone) net_has_sys_[n] = true;
      }
    }

    fcnt_.assign(nets, 0);
    pcnt_.assign(nets, 0);
    for (NetId n = 0; n < nets; ++n) {
      for (ModuleId m : net_mods_[n]) (free_[m] ? fcnt_[n] : pcnt_[n])++;
    }
    free_conns_.assign(modules, 0);
    placed_conns_.assign(modules, 0);
    for (ModuleId m = 0; m < modules; ++m) {
      if (!free_[m]) continue;
      for (NetId n : mod_nets_[m]) {
        free_conns_[m] += fcnt_[n] >= 2 ? 1 : 0;
        placed_conns_[m] += pcnt_[n] >= 1 ? 1 : 0;
      }
      seed_heap_.push_back({free_conns_[m], placed_conns_[m], m});
      ++remaining_;
    }
    std::make_heap(seed_heap_.begin(), seed_heap_.end(), SeedLess{});

    icnt_.assign(nets, 0);
    icnt_epoch_.assign(nets, -1);
  }

  std::vector<std::vector<ModuleId>> run(const PartitionLimits& limits) {
    std::vector<std::vector<ModuleId>> partitions;
    while (remaining_ > 0) {
      partitions.push_back(grow_partition(pop_seed(), limits));
    }
    return partitions;
  }

 private:
  // Seed heap: max by (free_conns desc, placed_conns asc, id asc).
  struct SeedEntry {
    int free_conns, placed_conns;
    ModuleId m;
  };
  struct SeedLess {
    bool operator()(const SeedEntry& a, const SeedEntry& b) const {
      if (a.free_conns != b.free_conns) return a.free_conns < b.free_conns;
      if (a.placed_conns != b.placed_conns) return a.placed_conns > b.placed_conns;
      return a.m > b.m;
    }
  };

  // Growth heap: max by (inside desc, outside asc, id asc).
  struct GrowEntry {
    int inside, outside;
    ModuleId m;
  };
  struct GrowLess {
    bool operator()(const GrowEntry& a, const GrowEntry& b) const {
      if (a.inside != b.inside) return a.inside < b.inside;
      if (a.outside != b.outside) return a.outside > b.outside;
      return a.m > b.m;
    }
  };

  int icnt_of(NetId n) const { return icnt_epoch_[n] == epoch_ ? icnt_[n] : 0; }

  int inside_of(ModuleId m) const {
    int inside = 0;
    for (NetId n : mod_nets_[m]) inside += icnt_of(n) >= 1 ? 1 : 0;
    return inside;
  }

  int outside_of(ModuleId m) const {
    int outside = 0;
    for (NetId n : mod_nets_[m]) {
      const int ocnt = static_cast<int>(net_mods_[n].size()) - icnt_of(n);
      outside += ocnt >= 2 ? 1 : 0;  // m itself is one of the outside modules
    }
    return outside;
  }

  ModuleId pop_seed() {
    for (;;) {
      if (seed_heap_.empty()) throw std::logic_error("take_a_seed: no free module");
      std::pop_heap(seed_heap_.begin(), seed_heap_.end(), SeedLess{});
      const SeedEntry e = seed_heap_.back();
      seed_heap_.pop_back();
      if (!free_[e.m]) continue;
      if (e.free_conns != free_conns_[e.m] || e.placed_conns != placed_conns_[e.m]) {
        // Stale (the key worsened since the push) — reinsert at its
        // current key and keep popping.
        seed_heap_.push_back({free_conns_[e.m], placed_conns_[e.m], e.m});
        std::push_heap(seed_heap_.begin(), seed_heap_.end(), SeedLess{});
        continue;
      }
      return e.m;
    }
  }

  /// Moves `m` out of the free set, maintaining the per-net counters and
  /// the derived seed keys of every free module sharing a net with it.
  void leave_free(ModuleId m) {
    free_[m] = false;
    --remaining_;
    for (NetId n : mod_nets_[m]) {
      if (--fcnt_[n] == 1) {
        for (ModuleId o : net_mods_[n]) {
          if (free_[o]) --free_conns_[o];
        }
      }
      if (++pcnt_[n] == 1) {
        for (ModuleId o : net_mods_[n]) {
          if (free_[o]) ++placed_conns_[o];
        }
      }
    }
  }

  /// external_connections update for one icnt increment of net `n`.
  void bump_external(NetId n, int old_icnt) {
    const int mods = static_cast<int>(net_mods_[n].size());
    if (old_icnt == 0 && (mods > 1 || net_has_sys_[n])) ++external_;
    if (old_icnt + 1 == mods && !net_has_sys_[n] && mods > 1) --external_;
  }

  /// Adds `m` to the current partition: counters first, then fresh heap
  /// entries for every free module whose growth key changed (pushing only
  /// after all of m's nets are counted, so the pushed keys are current).
  void add_member(ModuleId m, std::vector<GrowEntry>& heap, std::vector<NetId>& touched) {
    leave_free(m);
    touched.clear();
    for (NetId n : mod_nets_[m]) {
      const int old_icnt = icnt_of(n);
      if (icnt_epoch_[n] != epoch_) {
        icnt_epoch_[n] = epoch_;
        icnt_[n] = 0;
      }
      ++icnt_[n];
      bump_external(n, old_icnt);
      const int mods = static_cast<int>(net_mods_[n].size());
      // inside(o) changes at icnt 0 -> 1; outside(o) changes when the
      // outside-module count crosses 2 -> 1.
      if (old_icnt == 0 || mods - old_icnt == 2) touched.push_back(n);
    }
    for (NetId n : touched) {
      for (ModuleId o : net_mods_[n]) {
        if (!free_[o]) continue;
        heap.push_back({inside_of(o), outside_of(o), o});
        std::push_heap(heap.begin(), heap.end(), GrowLess{});
      }
    }
  }

  std::vector<ModuleId> grow_partition(ModuleId seed, const PartitionLimits& limits) {
    ++epoch_;
    external_ = 0;
    grow_heap_.clear();
    std::vector<ModuleId> partition{seed};
    std::vector<NetId> touched;
    add_member(seed, grow_heap_, touched);

    while (static_cast<int>(partition.size()) < limits.max_part_size &&
           external_ < limits.max_connections) {
      ModuleId best = kNone;
      while (!grow_heap_.empty()) {
        std::pop_heap(grow_heap_.begin(), grow_heap_.end(), GrowLess{});
        const GrowEntry e = grow_heap_.back();
        grow_heap_.pop_back();
        if (!free_[e.m]) continue;
        // Stale entries are dropped, not reinserted: growth keys only
        // improve, and every improvement pushed a fresher entry.
        if (e.inside != inside_of(e.m) || e.outside != outside_of(e.m)) continue;
        best = e.m;
        break;
      }
      if (best == kNone) break;  // no connected free module left
      partition.push_back(best);
      add_member(best, grow_heap_, touched);
    }
    return partition;
  }

  const Network& net_;
  std::vector<bool> free_;
  int remaining_ = 0;

  std::vector<std::vector<NetId>> mod_nets_;     // per module: distinct nets
  std::vector<std::vector<ModuleId>> net_mods_;  // per net: distinct modules
  std::vector<bool> net_has_sys_;

  std::vector<int> fcnt_, pcnt_;                  // per net: free / non-free modules
  std::vector<int> free_conns_, placed_conns_;    // per module: seed keys

  std::vector<int> icnt_, icnt_epoch_;  // per net: members of the current partition
  int epoch_ = 0;
  int external_ = 0;

  std::vector<SeedEntry> seed_heap_;
  std::vector<GrowEntry> grow_heap_;
};

}  // namespace

std::vector<std::vector<ModuleId>> partition_network(
    const Network& net, const PartitionLimits& limits,
    const std::vector<bool>& include) {
  if (static_cast<int>(include.size()) != net.module_count()) {
    throw std::invalid_argument("partition_network: include mask size mismatch");
  }
  int remaining = 0;
  for (bool b : include) remaining += b ? 1 : 0;
  if (remaining == 0) return {};
  return PartitionEngine(net, include).run(limits);
}

std::vector<std::vector<ModuleId>> partition_network(const Network& net,
                                                     const PartitionLimits& limits) {
  return partition_network(net, limits, std::vector<bool>(net.module_count(), true));
}

}  // namespace na
