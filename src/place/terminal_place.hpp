// System terminal placement (paper section 4.6.7, TERMINAL_PLACEMENT).
//
// The placed partitions give a bounding box; system terminals go on the
// ring of free positions one track outside it, each at the spot closest to
// the gravity centre of the terminals its net connects.  Because string
// heads sit on the left, input terminals naturally land on the left and
// output terminals on the right (rule 4).
#pragma once

#include "schematic/diagram.hpp"

namespace na {

/// Places every still-unplaced system terminal of the diagram.  Modules
/// must already be placed.  Terminals whose net has no placed terminal yet
/// fall back to a type-based side (in -> left edge, out -> right edge).
void place_system_terminals(Diagram& dia);

}  // namespace na
