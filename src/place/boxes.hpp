// Box formation: strings of signal-flow-connected modules inside a
// partition (paper section 4.6.3, BOX_FORMATION / CONSTRUCT_ROOTS /
// LONGEST_PATH).
//
// A box is a string (path) of modules where each successor's in/inout
// terminal is driven by its predecessor's out/inout terminal.  The position
// in the string is the module's level; placing strings left to right
// enforces the desired signal flow (rule 3).
#pragma once

#include <vector>

#include "netlist/network.hpp"

namespace na {

/// A box: modules in level order (head = level 1).
using Box = std::vector<ModuleId>;

/// CONSTRUCT_ROOTS: modules of the partition allowed to head a string —
/// those with a connection outside the partition, or driven by an in/inout
/// *system* terminal, or having exactly one net to other modules.
std::vector<ModuleId> construct_roots(const Network& net,
                                      const std::vector<ModuleId>& partition);

/// LONGEST_PATH: longest out->in chain from `root` through `available`
/// modules, at most `max_box_size` long (depth-first with the paper's
/// length bound).
Box longest_path(const Network& net, ModuleId root,
                 const std::vector<bool>& available, int max_box_size);

/// True when `from` drives `to`: some net joins an out/inout terminal of
/// `from` with an in/inout terminal of `to` (the edge relation of
/// LONGEST_PATH).
bool drives_module(const Network& net, ModuleId from, ModuleId to);

/// BOX_FORMATION over one partition: repeatedly carve out the longest
/// root-anchored string until every module of the partition is boxed.
std::vector<Box> form_boxes(const Network& net, const std::vector<ModuleId>& partition,
                            int max_box_size);

}  // namespace na
