#include "place/columnar.hpp"

#include <algorithm>
#include <numeric>

#include "place/boxes.hpp"
#include "place/terminal_place.hpp"

namespace na {

std::vector<int> columnar_levels(const Network& net) {
  const int n = net.module_count();
  std::vector<int> level(n, 0);
  // Longest-path layering over the drives relation; at most n relaxation
  // rounds, which also caps levels in the presence of feedback loops (the
  // "backtracking" the paper's simplification excludes).
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (ModuleId a = 0; a < n; ++a) {
      for (ModuleId b = 0; b < n; ++b) {
        if (a == b || !drives_module(net, a, b)) continue;
        if (level[b] < level[a] + 1 && level[a] + 1 < n) {
          level[b] = level[a] + 1;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return level;
}

void columnar_place(Diagram& dia, const ColumnarOptions& opt) {
  const Network& net = dia.network();
  const int n = net.module_count();
  if (n == 0) {
    place_system_terminals(dia);
    return;
  }
  const std::vector<int> level = columnar_levels(net);
  const int columns = *std::max_element(level.begin(), level.end()) + 1;

  std::vector<std::vector<ModuleId>> column(columns);
  for (ModuleId m = 0; m < n; ++m) column[level[m]].push_back(m);

  // Barycentre crossing reduction: order each column by the average rank of
  // the connected modules in the neighbouring column, sweeping forward and
  // backward.
  std::vector<int> rank(n, 0);
  auto refresh_ranks = [&]() {
    for (const auto& col : column) {
      for (size_t i = 0; i < col.size(); ++i) rank[col[i]] = static_cast<int>(i);
    }
  };
  refresh_ranks();
  for (int sweep = 0; sweep < opt.sweeps; ++sweep) {
    const bool forward = sweep % 2 == 0;
    for (int ci = forward ? 1 : columns - 2; forward ? ci < columns : ci >= 0;
         ci += forward ? 1 : -1) {
      const int ref = forward ? ci - 1 : ci + 1;
      auto barycentre = [&](ModuleId m) {
        int sum = 0;
        int cnt = 0;
        for (ModuleId o : net.neighbors(m)) {
          if (level[o] == ref) {
            sum += rank[o];
            ++cnt;
          }
        }
        return cnt == 0 ? 1e9 : static_cast<double>(sum) / cnt;
      };
      std::stable_sort(column[ci].begin(), column[ci].end(),
                       [&](ModuleId a, ModuleId b) {
                         return barycentre(a) < barycentre(b);
                       });
      refresh_ranks();
    }
  }

  // Coordinates: columns left to right, symbols stacked bottom-up, columns
  // vertically centred on the tallest one.
  std::vector<int> col_width(columns, 0);
  std::vector<int> col_height(columns, 0);
  for (int c = 0; c < columns; ++c) {
    for (ModuleId m : column[c]) {
      col_width[c] = std::max(col_width[c], net.module(m).size.x);
      col_height[c] += net.module(m).size.y + opt.gap_y;
    }
  }
  const int max_height = *std::max_element(col_height.begin(), col_height.end());
  int x = 0;
  for (int c = 0; c < columns; ++c) {
    int y = (max_height - col_height[c]) / 2;
    for (ModuleId m : column[c]) {
      dia.place_module(m, {x, y});
      y += net.module(m).size.y + opt.gap_y;
    }
    x += col_width[c] + opt.gap_x;
  }

  place_system_terminals(dia);
  dia.normalize();
}

}  // namespace na
