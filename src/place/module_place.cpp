#include "place/module_place.hpp"

#include <algorithm>
#include <optional>

namespace na {
namespace {

/// The out/inout -> in/inout terminal pair that links two successive string
/// modules (the edge LONGEST_PATH followed).
std::optional<std::pair<TermId, TermId>> link_pair(const Network& net,
                                                   ModuleId prev, ModuleId cur) {
  for (TermId tf : net.module(prev).terms) {
    const Terminal& out = net.term(tf);
    if (out.net == kNone) continue;
    for (TermId tt : net.net(out.net).terms) {
      const Terminal& in = net.term(tt);
      if (in.module == cur && drives(out.type, in.type)) return {{tf, tt}};
    }
  }
  return std::nullopt;
}

/// Connected-terminal count on a rotated side of a module.
int side_terms(const Network& net, ModuleId m, geom::Rot rot, geom::Side side) {
  int count = 0;
  for (TermId t : net.module(m).terms) {
    if (net.term(t).net == kNone) continue;
    if (geom::rotate_side(net.term_side(t), rot) == side) ++count;
  }
  return count;
}

geom::Point rotated_term(const Network& net, TermId t, geom::Rot rot) {
  const Terminal& term = net.term(t);
  return geom::rotate_point(term.pos, net.module(term.module).size, rot);
}

}  // namespace

geom::Point BoxLayout::term_pos(const Network& net, TermId t) const {
  const ModuleId m = net.term(t).module;
  const int i = index_of(m);
  return pos.at(i) + geom::rotate_point(net.term(t).pos, net.module(m).size, rot.at(i));
}

int BoxLayout::index_of(ModuleId m) const {
  for (size_t i = 0; i < modules.size(); ++i) {
    if (modules[i] == m) return static_cast<int>(i);
  }
  return -1;
}

int whitespace(int connected_terms, int extra) {
  return connected_terms + 1 + extra;
}

BoxLayout place_box_modules(const Network& net, const Box& box, int extra_space) {
  BoxLayout layout;
  layout.modules = box;
  layout.pos.resize(box.size());
  layout.rot.assign(box.size(), geom::Rot::R0);
  if (box.empty()) return layout;

  auto f = [&](ModuleId m, geom::Rot r, geom::Side s) {
    return whitespace(side_terms(net, m, r, s), extra_space);
  };

  // --- INIT_MODULE_PLACEMENT: the head of the string --------------------------
  const ModuleId m0 = box[0];
  if (box.size() > 1) {
    if (auto pair = link_pair(net, box[0], box[1])) {
      // Rotate m0 so the driving terminal's side faces right.
      layout.rot[0] =
          geom::rotation_taking(net.term_side(pair->first), geom::Side::Right);
    }
  }
  const geom::Point size0 = geom::rotate_size(net.module(m0).size, layout.rot[0]);
  layout.pos[0] = {f(m0, layout.rot[0], geom::Side::Left),
                   f(m0, layout.rot[0], geom::Side::Down)};
  int left = 0;
  int down = 0;
  int right = layout.pos[0].x + size0.x + f(m0, layout.rot[0], geom::Side::Right);
  int up = layout.pos[0].y + size0.y + f(m0, layout.rot[0], geom::Side::Up);

  // --- PLACE_MODULE: every further level ---------------------------------------
  for (size_t i = 1; i < box.size(); ++i) {
    const ModuleId prev = box[i - 1];
    const ModuleId cur = box[i];
    const auto pair = link_pair(net, prev, cur);

    geom::Rot rot = geom::Rot::R0;
    if (pair) {
      rot = geom::rotation_taking(net.term_side(pair->second), geom::Side::Left);
    }
    layout.rot[i] = rot;
    const geom::Point size = geom::rotate_size(net.module(cur).size, rot);
    const geom::Point size_prev =
        geom::rotate_size(net.module(prev).size, layout.rot[i - 1]);

    int y = layout.pos[i - 1].y;  // fallback: same baseline
    if (pair) {
      const geom::Point tp = rotated_term(net, pair->first, layout.rot[i - 1]);
      const geom::Point t = rotated_term(net, pair->second, rot);
      const geom::Side side_prev =
          geom::rotate_side(net.term_side(pair->first), layout.rot[i - 1]);
      const int py = layout.pos[i - 1].y;
      switch (side_prev) {
        case geom::Side::Right:
          y = py + tp.y - t.y;  // terminals level: zero extra bends
          break;
        case geom::Side::Up:
          y = py + tp.y - t.y + 1;
          break;
        case geom::Side::Down:
          y = py - 1 - t.y;
          break;
        case geom::Side::Left:
          // Route around the shorter way past the previous module.
          if (size_prev.y - tp.y > tp.y) {
            y = py - 1 - t.y;
          } else {
            y = py + size_prev.y + 1 - t.y;
          }
          break;
      }
    }
    const int x = right + f(cur, rot, geom::Side::Left);
    layout.pos[i] = {x, y};
    right = x + size.x + f(cur, rot, geom::Side::Right);
    up = std::max(up, y + size.y + f(cur, rot, geom::Side::Up));
    down = std::min(down, y - f(cur, rot, geom::Side::Down));
  }

  // --- translation-box: shift so the lower-left of the box is (0,0) -----------
  for (auto& p : layout.pos) p -= geom::Point{left, down};
  layout.size = {right - left, up - down};
  return layout;
}

}  // namespace na
