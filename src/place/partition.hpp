// Partitioning: decomposing the network into functional groups
// (paper section 4.6.3, procedures PARTITIONING / TAKE_A_SEED /
// FORM_PARTITION).
//
// A seed — the free module most heavily connected to the other free
// modules — is grown into a cluster by repeatedly adding the free module
// with the most connections into the cluster, until the partition size
// limit or the external-connection limit is exceeded.  Limiting external
// connections "is used to avoid very dense routing areas".
#pragma once

#include <limits>
#include <vector>

#include "netlist/network.hpp"

namespace na {

struct PartitionLimits {
  int max_part_size = 1;  ///< -p: maximum modules per partition
  int max_connections = std::numeric_limits<int>::max();  ///< -c: max external nets
};

/// TAKE_A_SEED: the free module most heavily connected with the remaining
/// free modules; ties broken by the fewest connections to the already
/// formed partitions (the non-free modules), then by lowest id.
/// `free_mask[m]` marks modules still to be partitioned.
ModuleId take_a_seed(const Network& net, const std::vector<bool>& free_mask);

/// FORM_PARTITION: grows a cluster around `seed`.  Modules added to the
/// cluster are cleared from `free_mask`.
std::vector<ModuleId> form_partition(const Network& net, std::vector<bool>& free_mask,
                                     ModuleId seed, const PartitionLimits& limits);

/// PARTITIONING: covers all modules for which `include[m]` is true (pass an
/// all-true mask for the whole network) by disjoint partitions.
std::vector<std::vector<ModuleId>> partition_network(const Network& net,
                                                     const PartitionLimits& limits,
                                                     const std::vector<bool>& include);
std::vector<std::vector<ModuleId>> partition_network(const Network& net,
                                                     const PartitionLimits& limits);

/// The direct transcription of the paper's PARTITIONING loop: a linear
/// take_a_seed / form_partition scan per partition, super-quadratic in the
/// module count.  Kept as the correctness oracle for the incremental
/// engine behind partition_network — tests assert both produce identical
/// partitions; use partition_network everywhere else.
std::vector<std::vector<ModuleId>> partition_network_reference(
    const Network& net, const PartitionLimits& limits,
    const std::vector<bool>& include);

}  // namespace na
