// Columnar logic-schematic placement baseline (paper section 4.3).
//
// The highly constrained scheme used for pure logic diagrams: modules are
// layered into columns by input dependency (column 1: modules driven only
// from outside; column k: driven only by columns < k), then the symbols in
// each column are permuted to reduce net crossings with barycentre sweeps.
// The paper's point — which the baseline bench demonstrates — is that this
// works only for acyclic, gate-like networks and "imposes a lot of
// undesirable constraints" for general schematics.
#pragma once

#include "schematic/diagram.hpp"

namespace na {

struct ColumnarOptions {
  int sweeps = 4;   ///< barycentre reordering passes
  int gap_x = 4;    ///< tracks between columns
  int gap_y = 2;    ///< tracks between symbols in a column
};

/// Places every module of the diagram and the system terminals.
void columnar_place(Diagram& dia, const ColumnarOptions& opt = {});

/// Exposed for tests: the column index (level) of each module; cycles are
/// cut by capping relaxation at module-count iterations.
std::vector<int> columnar_levels(const Network& net);

}  // namespace na
