#include "place/terminal_place.hpp"

#include <limits>
#include <vector>

namespace na {

void place_system_terminals(Diagram& dia) {
  const Network& net = dia.network();
  if (net.system_terms().empty()) return;
  const geom::Rect ring = dia.placement_bounds().expanded(1);

  // Candidate ring positions, deterministic order.
  std::vector<geom::Point> candidates;
  for (int x = ring.lo.x; x <= ring.hi.x; ++x) {
    candidates.push_back({x, ring.lo.y});
    candidates.push_back({x, ring.hi.y});
  }
  for (int y = ring.lo.y + 1; y < ring.hi.y; ++y) {
    candidates.push_back({ring.lo.x, y});
    candidates.push_back({ring.hi.x, y});
  }
  std::vector<bool> used(candidates.size(), false);

  for (TermId st : net.system_terms()) {
    if (dia.system_term_placed(st)) continue;
    const Terminal& term = net.term(st);

    // GRAVITY_TERMINAL: centre of the placed terminals sharing the net.
    std::int64_t sx = 0, sy = 0, cnt = 0;
    if (term.net != kNone) {
      for (TermId t : net.net(term.net).terms) {
        if (t == st) continue;
        const Terminal& other = net.term(t);
        const bool placeable = other.is_system() ? dia.system_term_placed(t)
                                                 : dia.module_placed(other.module);
        if (!placeable) continue;
        const geom::Point p = dia.term_pos(t);
        sx += p.x;
        sy += p.y;
        ++cnt;
      }
    }
    geom::Point g;
    if (cnt > 0) {
      g = {static_cast<int>(sx / cnt), static_cast<int>(sy / cnt)};
    } else {
      // Unconnected (or dangling) terminal: fall back to the side its type
      // suggests, vertically centred.
      const int mid_y = (ring.lo.y + ring.hi.y) / 2;
      g = {term.type == TermType::Out ? ring.hi.x : ring.lo.x, mid_y};
    }
    // Inputs prefer the left edge, outputs the right (rule 4): nudge the
    // gravity point outward so ties resolve to the conventional side.
    if (term.type == TermType::In) g.x -= 1;
    if (term.type == TermType::Out) g.x += 1;

    // PLACE_TERMINAL: nearest free ring position.
    int best = -1;
    std::int64_t best_d2 = std::numeric_limits<std::int64_t>::max();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const std::int64_t d2 = geom::dist2(candidates[i], g);
      if (d2 < best_d2) {
        best = static_cast<int>(i);
        best_d2 = d2;
      }
    }
    if (best < 0) break;  // ring exhausted (pathological)
    used[best] = true;
    dia.place_system_term(st, candidates[best]);
  }
}

}  // namespace na
