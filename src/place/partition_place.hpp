// Partition placement (paper section 4.6.6) — the same gravity scheme one
// level up: partitions are placed relative to each other, heaviest first,
// most-connected next, minimising gravity-centre distance without overlap.
#pragma once

#include <optional>
#include <vector>

#include "place/box_place.hpp"

namespace na {

/// The finished hierarchy: every partition keeps its internal layout and
/// gets an absolute origin; `bounds` is the overall placement bounding box
/// (lower-left + size-placement in the paper).
struct FullLayout {
  std::vector<PartitionLayout> partitions;
  std::vector<geom::Point> partition_pos;
  geom::Rect bounds;

  /// Absolute position of a subsystem terminal.
  geom::Point term_pos(const Network& net, TermId t) const;
};

/// PARTITION_PLACEMENT: `spacing` is the -e option (extra tracks around
/// each partition).  `fixed` optionally pins partition i at an absolute
/// origin (incremental placement of a preplaced part, option -g).
FullLayout place_partitions(const Network& net,
                            std::vector<PartitionLayout> partitions, int spacing,
                            const std::vector<std::optional<geom::Point>>& fixed = {});

}  // namespace na
