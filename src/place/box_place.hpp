// Box placement within a partition (paper section 4.6.5).
//
// Thin adapter over the shared gravity engine: each box of a partition
// becomes a GravityItem whose terminals are the connected subsystem
// terminals of its modules, positioned box-relative.
#pragma once

#include <vector>

#include "place/gravity.hpp"
#include "place/module_place.hpp"

namespace na {

/// A fully arranged partition: every box keeps its internal layout and gets
/// an origin in partition coordinates; `size` is the partition bounding box
/// (size-partition in the paper).
struct PartitionLayout {
  std::vector<BoxLayout> boxes;
  std::vector<geom::Point> box_pos;
  geom::Point size;

  /// Partition-relative position of a subsystem terminal.
  geom::Point term_pos(const Network& net, TermId t) const;
};

/// BOX_PLACEMENT: arranges the boxes of one partition; `spacing` is the -i
/// option (extra tracks around each box).
PartitionLayout place_boxes(const Network& net, std::vector<BoxLayout> boxes,
                            int spacing);

}  // namespace na
