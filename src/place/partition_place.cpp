#include "place/partition_place.hpp"

#include <stdexcept>

namespace na {

geom::Point FullLayout::term_pos(const Network& net, TermId t) const {
  const ModuleId m = net.term(t).module;
  for (size_t p = 0; p < partitions.size(); ++p) {
    for (const BoxLayout& box : partitions[p].boxes) {
      if (box.index_of(m) >= 0) {
        return partition_pos[p] + partitions[p].term_pos(net, t);
      }
    }
  }
  throw std::logic_error("terminal not in any partition");
}

FullLayout place_partitions(const Network& net,
                            std::vector<PartitionLayout> partitions, int spacing,
                            const std::vector<std::optional<geom::Point>>& fixed) {
  std::vector<GravityItem> items;
  items.reserve(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    const PartitionLayout& part = partitions[i];
    GravityItem item;
    item.size = part.size;
    for (const BoxLayout& box : part.boxes) {
      item.weight += static_cast<int>(box.modules.size());
    }
    for (const BoxLayout& box : part.boxes) {
      for (ModuleId m : box.modules) {
        for (TermId t : net.module(m).terms) {
          if (net.term(t).net == kNone) continue;
          item.terms.emplace_back(net.term(t).net, part.term_pos(net, t));
        }
      }
    }
    if (i < fixed.size() && fixed[i]) item.fixed_pos = *fixed[i];
    items.push_back(std::move(item));
  }

  FullLayout layout;
  layout.partition_pos = gravity_place(items, spacing);
  layout.partitions = std::move(partitions);

  geom::Rect hull;
  for (size_t i = 0; i < layout.partitions.size(); ++i) {
    hull = hull.hull(
        geom::Rect::from_size(layout.partition_pos[i], layout.partitions[i].size));
  }
  layout.bounds = hull;
  return layout;
}

}  // namespace na
