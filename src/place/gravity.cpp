#include "place/gravity.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace na {

std::optional<geom::Point> bounded_free_position(geom::Point ideal,
                                                 geom::Point size,
                                                 std::span<const geom::Rect> placed,
                                                 int spacing, int max_radius) {
  auto feasible = [&](geom::Point pos) {
    const geom::Rect candidate = geom::Rect::from_size(pos, size).expanded(spacing);
    for (const geom::Rect& r : placed) {
      if (candidate.overlaps(r)) return false;
    }
    return true;
  };
  if (feasible(ideal)) return ideal;

  // Ring search by Chebyshev radius; a ring of radius r contains offsets
  // with Euclidean norm in [r, r*sqrt(2)], so once a feasible position at
  // squared distance d2 is known, rings with r*r > d2 cannot improve it.
  std::optional<geom::Point> best;
  std::int64_t best_d2 = std::numeric_limits<std::int64_t>::max();
  for (int r = 1; r <= max_radius; ++r) {
    if (best_d2 < static_cast<std::int64_t>(r) * r) break;
    auto consider = [&](int dx, int dy) {
      const geom::Point pos = ideal + geom::Point{dx, dy};
      const std::int64_t d2 = geom::dist2(pos, ideal);
      if (d2 < best_d2 && feasible(pos)) {
        best = pos;
        best_d2 = d2;
      }
    };
    for (int dx = -r; dx <= r; ++dx) {
      consider(dx, r);
      consider(dx, -r);
    }
    for (int dy = -r + 1; dy < r; ++dy) {
      consider(r, dy);
      consider(-r, dy);
    }
  }
  return best;
}

geom::Point nearest_free_position(geom::Point ideal, geom::Point size,
                                  std::span<const geom::Rect> placed, int spacing) {
  constexpr int kMaxRadius = 100000;
  return bounded_free_position(ideal, size, placed, spacing, kMaxRadius)
      .value_or(ideal);
}

std::vector<geom::Point> gravity_place(std::span<const GravityItem> items,
                                       int spacing) {
  const int n = static_cast<int>(items.size());
  std::vector<geom::Point> pos(n);
  std::vector<bool> done(n, false);
  std::vector<geom::Rect> placed_rects;
  int placed_count = 0;

  auto commit = [&](int i, geom::Point p) {
    pos[i] = p;
    done[i] = true;
    placed_rects.push_back(geom::Rect::from_size(p, items[i].size));
    ++placed_count;
  };

  // Preplaced items first (incremental placement keeps them untouched).
  for (int i = 0; i < n; ++i) {
    if (items[i].fixed_pos) commit(i, *items[i].fixed_pos);
  }
  // Otherwise the heaviest item anchors the arrangement at the origin.
  if (placed_count == 0 && n > 0) {
    int first = 0;
    for (int i = 1; i < n; ++i) {
      if (items[i].weight > items[first].weight) first = i;
    }
    commit(first, {0, 0});
  }

  // Net ids present on placed items (for the shared-net tests).
  auto placed_nets = [&]() {
    std::unordered_set<NetId> nets;
    for (int i = 0; i < n; ++i) {
      if (!done[i]) continue;
      for (const auto& [net, p] : items[i].terms) nets.insert(net);
    }
    return nets;
  };

  while (placed_count < n) {
    const auto nets = placed_nets();
    // SELECT_NEXT_*: the unplaced item with the most terminals on nets
    // shared with the placed structure.
    int next = -1;
    int next_conn = -1;
    for (int i = 0; i < n; ++i) {
      if (done[i]) continue;
      int conn = 0;
      for (const auto& [net, p] : items[i].terms) conn += nets.contains(net) ? 1 : 0;
      if (conn > next_conn) {
        next = i;
        next_conn = conn;
      }
    }

    geom::Point ideal;
    if (next_conn > 0) {
      // Shared nets between `next` and the placed structure.
      std::unordered_set<NetId> shared;
      for (const auto& [net, p] : items[next].terms) {
        if (nets.contains(net)) shared.insert(net);
      }
      // g0: gravity of this item's terminals on shared nets (item-relative).
      std::int64_t sx = 0, sy = 0, cnt = 0;
      for (const auto& [net, p] : items[next].terms) {
        if (shared.contains(net)) {
          sx += p.x;
          sy += p.y;
          ++cnt;
        }
      }
      const geom::Point g0{static_cast<int>(sx / cnt), static_cast<int>(sy / cnt)};
      // g1: gravity of the placed terminals on those nets (absolute).
      sx = sy = cnt = 0;
      for (int i = 0; i < n; ++i) {
        if (!done[i]) continue;
        for (const auto& [net, p] : items[i].terms) {
          if (shared.contains(net)) {
            sx += pos[i].x + p.x;
            sy += pos[i].y + p.y;
            ++cnt;
          }
        }
      }
      const geom::Point g1{static_cast<int>(sx / cnt), static_cast<int>(sy / cnt)};
      ideal = g1 - g0;
    } else {
      // No electrical pull: line up right of everything placed so far.
      geom::Rect hull;
      for (const geom::Rect& r : placed_rects) hull = hull.hull(r);
      ideal = {hull.hi.x + spacing + 1, hull.lo.y};
    }
    commit(next, nearest_free_position(ideal, items[next].size, placed_rects, spacing));
  }
  return pos;
}

}  // namespace na
