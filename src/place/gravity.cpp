#include "place/gravity.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace na {
namespace {

/// The PLACE_BOX / PLACE_PARTITION ring search over any feasibility
/// predicate.  Shared by the public entry points (linear rect scan) and
/// the gravity placer's indexed fast path — one iteration order, so both
/// return identical positions for identical predicates.
template <typename Feasible>
std::optional<geom::Point> ring_search(geom::Point ideal, int max_radius,
                                       Feasible feasible) {
  if (feasible(ideal)) return ideal;

  // Ring search by Chebyshev radius; a ring of radius r contains offsets
  // with Euclidean norm in [r, r*sqrt(2)], so once a feasible position at
  // squared distance d2 is known, rings with r*r > d2 cannot improve it.
  std::optional<geom::Point> best;
  std::int64_t best_d2 = std::numeric_limits<std::int64_t>::max();
  for (int r = 1; r <= max_radius; ++r) {
    if (best_d2 < static_cast<std::int64_t>(r) * r) break;
    auto consider = [&](int dx, int dy) {
      const geom::Point pos = ideal + geom::Point{dx, dy};
      const std::int64_t d2 = geom::dist2(pos, ideal);
      if (d2 < best_d2 && feasible(pos)) {
        best = pos;
        best_d2 = d2;
      }
    };
    for (int dx = -r; dx <= r; ++dx) {
      consider(dx, r);
      consider(dx, -r);
    }
    for (int dy = -r + 1; dy < r; ++dy) {
      consider(r, dy);
      consider(-r, dy);
    }
  }
  return best;
}

/// Spatial index over the placed rectangles: a hash grid of 32-track
/// buckets, each listing the rects touching it.  Purely an accelerator —
/// overlap answers are identical to the linear scan, so the gravity
/// placer's output stays byte-identical to the reference implementation.
class RectIndex {
 public:
  void insert(geom::Rect r) {
    const int id = static_cast<int>(rects_.size());
    rects_.push_back(r);
    stamp_.push_back(0);
    for (int by = r.lo.y >> kShift; by <= (r.hi.y >> kShift); ++by) {
      for (int bx = r.lo.x >> kShift; bx <= (r.hi.x >> kShift); ++bx) {
        buckets_[key(bx, by)].push_back(id);
      }
    }
  }

  bool overlaps_any(geom::Rect candidate) const {
    ++epoch_;
    for (int by = candidate.lo.y >> kShift; by <= (candidate.hi.y >> kShift); ++by) {
      for (int bx = candidate.lo.x >> kShift; bx <= (candidate.hi.x >> kShift); ++bx) {
        const auto it = buckets_.find(key(bx, by));
        if (it == buckets_.end()) continue;
        for (const int id : it->second) {
          if (stamp_[id] == epoch_) continue;
          stamp_[id] = epoch_;
          if (candidate.overlaps(rects_[id])) return true;
        }
      }
    }
    return false;
  }

 private:
  static constexpr int kShift = 5;  // 32-track buckets

  static std::uint64_t key(int bx, int by) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(bx)) << 32) |
           static_cast<std::uint32_t>(by);
  }

  std::vector<geom::Rect> rects_;
  mutable std::vector<std::uint64_t> stamp_;
  mutable std::uint64_t epoch_ = 0;
  std::unordered_map<std::uint64_t, std::vector<int>> buckets_;
};

}  // namespace

std::optional<geom::Point> bounded_free_position(geom::Point ideal,
                                                 geom::Point size,
                                                 std::span<const geom::Rect> placed,
                                                 int spacing, int max_radius) {
  return ring_search(ideal, max_radius, [&](geom::Point pos) {
    const geom::Rect candidate = geom::Rect::from_size(pos, size).expanded(spacing);
    for (const geom::Rect& r : placed) {
      if (candidate.overlaps(r)) return false;
    }
    return true;
  });
}

geom::Point nearest_free_position(geom::Point ideal, geom::Point size,
                                  std::span<const geom::Rect> placed, int spacing) {
  constexpr int kMaxRadius = 100000;
  return bounded_free_position(ideal, size, placed, spacing, kMaxRadius)
      .value_or(ideal);
}

std::vector<geom::Point> gravity_place_reference(std::span<const GravityItem> items,
                                                 int spacing) {
  const int n = static_cast<int>(items.size());
  std::vector<geom::Point> pos(n);
  std::vector<bool> done(n, false);
  std::vector<geom::Rect> placed_rects;
  int placed_count = 0;

  auto commit = [&](int i, geom::Point p) {
    pos[i] = p;
    done[i] = true;
    placed_rects.push_back(geom::Rect::from_size(p, items[i].size));
    ++placed_count;
  };

  // Preplaced items first (incremental placement keeps them untouched).
  for (int i = 0; i < n; ++i) {
    if (items[i].fixed_pos) commit(i, *items[i].fixed_pos);
  }
  // Otherwise the heaviest item anchors the arrangement at the origin.
  if (placed_count == 0 && n > 0) {
    int first = 0;
    for (int i = 1; i < n; ++i) {
      if (items[i].weight > items[first].weight) first = i;
    }
    commit(first, {0, 0});
  }

  // Net ids present on placed items (for the shared-net tests).
  auto placed_nets = [&]() {
    std::unordered_set<NetId> nets;
    for (int i = 0; i < n; ++i) {
      if (!done[i]) continue;
      for (const auto& [net, p] : items[i].terms) nets.insert(net);
    }
    return nets;
  };

  while (placed_count < n) {
    const auto nets = placed_nets();
    // SELECT_NEXT_*: the unplaced item with the most terminals on nets
    // shared with the placed structure.
    int next = -1;
    int next_conn = -1;
    for (int i = 0; i < n; ++i) {
      if (done[i]) continue;
      int conn = 0;
      for (const auto& [net, p] : items[i].terms) conn += nets.contains(net) ? 1 : 0;
      if (conn > next_conn) {
        next = i;
        next_conn = conn;
      }
    }

    geom::Point ideal;
    if (next_conn > 0) {
      // Shared nets between `next` and the placed structure.
      std::unordered_set<NetId> shared;
      for (const auto& [net, p] : items[next].terms) {
        if (nets.contains(net)) shared.insert(net);
      }
      // g0: gravity of this item's terminals on shared nets (item-relative).
      std::int64_t sx = 0, sy = 0, cnt = 0;
      for (const auto& [net, p] : items[next].terms) {
        if (shared.contains(net)) {
          sx += p.x;
          sy += p.y;
          ++cnt;
        }
      }
      const geom::Point g0{static_cast<int>(sx / cnt), static_cast<int>(sy / cnt)};
      // g1: gravity of the placed terminals on those nets (absolute).
      sx = sy = cnt = 0;
      for (int i = 0; i < n; ++i) {
        if (!done[i]) continue;
        for (const auto& [net, p] : items[i].terms) {
          if (shared.contains(net)) {
            sx += pos[i].x + p.x;
            sy += pos[i].y + p.y;
            ++cnt;
          }
        }
      }
      const geom::Point g1{static_cast<int>(sx / cnt), static_cast<int>(sy / cnt)};
      ideal = g1 - g0;
    } else {
      // No electrical pull: line up right of everything placed so far.
      geom::Rect hull;
      for (const geom::Rect& r : placed_rects) hull = hull.hull(r);
      ideal = {hull.hi.x + spacing + 1, hull.lo.y};
    }
    commit(next, nearest_free_position(ideal, items[next].size, placed_rects, spacing));
  }
  return pos;
}

std::vector<geom::Point> gravity_place(std::span<const GravityItem> items,
                                       int spacing) {
  // Incremental form of gravity_place_reference (above) — the reference
  // rebuilds the placed-net set, rescans every item and recomputes every
  // gravity sum per placement, which is quadratic and dominates large
  // placements.  This engine maintains the same quantities incrementally:
  //   * conn[i]     — terminals of i on placed nets; updated when a net
  //     first appears on a placed item, selected via a lazy max-heap
  //     (conn desc, index asc — the reference scan's strict-improvement
  //     order).  conn only grows, and every change pushes a fresh entry,
  //     so a verified heap top is the true maximum.
  //   * per-net running (sum, count) of placed terminals — g1 is a sum of
  //     integer terms, so accumulation order cannot change it.
  //   * the placed-rect hull, and a bucket index for the feasibility test
  //     of the ring search (identical booleans, identical positions).
  // Every selection, every ideal point and every final position therefore
  // matches the reference byte for byte.
  const int n = static_cast<int>(items.size());
  std::vector<geom::Point> pos(n);
  std::vector<bool> done(n, false);
  int placed_count = 0;

  RectIndex index;
  geom::Rect hull;

  // Per-net accumulators over the *placed* items (NetIds may be sparse
  // and come from any network — hash-keyed).
  struct NetAcc {
    std::int64_t sx = 0, sy = 0, cnt = 0;
  };
  std::unordered_map<NetId, NetAcc> net_acc;

  std::vector<int> conn(n, 0);
  struct Entry {
    int conn;
    int i;
  };
  struct Less {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.conn != b.conn) return a.conn < b.conn;
      return a.i > b.i;
    }
  };
  std::vector<Entry> heap;

  // Terminal counts per (unplaced item, net) — how much conn[i] grows when
  // `net` first lands on a placed item.
  std::unordered_map<NetId, std::vector<std::pair<int, int>>> net_items;
  for (int i = 0; i < n; ++i) {
    std::unordered_map<NetId, int> counts;
    for (const auto& [net, p] : items[i].terms) ++counts[net];
    for (const auto& [net, c] : counts) net_items[net].push_back({i, c});
  }

  auto commit = [&](int i, geom::Point p) {
    pos[i] = p;
    done[i] = true;
    ++placed_count;
    const geom::Rect r = geom::Rect::from_size(p, items[i].size);
    index.insert(r);
    hull = hull.hull(r);
    for (const auto& [net, tp] : items[i].terms) {
      NetAcc& acc = net_acc[net];
      if (acc.cnt == 0) {
        // This net just became placed: every unplaced item holding it
        // gains its terminal count — push their fresh keys.
        for (const auto& [j, c] : net_items[net]) {
          if (done[j]) continue;
          conn[j] += c;
          heap.push_back({conn[j], j});
          std::push_heap(heap.begin(), heap.end(), Less{});
        }
      }
      acc.sx += p.x + tp.x;
      acc.sy += p.y + tp.y;
      ++acc.cnt;
    }
  };

  for (int i = 0; i < n; ++i) {
    if (items[i].fixed_pos) commit(i, *items[i].fixed_pos);
  }
  if (placed_count == 0 && n > 0) {
    int first = 0;
    for (int i = 1; i < n; ++i) {
      if (items[i].weight > items[first].weight) first = i;
    }
    commit(first, {0, 0});
  }
  for (int i = 0; i < n; ++i) {
    if (!done[i]) {
      heap.push_back({conn[i], i});
      std::push_heap(heap.begin(), heap.end(), Less{});
    }
  }

  while (placed_count < n) {
    int next = -1;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), Less{});
      const Entry e = heap.back();
      heap.pop_back();
      if (done[e.i] || e.conn != conn[e.i]) continue;  // stale: fresher entry exists
      next = e.i;
      break;
    }

    geom::Point ideal;
    if (next >= 0 && conn[next] > 0) {
      std::int64_t sx = 0, sy = 0, cnt = 0;       // g0 terms
      std::int64_t gx = 0, gy = 0, gcnt = 0;      // g1 terms
      std::unordered_set<NetId> shared_seen;      // dedup: one g1 term per net
      for (const auto& [net, p] : items[next].terms) {
        const auto it = net_acc.find(net);
        if (it == net_acc.end() || it->second.cnt == 0) continue;
        sx += p.x;
        sy += p.y;
        ++cnt;
        if (shared_seen.insert(net).second) {
          gx += it->second.sx;
          gy += it->second.sy;
          gcnt += it->second.cnt;
        }
      }
      const geom::Point g0{static_cast<int>(sx / cnt), static_cast<int>(sy / cnt)};
      const geom::Point g1{static_cast<int>(gx / gcnt), static_cast<int>(gy / gcnt)};
      ideal = g1 - g0;
    } else {
      ideal = {hull.hi.x + spacing + 1, hull.lo.y};
    }
    if (next < 0) break;  // unreachable: heap always holds every unplaced item

    const std::optional<geom::Point> found =
        ring_search(ideal, 100000, [&](geom::Point p) {
          return !index.overlaps_any(
              geom::Rect::from_size(p, items[next].size).expanded(spacing));
        });
    commit(next, found.value_or(ideal));
  }
  return pos;
}

}  // namespace na
