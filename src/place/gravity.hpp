// Centre-of-gravity constructive placement of rectangular items — the
// shared engine behind BOX_PLACEMENT (section 4.6.5) and
// PARTITION_PLACEMENT (section 4.6.6), which the paper describes as
// "nearly identical".
//
// The item with the most elements is pinned first; every further item is
// the one most heavily connected to the placed ones and lands on the free
// position minimising the distance between two gravity centres: the
// geometric centre of its own terminals on nets shared with the placed
// items (GRAVITY_BOX) and the centre of the placed items' terminals on
// those nets (GRAVITY_PLACED_BOXES).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geom/rect.hpp"
#include "netlist/network.hpp"

namespace na {

struct GravityItem {
  geom::Point size;  ///< bounding-box extent
  /// Connected terminals: net id and position relative to the item origin.
  std::vector<std::pair<NetId, geom::Point>> terms;
  int weight = 0;  ///< element count; the heaviest item is placed first
  /// Preplaced items keep this absolute position (incremental placement).
  std::optional<geom::Point> fixed_pos;
};

/// Places all items without overlap (candidate rectangles are inflated by
/// `spacing` tracks against the placed ones).  Returns one lower-left
/// position per item, in item order.
std::vector<geom::Point> gravity_place(std::span<const GravityItem> items,
                                       int spacing);

/// The quadratic rescan transcription of PLACE_BOX / PLACE_PARTITION,
/// kept as the correctness oracle for the incremental gravity_place —
/// tests assert both return identical positions; use gravity_place
/// everywhere else.
std::vector<geom::Point> gravity_place_reference(
    std::span<const GravityItem> items, int spacing);

/// The free-position search of PLACE_BOX / PLACE_PARTITION: the position
/// nearest to `ideal` (squared Euclidean distance) where a `size` rectangle
/// inflated by `spacing` overlaps none of `placed`.
geom::Point nearest_free_position(geom::Point ideal, geom::Point size,
                                  std::span<const geom::Rect> placed, int spacing);

/// Radius-bounded variant of the same ring search: returns std::nullopt
/// when no feasible position exists within Chebyshev radius `max_radius`
/// of `ideal`.  Incremental placement uses this to seed an added module
/// near its nets' gravity centre — and to fall back to the ordinary edge
/// placement instead of committing to a spot arbitrarily far away.
std::optional<geom::Point> bounded_free_position(geom::Point ideal,
                                                 geom::Point size,
                                                 std::span<const geom::Rect> placed,
                                                 int spacing, int max_radius);

}  // namespace na
