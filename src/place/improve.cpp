#include "place/improve.hpp"

#include <limits>

namespace na {
namespace {

/// Does placing module `m` at `pos` (with its current rotation) collide
/// with any other placed module?
bool collides(const Diagram& dia, ModuleId m, geom::Point pos) {
  const geom::Rect candidate = geom::Rect::from_size(pos, dia.module_size(m));
  const Network& net = dia.network();
  for (ModuleId o = 0; o < net.module_count(); ++o) {
    if (o == m || !dia.module_placed(o)) continue;
    if (candidate.overlaps(dia.module_rect(o))) return true;
  }
  return false;
}

}  // namespace

long estimate_wire_length(const Diagram& dia) {
  const Network& net = dia.network();
  long total = 0;
  for (const Net& n : net.nets()) {
    geom::Rect box;
    for (TermId t : n.terms) {
      const Terminal& term = net.term(t);
      const bool placeable = term.is_system() ? dia.system_term_placed(t)
                                              : dia.module_placed(term.module);
      if (placeable) box = box.hull(dia.term_pos(t));
    }
    if (!box.empty()) total += box.width() + box.height();
  }
  return total;
}

ImproveReport improve_by_exchange(Diagram& dia, const ImproveOptions& opt) {
  const Network& net = dia.network();
  ImproveReport report;
  report.initial_length = estimate_wire_length(dia);
  long current = report.initial_length;

  for (int pass = 0; pass < opt.max_passes; ++pass) {
    bool improved = false;
    for (ModuleId a = 0; a < net.module_count(); ++a) {
      if (!dia.module_placed(a) || dia.placed(a).fixed) continue;
      for (ModuleId b = a + 1; b < net.module_count(); ++b) {
        if (!dia.module_placed(b) || dia.placed(b).fixed) continue;
        if (++report.trials > opt.max_trials) return report;
        const geom::Point pa = dia.placed(a).pos;
        const geom::Point pb = dia.placed(b).pos;
        // Align swapped modules on the other's lower-left corner; unequal
        // sizes may collide, in which case the swap is rejected.
        dia.place_module(a, pb, dia.placed(a).rot);
        dia.place_module(b, pa, dia.placed(b).rot);
        long candidate = std::numeric_limits<long>::max();
        if (!collides(dia, a, pb) && !collides(dia, b, pa)) {
          candidate = estimate_wire_length(dia);
        }
        if (candidate < current) {
          current = candidate;
          ++report.swaps;
          improved = true;
        } else {
          dia.place_module(a, pa, dia.placed(a).rot);
          dia.place_module(b, pb, dia.placed(b).rot);
        }
      }
    }
    if (!improved) break;
  }
  report.final_length = current;
  return report;
}

}  // namespace na
