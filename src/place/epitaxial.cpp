#include "place/epitaxial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "place/terminal_place.hpp"

namespace na {

void epitaxial_place(Diagram& dia, const EpitaxialOptions& opt) {
  const Network& net = dia.network();
  const int n = net.module_count();
  if (n == 0) {
    place_system_terminals(dia);
    return;
  }

  // Slot grid sized for the largest module.
  geom::Point cell{0, 0};
  for (const Module& m : net.modules()) {
    cell.x = std::max(cell.x, m.size.x);
    cell.y = std::max(cell.y, m.size.y);
  }
  cell += {2 * opt.gap + 1, 2 * opt.gap + 1};
  const int radius = static_cast<int>(std::ceil(std::sqrt(n))) + 1;
  const int side = 2 * radius + 1;
  std::vector<bool> slot_used(static_cast<size_t>(side) * side, false);
  auto slot_index = [&](int i, int j) {
    return static_cast<size_t>(j + radius) * side + (i + radius);
  };
  auto slot_center = [&](int i, int j) {
    return geom::Point{i * cell.x + cell.x / 2, j * cell.y + cell.y / 2};
  };

  std::vector<bool> placed(n, false);
  std::vector<geom::Point> centers(n);

  // Seed: the module with the most connections overall.
  ModuleId seed = 0;
  int seed_conns = -1;
  std::vector<bool> everyone(n, true);
  for (ModuleId m = 0; m < n; ++m) {
    const int c = net.connections_to(m, everyone);
    if (c > seed_conns) {
      seed = m;
      seed_conns = c;
    }
  }
  auto put = [&](ModuleId m, int i, int j) {
    slot_used[slot_index(i, j)] = true;
    placed[m] = true;
    centers[m] = slot_center(i, j);
    const geom::Point lower_left =
        centers[m] - geom::Point{net.module(m).size.x / 2, net.module(m).size.y / 2};
    dia.place_module(m, lower_left);
  };
  put(seed, 0, 0);

  for (int step = 1; step < n; ++step) {
    // Next: most connections with the placed structure.
    ModuleId next = kNone;
    int next_conns = -1;
    for (ModuleId m = 0; m < n; ++m) {
      if (placed[m]) continue;
      const int c = net.connections_to(m, placed);
      if (c > next_conns) {
        next = m;
        next_conns = c;
      }
    }
    // Best free slot: minimum total wire length to the placed neighbours,
    // weighted by connection multiplicity.
    long best_cost = std::numeric_limits<long>::max();
    int best_i = 0;
    int best_j = 0;
    for (int i = -radius; i <= radius; ++i) {
      for (int j = -radius; j <= radius; ++j) {
        if (slot_used[slot_index(i, j)]) continue;
        const geom::Point c = slot_center(i, j);
        long cost = 0;
        for (ModuleId o = 0; o < n; ++o) {
          if (!placed[o]) continue;
          const int k = net.connections(next, o);
          if (k > 0) cost += static_cast<long>(k) * manhattan(c, centers[o]);
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_i = i;
          best_j = j;
        }
      }
    }
    put(next, best_i, best_j);
  }

  place_system_terminals(dia);
  dia.normalize();
}

}  // namespace na
