// Iterative placement improvement by pairwise exchange (paper 4.2.1).
//
// The class of algorithms the paper explicitly *rejects* for diagram
// generation: "They deal with local changes such as the pair wise exchange
// of modules.  Typically, there are a large number of such trials, so this
// results in very greedy algorithms ... They easily get stuck in a local
// minimum.  Their greediness is unacceptable for generating diagrams
// automatically.  A diagram should be produced in no time."
//
// Implemented here so the trade-off can be measured: the improver swaps
// module positions (keeping each module's rotation) whenever that lowers
// the total estimated wire length, until a pass yields no gain or the
// budget runs out.  bench_placement_baselines quantifies the cost/benefit.
#pragma once

#include "schematic/diagram.hpp"

namespace na {

struct ImproveOptions {
  int max_passes = 10;      ///< full sweeps over all module pairs
  long max_trials = 500000; ///< absolute bound on evaluated swaps
};

struct ImproveReport {
  int swaps = 0;
  long trials = 0;
  long initial_length = 0;  ///< estimated wire length before
  long final_length = 0;    ///< ... and after
};

/// Estimated wire length of a placement: per net, the half perimeter of
/// its terminals' bounding box (the standard pre-routing estimate).
long estimate_wire_length(const Diagram& dia);

/// Greedy pairwise-exchange improvement over the placed modules.  Only
/// swaps that keep both modules inside non-overlapping positions are
/// applied: modules exchange lower-left positions when their sizes allow it
/// without collision.  System terminals stay put.
ImproveReport improve_by_exchange(Diagram& dia, const ImproveOptions& opt = {});

}  // namespace na
