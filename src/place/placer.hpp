// The placement pipeline — the paper's PABLO program (chapter 4).
//
//   1. PARTITIONING        seed-and-grow functional groups  (-p, -c)
//   2. BOX_FORMATION       longest signal-flow strings      (-b)
//   3. MODULE_PLACEMENT    left-to-right within each box    (-s)
//   4. BOX_PLACEMENT       gravity centres within partition (-i)
//   5. PARTITION_PLACEMENT gravity centres globally         (-e)
//   6. TERMINAL_PLACEMENT  system terminals on the ring
//
// Modules already placed in the diagram (preplaced, option -g) are kept:
// they form a partition of their own that stays at its absolute position,
// and the remaining modules are arranged around it.
#pragma once

#include <limits>

#include "place/boxes.hpp"
#include "schematic/diagram.hpp"

namespace na {

struct PlacerOptions {
  int max_part_size = 1;  ///< -p: maximum modules per partition
  int max_box_size = 1;   ///< -b: maximum string length
  int max_connections = std::numeric_limits<int>::max();  ///< -c
  int partition_spacing = 0;  ///< -e: extra tracks around each partition
  int box_spacing = 0;        ///< -i: extra tracks around each box
  int module_spacing = 0;     ///< -s: extra tracks around each module
  /// Placement threads: after partitioning, box formation / module
  /// placement / box placement of each partition are independent jobs;
  /// N > 1 runs them on a work-stealing pool, 0 uses the hardware
  /// concurrency.  Any thread count produces a byte-identical placement —
  /// per-partition results are deterministic and are assembled in
  /// partition order.
  int threads = 1;
};

/// The structural decomposition the placement produced, for inspection,
/// tests, and the experiment harness.
struct PlacementInfo {
  std::vector<std::vector<ModuleId>> partitions;
  std::vector<std::vector<Box>> boxes;  ///< boxes per partition, level order
};

/// Runs the full pipeline on `dia`, placing every unplaced module and
/// system terminal.  The diagram is normalised to a (0,0) lower-left
/// corner afterwards unless preplaced modules pin the coordinates.
PlacementInfo place(Diagram& dia, const PlacerOptions& opt = {});

}  // namespace na
