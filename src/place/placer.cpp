#include "place/placer.hpp"

#include <thread>

#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "place/partition.hpp"
#include "place/partition_place.hpp"
#include "place/terminal_place.hpp"

namespace na {
namespace {

/// Wraps the already-placed modules of a diagram into a pseudo partition
/// layout pinned at its current location (Appendix E, option -g: "the
/// preplaced part will form a partition on its own").
PartitionLayout preplaced_layout(const Diagram& dia,
                                 const std::vector<ModuleId>& fixed_modules,
                                 geom::Rect hull) {
  PartitionLayout part;
  for (ModuleId m : fixed_modules) {
    BoxLayout box;
    box.modules = {m};
    box.rot = {dia.placed(m).rot};
    box.pos = {{0, 0}};
    box.size = dia.module_size(m);
    part.boxes.push_back(std::move(box));
    part.box_pos.push_back(dia.placed(m).pos - hull.lo);
  }
  part.size = {hull.width(), hull.height()};
  return part;
}

/// Pipeline steps 2-4 for one partition: box formation, module placement
/// within each box, box placement within the partition.  Pure function of
/// (net, partition, options) — the parallel path below runs one such job
/// per partition with no shared state, so any thread count reproduces the
/// sequential results exactly.
struct PartitionResult {
  std::vector<Box> boxes;
  PartitionLayout layout;
};

PartitionResult build_partition(const Network& net,
                                const std::vector<ModuleId>& partition,
                                const PlacerOptions& opt, int part_idx) {
  PartitionResult out;
  {
    NA_TRACE_SPAN(span, "place.box_form");
    span.arg("partition", part_idx);
    out.boxes = form_boxes(net, partition, opt.max_box_size);
    span.arg("boxes", static_cast<long long>(out.boxes.size()));
  }
  std::vector<BoxLayout> box_layouts;
  box_layouts.reserve(out.boxes.size());
  {
    NA_TRACE_SPAN(span, "place.module_place");
    span.arg("partition", part_idx);
    for (const Box& b : out.boxes) {
      box_layouts.push_back(place_box_modules(net, b, opt.module_spacing));
    }
  }
  {
    NA_TRACE_SPAN(span, "place.box_place");
    span.arg("partition", part_idx);
    out.layout = place_boxes(net, std::move(box_layouts), opt.box_spacing);
  }
  return out;
}

}  // namespace

PlacementInfo place(Diagram& dia, const PlacerOptions& opt) {
  const Network& net = dia.network();
  PlacementInfo info;

  // Split preplaced from free modules.
  std::vector<ModuleId> fixed_modules;
  std::vector<bool> free_mask(net.module_count(), false);
  int free_count = 0;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (dia.module_placed(m)) {
      fixed_modules.push_back(m);
    } else {
      free_mask[m] = true;
      ++free_count;
    }
  }

  if (net.module_count() == 0) {
    // Degenerate: terminal-only network — spread terminals on a line.
    int y = 0;
    for (TermId st : net.system_terms()) {
      if (!dia.system_term_placed(st)) dia.place_system_term(st, {0, y += 2});
    }
    return info;
  }

  std::vector<PartitionLayout> layouts;
  std::vector<std::optional<geom::Point>> fixed_pos;
  if (!fixed_modules.empty()) {
    geom::Rect hull;
    for (ModuleId m : fixed_modules) hull = hull.hull(dia.module_rect(m));
    layouts.push_back(preplaced_layout(dia, fixed_modules, hull));
    fixed_pos.push_back(hull.lo);
    info.partitions.push_back(fixed_modules);
    std::vector<Box> fixed_boxes;
    for (ModuleId m : fixed_modules) fixed_boxes.push_back({m});
    info.boxes.push_back(std::move(fixed_boxes));
  }

  if (free_count > 0) {
    // Pipeline steps 1-4 (see the header comment): each carries a trace
    // span named after the paper's phase so one traced run yields the
    // Table 6.1-style per-phase breakdown.
    std::vector<std::vector<ModuleId>> partitions;
    {
      NA_TRACE_SPAN(span, "place.partition");
      const PartitionLimits limits{opt.max_part_size, opt.max_connections};
      partitions = partition_network(net, limits, free_mask);
      span.arg("partitions", static_cast<long long>(partitions.size()));
      span.arg("free_modules", free_count);
    }
    // Steps 2-4 per partition, as independent jobs.  Results land in
    // pre-sized slots and are assembled in partition order below, so the
    // sequential and the pooled path are byte-identical.
    int threads = opt.threads;
    if (threads == 0) {
      threads = std::max(1u, std::thread::hardware_concurrency());
    }
    std::vector<PartitionResult> results(partitions.size());
    if (threads > 1 && partitions.size() > 1) {
      NA_TRACE_SPAN(span, "place.partition_jobs");
      span.arg("threads", threads);
      span.arg("partitions", static_cast<long long>(partitions.size()));
      ThreadPool pool(std::min<int>(threads, static_cast<int>(partitions.size())));
      for (size_t pi = 0; pi < partitions.size(); ++pi) {
        pool.submit([&, pi] {
          results[pi] =
              build_partition(net, partitions[pi], opt, static_cast<int>(pi));
        });
      }
      pool.wait_idle();
    } else {
      for (size_t pi = 0; pi < partitions.size(); ++pi) {
        results[pi] =
            build_partition(net, partitions[pi], opt, static_cast<int>(pi));
      }
    }
    for (size_t pi = 0; pi < partitions.size(); ++pi) {
      layouts.push_back(std::move(results[pi].layout));
      fixed_pos.emplace_back(std::nullopt);
      info.boxes.push_back(std::move(results[pi].boxes));
      info.partitions.push_back(std::move(partitions[pi]));
    }
  }

  FullLayout full = [&] {
    NA_TRACE_SCOPE("place.partition_place");
    return place_partitions(net, std::move(layouts), opt.partition_spacing,
                            fixed_pos);
  }();

  // Commit absolute module positions.
  for (size_t p = 0; p < full.partitions.size(); ++p) {
    const PartitionLayout& part = full.partitions[p];
    for (size_t b = 0; b < part.boxes.size(); ++b) {
      const BoxLayout& box = part.boxes[b];
      for (size_t i = 0; i < box.modules.size(); ++i) {
        const ModuleId m = box.modules[i];
        if (dia.module_placed(m)) continue;  // preplaced stays put
        dia.place_module(m, full.partition_pos[p] + part.box_pos[b] + box.pos[i],
                         box.rot[i]);
      }
    }
  }

  {
    NA_TRACE_SCOPE("place.terminal_place");
    place_system_terminals(dia);
  }
  if (fixed_modules.empty()) dia.normalize();
  return info;
}

}  // namespace na
