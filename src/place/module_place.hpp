// Module placement inside a box (paper section 4.6.4, MODULE_PLACEMENT /
// INIT_MODULE_PLACEMENT / PLACE_MODULE).
//
// Modules of a string are placed strictly left to right.  Each module is
// rotated so the terminal connecting to its predecessor faces left (the
// first module so its driving terminal faces right), then shifted
// vertically so the connecting net needs at most two bends — zero when the
// facing sides oppose (the minimum-bend lemma of section 4.6.4).
// White space around each module side is a function of the number of
// connected terminals on that side: f(k) = k + 1 + extra tracks
// (Appendix E, option -s).
#pragma once

#include <vector>

#include "place/boxes.hpp"
#include "schematic/diagram.hpp"

namespace na {

/// The relative layout of one box: positions are measured from the box's
/// lower-left corner; `size` is the box bounding box including routing
/// white space.
struct BoxLayout {
  Box modules;  ///< level order, as produced by form_boxes
  std::vector<geom::Point> pos;
  std::vector<geom::Rot> rot;
  geom::Point size;

  /// Box-relative position of a subsystem terminal of a module in this box.
  geom::Point term_pos(const Network& net, TermId t) const;
  /// Index of `m` within `modules`, or -1.
  int index_of(ModuleId m) const;
};

/// White-space function f: tracks to leave next to a side carrying `k`
/// connected terminals.
int whitespace(int connected_terms, int extra);

/// Places the modules of `box` (paper MODULE_PLACEMENT inner loop).
BoxLayout place_box_modules(const Network& net, const Box& box, int extra_space);

}  // namespace na
