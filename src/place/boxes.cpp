#include "place/boxes.hpp"

#include <algorithm>

namespace na {

bool drives_module(const Network& net, ModuleId from, ModuleId to) {
  if (from == to) return false;
  for (TermId tf : net.module(from).terms) {
    const Terminal& out = net.term(tf);
    if (out.net == kNone) continue;
    for (TermId tt : net.net(out.net).terms) {
      const Terminal& in = net.term(tt);
      if (in.module == to && drives(out.type, in.type)) return true;
    }
  }
  return false;
}

std::vector<ModuleId> construct_roots(const Network& net,
                                      const std::vector<ModuleId>& partition) {
  std::vector<bool> in_partition(net.module_count(), false);
  for (ModuleId m : partition) in_partition[m] = true;

  std::vector<ModuleId> roots;
  for (ModuleId m : partition) {
    bool is_root = false;
    // (a) connected with a module in another partition
    for (ModuleId o : net.neighbors(m)) {
      if (!in_partition[o]) {
        is_root = true;
        break;
      }
    }
    // (b) connected with an in/inout system terminal
    if (!is_root) {
      for (NetId n : net.nets_of(m)) {
        for (TermId t : net.net(n).terms) {
          const Terminal& term = net.term(t);
          if (term.is_system() &&
              (term.type == TermType::In || term.type == TermType::InOut)) {
            is_root = true;
            break;
          }
        }
        if (is_root) break;
      }
    }
    // (c) exactly one net to other modules
    if (!is_root) {
      int nets_to_others = 0;
      for (NetId n : net.nets_of(m)) {
        for (TermId t : net.net(n).terms) {
          const ModuleId om = net.term(t).module;
          if (om != kNone && om != m) {
            ++nets_to_others;
            break;
          }
        }
      }
      is_root = nets_to_others == 1;
    }
    if (is_root) roots.push_back(m);
  }
  return roots;
}

namespace {

void longest_path_dfs(const Network& net, Box& path, std::vector<bool>& available,
                      int max_box_size, Box& best) {
  if (static_cast<int>(path.size()) > static_cast<int>(best.size())) best = path;
  if (static_cast<int>(path.size()) >= max_box_size) return;
  const ModuleId tail = path.back();
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    if (!available[m] || !drives_module(net, tail, m)) continue;
    available[m] = false;
    path.push_back(m);
    longest_path_dfs(net, path, available, max_box_size, best);
    path.pop_back();
    available[m] = true;
  }
}

}  // namespace

Box longest_path(const Network& net, ModuleId root, const std::vector<bool>& available,
                 int max_box_size) {
  Box path{root};
  Box best{root};
  std::vector<bool> avail = available;
  avail[root] = false;
  longest_path_dfs(net, path, avail, max_box_size, best);
  return best;
}

std::vector<Box> form_boxes(const Network& net, const std::vector<ModuleId>& partition,
                            int max_box_size) {
  std::vector<Box> boxes;
  std::vector<ModuleId> remaining = partition;
  while (!remaining.empty()) {
    std::vector<bool> avail(net.module_count(), false);
    for (ModuleId m : remaining) avail[m] = true;

    // Roots are recomputed over the remaining modules; when no module
    // qualifies (fully internal cycle), every remaining module may head a
    // string so the loop always progresses.
    std::vector<ModuleId> roots = construct_roots(net, remaining);
    if (roots.empty()) roots = remaining;

    Box best;
    for (ModuleId r : roots) {
      Box path = longest_path(net, r, avail, max_box_size);
      if (path.size() > best.size()) best = path;
    }
    boxes.push_back(best);
    for (ModuleId m : best) std::erase(remaining, m);
  }
  return boxes;
}

}  // namespace na
