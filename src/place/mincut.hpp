// Min-cut bipartitioning placement baseline (paper section 4.2.3,
// Lauther [5]).
//
// Recursive bipartitioning with alternating cut direction: each module set
// is split into two roughly equal halves minimising the number of nets
// crossing the cut (greedy balanced split plus pairwise-swap improvement),
// realised as a slicing arrangement so symbols never overlap.
//
// The paper's verdict — reproduced by bench_placement_baselines — is that
// this placement ignores signal-flow direction and therefore yields less
// readable schematics than the flow-aware pipeline, even though it
// minimises crossings between regions.
#pragma once

#include "schematic/diagram.hpp"

namespace na {

struct MincutOptions {
  int spacing = 2;            ///< empty tracks around each module
  int improvement_passes = 8; ///< pairwise-swap refinement bound per split
};

/// Places every module of the diagram (ignores preplacement) and the
/// system terminals.
void mincut_place(Diagram& dia, const MincutOptions& opt = {});

/// Exposed for tests: splits `mods` into two halves (|sizes| differ by at
/// most one module) minimising the crossing net count; returns the first
/// half (the rest is the second).
std::vector<ModuleId> mincut_bipartition(const Network& net,
                                         const std::vector<ModuleId>& mods,
                                         int improvement_passes);

/// Number of nets with a terminal in both halves.
int cut_size(const Network& net, const std::vector<ModuleId>& a,
             const std::vector<ModuleId>& b);

}  // namespace na
