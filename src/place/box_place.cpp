#include "place/box_place.hpp"

#include <stdexcept>

namespace na {

geom::Point PartitionLayout::term_pos(const Network& net, TermId t) const {
  const ModuleId m = net.term(t).module;
  for (size_t b = 0; b < boxes.size(); ++b) {
    if (boxes[b].index_of(m) >= 0) return box_pos[b] + boxes[b].term_pos(net, t);
  }
  throw std::logic_error("terminal not in this partition");
}

PartitionLayout place_boxes(const Network& net, std::vector<BoxLayout> boxes,
                            int spacing) {
  std::vector<GravityItem> items;
  items.reserve(boxes.size());
  for (const BoxLayout& box : boxes) {
    GravityItem item;
    item.size = box.size;
    item.weight = static_cast<int>(box.modules.size());
    for (ModuleId m : box.modules) {
      for (TermId t : net.module(m).terms) {
        if (net.term(t).net == kNone) continue;
        item.terms.emplace_back(net.term(t).net, box.term_pos(net, t));
      }
    }
    items.push_back(std::move(item));
  }

  PartitionLayout layout;
  layout.box_pos = gravity_place(items, spacing);
  layout.boxes = std::move(boxes);

  // Normalise to a (0,0) lower-left partition origin.
  geom::Rect hull;
  for (size_t b = 0; b < layout.boxes.size(); ++b) {
    hull = hull.hull(geom::Rect::from_size(layout.box_pos[b], layout.boxes[b].size));
  }
  for (auto& p : layout.box_pos) p -= hull.lo;
  layout.size = {hull.width(), hull.height()};
  return layout;
}

}  // namespace na
