#include "place/mincut.hpp"

#include <algorithm>
#include <memory>

#include "place/terminal_place.hpp"

namespace na {
namespace {

struct SliceNode {
  std::vector<ModuleId> mods;  // leaf: exactly one
  bool vertical_cut = false;   // children side by side (split in x)
  std::unique_ptr<SliceNode> a;
  std::unique_ptr<SliceNode> b;
  geom::Point size;
};

std::unique_ptr<SliceNode> build_slices(const Network& net,
                                        std::vector<ModuleId> mods, int depth,
                                        const MincutOptions& opt) {
  auto node = std::make_unique<SliceNode>();
  if (mods.size() == 1) {
    node->size = net.module(mods[0]).size + geom::Point{2 * opt.spacing, 2 * opt.spacing};
    node->mods = std::move(mods);
    return node;
  }
  auto first = mincut_bipartition(net, mods, opt.improvement_passes);
  std::vector<ModuleId> second;
  for (ModuleId m : mods) {
    if (std::find(first.begin(), first.end(), m) == first.end()) second.push_back(m);
  }
  node->mods = std::move(mods);
  node->vertical_cut = depth % 2 == 0;  // alternate the cut-line direction
  node->a = build_slices(net, std::move(first), depth + 1, opt);
  node->b = build_slices(net, std::move(second), depth + 1, opt);
  if (node->vertical_cut) {
    node->size = {node->a->size.x + node->b->size.x,
                  std::max(node->a->size.y, node->b->size.y)};
  } else {
    node->size = {std::max(node->a->size.x, node->b->size.x),
                  node->a->size.y + node->b->size.y};
  }
  return node;
}

void assign_positions(const Network& net, Diagram& dia, const SliceNode& node,
                      geom::Point origin, int spacing) {
  if (node.a == nullptr) {
    dia.place_module(node.mods[0], origin + geom::Point{spacing, spacing});
    return;
  }
  assign_positions(net, dia, *node.a, origin, spacing);
  const geom::Point shift = node.vertical_cut ? geom::Point{node.a->size.x, 0}
                                              : geom::Point{0, node.a->size.y};
  assign_positions(net, dia, *node.b, origin + shift, spacing);
}

}  // namespace

int cut_size(const Network& net, const std::vector<ModuleId>& a,
             const std::vector<ModuleId>& b) {
  std::vector<int> side(net.module_count(), 0);
  for (ModuleId m : a) side[m] = 1;
  for (ModuleId m : b) side[m] = 2;
  int cut = 0;
  for (const Net& n : net.nets()) {
    bool in_a = false;
    bool in_b = false;
    for (TermId t : n.terms) {
      const ModuleId m = net.term(t).module;
      if (m == kNone) continue;
      in_a |= side[m] == 1;
      in_b |= side[m] == 2;
    }
    cut += (in_a && in_b) ? 1 : 0;
  }
  return cut;
}

std::vector<ModuleId> mincut_bipartition(const Network& net,
                                         const std::vector<ModuleId>& mods,
                                         int improvement_passes) {
  // Initial balanced split: breadth-first over the connectivity graph keeps
  // tightly coupled modules together.
  std::vector<ModuleId> order;
  std::vector<bool> seen(net.module_count(), false);
  std::vector<bool> eligible(net.module_count(), false);
  for (ModuleId m : mods) eligible[m] = true;
  for (ModuleId root : mods) {
    if (seen[root]) continue;
    std::vector<ModuleId> frontier{root};
    seen[root] = true;
    while (!frontier.empty()) {
      const ModuleId m = frontier.front();
      frontier.erase(frontier.begin());
      order.push_back(m);
      for (ModuleId o : net.neighbors(m)) {
        if (eligible[o] && !seen[o]) {
          seen[o] = true;
          frontier.push_back(o);
        }
      }
    }
  }
  const size_t half = (order.size() + 1) / 2;
  std::vector<ModuleId> a(order.begin(), order.begin() + half);
  std::vector<ModuleId> b(order.begin() + half, order.end());

  // Pairwise-swap improvement: take the best-gain swap until none helps.
  for (int pass = 0; pass < improvement_passes; ++pass) {
    int best_gain = 0;
    size_t best_i = 0;
    size_t best_j = 0;
    const int current = cut_size(net, a, b);
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        std::swap(a[i], b[j]);
        const int gain = current - cut_size(net, a, b);
        std::swap(a[i], b[j]);
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_gain <= 0) break;
    std::swap(a[best_i], b[best_j]);
  }
  return a;
}

void mincut_place(Diagram& dia, const MincutOptions& opt) {
  const Network& net = dia.network();
  if (net.module_count() == 0) {
    place_system_terminals(dia);
    return;
  }
  std::vector<ModuleId> all(net.module_count());
  for (ModuleId m = 0; m < net.module_count(); ++m) all[m] = m;
  const auto root = build_slices(net, std::move(all), 0, opt);
  assign_positions(net, dia, *root, {0, 0}, opt.spacing);
  place_system_terminals(dia);
  dia.normalize();
}

}  // namespace na
