// Module library: reusable symbol templates (paper section 3.4, Appendix B/C).
//
// The paper's flow keeps a library of module representations maintained by
// the QUINTO module generator; the diagram generator pulls template sizes
// and terminal positions from it when instantiating a net-list.  Here a
// ModuleLibrary stores ModuleTemplates and knows how to parse / emit the
// Appendix B module-description format:
//
//   module <name> <width> <height>
//   <in|out|inout> <term-name> <x> <y>
//   ...
//
// Appendix B requires coordinates divisible by the drawing pitch (10 in the
// historical files); we store track units directly and accept an optional
// pitch divisor when parsing legacy files.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/network.hpp"

namespace na {

struct TemplateTerm {
  std::string name;
  TermType type = TermType::InOut;
  geom::Point pos;  ///< on the template perimeter
};

struct ModuleTemplate {
  std::string name;
  geom::Point size;
  std::vector<TemplateTerm> terms;

  std::optional<const TemplateTerm*> term_by_name(std::string_view n) const;
};

class ModuleLibrary {
 public:
  /// Registers a template; replaces any previous template of the same name.
  void add(ModuleTemplate t);
  const ModuleTemplate* find(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }
  int size() const { return static_cast<int>(order_.size()); }
  const std::vector<std::string>& names() const { return order_; }

  /// Instantiates `tmpl` into `net` under instance name `instance`,
  /// creating the module and all its terminals.  Throws if unknown.
  ModuleId instantiate(Network& net, std::string_view tmpl,
                       std::string instance) const;

  /// Convenience: a library of simple generic templates (buf/and/or/...,
  /// registers, muxes) used by the workload generators and examples.
  static ModuleLibrary standard_cells();

 private:
  std::unordered_map<std::string, ModuleTemplate> templates_;
  std::vector<std::string> order_;
};

/// Parses one Appendix-B module description.  `pitch` divides all file
/// coordinates (pass 10 for historical ESCHER-era files, 1 for track units).
/// Throws std::runtime_error with a line-numbered message on bad input.
ModuleTemplate parse_module_description(std::istream& in, int pitch = 1);
ModuleTemplate parse_module_description(std::string_view text, int pitch = 1);

/// Emits the Appendix-B description (inverse of the parser, pitch 1).
std::string format_module_description(const ModuleTemplate& t);

}  // namespace na
