// Hierarchical designs (paper section 3.2): "A network consists of modules
// and interconnections.  Each module contains an internal description
// consisting of submodules and interconnections.  Besides, each module has
// a representation."
//
// A Design is a set of named template networks; a module instance whose
// template names another network is hierarchical, everything else is a
// leaf symbol.  Two operations mirror the paper's uses:
//   * flatten(): expand a root template into one leaf-only network (what
//     the generator consumes) — instance names become path names
//     (`parent/child`), internal nets are renamed per instantiation, and
//     nets crossing a boundary are merged through the template's system
//     terminals (its ports);
//   * each template can also be generated as its own diagram, giving one
//     schematic page per hierarchy level, the way the ESCHER library held
//     one drawing per template.
#pragma once

#include <map>
#include <string>

#include "netlist/module_library.hpp"
#include "netlist/network.hpp"

namespace na {

class Design {
 public:
  explicit Design(ModuleLibrary leaf_library) : lib_(std::move(leaf_library)) {}

  /// Registers `net` as the internal description of template `name`.  The
  /// template's ports are the network's system terminals.
  void add_template(std::string name, Network net);
  bool has_template(const std::string& name) const {
    return templates_.contains(name);
  }
  const Network& template_net(const std::string& name) const;
  const ModuleLibrary& leaf_library() const { return lib_; }
  const std::map<std::string, Network>& templates() const { return templates_; }

  /// Expands the template `root` into a single leaf-only network.
  /// Instance paths are joined with '/'; a hierarchical instance's nets are
  /// prefixed with its path.  Boundary nets (a parent net wired to a child
  /// port) absorb the child's internal net so the flat net-list stays
  /// electrically identical.  Throws on unknown templates or recursion
  /// deeper than `max_depth`.
  Network flatten(const std::string& root, int max_depth = 16) const;

  /// Number of leaf module instances flatten(root) will produce.
  int leaf_count(const std::string& root, int max_depth = 16) const;

 private:
  void expand(const std::string& tmpl, const std::string& path, Network& out,
              const std::map<std::string, NetId>& port_map, int depth,
              int max_depth) const;

  ModuleLibrary lib_;
  std::map<std::string, Network> templates_;
};

}  // namespace na
