#include "netlist/hierarchy.hpp"

#include <stdexcept>

namespace na {

void Design::add_template(std::string name, Network net) {
  templates_.insert_or_assign(std::move(name), std::move(net));
}

const Network& Design::template_net(const std::string& name) const {
  const auto it = templates_.find(name);
  if (it == templates_.end()) {
    throw std::runtime_error("unknown design template '" + name + "'");
  }
  return it->second;
}

void Design::expand(const std::string& tmpl, const std::string& path, Network& out,
                    const std::map<std::string, NetId>& port_map, int depth,
                    int max_depth) const {
  if (depth > max_depth) {
    throw std::runtime_error("hierarchy deeper than " + std::to_string(max_depth) +
                             " at '" + path + "' (recursive design?)");
  }
  const Network& t = template_net(tmpl);
  const bool top_level = depth == 0;

  // Map every template net to a net of the flat network.  Nets touching a
  // bound port reuse the parent's net.
  std::vector<NetId> netmap(t.net_count(), kNone);
  for (NetId n = 0; n < t.net_count(); ++n) {
    for (TermId term : t.net(n).terms) {
      if (!t.term(term).is_system() || top_level) continue;
      const auto it = port_map.find(t.term(term).name);
      if (it == port_map.end() || it->second == kNone) continue;
      if (netmap[n] != kNone && netmap[n] != it->second) {
        throw std::runtime_error("net '" + t.net(n).name + "' of '" + tmpl +
                                 "' bridges two ports bound to different nets");
      }
      netmap[n] = it->second;
    }
  }
  for (NetId n = 0; n < t.net_count(); ++n) {
    if (netmap[n] == kNone) {
      netmap[n] = out.add_net(path.empty() ? t.net(n).name
                                           : path + "/" + t.net(n).name);
    }
  }
  // The root template's ports become the flat network's system terminals.
  if (top_level) {
    for (TermId st : t.system_terms()) {
      const TermId flat = out.add_system_terminal(t.term(st).name, t.term(st).type);
      if (t.term(st).net != kNone) out.connect(netmap[t.term(st).net], flat);
    }
  }

  for (ModuleId m = 0; m < t.module_count(); ++m) {
    const Module& mod = t.module(m);
    const std::string child_path =
        path.empty() ? mod.name : path + "/" + mod.name;
    if (templates_.contains(mod.template_name)) {
      // Hierarchical instance: bind child ports to this level's nets.
      std::map<std::string, NetId> child_ports;
      for (TermId term : mod.terms) {
        const Terminal& inst_term = t.term(term);
        child_ports[inst_term.name] =
            inst_term.net == kNone ? kNone : netmap[inst_term.net];
      }
      expand(mod.template_name, child_path, out, child_ports, depth + 1,
             max_depth);
    } else {
      // Leaf: copy the symbol verbatim under its path name.
      const ModuleId flat = out.add_module(child_path, mod.template_name, mod.size);
      for (TermId term : mod.terms) {
        const Terminal& src = t.term(term);
        const TermId nt = out.add_terminal(flat, src.name, src.type, src.pos);
        if (src.net != kNone) out.connect(netmap[src.net], nt);
      }
    }
  }
}

Network Design::flatten(const std::string& root, int max_depth) const {
  Network out;
  expand(root, "", out, {}, 0, max_depth);
  return out;
}

int Design::leaf_count(const std::string& root, int max_depth) const {
  if (max_depth < 0) {
    throw std::runtime_error("hierarchy too deep (recursive design?)");
  }
  const Network& t = template_net(root);
  int count = 0;
  for (const Module& m : t.modules()) {
    count += templates_.contains(m.template_name)
                 ? leaf_count(m.template_name, max_depth - 1)
                 : 1;
  }
  return count;
}

}  // namespace na
