#include "netlist/module_library.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace na {

std::optional<const TemplateTerm*> ModuleTemplate::term_by_name(
    std::string_view n) const {
  for (const TemplateTerm& t : terms) {
    if (t.name == n) return &t;
  }
  return std::nullopt;
}

void ModuleLibrary::add(ModuleTemplate t) {
  auto [it, inserted] = templates_.emplace(t.name, t);
  if (inserted) {
    order_.push_back(t.name);
  } else {
    it->second = std::move(t);
  }
}

const ModuleTemplate* ModuleLibrary::find(std::string_view name) const {
  auto it = templates_.find(std::string(name));
  return it == templates_.end() ? nullptr : &it->second;
}

ModuleId ModuleLibrary::instantiate(Network& net, std::string_view tmpl,
                                    std::string instance) const {
  const ModuleTemplate* t = find(tmpl);
  if (t == nullptr) {
    throw std::runtime_error("unknown module template '" + std::string(tmpl) + "'");
  }
  const ModuleId m = net.add_module(std::move(instance), t->name, t->size);
  for (const TemplateTerm& term : t->terms) {
    net.add_terminal(m, term.name, term.type, term.pos);
  }
  return m;
}

namespace {

ModuleTemplate gate2(std::string name) {
  return {std::move(name),
          {4, 4},
          {{"a", TermType::In, {0, 1}},
           {"b", TermType::In, {0, 3}},
           {"y", TermType::Out, {4, 2}}}};
}

}  // namespace

ModuleLibrary ModuleLibrary::standard_cells() {
  ModuleLibrary lib;
  lib.add({"buf", {4, 2}, {{"a", TermType::In, {0, 1}}, {"y", TermType::Out, {4, 1}}}});
  lib.add({"inv", {4, 2}, {{"a", TermType::In, {0, 1}}, {"y", TermType::Out, {4, 1}}}});
  lib.add(gate2("and2"));
  lib.add(gate2("or2"));
  lib.add(gate2("xor2"));
  lib.add(gate2("nand2"));
  lib.add(gate2("nor2"));
  lib.add({"and3",
           {4, 4},
           {{"a", TermType::In, {0, 1}},
            {"b", TermType::In, {0, 2}},
            {"c", TermType::In, {0, 3}},
            {"y", TermType::Out, {4, 2}}}});
  lib.add({"dff",
           {6, 4},
           {{"d", TermType::In, {0, 3}},
            {"ck", TermType::In, {0, 1}},
            {"q", TermType::Out, {6, 3}},
            {"qn", TermType::Out, {6, 1}}}});
  lib.add({"mux2",
           {6, 4},
           {{"a", TermType::In, {0, 3}},
            {"b", TermType::In, {0, 1}},
            {"s", TermType::In, {3, 0}},
            {"y", TermType::Out, {6, 2}}}});
  lib.add({"adder",
           {8, 6},
           {{"a", TermType::In, {0, 4}},
            {"b", TermType::In, {0, 2}},
            {"cin", TermType::In, {4, 0}},
            {"s", TermType::Out, {8, 3}},
            {"cout", TermType::Out, {4, 6}}}});
  lib.add({"alu",
           {10, 8},
           {{"a", TermType::In, {0, 6}},
            {"b", TermType::In, {0, 2}},
            {"op", TermType::In, {5, 0}},
            {"y", TermType::Out, {10, 4}},
            {"flags", TermType::Out, {5, 8}}}});
  lib.add({"reg",
           {8, 6},
           {{"d", TermType::In, {0, 4}},
            {"en", TermType::In, {0, 2}},
            {"ck", TermType::In, {4, 0}},
            {"q", TermType::Out, {8, 3}}}});
  lib.add({"ctrl",
           {10, 10},
           {{"i0", TermType::In, {0, 3}},
            {"i1", TermType::In, {0, 7}},
            {"c0", TermType::Out, {10, 2}},
            {"c1", TermType::Out, {10, 5}},
            {"c2", TermType::Out, {10, 8}},
            {"c3", TermType::Out, {3, 10}},
            {"c4", TermType::Out, {7, 10}},
            {"c5", TermType::Out, {3, 0}},
            {"c6", TermType::Out, {7, 0}}}});
  return lib;
}

namespace {

/// Splits a line into whitespace-separated fields (Appendix A record rules).
std::vector<std::string> fields_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string f;
  while (iss >> f) out.push_back(f);
  return out;
}

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::runtime_error("module description line " + std::to_string(line_no) +
                           ": " + why);
}

/// Strict full-string integer parse: corrupted descriptions produce a
/// line/token diagnostic instead of a crash, and trailing garbage ("5x")
/// is rejected rather than silently truncated to 5.
int parse_coord(const std::string& s, int pitch, int line_no) {
  int v = 0;
  const char* first = s.data();
  const char* last = first + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || s.empty()) {
    fail(line_no, "expected integer, got '" + s + "'");
  }
  if (pitch > 1) {
    if (v % pitch != 0) {
      fail(line_no, "coordinate " + s + " not divisible by pitch " +
                        std::to_string(pitch));
    }
    v /= pitch;
  }
  return v;
}

}  // namespace

ModuleTemplate parse_module_description(std::istream& in, int pitch) {
  ModuleTemplate t;
  std::string line;
  int line_no = 0;
  bool have_heading = false;
  while (std::getline(in, line)) {
    ++line_no;
    auto f = fields_of(line);
    if (f.empty()) continue;
    if (!have_heading) {
      if (f.size() != 4 || f[0] != "module") {
        fail(line_no, "expected 'module <name> <width> <height>'");
      }
      t.name = f[1];
      t.size = {parse_coord(f[2], pitch, line_no), parse_coord(f[3], pitch, line_no)};
      if (t.size.x <= 0 || t.size.y <= 0) fail(line_no, "non-positive module size");
      have_heading = true;
      continue;
    }
    if (f.size() != 4) fail(line_no, "expected '<type> <name> <x> <y>'");
    auto type = parse_term_type(f[0]);
    if (!type) fail(line_no, "bad terminal type '" + f[0] + "'");
    geom::Point pos{parse_coord(f[2], pitch, line_no), parse_coord(f[3], pitch, line_no)};
    if (!geom::on_perimeter(pos, t.size)) {
      fail(line_no, "terminal '" + f[1] + "' not on the module outline");
    }
    t.terms.push_back({f[1], *type, pos});
  }
  if (!have_heading) throw std::runtime_error("module description: empty input");
  return t;
}

ModuleTemplate parse_module_description(std::string_view text, int pitch) {
  std::istringstream iss{std::string(text)};
  return parse_module_description(iss, pitch);
}

std::string format_module_description(const ModuleTemplate& t) {
  std::ostringstream out;
  out << "module " << t.name << ' ' << t.size.x << ' ' << t.size.y << '\n';
  for (const TemplateTerm& term : t.terms) {
    out << to_string(term.type) << ' ' << term.name << ' ' << term.pos.x << ' '
        << term.pos.y << '\n';
  }
  return out.str();
}

}  // namespace na
