#include "netlist/netlist_io.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace na {
namespace {

std::vector<std::string> fields_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string f;
  while (iss >> f) {
    if (f.starts_with('#')) break;  // comment extension
    out.push_back(f);
  }
  return out;
}

[[noreturn]] void fail(std::string_view file, int line_no, const std::string& why) {
  throw std::runtime_error(std::string(file) + " line " + std::to_string(line_no) +
                           ": " + why);
}

/// Calls `record` for each non-empty record of `in`.
template <typename Fn>
void for_each_record(std::istream& in, std::string_view file_name, Fn record) {
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto f = fields_of(line);
    if (f.empty()) continue;
    record(f, line_no);
  }
  (void)file_name;
}

}  // namespace

Network parse_network(const ModuleLibrary& lib, std::istream& call_file,
                      std::istream& io_file, std::istream& netlist_file) {
  Network net;

  for_each_record(call_file, "call-file",
                  [&](const std::vector<std::string>& f, int line_no) {
    if (f.size() != 2) fail("call-file", line_no, "expected '<instance> <template>'");
    if (f[0] == "root") fail("call-file", line_no, "'root' is a reserved instance name");
    if (net.module_by_name(f[0])) {
      fail("call-file", line_no, "duplicate instance '" + f[0] + "'");
    }
    try {
      lib.instantiate(net, f[1], f[0]);
    } catch (const std::exception& e) {
      fail("call-file", line_no, e.what());
    }
  });

  for_each_record(io_file, "io-file",
                  [&](const std::vector<std::string>& f, int line_no) {
    if (f.size() != 2) fail("io-file", line_no, "expected '<terminal> <type>'");
    auto type = parse_term_type(f[1]);
    if (!type) fail("io-file", line_no, "bad terminal type '" + f[1] + "'");
    if (net.term_by_name(kNone, f[0])) {
      fail("io-file", line_no, "duplicate system terminal '" + f[0] + "'");
    }
    net.add_system_terminal(f[0], *type);
  });

  for_each_record(netlist_file, "net-list-file",
                  [&](const std::vector<std::string>& f, int line_no) {
    if (f.size() != 3) {
      fail("net-list-file", line_no, "expected '<net> <instance> <terminal>'");
    }
    const NetId n = net.get_or_add_net(f[0]);
    ModuleId m = kNone;
    if (f[1] != "root") {
      auto found = net.module_by_name(f[1]);
      if (!found) fail("net-list-file", line_no, "unknown instance '" + f[1] + "'");
      m = *found;
    }
    auto t = net.term_by_name(m, f[2]);
    if (!t) {
      fail("net-list-file", line_no,
           "unknown terminal '" + f[2] + "' of '" + f[1] + "'");
    }
    try {
      net.connect(n, *t);
    } catch (const std::exception& e) {
      fail("net-list-file", line_no, e.what());
    }
  });

  return net;
}

Network parse_network(const ModuleLibrary& lib, std::string_view call_file,
                      std::string_view io_file, std::string_view netlist_file) {
  std::istringstream call{std::string(call_file)};
  std::istringstream io{std::string(io_file)};
  std::istringstream nl{std::string(netlist_file)};
  return parse_network(lib, call, io, nl);
}

NetlistFiles write_network(const Network& net) {
  NetlistFiles out;
  {
    std::ostringstream os;
    for (const Module& m : net.modules()) {
      os << m.name << ' ' << (m.template_name.empty() ? m.name : m.template_name)
         << '\n';
    }
    out.call_file = os.str();
  }
  {
    std::ostringstream os;
    for (TermId t : net.system_terms()) {
      os << net.term(t).name << ' ' << to_string(net.term(t).type) << '\n';
    }
    out.io_file = os.str();
  }
  {
    std::ostringstream os;
    for (const Net& n : net.nets()) {
      for (TermId t : n.terms) {
        const Terminal& term = net.term(t);
        os << n.name << ' '
           << (term.is_system() ? std::string("root") : net.module(term.module).name)
           << ' ' << term.name << '\n';
      }
    }
    out.netlist_file = os.str();
  }
  return out;
}

}  // namespace na
