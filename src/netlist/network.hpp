// The network model: modules, terminals, and nets.
//
// This is the nine-tuple representation of paper section 4.6.2,
//   (M, N, ST, T, terms, type, position-terminal, net, size)
// realised as an indexed in-memory structure:
//   * modules (M) with their sizes (size) and terminal lists (terms),
//   * subsystem terminals (T) with relative positions (position-terminal)
//     and io types (type),
//   * system terminals (ST) with io types,
//   * nets (N) as terminal sets (the relation `net`).
//
// Terminal positions are relative to the *unrotated* module's lower-left
// corner; the placement phase assigns rotations and absolute positions in a
// separate Diagram structure so a Network stays immutable through the flow.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/orientation.hpp"
#include "geom/point.hpp"

namespace na {

using ModuleId = int;
using NetId = int;
using TermId = int;
inline constexpr int kNone = -1;

/// IO type of a terminal (paper: type : T u ST -> {in, out, inout}).
enum class TermType { In, Out, InOut };

std::string to_string(TermType t);
/// Parses "in" / "out" / "inout" (Appendix A io-file syntax).
std::optional<TermType> parse_term_type(std::string_view s);

/// True when a terminal of type `from` may drive a terminal of type `to`
/// (the out/inout -> in/inout relation used by LONGEST_PATH).
constexpr bool drives(TermType from, TermType to) {
  return (from == TermType::Out || from == TermType::InOut) &&
         (to == TermType::In || to == TermType::InOut);
}

struct Terminal {
  std::string name;
  TermType type = TermType::InOut;
  geom::Point pos;          ///< relative to module lower-left; unused for system terminals
  ModuleId module = kNone;  ///< kNone => system terminal
  NetId net = kNone;        ///< kNone => unconnected

  bool is_system() const { return module == kNone; }
};

struct Module {
  std::string name;           ///< instance name
  std::string template_name;  ///< library template (may be empty for ad-hoc modules)
  geom::Point size;           ///< x and y extent in grid tracks
  std::vector<TermId> terms;
};

struct Net {
  std::string name;
  std::vector<TermId> terms;

  bool is_multipoint() const { return terms.size() > 2; }
};

/// An immutable-after-build electrical network.
///
/// Ids are dense indices (0..count-1) into the respective vectors, so
/// algorithms can use plain vectors keyed by id.
class Network {
 public:
  // ----- construction ------------------------------------------------------
  ModuleId add_module(std::string name, std::string template_name, geom::Point size);
  /// Adds a subsystem terminal.  `rel` must lie on the module perimeter.
  TermId add_terminal(ModuleId m, std::string name, TermType type, geom::Point rel);
  TermId add_system_terminal(std::string name, TermType type);
  NetId add_net(std::string name);
  /// Returns the net named `name`, creating it if absent.
  NetId get_or_add_net(std::string_view name);
  /// Attaches a terminal to a net.  A terminal joins at most one net.
  void connect(NetId n, TermId t);

  // ----- element access ----------------------------------------------------
  int module_count() const { return static_cast<int>(modules_.size()); }
  int net_count() const { return static_cast<int>(nets_.size()); }
  int term_count() const { return static_cast<int>(terms_.size()); }
  const Module& module(ModuleId m) const { return modules_.at(m); }
  const Terminal& term(TermId t) const { return terms_.at(t); }
  const Net& net(NetId n) const { return nets_.at(n); }
  const std::vector<Module>& modules() const { return modules_; }
  const std::vector<Terminal>& terms() const { return terms_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<TermId>& system_terms() const { return system_terms_; }

  std::optional<ModuleId> module_by_name(std::string_view name) const;
  std::optional<NetId> net_by_name(std::string_view name) const;
  /// Terminal of module `m` named `term_name` (kNone module => system terminal).
  std::optional<TermId> term_by_name(ModuleId m, std::string_view term_name) const;

  // ----- derived queries (paper 4.6.2 auxiliary functions) ------------------
  /// Side of the module perimeter the terminal sits on (unrotated module).
  geom::Side term_side(TermId t) const;
  /// (m0, m1) connected(n): both modules carry a terminal of net n.
  bool connected_by(ModuleId m0, ModuleId m1, NetId n) const;
  /// Number of distinct nets connecting the two modules.
  int connections(ModuleId m0, ModuleId m1) const;
  /// Number of distinct nets connecting `m` to any module for which
  /// `in_set[other]` is true (m itself is ignored).
  int connections_to(ModuleId m, const std::vector<bool>& in_set) const;
  /// Number of distinct nets with a terminal inside the set and a terminal
  /// outside it (external connection count used by FORM_PARTITION).
  int external_connections(const std::vector<bool>& in_set) const;
  /// Modules adjacent to `m` through any net (deduplicated, no self).
  std::vector<ModuleId> neighbors(ModuleId m) const;
  /// Nets touching module `m` (deduplicated).
  std::vector<NetId> nets_of(ModuleId m) const;

  // ----- validation ---------------------------------------------------------
  /// Structural checks: terminals on perimeter, nets with >= 2 terminals,
  /// no dangling references.  Returns human-readable problem descriptions.
  std::vector<std::string> validate() const;

 private:
  std::vector<Module> modules_;
  std::vector<Terminal> terms_;
  std::vector<Net> nets_;
  std::vector<TermId> system_terms_;
  std::unordered_map<std::string, ModuleId> module_names_;
  std::unordered_map<std::string, NetId> net_names_;
};

}  // namespace na
