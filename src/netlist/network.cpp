#include "netlist/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace na {

std::string to_string(TermType t) {
  switch (t) {
    case TermType::In: return "in";
    case TermType::Out: return "out";
    case TermType::InOut: return "inout";
  }
  return "?";
}

std::optional<TermType> parse_term_type(std::string_view s) {
  if (s == "in") return TermType::In;
  if (s == "out") return TermType::Out;
  if (s == "inout") return TermType::InOut;
  return std::nullopt;
}

ModuleId Network::add_module(std::string name, std::string template_name,
                             geom::Point size) {
  if (size.x <= 0 || size.y <= 0) {
    throw std::invalid_argument("module '" + name + "' must have positive size");
  }
  const ModuleId id = module_count();
  module_names_.emplace(name, id);
  modules_.push_back({std::move(name), std::move(template_name), size, {}});
  return id;
}

TermId Network::add_terminal(ModuleId m, std::string name, TermType type,
                             geom::Point rel) {
  Module& mod = modules_.at(m);
  if (!geom::on_perimeter(rel, mod.size)) {
    throw std::invalid_argument("terminal '" + name + "' of module '" + mod.name +
                                "' not on module perimeter");
  }
  const TermId id = term_count();
  terms_.push_back({std::move(name), type, rel, m, kNone});
  mod.terms.push_back(id);
  return id;
}

TermId Network::add_system_terminal(std::string name, TermType type) {
  const TermId id = term_count();
  terms_.push_back({std::move(name), type, {}, kNone, kNone});
  system_terms_.push_back(id);
  return id;
}

NetId Network::add_net(std::string name) {
  const NetId id = net_count();
  net_names_.emplace(name, id);
  nets_.push_back({std::move(name), {}});
  return id;
}

NetId Network::get_or_add_net(std::string_view name) {
  if (auto it = net_names_.find(std::string(name)); it != net_names_.end()) {
    return it->second;
  }
  return add_net(std::string(name));
}

void Network::connect(NetId n, TermId t) {
  Terminal& term = terms_.at(t);
  if (term.net == n) return;
  if (term.net != kNone) {
    throw std::invalid_argument("terminal '" + term.name + "' already connected");
  }
  term.net = n;
  nets_.at(n).terms.push_back(t);
}

std::optional<ModuleId> Network::module_by_name(std::string_view name) const {
  auto it = module_names_.find(std::string(name));
  if (it == module_names_.end()) return std::nullopt;
  return it->second;
}

std::optional<NetId> Network::net_by_name(std::string_view name) const {
  auto it = net_names_.find(std::string(name));
  if (it == net_names_.end()) return std::nullopt;
  return it->second;
}

std::optional<TermId> Network::term_by_name(ModuleId m, std::string_view term_name) const {
  if (m == kNone) {
    for (TermId t : system_terms_) {
      if (terms_[t].name == term_name) return t;
    }
    return std::nullopt;
  }
  for (TermId t : modules_.at(m).terms) {
    if (terms_[t].name == term_name) return t;
  }
  return std::nullopt;
}

geom::Side Network::term_side(TermId t) const {
  const Terminal& term = terms_.at(t);
  if (term.is_system()) return geom::Side::Left;
  return geom::side_of(term.pos, modules_[term.module].size);
}

bool Network::connected_by(ModuleId m0, ModuleId m1, NetId n) const {
  const Net& nn = nets_.at(n);
  bool has0 = false;
  bool has1 = false;
  for (TermId t : nn.terms) {
    if (terms_[t].module == m0) has0 = true;
    if (terms_[t].module == m1) has1 = true;
  }
  return has0 && has1;
}

int Network::connections(ModuleId m0, ModuleId m1) const {
  if (m0 == m1) return 0;
  int count = 0;
  for (TermId t : modules_.at(m0).terms) {
    const NetId n = terms_[t].net;
    if (n == kNone) continue;
    // Count each net once even if m0 touches it through several terminals.
    bool counted_before = false;
    for (TermId t2 : modules_[m0].terms) {
      if (t2 == t) break;
      if (terms_[t2].net == n) {
        counted_before = true;
        break;
      }
    }
    if (counted_before) continue;
    for (TermId other : nets_[n].terms) {
      if (terms_[other].module == m1) {
        ++count;
        break;
      }
    }
  }
  return count;
}

int Network::connections_to(ModuleId m, const std::vector<bool>& in_set) const {
  std::unordered_set<NetId> seen;
  int count = 0;
  for (TermId t : modules_.at(m).terms) {
    const NetId n = terms_[t].net;
    if (n == kNone || !seen.insert(n).second) continue;
    for (TermId other : nets_[n].terms) {
      const ModuleId om = terms_[other].module;
      if (om != kNone && om != m && om < static_cast<int>(in_set.size()) && in_set[om]) {
        ++count;
        break;
      }
    }
  }
  return count;
}

int Network::external_connections(const std::vector<bool>& in_set) const {
  int count = 0;
  for (const Net& n : nets_) {
    bool inside = false;
    bool outside = false;
    for (TermId t : n.terms) {
      const ModuleId m = terms_[t].module;
      const bool in =
          m != kNone && m < static_cast<int>(in_set.size()) && in_set[m];
      (in ? inside : outside) = true;
    }
    if (inside && outside) ++count;
  }
  return count;
}

std::vector<ModuleId> Network::neighbors(ModuleId m) const {
  std::unordered_set<ModuleId> seen;
  std::vector<ModuleId> result;
  for (TermId t : modules_.at(m).terms) {
    const NetId n = terms_[t].net;
    if (n == kNone) continue;
    for (TermId other : nets_[n].terms) {
      const ModuleId om = terms_[other].module;
      if (om != kNone && om != m && seen.insert(om).second) result.push_back(om);
    }
  }
  return result;
}

std::vector<NetId> Network::nets_of(ModuleId m) const {
  std::unordered_set<NetId> seen;
  std::vector<NetId> result;
  for (TermId t : modules_.at(m).terms) {
    const NetId n = terms_[t].net;
    if (n != kNone && seen.insert(n).second) result.push_back(n);
  }
  return result;
}

std::vector<std::string> Network::validate() const {
  std::vector<std::string> problems;
  for (int m = 0; m < module_count(); ++m) {
    for (TermId t : modules_[m].terms) {
      if (!geom::on_perimeter(terms_[t].pos, modules_[m].size)) {
        problems.push_back("terminal '" + terms_[t].name + "' of '" +
                           modules_[m].name + "' off perimeter");
      }
    }
    // Two terminals of one module must not coincide.
    for (size_t i = 0; i < modules_[m].terms.size(); ++i) {
      for (size_t j = i + 1; j < modules_[m].terms.size(); ++j) {
        if (terms_[modules_[m].terms[i]].pos == terms_[modules_[m].terms[j]].pos) {
          problems.push_back("module '" + modules_[m].name +
                             "' has coincident terminals");
        }
      }
    }
  }
  for (const Net& n : nets_) {
    if (n.terms.size() < 2) {
      problems.push_back("net '" + n.name + "' connects fewer than 2 terminals");
    }
  }
  return problems;
}

}  // namespace na
