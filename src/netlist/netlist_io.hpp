// Appendix-A net-list file formats: call-file, io-file, net-list-file.
//
//   call-file:     <INSTANCE> <TEMPLATE>       one record per sub-network
//   io-file:       <TERMINAL> <in|out|inout>   one record per system terminal
//   net-list-file: <NET> <INSTANCE> <TERMINAL> one record per connection,
//                  INSTANCE == "root" for a system terminal of the network.
//
// Records are whitespace-separated fields on variable-length lines; blank
// lines are ignored and '#' starts a comment (a benign extension — the
// historical format had no comments).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/module_library.hpp"
#include "netlist/network.hpp"

namespace na {

/// The three Appendix-A files as text, for round-tripping and archival.
struct NetlistFiles {
  std::string call_file;
  std::string io_file;       ///< empty when the network has no system terminals
  std::string netlist_file;
};

/// Builds a Network from the three Appendix-A files.  Module shapes come
/// from `lib`.  The io-file may be empty (paper: "If no system terminal
/// appears in the network then the io-file may be omitted").
/// Throws std::runtime_error with file/line context on malformed input or
/// unknown template / instance / terminal names.
Network parse_network(const ModuleLibrary& lib, std::istream& call_file,
                      std::istream& io_file, std::istream& netlist_file);
Network parse_network(const ModuleLibrary& lib, std::string_view call_file,
                      std::string_view io_file, std::string_view netlist_file);

/// Emits the Appendix-A files for a network (inverse of parse_network).
NetlistFiles write_network(const Network& net);

}  // namespace na
