// Shared helpers for the experiment benches: the paper's workloads with
// their published option settings, and a row printer for the
// paper-vs-measured tables each bench emits before the timing runs.
// Benches that time routing also append machine-readable records via
// bench_json_add() and call bench_json_write() before exiting; the
// resulting BENCH_routing.json lets CI track routing performance without
// scraping the human-oriented tables.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/generator.hpp"
#include "obs/metrics.hpp"
#include "gen/chain.hpp"
#include "gen/controller.hpp"
#include "gen/life.hpp"
#include "gen/random_net.hpp"
#include "route/net_order.hpp"
#include "schematic/validate.hpp"

namespace na::bench {

/// The generator settings used for each of the paper's figures.
inline GeneratorOptions fig61_options() {
  GeneratorOptions opt;  // one partition, one string
  opt.placer.max_part_size = 7;
  opt.placer.max_box_size = 7;
  return opt;
}

inline GeneratorOptions fig62_options() {
  GeneratorOptions opt;  // -p 1 -b 1 (pure clustering)
  opt.placer.max_part_size = 1;
  opt.placer.max_box_size = 1;
  opt.router.margin = 6;
  return opt;
}

inline GeneratorOptions fig63_options() {
  GeneratorOptions opt;  // -p 5 -b 1 (functional partitions, no strings)
  opt.placer.max_part_size = 5;
  opt.placer.max_box_size = 1;
  opt.placer.max_connections = 8;
  opt.router.margin = 6;
  return opt;
}

inline GeneratorOptions fig64_options() {
  GeneratorOptions opt;  // -p 7 -b 5 (partitions of strings)
  opt.placer.max_part_size = 7;
  opt.placer.max_box_size = 5;
  opt.router.margin = 6;
  return opt;
}

inline GeneratorOptions life_router_options() {
  GeneratorOptions opt;
  opt.router.margin = 12;
  opt.router.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
  return opt;
}

inline GeneratorOptions fig67_options() {
  GeneratorOptions opt = life_router_options();  // automatic LIFE placement
  opt.placer.max_part_size = 3;                  // one partition per cell
  opt.placer.max_box_size = 3;
  opt.placer.module_spacing = 1;
  opt.placer.partition_spacing = 2;
  return opt;
}

/// Aborts the bench when a reconstructed workload drifts from the paper's
/// published size — the tables are meaningless otherwise.
inline void require_counts(const Network& net, int modules, int nets,
                           const char* what) {
  if (net.module_count() != modules || net.net_count() != nets) {
    std::fprintf(stderr, "FATAL: %s has %d modules / %d nets, paper says %d / %d\n",
                 what, net.module_count(), net.net_count(), modules, nets);
    std::abort();
  }
}

/// Aborts when a diagram violates the drawing rules — benches must never
/// time invalid output.
inline void require_valid(const Diagram& dia, const char* what) {
  const auto problems = validate_diagram(dia);
  if (!problems.empty()) {
    std::fprintf(stderr, "FATAL: %s produced an invalid diagram: %s\n", what,
                 problems.front().c_str());
    std::abort();
  }
}

/// The one table every bench's paper-vs-measured block renders through
/// (obs::MetricsTable does the layout; the per-bench printf format strings
/// are gone).  Rows accumulate across print_header calls, which is fine:
/// each row is printed the moment it is added.
inline obs::MetricsTable& bench_table() {
  static obs::MetricsTable table(
      "configuration", {"modules", "nets", "unrouted", "bends", "cross",
                        "length", "width", "height"});
  return table;
}

inline void print_header(const char* title, const char* paper_claim) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::fputs(bench_table().header_text().c_str(), stdout);
}

inline void print_row(const std::string& name, const DiagramStats& s) {
  obs::MetricsTable& t = bench_table();
  t.add_row(name, {s.modules, s.nets, s.unrouted, s.bends, s.crossings,
                   s.wire_length, s.width, s.height});
  std::fputs(t.row_text(t.rows() - 1).c_str(), stdout);
}

// ----- machine-readable timing records ---------------------------------------

/// One extra named counter attached to a record.
using BenchField = std::pair<std::string, obs::MetricValue>;

struct BenchRecord {
  std::string bench;   ///< source bench executable, e.g. "fig66_67_life"
  std::string config;  ///< measured configuration, e.g. "threads=4"
  double ms = 0;       ///< wall-clock of the timed run
  long expansions = 0; ///< RouteReport::total_expansions (0 when untracked)
  /// Extra per-record counters, emitted after the fixed fields in order.
  std::vector<BenchField> fields;
};

inline std::vector<BenchRecord>& bench_json_records() {
  static std::vector<BenchRecord> records;
  return records;
}

inline void bench_json_add(std::string bench, std::string config, double ms,
                           long expansions,
                           std::vector<BenchField> fields = {}) {
  bench_json_records().push_back(
      {std::move(bench), std::move(config), ms, expansions, std::move(fields)});
}

/// Writes every record collected so far through the shared obs::JsonWriter:
/// {"schema_version": N, "records": [...]} — the same versioned envelope
/// (and the same emitter) as the --stats json emission.
inline void bench_json_write(const char* path = "BENCH_routing.json") {
  obs::JsonWriter w;
  w.begin_object()
      .field("schema_version", obs::MetricsRegistry::kSchemaVersion)
      .key("records")
      .begin_array();
  const auto& records = bench_json_records();
  for (const BenchRecord& r : records) {
    w.begin_object()
        .field("bench", std::string_view(r.bench))
        .field("config", std::string_view(r.config))
        .field("ms", r.ms)
        .field("expansions", static_cast<long long>(r.expansions));
    for (const BenchField& f : r.fields) w.field(f.first, f.second);
    w.end_object();
  }
  w.end_array().end_object();
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, records.size());
}

}  // namespace na::bench
