// Scale tier — synthetic grid meshes at 1k/10k/100k modules, placed and
// routed end-to-end, with the sharded router A/B'd against the
// single-shard sequential driver at 10k.
//
// Emits BENCH_scale.json: one record per (size, configuration) with
// modules/sec, peak RSS, shard balance and the stitch-net share — the
// numbers EXPERIMENTS.md's "Scale tier" table quotes.
//
// NA_SCALE_MAX_MODULES caps the sweep (the ctest `scale` smoke runs with
// 1000 so the default suite stays fast; the full 10k/100k sweep is
// bench-only).
#include <chrono>
#include <cstdlib>

#include "bench_util.hpp"
#include "gen/synth.hpp"
#include "place/placer.hpp"
#include "route/shard_route.hpp"

namespace {

using namespace na;
using namespace na::bench;

GeneratorOptions scale_options() {
  GeneratorOptions opt;
  opt.placer.max_part_size = 8;
  opt.placer.max_box_size = 4;
  opt.placer.max_connections = 16;
  opt.router.margin = 6;
  return opt;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  double place_s = 0;
  double route_s = 0;
  RouteReport report;
  ShardRouteStats shard_stats;
};

/// Places a fresh diagram and routes it with the given shard setup.
RunResult run_one(const Network& net, const GeneratorOptions& opt,
                  const ShardOptions& sopt, Diagram* out = nullptr) {
  RunResult r;
  Diagram dia(net);
  auto t0 = std::chrono::steady_clock::now();
  place(dia, opt.placer);
  r.place_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  r.report = shard_route_all(dia, opt.router, sopt, &r.shard_stats);
  r.route_s = seconds_since(t0);
  if (out != nullptr) *out = std::move(dia);
  return r;
}

void record(const char* config, int modules, int nets, const RunResult& r) {
  const double total_s = r.place_s + r.route_s;
  const double mps = total_s > 0 ? modules / total_s : 0;
  const double stitch_share =
      r.shard_stats.nets_intra + r.shard_stats.nets_stitch > 0
          ? static_cast<double>(r.shard_stats.nets_stitch) /
                (r.shard_stats.nets_intra + r.shard_stats.nets_stitch)
          : 0.0;
  std::printf(
      "%-28s %8d modules  place %8.1f ms  route %9.1f ms  %8.0f mod/s  "
      "unrouted %d  stitch %4.1f%%  balance %.2f  rss %lld MB\n",
      config, modules, r.place_s * 1e3, r.route_s * 1e3, mps,
      r.report.nets_failed, stitch_share * 100, r.shard_stats.balance,
      obs::peak_rss_bytes() >> 20);
  bench_json_add("scale", config, r.route_s * 1e3, r.report.total_expansions,
                 {{"modules", modules},
                  {"nets", nets},
                  {"place_ms", r.place_s * 1e3},
                  {"modules_per_sec", mps},
                  {"unrouted", r.report.nets_failed},
                  {"shards", static_cast<int>(r.shard_stats.shard_nets.size())},
                  {"stitch_share", stitch_share},
                  {"shard_balance", r.shard_stats.balance},
                  {"peak_rss_bytes", obs::peak_rss_bytes()}});
}

}  // namespace

int main() {
  const long cap = [] {
    const char* env = std::getenv("NA_SCALE_MAX_MODULES");
    return env != nullptr ? std::atol(env) : 200000L;
  }();
  const GeneratorOptions opt = scale_options();

  std::printf("\n=== scale tier — synthetic grid mesh, sharded routing ===\n");
  struct Tier {
    int modules;
    int shards;
  };
  for (const Tier tier : {Tier{1000, 4}, Tier{10000, 8}, Tier{100000, 16}}) {
    if (tier.modules > cap) continue;
    gen::SynthOptions sopt;
    sopt.topology = gen::SynthTopology::GridMesh;
    sopt.modules = tier.modules;
    sopt.seed = 1;
    const Network net = gen::synth_network(sopt);

    ShardOptions shard;
    shard.shards = tier.shards;
    shard.threads = 4;
    const std::string cfg = "mesh" + std::to_string(tier.modules) + " shards=" +
                            std::to_string(tier.shards);
    Diagram routed(net);
    const RunResult sharded = run_one(net, opt, shard, &routed);
    record(cfg.c_str(), net.module_count(), net.net_count(), sharded);
    if (tier.modules <= 10000) require_valid(routed, cfg.c_str());

    // A/B at 10k: the same workload on the single-shard sequential driver.
    if (tier.modules == 10000) {
      const RunResult baseline = run_one(net, opt, ShardOptions{1, 16, 1});
      record("mesh10000 shards=1 (base)", net.module_count(), net.net_count(),
             baseline);
      std::printf("10k speedup (route wall-clock): %.2fx\n",
                  baseline.route_s / sharded.route_s);
      bench_json_add("scale", "mesh10000 speedup", sharded.route_s * 1e3, 0,
                     {{"speedup", baseline.route_s / sharded.route_s}});
    }
  }
  bench_json_write("BENCH_scale.json");
  return 0;
}
