// Scaling study — Table 6.1 extended beyond the paper's three sizes:
// generation cost as the network grows, on the parameterised bit-sliced
// datapath (3n+1 modules).  The paper's complexity remarks to check:
// "The complexity of placing the modules, strings and partitions is
// strongly related to the number of modules in the network" (4.6.8) and
// "The complexity of the [routing] algorithm is strongly related to the
// number of bends in the constructed path" (5.8) — i.e. both grow
// smoothly, routing dominating.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "gen/datapath.hpp"
#include "place/placer.hpp"

namespace {

using namespace na;
using namespace na::bench;

GeneratorOptions scaling_options() {
  GeneratorOptions opt;
  opt.placer.max_part_size = 6;
  opt.placer.max_box_size = 4;
  opt.placer.max_connections = 12;
  opt.router.margin = 8;
  opt.router.order_criterion = 2;
  return opt;
}

void BM_Datapath_Place(benchmark::State& state) {
  const Network net = gen::datapath_network({static_cast<int>(state.range(0))});
  const GeneratorOptions opt = scaling_options();
  for (auto _ : state) {
    Diagram dia(net);
    place(dia, opt.placer);
    benchmark::DoNotOptimize(dia.placement_bounds());
  }
  state.counters["modules"] = net.module_count();
}

void BM_Datapath_Route(benchmark::State& state) {
  const Network net = gen::datapath_network({static_cast<int>(state.range(0))});
  const GeneratorOptions opt = scaling_options();
  Diagram placed(net);
  place(placed, opt.placer);
  int unrouted = 0;
  for (auto _ : state) {
    Diagram dia = placed;
    unrouted = route_all(dia, opt.router).nets_failed;
  }
  state.counters["nets"] = net.net_count();
  state.counters["unrouted"] = unrouted;
}

BENCHMARK(BM_Datapath_Place)->DenseRange(2, 14, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Datapath_Route)->DenseRange(2, 14, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;
  std::printf("\n=== scaling — generation cost vs network size (datapath family) ===\n");
  std::printf("%6s %8s %6s %9s %6s %6s %9s %9s\n", "bits", "modules", "nets",
              "unrouted", "bends", "cross", "place-ms", "route-ms");
  for (int bits : {2, 4, 8, 12, 16}) {
    const Network net = gen::datapath_network({bits});
    GeneratorResult r;
    const Diagram dia = generate_diagram(net, scaling_options(), &r);
    require_valid(dia, "datapath");
    std::printf("%6d %8d %6d %9d %6d %6d %9.2f %9.1f\n", bits, r.stats.modules,
                r.stats.nets, r.stats.unrouted, r.stats.bends, r.stats.crossings,
                r.place_seconds * 1e3, r.route_seconds * 1e3);
    bench_json_add("scaling", "datapath bits=" + std::to_string(bits),
                   r.route_seconds * 1e3, r.route.total_expansions);
  }
  bench_json_write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
