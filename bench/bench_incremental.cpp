// The incremental regeneration engine under the ESCHER-style edit loop:
// small edit scripts (re-pin a terminal, add a module, delete a net)
// against the LIFE diagram and an automatically generated datapath, each
// measured as incremental update vs full from-scratch regeneration.
//
// The ISSUE acceptance scenario is the first one: a single-module edit on
// the hand-placed LIFE diagram must re-route < 25% of the 222 nets and run
// >= 3x faster than the full regeneration.  Machine-readable timings land
// in BENCH_incremental.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "bench_util.hpp"
#include "gen/datapath.hpp"
#include "incremental/edit.hpp"
#include "incremental/session.hpp"
#include "schematic/metrics.hpp"

namespace {

using namespace na;
using namespace na::bench;

const Network& life() {
  static const Network net = [] {
    Network n = gen::life_network();
    require_counts(n, 27, 222, "LIFE network");
    return n;
  }();
  return net;
}

RegenOptions life_session_options() {
  RegenOptions opt;
  opt.generator = fig67_options();
  return opt;
}

/// The routed hand-placed LIFE diagram every LIFE scenario starts from.
const Diagram& life_baseline() {
  static const Diagram dia = [] {
    Diagram d(life());
    gen::life_hand_placement(d);
    route_all(d, life_session_options().generator.router);
    require_valid(d, "LIFE baseline");
    return d;
  }();
  return dia;
}

// ----- the edit scripts ------------------------------------------------------

Network life_repin() {  // single-module edit: move rule11's write-enable pin
  NetworkEditor ed(life());
  ed.move_terminal("rule11", "we", {6, 11});
  return ed.build();
}

Network life_add_module() {  // attach a probe module to the global mode net
  NetworkEditor ed(life());
  ed.add_module("probe", "probe", {4, 4});
  ed.add_module_terminal("probe", "i", TermType::In, {0, 2});
  ed.connect("mode", "probe", "i");
  return ed.build();
}

Network life_delete_net() {  // drop one observation tap
  NetworkEditor ed(life());
  ed.remove_net("alive0");
  return ed.build();
}

// ----- measurement harness ---------------------------------------------------

struct Timing {
  double ms = 1e18;  ///< best of the repetitions
  RegenCounters counters;
  long expansions = 0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Times session.update(edited) on a session freshly adopted from the
/// routed LIFE baseline.  Adoption happens outside the timed region: the
/// editor pays it once per loaded diagram, not once per edit.
/// `validate_full` forces the pre-region whole-diagram check — the
/// baseline the region-scoped validation share is measured against.
Timing time_life_incremental(const Network& edited, bool validate_full = false) {
  Timing best;
  for (int rep = 0; rep < 5; ++rep) {
    RegenOptions opt = life_session_options();
    opt.validate_full = validate_full;
    RegenSession session(opt);
    session.adopt(life(), life_baseline());
    const auto t0 = std::chrono::steady_clock::now();
    session.update(edited);
    best.ms = std::min(best.ms, ms_since(t0));
    best.counters = session.last();
    best.expansions = session.last().route_expansions;
    require_valid(session.diagram(), "incremental LIFE update");
  }
  return best;
}

/// The from-scratch cost of the same edited netlist: hand placement for
/// the surviving LIFE modules, automatic placement for anything new, plus
/// a full route of all nets — what the editor would pay without the engine.
Timing time_life_full(const Network& edited) {
  Timing best;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    Diagram dia(edited);
    gen::life_hand_placement(dia);
    const GeneratorResult r = generate(dia, life_session_options().generator);
    best.ms = std::min(best.ms, ms_since(t0));
    best.counters.nets_rerouted = r.route.nets_routed;
    best.expansions = r.route.total_expansions;
    require_valid(dia, "from-scratch LIFE regen");
  }
  return best;
}

/// Validation share and patch-keep counters of one incremental update,
/// attached to its JSON record.
std::vector<bench::BenchField> validation_extra(const Timing& t) {
  return {{"validate_ms", t.counters.validate_ms},
          {"validate_share", t.counters.validate_ms / t.ms},
          {"region_validations", t.counters.region_validations},
          {"full_validations", t.counters.full_validations},
          {"nets_extended", t.counters.nets_extended}};
}

void report_scenario(const char* name, const Timing& inc, const Timing& full,
                     int net_count) {
  std::printf(
      "    %-16s incremental %6.1fms  full %6.1fms  speedup %4.1fx  "
      "rerouted %d/%d kept %d extended %d scrubbed %d replaced %d frozen %d  "
      "validate %.2fms (%s)\n",
      name, inc.ms, full.ms, full.ms / inc.ms, inc.counters.nets_rerouted,
      net_count, inc.counters.nets_kept, inc.counters.nets_extended,
      inc.counters.cells_scrubbed, inc.counters.modules_replaced,
      inc.counters.modules_frozen,
      inc.counters.validate_ms,
      inc.counters.full_validations ? "full" : "region");
  bench_json_add("incremental", std::string(name) + "_incremental", inc.ms,
                 inc.expansions, validation_extra(inc));
  bench_json_add("incremental", std::string(name) + "_full", full.ms,
                 full.expansions);
}

// ----- google-benchmark entries ---------------------------------------------

void BM_LifeRepin_Incremental(benchmark::State& state) {
  const Network edited = life_repin();
  int rerouted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    RegenSession session(life_session_options());
    session.adopt(life(), life_baseline());
    state.ResumeTiming();
    session.update(edited);
    rerouted = session.last().nets_rerouted;
  }
  state.counters["rerouted"] = rerouted;
}

void BM_LifeRepin_FullRegen(benchmark::State& state) {
  const Network edited = life_repin();
  for (auto _ : state) {
    Diagram dia(edited);
    gen::life_hand_placement(dia);
    benchmark::DoNotOptimize(route_all(dia, life_session_options().generator.router));
  }
}

void BM_DatapathAddModule_Incremental(benchmark::State& state) {
  const Network net = gen::datapath_network({16});
  NetworkEditor ed(net);
  ed.add_module("probe", "probe", {4, 4});
  ed.add_module_terminal("probe", "i", TermType::In, {0, 2});
  ed.connect("b7_acc", "probe", "i");
  const Network edited = ed.build();
  RegenOptions opt;
  opt.generator.placer.max_part_size = 5;
  opt.generator.placer.max_box_size = 3;
  int rerouted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    RegenSession session(opt);
    session.update(net);
    state.ResumeTiming();
    session.update(edited);
    rerouted = session.last().nets_rerouted;
  }
  state.counters["rerouted"] = rerouted;
}

BENCHMARK(BM_LifeRepin_Incremental)->Unit(benchmark::kMillisecond)->MinTime(2.0);
BENCHMARK(BM_LifeRepin_FullRegen)->Unit(benchmark::kMillisecond)->MinTime(2.0);
BENCHMARK(BM_DatapathAddModule_Incremental)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;

  print_header("incremental regeneration — edit scripts",
               "no historical counterpart; acceptance: single-module LIFE edit "
               "re-routes < 25% of nets, >= 3x faster than full regen");

  const int nets = life().net_count();
  struct Scenario {
    const char* name;
    Network edited;
  };
  const Scenario scenarios[] = {
      {"life_repin", life_repin()},
      {"life_add_module", life_add_module()},
      {"life_delete_net", life_delete_net()},
  };
  for (const Scenario& s : scenarios) {
    const Timing inc = time_life_incremental(s.edited);
    const Timing full = time_life_full(s.edited);
    report_scenario(s.name, inc, full, nets);
    if (inc.counters.incremental != 1) {
      std::fprintf(stderr, "FATAL: %s fell back to full regeneration\n", s.name);
      std::abort();
    }
  }

  // Validation-share comparison on the repin scenario: the same patch
  // checked by the whole-diagram validator (pre-region behaviour) vs the
  // region-scoped one RegenSession now uses by default.
  const Network repin = life_repin();
  const Timing check_full = time_life_incremental(repin, /*validate_full=*/true);
  const Timing check_region = time_life_incremental(repin);
  std::printf(
      "    %-16s full check %.2fms of %.1fms (%.0f%%)  region check %.2fms of "
      "%.1fms (%.0f%%)\n",
      "repin_validation", check_full.counters.validate_ms, check_full.ms,
      100.0 * check_full.counters.validate_ms / check_full.ms,
      check_region.counters.validate_ms, check_region.ms,
      100.0 * check_region.counters.validate_ms / check_region.ms);
  bench_json_add("incremental", "life_repin_validate_full", check_full.ms,
                 check_full.expansions, validation_extra(check_full));
  bench_json_add("incremental", "life_repin_validate_region", check_region.ms,
                 check_region.expansions, validation_extra(check_region));
  bench_json_write("BENCH_incremental.json");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
