// Section 5.7 ablation — claimpoints: "in practice, a decrease of about
// 75% in the number of unroutable nets may be obtained."
//
// The bench routes a set of congested placements with claimpoints (and the
// retry pass) on and off, reporting unroutable-net counts.  The retry pass
// is ablated separately since it is part of the same extension ("all
// unconnected terminals should be tried again after all the claimpoints
// have been removed").
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "gen/facing.hpp"
#include "place/placer.hpp"

namespace {

using namespace na;
using namespace na::bench;

/// A Diagram references its Network, so both live behind stable pointers.
struct Workload {
  std::string name;
  std::unique_ptr<Network> net;
  std::unique_ptr<Diagram> placed;
};

/// Congested workloads: the LIFE board (hand and auto placement) plus
/// random networks placed with tight spacing.
std::vector<Workload>& workloads() {
  static std::vector<Workload> all = [] {
    std::vector<Workload> w;
    auto add = [&w](std::string name, Network net) -> Workload& {
      Workload item;
      item.name = std::move(name);
      item.net = std::make_unique<Network>(std::move(net));
      item.placed = std::make_unique<Diagram>(*item.net);
      w.push_back(std::move(item));
      return w.back();
    };
    // Facing-pair channels (the scaled figure 5.10 scenario): the failure
    // mode claimpoints target.  Channel widths 3 and 4 bracket the paper's
    // operating point.
    for (int channel : {3, 4}) {
      for (unsigned seed = 1; seed <= 4; ++seed) {
        gen::FacingOptions fopt;
        fopt.channel = channel;
        fopt.seed = seed;
        Workload& f = add("facing-c" + std::to_string(channel) + "-s" +
                              std::to_string(seed),
                          gen::facing_pairs(fopt));
        gen::facing_placement(*f.placed, fopt);
      }
    }
    // The LIFE board for context: its residual failures are ring-capacity
    // bound, which claims help less with.
    gen::life_hand_placement(*add("life-hand", gen::life_network()).placed);
    place(*add("life-auto", gen::life_network()).placed, fig67_options().placer);
    return w;
  }();
  return all;
}

int route_failures(const Workload& w, bool claims, bool retry) {
  Diagram dia = *w.placed;
  RouterOptions opt;
  opt.use_claimpoints = claims;
  opt.retry_failed = retry;
  opt.margin = 6;
  return route_all(dia, opt).nets_failed;
}

void BM_Route_Claims(benchmark::State& state) {
  const bool claims = state.range(0) != 0;
  int total_failed = 0;
  for (auto _ : state) {
    total_failed = 0;
    for (const Workload& w : workloads()) {
      total_failed += route_failures(w, claims, true);
    }
  }
  state.counters["unrouted_total"] = total_failed;
  state.SetLabel(claims ? "claimpoints on" : "claimpoints off");
}

BENCHMARK(BM_Route_Claims)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->MinTime(1.0);

}  // namespace

int main(int argc, char** argv) {
  using namespace na::bench;
  std::printf("\n=== section 5.7 — claimpoints ablation ===\n");
  std::printf("paper: claimpoints give ~75%% fewer unroutable nets\n");
  std::printf("%-14s %12s %12s %12s %12s\n", "workload", "no-claims", "claims",
              "retry-only", "claims+retry");
  int sum_none = 0, sum_claims = 0, sum_retry = 0, sum_full = 0;
  int facing_none = 0, facing_full = 0;
  for (const Workload& w : workloads()) {
    const int none = route_failures(w, false, false);
    const int claims_only = route_failures(w, true, false);
    const int retry_only = route_failures(w, false, true);
    const int full = route_failures(w, true, true);
    std::printf("%-14s %12d %12d %12d %12d\n", w.name.c_str(), none, claims_only,
                retry_only, full);
    sum_none += none;
    sum_claims += claims_only;
    sum_retry += retry_only;
    sum_full += full;
    if (w.name.starts_with("facing")) {
      facing_none += none;
      facing_full += full;
    }
  }
  std::printf("%-14s %12d %12d %12d %12d\n", "TOTAL", sum_none, sum_claims,
              sum_retry, sum_full);
  if (facing_none > 0) {
    std::printf("reduction on blocked-terminal workloads (facing-*): %.0f%% "
                "(paper: ~75%%)\n",
                100.0 * (facing_none - facing_full) / facing_none);
  }
  if (sum_none > 0) {
    std::printf("reduction overall (incl. ring-capacity-bound LIFE): %.0f%%\n",
                100.0 * (sum_none - sum_full) / sum_none);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
