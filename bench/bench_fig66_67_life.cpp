// Figures 6.6/6.7 — the LIFE network (27 modules, 222 nets).
//
// Paper:
//   6.6  modules placed by hand, routing added automatically: "there are
//        222 nets and only two nets were routed unsuccessfully"; 1:32 CPU.
//   6.7  completely automatic generation: "the routing of just one net was
//        impossible"; placement 0:27, routing 11:36 — "it is obvious that
//        the placement is the crucial part of the generator.  If the
//        placement is bad then the routing becomes slower."
//
// Reproduced shape: both variants route (essentially) everything; the
// automatic placement yields a denser, slower-to-route diagram with more
// crossings and longer wire than the hand placement.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "place/placer.hpp"
#include "schematic/metrics.hpp"

namespace {

using namespace na;
using namespace na::bench;

const Network& life() {
  static const Network net = [] {
    Network n = gen::life_network();
    require_counts(n, 27, 222, "LIFE network");
    return n;
  }();
  return net;
}

void BM_Fig66_HandPlusRoute(benchmark::State& state) {
  Diagram placed(life());
  gen::life_hand_placement(placed);
  const GeneratorOptions opt = life_router_options();
  int unrouted = 0;
  for (auto _ : state) {
    Diagram dia = placed;
    unrouted = route_all(dia, opt.router).nets_failed;
  }
  state.counters["unrouted"] = unrouted;
}

void BM_Fig67_FullyAutomatic(benchmark::State& state) {
  const GeneratorOptions opt = fig67_options();
  int unrouted = 0;
  for (auto _ : state) {
    GeneratorResult result;
    const Diagram dia = generate_diagram(life(), opt, &result);
    unrouted = result.route.nets_failed;
    benchmark::DoNotOptimize(dia.routed_count());
  }
  state.counters["unrouted"] = unrouted;
}

// The historical behaviour (net-list order, no ordering criterion): the
// configuration whose failure counts the paper actually reports.
void BM_Fig67_HistoricalOrder(benchmark::State& state) {
  GeneratorOptions opt = fig67_options();
  opt.router.order_criterion = 0;
  int unrouted = 0;
  for (auto _ : state) {
    GeneratorResult result;
    const Diagram dia = generate_diagram(life(), opt, &result);
    unrouted = result.route.nets_failed;
    benchmark::DoNotOptimize(dia.routed_count());
  }
  state.counters["unrouted"] = unrouted;
}

BENCHMARK(BM_Fig66_HandPlusRoute)->Unit(benchmark::kMillisecond)->MinTime(2.0);
BENCHMARK(BM_Fig67_FullyAutomatic)->Unit(benchmark::kMillisecond)->MinTime(2.0);
BENCHMARK(BM_Fig67_HistoricalOrder)->Unit(benchmark::kMillisecond)->MinTime(2.0);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;

  print_header("figures 6.6/6.7 — the LIFE network",
               "6.6 hand-placed: 2/222 unrouted; 6.7 automatic: 1/222 unrouted, "
               "routing ~7x slower than 6.6");

  {
    Diagram dia(life());
    gen::life_hand_placement(dia);
    const GeneratorOptions opt = life_router_options();
    const GeneratorResult r = generate(dia, opt);
    require_valid(dia, "fig 6.6");
    print_row("fig 6.6: hand + route", r.stats);
    std::printf("    route=%.0fms retried=%d\n", r.route_seconds * 1e3,
                r.route.retried_connections);
  }
  {
    GeneratorResult r;
    const Diagram dia = generate_diagram(life(), fig67_options(), &r);
    require_valid(dia, "fig 6.7");
    print_row("fig 6.7: fully automatic", r.stats);
    std::printf("    place=%.0fms route=%.0fms\n", r.place_seconds * 1e3,
                r.route_seconds * 1e3);
  }
  {
    GeneratorOptions opt = fig67_options();
    opt.router.order_criterion = 0;
    GeneratorResult r;
    const Diagram dia = generate_diagram(life(), opt, &r);
    require_valid(dia, "fig 6.7 historical order");
    print_row("fig 6.7 (netlist order)", r.stats);
  }

  // Sequential vs speculative-parallel routing on the hand placement (the
  // fig 6.6 workload), best of three runs each; the parallel thread counts
  // run both with the default re-speculation budget and with re-speculation
  // disabled (respec=0) so the JSON records isolate its effect.
  {
    Diagram placed(life());
    gen::life_hand_placement(placed);
    GeneratorOptions opt = life_router_options();
    const int default_respec = opt.router.respec_budget;
    for (int threads : {1, 2, 4}) {
      std::vector<int> budgets = {default_respec};
      if (threads > 1) budgets.push_back(0);  // isolate re-speculation's effect
      for (int respec : budgets) {
        opt.router.threads = threads;
        opt.router.respec_budget = respec;
        double best = 1e18;
        long expansions = 0;
        ParallelRouteStats spec;
        for (int rep = 0; rep < 3; ++rep) {
          Diagram dia = placed;
          const auto t0 = std::chrono::steady_clock::now();
          const RouteReport r = route_all(dia, opt.router, &spec);
          const auto t1 = std::chrono::steady_clock::now();
          const double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          if (ms < best) best = ms;
          expansions = r.total_expansions;
        }
        std::string config = "threads=" + std::to_string(threads);
        if (threads > 1 && respec != default_respec) {
          config += ",respec=" + std::to_string(respec);
        }
        std::vector<bench::BenchField> extra;
        if (threads > 1) {
          extra = {{"nets_respeculated", spec.nets_respeculated},
                   {"respec_hits", spec.respec_hits},
                   {"respec_stale", spec.respec_stale},
                   {"reroutes", spec.reroutes}};
        }
        std::printf(
            "    fig 6.6 route %s: %.0fms (%ld expansions, %d respeculated, "
            "%d hits)\n",
            config.c_str(), best, expansions, spec.nets_respeculated,
            spec.respec_hits);
        bench_json_add("fig66_67_life", config, best, expansions,
                       std::move(extra));
      }
    }
  }
  bench_json_write();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
