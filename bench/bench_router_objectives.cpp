// Section 5.4 / Appendix F ablation — the router's objective ordering:
//
//   default: minimum bends, then minimum crossovers, then minimum length;
//   -s     : minimum bends, then minimum *length*, then crossovers.
//
// The bench routes the same placements under both orderings plus the net
// ordering criteria of section 7 ("it is probably better to construct a
// certain criterion for selecting the next net to be routed"), reporting
// the bends/crossings/length trade-off.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "place/placer.hpp"
#include "schematic/metrics.hpp"

namespace {

using namespace na;
using namespace na::bench;

struct Workload {
  std::string name;
  std::unique_ptr<Network> net;
  std::unique_ptr<Diagram> placed;
};

std::vector<Workload>& workloads() {
  static std::vector<Workload> all = [] {
    std::vector<Workload> w;
    auto add = [&w](std::string name, Network net) -> Workload& {
      Workload item;
      item.name = std::move(name);
      item.net = std::make_unique<Network>(std::move(net));
      item.placed = std::make_unique<Diagram>(*item.net);
      w.push_back(std::move(item));
      return w.back();
    };
    place(*add("controller", gen::controller_network()).placed,
          fig63_options().placer);
    gen::life_hand_placement(*add("life-hand", gen::life_network()).placed);
    for (unsigned seed : {21u, 22u}) {
      gen::RandomNetOptions gopt;
      gopt.modules = 14;
      gopt.extra_nets = 10;
      gopt.seed = seed;
      Workload& r = add("random-" + std::to_string(seed), gen::random_network(gopt));
      PlacerOptions popt;
      popt.max_part_size = 4;
      popt.max_box_size = 3;
      place(*r.placed, popt);
    }
    return w;
  }();
  return all;
}

DiagramStats route_with(const Workload& w, CostOrder order, int criterion) {
  Diagram dia = *w.placed;
  RouterOptions opt;
  opt.order = order;
  opt.order_criterion = criterion;
  opt.margin = 12;
  route_all(dia, opt);
  require_valid(dia, w.name.c_str());
  return compute_stats(dia);
}

void BM_Objective(benchmark::State& state) {
  const CostOrder order = state.range(0) == 0 ? CostOrder::BendsCrossingsLength
                                              : CostOrder::BendsLengthCrossings;
  for (auto _ : state) {
    for (const Workload& w : workloads()) {
      benchmark::DoNotOptimize(route_with(w, order, 0).bends);
    }
  }
  state.SetLabel(state.range(0) == 0 ? "bends,cross,len" : "bends,len,cross (-s)");
}

BENCHMARK(BM_Objective)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->MinTime(1.0);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;

  std::printf("\n=== section 5.4 — objective ordering (crossings vs length) ===\n");
  std::printf("paper: default minimises crossings before length; -s swaps them\n");
  std::printf("%-14s | %21s | %21s\n", "", "default (b,c,l)", "-s (b,l,c)");
  std::printf("%-14s | %6s %6s %7s | %6s %6s %7s\n", "workload", "bends", "cross",
              "length", "bends", "cross", "length");
  for (const Workload& w : workloads()) {
    const DiagramStats d = route_with(w, CostOrder::BendsCrossingsLength, 0);
    const DiagramStats s = route_with(w, CostOrder::BendsLengthCrossings, 0);
    std::printf("%-14s | %6d %6d %7d | %6d %6d %7d\n", w.name.c_str(), d.bends,
                d.crossings, d.wire_length, s.bends, s.crossings, s.wire_length);
  }

  std::printf("\n--- section 7 — net ordering criteria (unrouted / bends) ---\n");
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "workload", "as-given",
              "short-1st", "long-1st", "few-terms", "many-terms");
  for (const Workload& w : workloads()) {
    std::printf("%-14s", w.name.c_str());
    for (int crit = 0; crit < 5; ++crit) {
      const DiagramStats st = route_with(w, CostOrder::BendsCrossingsLength, crit);
      std::printf("   %3d/%-4d", st.unrouted, st.bends);
    }
    std::printf("\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
