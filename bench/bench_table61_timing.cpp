// Table 6.1 — "Timing Figures": placement and routing CPU time for every
// figure of the paper's results chapter.
//
//   paper (HP9000s500, 1989):
//     fig   modules  nets   placement  routing
//     6.1       6      6       0:03      0:03
//     6.2      16     24       0:06      0:10
//     6.3      16     24       0:06      0:11
//     6.4      16     24       0:04      0:09
//     6.5      16     24        -        0:12
//     6.6      27    222        -        1:32   (hand placement)
//     6.7      27    222       0:27     11:36   (automatic placement)
//
// Absolute numbers are hardware-bound; the shape to reproduce is
//   * placement is fast relative to routing on the dense workloads,
//   * the automatically placed LIFE (6.7) routes several times slower than
//     the hand-placed one (6.6) — "if the placement is bad then the
//     routing becomes slower".
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace na;
using namespace na::bench;

const Network& chain_net() {
  static const Network net = [] {
    Network n = gen::chain_network({});
    require_counts(n, 6, 6, "figure 6.1 chain");
    return n;
  }();
  return net;
}

const Network& ctrl_net() {
  static const Network net = [] {
    Network n = gen::controller_network();
    require_counts(n, 16, 24, "figure 6.2 controller");
    return n;
  }();
  return net;
}

const Network& life_net() {
  static const Network net = [] {
    Network n = gen::life_network();
    require_counts(n, 27, 222, "figure 6.6 LIFE");
    return n;
  }();
  return net;
}

void placement_bench(benchmark::State& state, const Network& net,
                     const GeneratorOptions& opt) {
  for (auto _ : state) {
    Diagram dia(net);
    place(dia, opt.placer);
    benchmark::DoNotOptimize(dia.placement_bounds());
  }
}

void routing_bench(benchmark::State& state, const Network& net,
                   const GeneratorOptions& opt, bool hand_placed = false) {
  Diagram placed(net);
  if (hand_placed) {
    gen::life_hand_placement(placed);
  } else {
    place(placed, opt.placer);
  }
  int unrouted = 0;
  for (auto _ : state) {
    Diagram dia = placed;
    const RouteReport r = route_all(dia, opt.router);
    unrouted = r.nets_failed;
    benchmark::DoNotOptimize(dia.routed_count());
  }
  state.counters["unrouted"] = unrouted;
}

void BM_Fig61_Place(benchmark::State& s) { placement_bench(s, chain_net(), fig61_options()); }
void BM_Fig61_Route(benchmark::State& s) { routing_bench(s, chain_net(), fig61_options()); }
void BM_Fig62_Place(benchmark::State& s) { placement_bench(s, ctrl_net(), fig62_options()); }
void BM_Fig62_Route(benchmark::State& s) { routing_bench(s, ctrl_net(), fig62_options()); }
void BM_Fig63_Place(benchmark::State& s) { placement_bench(s, ctrl_net(), fig63_options()); }
void BM_Fig63_Route(benchmark::State& s) { routing_bench(s, ctrl_net(), fig63_options()); }
void BM_Fig64_Place(benchmark::State& s) { placement_bench(s, ctrl_net(), fig64_options()); }
void BM_Fig64_Route(benchmark::State& s) { routing_bench(s, ctrl_net(), fig64_options()); }

// Figure 6.5: the 6.2 placement with one module moved by hand — placement
// is reused (no placement time in the paper's table either), only routing.
void BM_Fig65_Route(benchmark::State& state) {
  const Network& net = ctrl_net();
  const GeneratorOptions opt = fig62_options();
  Diagram placed(net);
  place(placed, opt.placer);
  const ModuleId ctrl = *net.module_by_name("ctrl");
  const geom::Rect b = placed.placement_bounds();
  placed.place_module(ctrl, {b.lo.x - 16, b.hi.y + 8});
  int unrouted = 0;
  for (auto _ : state) {
    Diagram dia = placed;
    unrouted = route_all(dia, opt.router).nets_failed;
  }
  state.counters["unrouted"] = unrouted;
}

void BM_Fig66_Route(benchmark::State& s) {
  routing_bench(s, life_net(), life_router_options(), /*hand_placed=*/true);
}
void BM_Fig67_Place(benchmark::State& s) { placement_bench(s, life_net(), fig67_options()); }
void BM_Fig67_Route(benchmark::State& s) { routing_bench(s, life_net(), fig67_options()); }

BENCHMARK(BM_Fig61_Place)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig61_Route)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig62_Place)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig62_Route)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig63_Place)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig63_Route)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig64_Place)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig64_Route)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig65_Route)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig66_Route)->Unit(benchmark::kMillisecond)->MinTime(2.0);
BENCHMARK(BM_Fig67_Place)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig67_Route)->Unit(benchmark::kMillisecond)->MinTime(2.0);

}  // namespace

int main(int argc, char** argv) {
  std::printf("Table 6.1 reproduction — timing figures per figure/phase.\n"
              "Paper shape: routing dominates placement on dense inputs;\n"
              "fig 6.7 (auto-placed LIFE) routes several times slower than\n"
              "fig 6.6 (hand-placed LIFE).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
