// Section 5.2 shoot-out — the routing engines the paper discusses:
//
//   line expansion  (the paper's choice): min bends, guaranteed solution;
//   Lee maze runner (5.2.2): min length, guaranteed, "requires a large
//                   memory", "speed improves as the area gets congested";
//   Hightower       (5.2.3): "quite fast for simple mazes ... does not
//                   guarantee a connection whenever it exists".
//
// Reproduced shape: all engines route the easy workloads; Hightower loses
// nets on congested ones; Lee produces the shortest but bendiest wires;
// line expansion produces the fewest bends.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "place/placer.hpp"
#include "schematic/metrics.hpp"

namespace {

using namespace na;
using namespace na::bench;

struct Workload {
  std::string name;
  std::unique_ptr<Network> net;
  std::unique_ptr<Diagram> placed;
};

std::vector<Workload>& workloads() {
  static std::vector<Workload> all = [] {
    std::vector<Workload> w;
    auto add = [&w](std::string name, Network net) -> Workload& {
      Workload item;
      item.name = std::move(name);
      item.net = std::make_unique<Network>(std::move(net));
      item.placed = std::make_unique<Diagram>(*item.net);
      w.push_back(std::move(item));
      return w.back();
    };
    place(*add("chain", gen::chain_network({})).placed, fig61_options().placer);
    place(*add("controller", gen::controller_network()).placed,
          fig63_options().placer);
    gen::life_hand_placement(*add("life-hand", gen::life_network()).placed);
    for (unsigned seed : {31u, 32u, 33u}) {
      gen::RandomNetOptions gopt;
      gopt.modules = 14;
      gopt.extra_nets = 10;
      gopt.seed = seed;
      Workload& r = add("random-" + std::to_string(seed), gen::random_network(gopt));
      PlacerOptions popt;
      popt.max_part_size = 4;
      popt.max_box_size = 3;
      place(*r.placed, popt);
    }
    return w;
  }();
  return all;
}

struct EngineRow {
  int unrouted = 0;
  int bends = 0;
  int length = 0;
  long expansions = 0;
};

EngineRow route_with(const Workload& w, Engine engine) {
  Diagram dia = *w.placed;
  RouterOptions opt;
  opt.engine = engine;
  opt.margin = 12;
  opt.order_criterion = 2;  // long nets first, the tuned configuration
  const RouteReport r = route_all(dia, opt);
  require_valid(dia, w.name.c_str());
  const DiagramStats s = compute_stats(dia);
  return {r.nets_failed, s.bends, s.wire_length, r.total_expansions};
}

void BM_Engine(benchmark::State& state) {
  const Engine engine = static_cast<Engine>(state.range(0));
  int unrouted = 0;
  for (auto _ : state) {
    unrouted = 0;
    for (const Workload& w : workloads()) unrouted += route_with(w, engine).unrouted;
  }
  state.counters["unrouted_total"] = unrouted;
  static const char* names[] = {"line-expansion", "lee", "hightower",
                                "segment-expansion"};
  state.SetLabel(names[state.range(0)]);
}

BENCHMARK(BM_Engine)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond)->MinTime(1.0);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;

  std::printf("\n=== section 5.2 — router baselines ===\n");
  std::printf("paper: line expansion = min bends + guaranteed; Lee = min length "
              "+ guaranteed; Hightower = fast but incomplete\n");
  std::printf("%-14s | %-20s | %-20s | %-20s | %-20s\n", "", "line-expansion",
              "Lee", "Hightower", "segment-expansion");
  std::printf("%-14s | %4s %6s %7s | %4s %6s %7s | %4s %6s %7s | %4s %6s %7s\n",
              "workload", "fail", "bends", "length", "fail", "bends", "length",
              "fail", "bends", "length", "fail", "bends", "length");
  int lx_bends = 0, lee_bends = 0;
  int lx_len = 0, lee_len = 0;
  for (const Workload& w : workloads()) {
    const EngineRow lx = route_with(w, Engine::LineExpansion);
    const EngineRow lee = route_with(w, Engine::Lee);
    const EngineRow ht = route_with(w, Engine::Hightower);
    const EngineRow sx = route_with(w, Engine::SegmentExpansion);
    std::printf("%-14s | %4d %6d %7d | %4d %6d %7d | %4d %6d %7d | %4d %6d %7d\n",
                w.name.c_str(), lx.unrouted, lx.bends, lx.length, lee.unrouted,
                lee.bends, lee.length, ht.unrouted, ht.bends, ht.length,
                sx.unrouted, sx.bends, sx.length);
    lx_bends += lx.bends;
    lee_bends += lee.bends;
    lx_len += lx.length;
    lee_len += lee.length;
  }
  std::printf("shape check: line-expansion bends (%d) <= Lee bends (%d); "
              "Lee length (%d) <= line-expansion length (%d)\n",
              lx_bends, lee_bends, lee_len, lx_len);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
