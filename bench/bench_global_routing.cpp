// Section 5.2.1 — global routing analysis: the stage the paper skipped.
//
// The bench runs the gcell global router over the experiment placements
// and sets its congestion forecast (overflow, max boundary demand) against
// what the detailed line-expansion router actually experiences (unrouted
// nets).  The paper's rationale for skipping global routing — "it is
// assumed that the number of modules in a design ... is relatively small"
// — shows up as near-zero overflow on the small diagrams, while the dense
// LIFE board is exactly where the forecast lights up.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "place/placer.hpp"
#include "route/global.hpp"

namespace {

using namespace na;
using namespace na::bench;

struct Workload {
  std::string name;
  std::unique_ptr<Network> net;
  std::unique_ptr<Diagram> placed;
};

std::vector<Workload>& workloads() {
  static std::vector<Workload> all = [] {
    std::vector<Workload> w;
    auto add = [&w](std::string name, Network net) -> Workload& {
      Workload item;
      item.name = std::move(name);
      item.net = std::make_unique<Network>(std::move(net));
      item.placed = std::make_unique<Diagram>(*item.net);
      w.push_back(std::move(item));
      return w.back();
    };
    place(*add("chain", gen::chain_network({})).placed, fig61_options().placer);
    place(*add("controller", gen::controller_network()).placed,
          fig63_options().placer);
    gen::life_hand_placement(*add("life-hand", gen::life_network()).placed);
    place(*add("life-auto", gen::life_network()).placed, fig67_options().placer);
    return w;
  }();
  return all;
}

void BM_GlobalRoute(benchmark::State& state) {
  const Workload& w = workloads()[static_cast<size_t>(state.range(0))];
  int overflow = 0;
  for (auto _ : state) {
    const GlobalRouteResult r = global_route(*w.placed);
    overflow = r.total_overflow;
    benchmark::DoNotOptimize(r.nets.data());
  }
  state.counters["overflow"] = overflow;
  state.SetLabel(w.name);
}

BENCHMARK(BM_GlobalRoute)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;

  std::printf("\n=== section 5.2.1 — global routing forecast vs detailed result ===\n");
  std::printf("paper: global routing decomposes big problems; skipped for small "
              "diagrams\n");
  std::printf("%-12s %8s %9s %9s %10s | %9s\n", "workload", "gcells", "overflow",
              "max-dem", "assigned", "det.fail");
  for (const Workload& w : workloads()) {
    const GlobalRouteResult g = global_route(*w.placed);
    Diagram dia = *w.placed;
    RouterOptions ropt;
    ropt.margin = 12;
    ropt.order_criterion = 2;
    const RouteReport det = route_all(dia, ropt);
    std::printf("%-12s %4dx%-3d %9d %9d %5d/%-4d | %9d\n", w.name.c_str(), g.cols,
                g.rows, g.total_overflow, g.max_congestion, g.assigned,
                g.assigned + g.failed, det.nets_failed);
  }
  std::printf("shape: overflow ~0 on the small diagrams; the congested LIFE "
              "boards carry the demand peaks — where detailed failures (if any) "
              "cluster.\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
