// Section 4.2/4.3/4.5 shoot-out — the placement approaches the paper
// weighs before choosing the flow-aware epitaxial pipeline:
//
//   pipeline  (the paper's choice, chapter 4): partitions + strings,
//             "great resemblance with the hand-drawing process";
//   min-cut   (4.2.3): reduces crossings between regions but "does not
//             concern about the signal flow direction ... results in
//             unreadable schematic diagrams";
//   epitaxial (4.2.2): wire-length greedy, no flow control;
//   columnar  (4.3): flow-perfect but "imposes a lot of undesirable
//             constraints" (gate-like networks only).
//
// Reproduced shape: the pipeline beats min-cut/epitaxial on signal-flow
// violations while staying routable; min-cut tends to win on crossings.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "place/columnar.hpp"
#include "place/epitaxial.hpp"
#include "place/improve.hpp"
#include "place/mincut.hpp"
#include "place/placer.hpp"
#include "schematic/metrics.hpp"

namespace {

using namespace na;
using namespace na::bench;

struct Workload {
  std::string name;
  std::unique_ptr<Network> net;
};

std::vector<Workload>& workloads() {
  static std::vector<Workload> all = [] {
    std::vector<Workload> w;
    auto add = [&w](std::string name, Network net) {
      Workload item;
      item.name = std::move(name);
      item.net = std::make_unique<Network>(std::move(net));
      w.push_back(std::move(item));
    };
    add("chain", gen::chain_network({8, true, true}));
    add("controller", gen::controller_network());
    for (unsigned seed : {41u, 42u, 43u}) {
      gen::RandomNetOptions gopt;
      gopt.modules = 14;
      gopt.extra_nets = 8;
      gopt.seed = seed;
      add("random-" + std::to_string(seed), gen::random_network(gopt));
    }
    return w;
  }();
  return all;
}

enum class Kind { Pipeline, Mincut, Epitaxial, Columnar, EpitaxialImproved };
constexpr const char* kKindNames[] = {"pipeline", "min-cut", "epitaxial",
                                      "columnar", "epi+swap"};

void place_with(Diagram& dia, Kind kind) {
  switch (kind) {
    case Kind::Pipeline: {
      PlacerOptions opt;
      opt.max_part_size = 5;
      opt.max_box_size = 4;
      opt.max_connections = 10;
      place(dia, opt);
      break;
    }
    case Kind::Mincut:
      mincut_place(dia);
      break;
    case Kind::Epitaxial:
      epitaxial_place(dia);
      break;
    case Kind::Columnar:
      columnar_place(dia);
      break;
    case Kind::EpitaxialImproved:
      // The 4.2.1 improvement class the paper rejects as too greedy/slow:
      // epitaxial start + pairwise-exchange refinement.
      epitaxial_place(dia);
      improve_by_exchange(dia);
      break;
  }
}

DiagramStats evaluate(const Workload& w, Kind kind) {
  Diagram dia(*w.net);
  place_with(dia, kind);
  RouterOptions ropt;
  ropt.margin = 8;
  ropt.order_criterion = 2;
  route_all(dia, ropt);
  require_valid(dia, w.name.c_str());
  return compute_stats(dia);
}

void BM_Placer(benchmark::State& state) {
  const Kind kind = static_cast<Kind>(state.range(0));
  for (auto _ : state) {
    for (const Workload& w : workloads()) {
      Diagram dia(*w.net);
      place_with(dia, kind);
      benchmark::DoNotOptimize(dia.placement_bounds());
    }
  }
  state.SetLabel(kKindNames[state.range(0)]);
}

BENCHMARK(BM_Placer)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;

  std::printf("\n=== sections 4.2/4.3/4.5 — placement baselines (after routing) ===\n");
  std::printf("paper: the flow-aware pipeline reads best; min-cut ignores signal "
              "flow; columnar only suits gate networks\n");
  std::printf("%-14s %-10s %9s %9s %6s %6s %7s %9s\n", "workload", "placer",
              "unrouted", "flowviol", "bends", "cross", "length", "area");
  // Aggregate flow violations for the headline comparison.
  int flow[5] = {0, 0, 0, 0, 0};
  int cross[5] = {0, 0, 0, 0, 0};
  for (const Workload& w : workloads()) {
    for (int k = 0; k < 5; ++k) {
      const DiagramStats s = evaluate(w, static_cast<Kind>(k));
      std::printf("%-14s %-10s %9d %9d %6d %6d %7d %4dx%d\n", w.name.c_str(),
                  kKindNames[k], s.unrouted, s.flow_violations, s.bends,
                  s.crossings, s.wire_length, s.width, s.height);
      flow[k] += s.flow_violations;
      cross[k] += s.crossings;
    }
  }
  std::printf("totals: flow violations pipeline=%d mincut=%d epitaxial=%d "
              "columnar=%d epi+swap=%d; crossings %d/%d/%d/%d/%d\n",
              flow[0], flow[1], flow[2], flow[3], flow[4], cross[0], cross[1],
              cross[2], cross[3], cross[4]);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
