// Figure 6.1 — string placement: "a typical example of the placement of
// the modules in a string.  The diagram is composed out of 1 partition and
// 1 box.  Note that if the level assignment is fixed, the number of bends
// is minimal."
//
// The bench reproduces the figure's structure (single partition, single
// box, minimal chain-net bends) and sweeps the chain length to show the
// cost scaling of the generator on string networks.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "place/placer.hpp"

namespace {

using namespace na;
using namespace na::bench;

void BM_Chain_Generate(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const Network net = gen::chain_network({length, false, true});
  GeneratorOptions opt;
  opt.placer.max_part_size = length + 1;
  opt.placer.max_box_size = length + 1;
  int bends = 0;
  int unrouted = 0;
  for (auto _ : state) {
    GeneratorResult result;
    const Diagram dia = generate_diagram(net, opt, &result);
    bends = result.stats.bends;
    unrouted = result.route.nets_failed;
    benchmark::DoNotOptimize(dia.routed_count());
  }
  state.counters["bends"] = bends;
  state.counters["unrouted"] = unrouted;
}

BENCHMARK(BM_Chain_Generate)->DenseRange(2, 12, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;

  // --- structural reproduction of figure 6.1 --------------------------------
  const Network net = gen::chain_network({});
  require_counts(net, 6, 6, "figure 6.1 chain");
  GeneratorOptions opt = fig61_options();
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);
  require_valid(dia, "figure 6.1");

  print_header("figure 6.1 — one string",
               "1 partition, 1 box; chain nets at minimum bends; 6/6 routed");
  print_row("chain -p 7 -b 7", result.stats);
  std::printf("partitions=%zu boxes=%zu modules-in-box=%zu\n",
              result.placement.partitions.size(), result.placement.boxes[0].size(),
              result.placement.boxes[0][0].size());
  int chain_bends = 0;
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (net.net(n).name.starts_with("chain")) {
      chain_bends += dia.route(n).bend_count();
    }
  }
  std::printf("bends on the 5 chain nets: %d (lemma: minimal for the fixed "
              "level assignment)\n",
              chain_bends);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
