// Section 5.2.4 — the left-edge channel router baseline: "A channel router
// is very fast but has two limitations, terminals may create constraint
// loops and the terminals must be on opposite sides of the channel."
//
// The bench verifies the classic optimality (tracks used == channel
// density when vertical constraints don't bind), measures the violation
// rate the plain algorithm incurs, and times the router across problem
// sizes — quantifying "very fast" against the general-purpose engines.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/channel_gen.hpp"
#include "route/channel.hpp"

namespace {

using namespace na;

void BM_LeftEdge(benchmark::State& state) {
  gen::ChannelGenOptions opt;
  opt.columns = static_cast<int>(state.range(0));
  opt.nets = opt.columns / 2;
  opt.seed = 7;
  const ChannelProblem p = gen::random_channel(opt);
  int tracks = 0;
  for (auto _ : state) {
    const ChannelResult r = left_edge_route(p);
    tracks = r.tracks_used;
    benchmark::DoNotOptimize(r.trunks.data());
  }
  state.counters["tracks"] = tracks;
  state.counters["density"] = channel_density(p);
}

BENCHMARK(BM_LeftEdge)->RangeMultiplier(2)->Range(16, 256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  std::printf("\n=== section 5.2.4 — left-edge channel router ===\n");
  std::printf("paper: fills one track at a time as dense as possible; fast; "
              "ignores vertical constraints\n");
  std::printf("%8s %6s %8s %8s %12s\n", "columns", "nets", "density", "tracks",
              "violations");
  int optimal = 0;
  int total = 0;
  for (unsigned seed = 1; seed <= 8; ++seed) {
    gen::ChannelGenOptions opt;
    opt.columns = 40;
    opt.nets = 16;
    opt.seed = seed;
    const ChannelProblem p = gen::random_channel(opt);
    const ChannelResult r = left_edge_route(p);
    std::printf("%8d %6d %8d %8d %12zu\n", opt.columns, opt.nets,
                channel_density(p), r.tracks_used, r.constraint_violations.size());
    optimal += r.tracks_used == channel_density(p) ? 1 : 0;
    ++total;
  }
  std::printf("track-count optimal (== density) on %d/%d random channels\n",
              optimal, total);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
