// Figures 6.2-6.5 — four schematic diagrams of the same 16-module /
// 24-net network under different generator options:
//
//   6.2  -p 1 -b 1   "typical clustering of the modules"
//   6.3  -p 5 -b 1   "distinct partitions containing a clustering
//                     structure ... the comprised modules form a
//                     functional part; the only common nets are the ones
//                     coming from the controller in the center"
//   6.4  -p 7 -b 5   "partitions composed out of strings of modules ...
//                     enforcing left to right signal flow"
//   6.5  6.2 + one module manually moved, rerouted
//
// The bench prints the quality counters of each configuration (the visual
// differences the figures show, quantified) and times the generation.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "place/placer.hpp"
#include "schematic/metrics.hpp"

namespace {

using namespace na;
using namespace na::bench;

const Network& ctrl_net() {
  static const Network net = [] {
    Network n = gen::controller_network();
    require_counts(n, 16, 24, "figures 6.2-6.5 controller network");
    return n;
  }();
  return net;
}

void config_bench(benchmark::State& state, const GeneratorOptions& opt) {
  const Network& net = ctrl_net();
  int unrouted = 0;
  for (auto _ : state) {
    GeneratorResult result;
    const Diagram dia = generate_diagram(net, opt, &result);
    unrouted = result.route.nets_failed;
    benchmark::DoNotOptimize(dia.routed_count());
  }
  state.counters["unrouted"] = unrouted;
}

void BM_Fig62(benchmark::State& s) { config_bench(s, fig62_options()); }
void BM_Fig63(benchmark::State& s) { config_bench(s, fig63_options()); }
void BM_Fig64(benchmark::State& s) { config_bench(s, fig64_options()); }

void BM_Fig65_MoveAndReroute(benchmark::State& state) {
  const Network& net = ctrl_net();
  const GeneratorOptions opt = fig62_options();
  Diagram placed(net);
  place(placed, opt.placer);
  const ModuleId ctrl = *net.module_by_name("ctrl");
  const geom::Rect b = placed.placement_bounds();
  placed.place_module(ctrl, {b.lo.x - 16, b.hi.y + 8});
  for (auto _ : state) {
    Diagram dia = placed;
    benchmark::DoNotOptimize(route_all(dia, opt.router).nets_routed);
  }
}

BENCHMARK(BM_Fig62)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig63)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig65_MoveAndReroute)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace na;
  using namespace na::bench;
  const Network& net = ctrl_net();

  print_header("figures 6.2-6.5 — option exploration on one network",
               "same network, four diagrams; strings (-b 5) give left-to-right "
               "flow; all ~fully routed");

  struct Cfg {
    const char* name;
    GeneratorOptions opt;
  };
  const Cfg configs[] = {
      {"fig 6.2: -p 1 -b 1", fig62_options()},
      {"fig 6.3: -p 5 -b 1 -c 8", fig63_options()},
      {"fig 6.4: -p 7 -b 5", fig64_options()},
  };
  for (const Cfg& cfg : configs) {
    GeneratorResult result;
    const Diagram dia = generate_diagram(net, cfg.opt, &result);
    require_valid(dia, cfg.name);
    print_row(cfg.name, result.stats);
    std::printf("    partitions=%zu  flow-violations=%d  place=%.1fms route=%.1fms\n",
                result.placement.partitions.size(), result.stats.flow_violations,
                result.place_seconds * 1e3, result.route_seconds * 1e3);
  }

  // Figure 6.5: manual adjustment of the 6.2 placement.
  {
    GeneratorOptions opt = fig62_options();
    Diagram dia(net);
    place(dia, opt.placer);
    const ModuleId ctrl = *net.module_by_name("ctrl");
    const geom::Rect b = dia.placement_bounds();
    dia.place_module(ctrl, {b.lo.x - 16, b.hi.y + 8});
    route_all(dia, opt.router);
    require_valid(dia, "fig 6.5");
    print_row("fig 6.5: 6.2 + manual move", compute_stats(dia));
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
