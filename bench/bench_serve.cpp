// Service tier — na_serve throughput and edit latency over loopback.
//
// Starts an in-process serve::Server (event-loop connection plane, 4 I/O
// threads) on an ephemeral port and drives it with 1, 4, 16, 64 and 256
// concurrent sessions (one BlockingClient per session, one thread per
// client).  Every client opens a "chain" session, applies a fixed number
// of single-module edits (each now a cheap composed netlist step — regen
// is deferred), and ends with a timed get: the observation point that
// flushes the whole run through one composed regen.  Reports requests/sec,
// p50/p99 edit latency, the flush (get) latency, and the multi-edit regen
// counters per concurrency level — the numbers the README's service
// walkthrough quotes.
//
// Emits BENCH_serve.json (same schema_version envelope as the other
// benches).  NA_SERVE_BENCH_EDITS caps the per-session edit count and
// NA_SERVE_BENCH_MAX_SESSIONS drops the top concurrency levels (the
// ctest `serve` smoke runs with 4 edits and a 64-session cap so the
// default suite stays fast; the 256-connection row is bench-only).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/histogram.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace na;
using namespace na::bench;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Quantile in milliseconds off a histogram snapshot.  Same estimator the
/// daemon's `metrics` op uses (obs::Histogram, microsecond buckets), so
/// bench-side and server-side p50/p99 agree to the bucket width.
double quantile_ms(const obs::HistogramData& data, double q) {
  return static_cast<double>(data.quantile(q)) / 1000.0;
}

std::string edit_line(const std::string& session, int i) {
  return R"({"op":"edit","session":")" + session + R"(","edits":[)" +
         R"({"kind":"add_module","name":"mod)" + std::to_string(i) +
         R"(","template":"","w":4,"h":3}]})";
}

/// Integer value of a metric inside a stats response ("key":value).
long long metric_value(const std::string& stats, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = stats.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoll(stats.c_str() + at + needle.size(), nullptr, 10);
}

/// Cumulative edit-coalescing counters, read off a stats round trip.
struct BatchSnapshot {
  long long jobs = 0, edits = 0;
  long long regens = 0, composed = 0;
  long long hist[5] = {0, 0, 0, 0, 0};

  static BatchSnapshot read(serve::BlockingClient& c) {
    const std::string stats = c.request(R"({"op":"stats"})");
    BatchSnapshot s;
    s.jobs = metric_value(stats, "serve.batch.jobs");
    s.edits = metric_value(stats, "serve.batch.edits");
    s.regens = metric_value(stats, "serve.batch.regens");
    s.composed = metric_value(stats, "serve.batch.composed");
    static const char* kHist[5] = {"serve.batch.hist_1", "serve.batch.hist_2_3",
                                   "serve.batch.hist_4_7",
                                   "serve.batch.hist_8_15",
                                   "serve.batch.hist_16p"};
    for (int i = 0; i < 5; ++i) s.hist[i] = metric_value(stats, kHist[i]);
    return s;
  }
};

struct LevelResult {
  double wall_ms = 0;       ///< open-to-close wall clock of the whole level
  long long requests = 0;   ///< edit requests completed across all sessions
  double p50_ms = 0;
  double p99_ms = 0;
  double flush_p50_ms = 0;  ///< final get per session: pays the composed regen
  double flush_p99_ms = 0;
};

/// Runs `sessions` concurrent clients x `edits` edits each against `port`.
/// Each session ends with a timed get — the observation point where the
/// deferred edits flush through one composed regen — so the level's work
/// includes the geometry it produced, not just the netlist queuing.
LevelResult run_level(int port, int sessions, int edits) {
  // Wait-free shared histograms instead of per-session sample vectors:
  // every client thread records straight into the same counters the
  // daemon uses for serve.lat.edit, at fixed memory per level.
  obs::Histogram lat;
  obs::Histogram flush;
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([port, s, edits, &lat, &flush] {
      serve::BlockingClient c;
      std::string error;
      if (!c.connect("127.0.0.1", port, &error)) {
        std::fprintf(stderr, "connect failed: %s\n", error.c_str());
        return;
      }
      const std::string name = "bench" + std::to_string(s);
      c.request(R"({"op":"open","session":")" + name + R"(","design":"chain"})");
      for (int i = 0; i < edits; ++i) {
        const auto e0 = Clock::now();
        const std::string r = c.request(edit_line(name, i));
        lat.record_ms(ms_since(e0));
        if (r.rfind(R"({"ok":true)", 0) != 0) {
          std::fprintf(stderr, "edit failed: %s\n",
                       r.empty() ? ("transport: " + c.last_error()).c_str()
                                 : r.c_str());
          return;
        }
      }
      const auto g0 = Clock::now();
      c.request(R"({"op":"get","session":")" + name + R"("})");
      flush.record_ms(ms_since(g0));
      c.request(R"({"op":"close","session":")" + name + R"("})");
    });
  }
  for (std::thread& t : threads) t.join();

  LevelResult r;
  r.wall_ms = ms_since(t0);
  const obs::HistogramData lat_data = lat.snapshot();
  const obs::HistogramData flush_data = flush.snapshot();
  r.requests = lat_data.count;
  r.p50_ms = quantile_ms(lat_data, 0.50);
  r.p99_ms = quantile_ms(lat_data, 0.99);
  r.flush_p50_ms = quantile_ms(flush_data, 0.50);
  r.flush_p99_ms = quantile_ms(flush_data, 0.99);
  return r;
}

}  // namespace

int main() {
  int edits = 64;
  if (const char* cap = std::getenv("NA_SERVE_BENCH_EDITS")) {
    edits = std::max(1, std::atoi(cap));
  }
  int max_sessions = 256;
  if (const char* cap = std::getenv("NA_SERVE_BENCH_MAX_SESSIONS")) {
    max_sessions = std::max(1, std::atoi(cap));
  }

  serve::ServerOptions opt;
  opt.port = 0;
  opt.host.threads = 8;
  opt.io_threads = 4;
  serve::Server server(opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }
  std::thread runner([&server] { server.run(); });
  const int port = server.port();

  serve::BlockingClient control;
  if (!control.connect("127.0.0.1", port, &error)) {
    std::fprintf(stderr, "control connect failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("na_serve bench: port %d, %d edits/session, io_threads=%d\n\n",
              port, edits, opt.io_threads);
  std::printf("%10s %12s %12s %12s %12s %12s %10s %10s\n", "sessions",
              "req/s", "p50 ms", "p99 ms", "flush p50", "wall ms", "regens",
              "composed");
  for (const int sessions : {1, 4, 16, 64, 256}) {
    if (sessions > max_sessions) {
      std::printf("%10d       (skipped: NA_SERVE_BENCH_MAX_SESSIONS=%d)\n",
                  sessions, max_sessions);
      continue;
    }
    const BatchSnapshot before = BatchSnapshot::read(control);
    const LevelResult r = run_level(port, sessions, edits);
    const BatchSnapshot after = BatchSnapshot::read(control);
    const double rps = r.requests / (r.wall_ms / 1e3);
    const long long jobs = after.jobs - before.jobs;
    const long long batched = after.edits - before.edits;
    const long long regens = after.regens - before.regens;
    const long long composed = after.composed - before.composed;
    std::printf("%10d %12.0f %12.2f %12.2f %12.2f %12.1f %10lld %10lld\n",
                sessions, rps, r.p50_ms, r.p99_ms, r.flush_p50_ms, r.wall_ms,
                regens, composed);
    bench_json_add("serve", "sessions=" + std::to_string(sessions), r.wall_ms,
                   0,
                   {{"requests", r.requests},
                    {"requests_per_s", rps},
                    {"edit_p50_ms", r.p50_ms},
                    {"edit_p99_ms", r.p99_ms},
                    {"flush_p50_ms", r.flush_p50_ms},
                    {"flush_p99_ms", r.flush_p99_ms},
                    {"batch_jobs", jobs},
                    {"batch_edits", batched},
                    {"batch_regens", regens},
                    {"batch_composed", composed},
                    {"batch_hist_1", after.hist[0] - before.hist[0]},
                    {"batch_hist_2_3", after.hist[1] - before.hist[1]},
                    {"batch_hist_4_7", after.hist[2] - before.hist[2]},
                    {"batch_hist_8_15", after.hist[3] - before.hist[3]},
                    {"batch_hist_16p", after.hist[4] - before.hist[4]}});
  }

  server.request_stop();
  runner.join();
  bench_json_write("BENCH_serve.json");
  return 0;
}
