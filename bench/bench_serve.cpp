// Service tier — na_serve throughput and edit latency over loopback.
//
// Starts an in-process serve::Server on an ephemeral port and drives it
// with 1, 4 and 16 concurrent sessions (one BlockingClient per session,
// one thread per client).  Every client opens a "chain" session and
// applies a fixed number of single-module edits, timing each request
// round-trip.  Reports requests/sec and the p50/p99 edit latency per
// concurrency level — the numbers the README's service walkthrough
// quotes.
//
// Emits BENCH_serve.json (same schema_version envelope as the other
// benches).  NA_SERVE_BENCH_EDITS caps the per-session edit count (the
// ctest `serve` smoke runs with 4 so the default suite stays fast).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace na;
using namespace na::bench;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Latency at quantile q (0..1) of a sorted sample, nearest-rank.
double quantile_ms(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

std::string edit_line(const std::string& session, int i) {
  return R"({"op":"edit","session":")" + session + R"(","edits":[)" +
         R"({"kind":"add_module","name":"mod)" + std::to_string(i) +
         R"(","template":"","w":4,"h":3}]})";
}

struct LevelResult {
  double wall_ms = 0;       ///< open-to-close wall clock of the whole level
  long long requests = 0;   ///< edit requests completed across all sessions
  double p50_ms = 0;
  double p99_ms = 0;
};

/// Runs `sessions` concurrent clients x `edits` edits each against `port`.
LevelResult run_level(int port, int sessions, int edits) {
  std::vector<std::vector<double>> lat(sessions);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([port, s, edits, &lat] {
      serve::BlockingClient c;
      std::string error;
      if (!c.connect("127.0.0.1", port, &error)) {
        std::fprintf(stderr, "connect failed: %s\n", error.c_str());
        return;
      }
      const std::string name = "bench" + std::to_string(s);
      c.request(R"({"op":"open","session":")" + name + R"(","design":"chain"})");
      lat[s].reserve(edits);
      for (int i = 0; i < edits; ++i) {
        const auto e0 = Clock::now();
        const std::string r = c.request(edit_line(name, i));
        lat[s].push_back(ms_since(e0));
        if (r.rfind(R"({"ok":true)", 0) != 0) {
          std::fprintf(stderr, "edit failed: %s\n", r.c_str());
          return;
        }
      }
      c.request(R"({"op":"close","session":")" + name + R"("})");
    });
  }
  for (std::thread& t : threads) t.join();

  LevelResult r;
  r.wall_ms = ms_since(t0);
  std::vector<double> all;
  for (const auto& per : lat) {
    r.requests += static_cast<long long>(per.size());
    all.insert(all.end(), per.begin(), per.end());
  }
  std::sort(all.begin(), all.end());
  r.p50_ms = quantile_ms(all, 0.50);
  r.p99_ms = quantile_ms(all, 0.99);
  return r;
}

}  // namespace

int main() {
  int edits = 64;
  if (const char* cap = std::getenv("NA_SERVE_BENCH_EDITS")) {
    edits = std::max(1, std::atoi(cap));
  }

  serve::ServerOptions opt;
  opt.port = 0;
  opt.host.threads = 8;
  serve::Server server(opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }
  std::thread runner([&server] { server.run(); });
  const int port = server.port();

  std::printf("na_serve bench: port %d, %d edits/session\n\n", port, edits);
  std::printf("%10s %12s %12s %12s %12s\n", "sessions", "req/s", "p50 ms",
              "p99 ms", "wall ms");
  for (const int sessions : {1, 4, 16}) {
    const LevelResult r = run_level(port, sessions, edits);
    const double rps = r.requests / (r.wall_ms / 1e3);
    std::printf("%10d %12.0f %12.2f %12.2f %12.1f\n", sessions, rps, r.p50_ms,
                r.p99_ms, r.wall_ms);
    bench_json_add("serve", "sessions=" + std::to_string(sessions), r.wall_ms,
                   0,
                   {{"requests", r.requests},
                    {"requests_per_s", rps},
                    {"edit_p50_ms", r.p50_ms},
                    {"edit_p99_ms", r.p99_ms}});
  }

  server.request_stop();
  runner.join();
  bench_json_write("BENCH_serve.json");
  return 0;
}
