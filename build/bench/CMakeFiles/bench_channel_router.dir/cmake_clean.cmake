file(REMOVE_RECURSE
  "CMakeFiles/bench_channel_router.dir/bench_channel_router.cpp.o"
  "CMakeFiles/bench_channel_router.dir/bench_channel_router.cpp.o.d"
  "bench_channel_router"
  "bench_channel_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
