# Empty dependencies file for bench_channel_router.
# This may be replaced when dependencies are built.
