# Empty dependencies file for bench_fig61_chain.
# This may be replaced when dependencies are built.
