file(REMOVE_RECURSE
  "CMakeFiles/bench_router_objectives.dir/bench_router_objectives.cpp.o"
  "CMakeFiles/bench_router_objectives.dir/bench_router_objectives.cpp.o.d"
  "bench_router_objectives"
  "bench_router_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
