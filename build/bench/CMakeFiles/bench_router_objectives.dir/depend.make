# Empty dependencies file for bench_router_objectives.
# This may be replaced when dependencies are built.
