file(REMOVE_RECURSE
  "CMakeFiles/bench_fig66_67_life.dir/bench_fig66_67_life.cpp.o"
  "CMakeFiles/bench_fig66_67_life.dir/bench_fig66_67_life.cpp.o.d"
  "bench_fig66_67_life"
  "bench_fig66_67_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig66_67_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
