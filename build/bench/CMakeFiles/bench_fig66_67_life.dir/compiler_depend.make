# Empty compiler generated dependencies file for bench_fig66_67_life.
# This may be replaced when dependencies are built.
