file(REMOVE_RECURSE
  "CMakeFiles/bench_table61_timing.dir/bench_table61_timing.cpp.o"
  "CMakeFiles/bench_table61_timing.dir/bench_table61_timing.cpp.o.d"
  "bench_table61_timing"
  "bench_table61_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table61_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
