# Empty dependencies file for bench_table61_timing.
# This may be replaced when dependencies are built.
