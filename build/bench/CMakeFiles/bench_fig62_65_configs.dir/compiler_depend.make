# Empty compiler generated dependencies file for bench_fig62_65_configs.
# This may be replaced when dependencies are built.
