# Empty compiler generated dependencies file for bench_global_routing.
# This may be replaced when dependencies are built.
