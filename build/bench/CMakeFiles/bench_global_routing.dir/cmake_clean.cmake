file(REMOVE_RECURSE
  "CMakeFiles/bench_global_routing.dir/bench_global_routing.cpp.o"
  "CMakeFiles/bench_global_routing.dir/bench_global_routing.cpp.o.d"
  "bench_global_routing"
  "bench_global_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
