file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_baselines.dir/bench_placement_baselines.cpp.o"
  "CMakeFiles/bench_placement_baselines.dir/bench_placement_baselines.cpp.o.d"
  "bench_placement_baselines"
  "bench_placement_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
