# Empty compiler generated dependencies file for bench_placement_baselines.
# This may be replaced when dependencies are built.
