# Empty dependencies file for bench_router_baselines.
# This may be replaced when dependencies are built.
