file(REMOVE_RECURSE
  "CMakeFiles/bench_router_baselines.dir/bench_router_baselines.cpp.o"
  "CMakeFiles/bench_router_baselines.dir/bench_router_baselines.cpp.o.d"
  "bench_router_baselines"
  "bench_router_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
