# Empty dependencies file for bench_claimpoints_ablation.
# This may be replaced when dependencies are built.
