file(REMOVE_RECURSE
  "CMakeFiles/bench_claimpoints_ablation.dir/bench_claimpoints_ablation.cpp.o"
  "CMakeFiles/bench_claimpoints_ablation.dir/bench_claimpoints_ablation.cpp.o.d"
  "bench_claimpoints_ablation"
  "bench_claimpoints_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claimpoints_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
