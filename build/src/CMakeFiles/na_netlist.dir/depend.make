# Empty dependencies file for na_netlist.
# This may be replaced when dependencies are built.
