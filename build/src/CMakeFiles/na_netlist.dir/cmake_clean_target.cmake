file(REMOVE_RECURSE
  "libna_netlist.a"
)
