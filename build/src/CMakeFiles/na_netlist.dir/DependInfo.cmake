
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/hierarchy.cpp" "src/CMakeFiles/na_netlist.dir/netlist/hierarchy.cpp.o" "gcc" "src/CMakeFiles/na_netlist.dir/netlist/hierarchy.cpp.o.d"
  "/root/repo/src/netlist/module_library.cpp" "src/CMakeFiles/na_netlist.dir/netlist/module_library.cpp.o" "gcc" "src/CMakeFiles/na_netlist.dir/netlist/module_library.cpp.o.d"
  "/root/repo/src/netlist/netlist_io.cpp" "src/CMakeFiles/na_netlist.dir/netlist/netlist_io.cpp.o" "gcc" "src/CMakeFiles/na_netlist.dir/netlist/netlist_io.cpp.o.d"
  "/root/repo/src/netlist/network.cpp" "src/CMakeFiles/na_netlist.dir/netlist/network.cpp.o" "gcc" "src/CMakeFiles/na_netlist.dir/netlist/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/na_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
