file(REMOVE_RECURSE
  "CMakeFiles/na_netlist.dir/netlist/hierarchy.cpp.o"
  "CMakeFiles/na_netlist.dir/netlist/hierarchy.cpp.o.d"
  "CMakeFiles/na_netlist.dir/netlist/module_library.cpp.o"
  "CMakeFiles/na_netlist.dir/netlist/module_library.cpp.o.d"
  "CMakeFiles/na_netlist.dir/netlist/netlist_io.cpp.o"
  "CMakeFiles/na_netlist.dir/netlist/netlist_io.cpp.o.d"
  "CMakeFiles/na_netlist.dir/netlist/network.cpp.o"
  "CMakeFiles/na_netlist.dir/netlist/network.cpp.o.d"
  "libna_netlist.a"
  "libna_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
