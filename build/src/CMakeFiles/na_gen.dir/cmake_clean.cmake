file(REMOVE_RECURSE
  "CMakeFiles/na_gen.dir/gen/chain.cpp.o"
  "CMakeFiles/na_gen.dir/gen/chain.cpp.o.d"
  "CMakeFiles/na_gen.dir/gen/channel_gen.cpp.o"
  "CMakeFiles/na_gen.dir/gen/channel_gen.cpp.o.d"
  "CMakeFiles/na_gen.dir/gen/controller.cpp.o"
  "CMakeFiles/na_gen.dir/gen/controller.cpp.o.d"
  "CMakeFiles/na_gen.dir/gen/datapath.cpp.o"
  "CMakeFiles/na_gen.dir/gen/datapath.cpp.o.d"
  "CMakeFiles/na_gen.dir/gen/facing.cpp.o"
  "CMakeFiles/na_gen.dir/gen/facing.cpp.o.d"
  "CMakeFiles/na_gen.dir/gen/life.cpp.o"
  "CMakeFiles/na_gen.dir/gen/life.cpp.o.d"
  "CMakeFiles/na_gen.dir/gen/random_net.cpp.o"
  "CMakeFiles/na_gen.dir/gen/random_net.cpp.o.d"
  "libna_gen.a"
  "libna_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
