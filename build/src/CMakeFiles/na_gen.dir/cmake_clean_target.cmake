file(REMOVE_RECURSE
  "libna_gen.a"
)
