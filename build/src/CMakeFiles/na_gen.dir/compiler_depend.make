# Empty compiler generated dependencies file for na_gen.
# This may be replaced when dependencies are built.
