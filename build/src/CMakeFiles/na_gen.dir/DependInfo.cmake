
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/chain.cpp" "src/CMakeFiles/na_gen.dir/gen/chain.cpp.o" "gcc" "src/CMakeFiles/na_gen.dir/gen/chain.cpp.o.d"
  "/root/repo/src/gen/channel_gen.cpp" "src/CMakeFiles/na_gen.dir/gen/channel_gen.cpp.o" "gcc" "src/CMakeFiles/na_gen.dir/gen/channel_gen.cpp.o.d"
  "/root/repo/src/gen/controller.cpp" "src/CMakeFiles/na_gen.dir/gen/controller.cpp.o" "gcc" "src/CMakeFiles/na_gen.dir/gen/controller.cpp.o.d"
  "/root/repo/src/gen/datapath.cpp" "src/CMakeFiles/na_gen.dir/gen/datapath.cpp.o" "gcc" "src/CMakeFiles/na_gen.dir/gen/datapath.cpp.o.d"
  "/root/repo/src/gen/facing.cpp" "src/CMakeFiles/na_gen.dir/gen/facing.cpp.o" "gcc" "src/CMakeFiles/na_gen.dir/gen/facing.cpp.o.d"
  "/root/repo/src/gen/life.cpp" "src/CMakeFiles/na_gen.dir/gen/life.cpp.o" "gcc" "src/CMakeFiles/na_gen.dir/gen/life.cpp.o.d"
  "/root/repo/src/gen/random_net.cpp" "src/CMakeFiles/na_gen.dir/gen/random_net.cpp.o" "gcc" "src/CMakeFiles/na_gen.dir/gen/random_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/na_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_schematic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
