
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schematic/ascii_writer.cpp" "src/CMakeFiles/na_schematic.dir/schematic/ascii_writer.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/ascii_writer.cpp.o.d"
  "/root/repo/src/schematic/diagram.cpp" "src/CMakeFiles/na_schematic.dir/schematic/diagram.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/diagram.cpp.o.d"
  "/root/repo/src/schematic/eps_writer.cpp" "src/CMakeFiles/na_schematic.dir/schematic/eps_writer.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/eps_writer.cpp.o.d"
  "/root/repo/src/schematic/escher_reader.cpp" "src/CMakeFiles/na_schematic.dir/schematic/escher_reader.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/escher_reader.cpp.o.d"
  "/root/repo/src/schematic/escher_writer.cpp" "src/CMakeFiles/na_schematic.dir/schematic/escher_writer.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/escher_writer.cpp.o.d"
  "/root/repo/src/schematic/grid.cpp" "src/CMakeFiles/na_schematic.dir/schematic/grid.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/grid.cpp.o.d"
  "/root/repo/src/schematic/metrics.cpp" "src/CMakeFiles/na_schematic.dir/schematic/metrics.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/metrics.cpp.o.d"
  "/root/repo/src/schematic/svg_writer.cpp" "src/CMakeFiles/na_schematic.dir/schematic/svg_writer.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/svg_writer.cpp.o.d"
  "/root/repo/src/schematic/validate.cpp" "src/CMakeFiles/na_schematic.dir/schematic/validate.cpp.o" "gcc" "src/CMakeFiles/na_schematic.dir/schematic/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/na_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
