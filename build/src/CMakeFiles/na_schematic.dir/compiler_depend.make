# Empty compiler generated dependencies file for na_schematic.
# This may be replaced when dependencies are built.
