file(REMOVE_RECURSE
  "CMakeFiles/na_schematic.dir/schematic/ascii_writer.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/ascii_writer.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/diagram.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/diagram.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/eps_writer.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/eps_writer.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/escher_reader.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/escher_reader.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/escher_writer.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/escher_writer.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/grid.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/grid.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/metrics.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/metrics.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/svg_writer.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/svg_writer.cpp.o.d"
  "CMakeFiles/na_schematic.dir/schematic/validate.cpp.o"
  "CMakeFiles/na_schematic.dir/schematic/validate.cpp.o.d"
  "libna_schematic.a"
  "libna_schematic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_schematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
