file(REMOVE_RECURSE
  "libna_schematic.a"
)
