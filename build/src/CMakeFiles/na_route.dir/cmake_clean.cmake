file(REMOVE_RECURSE
  "CMakeFiles/na_route.dir/route/channel.cpp.o"
  "CMakeFiles/na_route.dir/route/channel.cpp.o.d"
  "CMakeFiles/na_route.dir/route/global.cpp.o"
  "CMakeFiles/na_route.dir/route/global.cpp.o.d"
  "CMakeFiles/na_route.dir/route/hightower.cpp.o"
  "CMakeFiles/na_route.dir/route/hightower.cpp.o.d"
  "CMakeFiles/na_route.dir/route/lee.cpp.o"
  "CMakeFiles/na_route.dir/route/lee.cpp.o.d"
  "CMakeFiles/na_route.dir/route/line_expansion.cpp.o"
  "CMakeFiles/na_route.dir/route/line_expansion.cpp.o.d"
  "CMakeFiles/na_route.dir/route/net_order.cpp.o"
  "CMakeFiles/na_route.dir/route/net_order.cpp.o.d"
  "CMakeFiles/na_route.dir/route/ripup.cpp.o"
  "CMakeFiles/na_route.dir/route/ripup.cpp.o.d"
  "CMakeFiles/na_route.dir/route/router.cpp.o"
  "CMakeFiles/na_route.dir/route/router.cpp.o.d"
  "CMakeFiles/na_route.dir/route/segment_expansion.cpp.o"
  "CMakeFiles/na_route.dir/route/segment_expansion.cpp.o.d"
  "libna_route.a"
  "libna_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
