file(REMOVE_RECURSE
  "libna_route.a"
)
