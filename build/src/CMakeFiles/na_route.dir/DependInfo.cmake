
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/channel.cpp" "src/CMakeFiles/na_route.dir/route/channel.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/channel.cpp.o.d"
  "/root/repo/src/route/global.cpp" "src/CMakeFiles/na_route.dir/route/global.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/global.cpp.o.d"
  "/root/repo/src/route/hightower.cpp" "src/CMakeFiles/na_route.dir/route/hightower.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/hightower.cpp.o.d"
  "/root/repo/src/route/lee.cpp" "src/CMakeFiles/na_route.dir/route/lee.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/lee.cpp.o.d"
  "/root/repo/src/route/line_expansion.cpp" "src/CMakeFiles/na_route.dir/route/line_expansion.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/line_expansion.cpp.o.d"
  "/root/repo/src/route/net_order.cpp" "src/CMakeFiles/na_route.dir/route/net_order.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/net_order.cpp.o.d"
  "/root/repo/src/route/ripup.cpp" "src/CMakeFiles/na_route.dir/route/ripup.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/ripup.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/CMakeFiles/na_route.dir/route/router.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/router.cpp.o.d"
  "/root/repo/src/route/segment_expansion.cpp" "src/CMakeFiles/na_route.dir/route/segment_expansion.cpp.o" "gcc" "src/CMakeFiles/na_route.dir/route/segment_expansion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/na_schematic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
