# Empty dependencies file for na_route.
# This may be replaced when dependencies are built.
