
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/box_place.cpp" "src/CMakeFiles/na_place.dir/place/box_place.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/box_place.cpp.o.d"
  "/root/repo/src/place/boxes.cpp" "src/CMakeFiles/na_place.dir/place/boxes.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/boxes.cpp.o.d"
  "/root/repo/src/place/columnar.cpp" "src/CMakeFiles/na_place.dir/place/columnar.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/columnar.cpp.o.d"
  "/root/repo/src/place/epitaxial.cpp" "src/CMakeFiles/na_place.dir/place/epitaxial.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/epitaxial.cpp.o.d"
  "/root/repo/src/place/gravity.cpp" "src/CMakeFiles/na_place.dir/place/gravity.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/gravity.cpp.o.d"
  "/root/repo/src/place/improve.cpp" "src/CMakeFiles/na_place.dir/place/improve.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/improve.cpp.o.d"
  "/root/repo/src/place/mincut.cpp" "src/CMakeFiles/na_place.dir/place/mincut.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/mincut.cpp.o.d"
  "/root/repo/src/place/module_place.cpp" "src/CMakeFiles/na_place.dir/place/module_place.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/module_place.cpp.o.d"
  "/root/repo/src/place/partition.cpp" "src/CMakeFiles/na_place.dir/place/partition.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/partition.cpp.o.d"
  "/root/repo/src/place/partition_place.cpp" "src/CMakeFiles/na_place.dir/place/partition_place.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/partition_place.cpp.o.d"
  "/root/repo/src/place/placer.cpp" "src/CMakeFiles/na_place.dir/place/placer.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/placer.cpp.o.d"
  "/root/repo/src/place/terminal_place.cpp" "src/CMakeFiles/na_place.dir/place/terminal_place.cpp.o" "gcc" "src/CMakeFiles/na_place.dir/place/terminal_place.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/na_schematic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/na_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
