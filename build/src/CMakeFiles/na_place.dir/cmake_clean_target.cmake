file(REMOVE_RECURSE
  "libna_place.a"
)
