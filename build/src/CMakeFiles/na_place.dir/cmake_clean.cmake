file(REMOVE_RECURSE
  "CMakeFiles/na_place.dir/place/box_place.cpp.o"
  "CMakeFiles/na_place.dir/place/box_place.cpp.o.d"
  "CMakeFiles/na_place.dir/place/boxes.cpp.o"
  "CMakeFiles/na_place.dir/place/boxes.cpp.o.d"
  "CMakeFiles/na_place.dir/place/columnar.cpp.o"
  "CMakeFiles/na_place.dir/place/columnar.cpp.o.d"
  "CMakeFiles/na_place.dir/place/epitaxial.cpp.o"
  "CMakeFiles/na_place.dir/place/epitaxial.cpp.o.d"
  "CMakeFiles/na_place.dir/place/gravity.cpp.o"
  "CMakeFiles/na_place.dir/place/gravity.cpp.o.d"
  "CMakeFiles/na_place.dir/place/improve.cpp.o"
  "CMakeFiles/na_place.dir/place/improve.cpp.o.d"
  "CMakeFiles/na_place.dir/place/mincut.cpp.o"
  "CMakeFiles/na_place.dir/place/mincut.cpp.o.d"
  "CMakeFiles/na_place.dir/place/module_place.cpp.o"
  "CMakeFiles/na_place.dir/place/module_place.cpp.o.d"
  "CMakeFiles/na_place.dir/place/partition.cpp.o"
  "CMakeFiles/na_place.dir/place/partition.cpp.o.d"
  "CMakeFiles/na_place.dir/place/partition_place.cpp.o"
  "CMakeFiles/na_place.dir/place/partition_place.cpp.o.d"
  "CMakeFiles/na_place.dir/place/placer.cpp.o"
  "CMakeFiles/na_place.dir/place/placer.cpp.o.d"
  "CMakeFiles/na_place.dir/place/terminal_place.cpp.o"
  "CMakeFiles/na_place.dir/place/terminal_place.cpp.o.d"
  "libna_place.a"
  "libna_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
