# Empty dependencies file for na_place.
# This may be replaced when dependencies are built.
