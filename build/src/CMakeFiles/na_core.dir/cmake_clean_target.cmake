file(REMOVE_RECURSE
  "libna_core.a"
)
