file(REMOVE_RECURSE
  "CMakeFiles/na_core.dir/core/generator.cpp.o"
  "CMakeFiles/na_core.dir/core/generator.cpp.o.d"
  "CMakeFiles/na_core.dir/core/options.cpp.o"
  "CMakeFiles/na_core.dir/core/options.cpp.o.d"
  "libna_core.a"
  "libna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
