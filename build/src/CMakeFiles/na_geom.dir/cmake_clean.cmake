file(REMOVE_RECURSE
  "CMakeFiles/na_geom.dir/geom/orientation.cpp.o"
  "CMakeFiles/na_geom.dir/geom/orientation.cpp.o.d"
  "CMakeFiles/na_geom.dir/geom/point.cpp.o"
  "CMakeFiles/na_geom.dir/geom/point.cpp.o.d"
  "CMakeFiles/na_geom.dir/geom/rect.cpp.o"
  "CMakeFiles/na_geom.dir/geom/rect.cpp.o.d"
  "libna_geom.a"
  "libna_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
