# Empty dependencies file for na_geom.
# This may be replaced when dependencies are built.
