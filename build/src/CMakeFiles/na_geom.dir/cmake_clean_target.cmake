file(REMOVE_RECURSE
  "libna_geom.a"
)
