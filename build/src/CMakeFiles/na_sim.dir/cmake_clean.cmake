file(REMOVE_RECURSE
  "CMakeFiles/na_sim.dir/sim/life_check.cpp.o"
  "CMakeFiles/na_sim.dir/sim/life_check.cpp.o.d"
  "CMakeFiles/na_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/na_sim.dir/sim/simulator.cpp.o.d"
  "libna_sim.a"
  "libna_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/na_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
