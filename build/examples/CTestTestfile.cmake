# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datapath "/root/repo/build/examples/datapath" "/root/repo/build/examples")
set_tests_properties(example_datapath PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_life_game "/root/repo/build/examples/life_game" "/root/repo/build/examples")
set_tests_properties(example_life_game PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_counter "/root/repo/build/examples/counter" "/root/repo/build/examples")
set_tests_properties(example_counter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
