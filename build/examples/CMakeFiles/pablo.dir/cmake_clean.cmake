file(REMOVE_RECURSE
  "CMakeFiles/pablo.dir/pablo.cpp.o"
  "CMakeFiles/pablo.dir/pablo.cpp.o.d"
  "pablo"
  "pablo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pablo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
