# Empty dependencies file for pablo.
# This may be replaced when dependencies are built.
