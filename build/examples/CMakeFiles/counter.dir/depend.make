# Empty dependencies file for counter.
# This may be replaced when dependencies are built.
