# Empty compiler generated dependencies file for net2art.
# This may be replaced when dependencies are built.
