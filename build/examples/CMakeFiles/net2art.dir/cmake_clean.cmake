file(REMOVE_RECURSE
  "CMakeFiles/net2art.dir/net2art.cpp.o"
  "CMakeFiles/net2art.dir/net2art.cpp.o.d"
  "net2art"
  "net2art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net2art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
