# Empty dependencies file for quinto.
# This may be replaced when dependencies are built.
