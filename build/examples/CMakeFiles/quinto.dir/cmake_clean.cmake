file(REMOVE_RECURSE
  "CMakeFiles/quinto.dir/quinto.cpp.o"
  "CMakeFiles/quinto.dir/quinto.cpp.o.d"
  "quinto"
  "quinto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quinto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
