file(REMOVE_RECURSE
  "CMakeFiles/eureka.dir/eureka.cpp.o"
  "CMakeFiles/eureka.dir/eureka.cpp.o.d"
  "eureka"
  "eureka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eureka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
