# Empty dependencies file for eureka.
# This may be replaced when dependencies are built.
