# Empty compiler generated dependencies file for life_game.
# This may be replaced when dependencies are built.
