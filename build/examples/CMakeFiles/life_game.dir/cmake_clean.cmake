file(REMOVE_RECURSE
  "CMakeFiles/life_game.dir/life_game.cpp.o"
  "CMakeFiles/life_game.dir/life_game.cpp.o.d"
  "life_game"
  "life_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/life_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
