# Empty dependencies file for life_game.
# This may be replaced when dependencies are built.
