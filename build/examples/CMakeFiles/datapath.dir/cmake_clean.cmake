file(REMOVE_RECURSE
  "CMakeFiles/datapath.dir/datapath.cpp.o"
  "CMakeFiles/datapath.dir/datapath.cpp.o.d"
  "datapath"
  "datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
