# Empty compiler generated dependencies file for escher_test.
# This may be replaced when dependencies are built.
