file(REMOVE_RECURSE
  "CMakeFiles/escher_test.dir/escher_test.cpp.o"
  "CMakeFiles/escher_test.dir/escher_test.cpp.o.d"
  "escher_test"
  "escher_test.pdb"
  "escher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
