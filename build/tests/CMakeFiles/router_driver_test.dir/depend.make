# Empty dependencies file for router_driver_test.
# This may be replaced when dependencies are built.
