file(REMOVE_RECURSE
  "CMakeFiles/router_driver_test.dir/router_driver_test.cpp.o"
  "CMakeFiles/router_driver_test.dir/router_driver_test.cpp.o.d"
  "router_driver_test"
  "router_driver_test.pdb"
  "router_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
