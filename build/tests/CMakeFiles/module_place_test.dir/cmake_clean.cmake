file(REMOVE_RECURSE
  "CMakeFiles/module_place_test.dir/module_place_test.cpp.o"
  "CMakeFiles/module_place_test.dir/module_place_test.cpp.o.d"
  "module_place_test"
  "module_place_test.pdb"
  "module_place_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_place_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
