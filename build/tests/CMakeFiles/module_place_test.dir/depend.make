# Empty dependencies file for module_place_test.
# This may be replaced when dependencies are built.
