file(REMOVE_RECURSE
  "CMakeFiles/datapath_gen_test.dir/datapath_gen_test.cpp.o"
  "CMakeFiles/datapath_gen_test.dir/datapath_gen_test.cpp.o.d"
  "datapath_gen_test"
  "datapath_gen_test.pdb"
  "datapath_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
