# Empty dependencies file for datapath_gen_test.
# This may be replaced when dependencies are built.
