# Empty dependencies file for segment_expansion_test.
# This may be replaced when dependencies are built.
