file(REMOVE_RECURSE
  "CMakeFiles/segment_expansion_test.dir/segment_expansion_test.cpp.o"
  "CMakeFiles/segment_expansion_test.dir/segment_expansion_test.cpp.o.d"
  "segment_expansion_test"
  "segment_expansion_test.pdb"
  "segment_expansion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
