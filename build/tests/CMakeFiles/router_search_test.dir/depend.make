# Empty dependencies file for router_search_test.
# This may be replaced when dependencies are built.
