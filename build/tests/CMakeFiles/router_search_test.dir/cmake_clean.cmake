file(REMOVE_RECURSE
  "CMakeFiles/router_search_test.dir/router_search_test.cpp.o"
  "CMakeFiles/router_search_test.dir/router_search_test.cpp.o.d"
  "router_search_test"
  "router_search_test.pdb"
  "router_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
