# Empty compiler generated dependencies file for global_route_test.
# This may be replaced when dependencies are built.
