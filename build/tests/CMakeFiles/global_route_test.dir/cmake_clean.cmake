file(REMOVE_RECURSE
  "CMakeFiles/global_route_test.dir/global_route_test.cpp.o"
  "CMakeFiles/global_route_test.dir/global_route_test.cpp.o.d"
  "global_route_test"
  "global_route_test.pdb"
  "global_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
