file(REMOVE_RECURSE
  "CMakeFiles/gravity_place_test.dir/gravity_place_test.cpp.o"
  "CMakeFiles/gravity_place_test.dir/gravity_place_test.cpp.o.d"
  "gravity_place_test"
  "gravity_place_test.pdb"
  "gravity_place_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravity_place_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
