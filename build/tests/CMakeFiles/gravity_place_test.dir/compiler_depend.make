# Empty compiler generated dependencies file for gravity_place_test.
# This may be replaced when dependencies are built.
