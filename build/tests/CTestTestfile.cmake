# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/diagram_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/boxes_test[1]_include.cmake")
include("/root/repo/build/tests/module_place_test[1]_include.cmake")
include("/root/repo/build/tests/gravity_place_test[1]_include.cmake")
include("/root/repo/build/tests/router_search_test[1]_include.cmake")
include("/root/repo/build/tests/router_driver_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/placer_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/escher_test[1]_include.cmake")
include("/root/repo/build/tests/ripup_test[1]_include.cmake")
include("/root/repo/build/tests/segment_expansion_test[1]_include.cmake")
include("/root/repo/build/tests/improve_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/global_route_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/datapath_gen_test[1]_include.cmake")
