# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regen "/root/repo/build-review/examples/regen")
set_tests_properties(example_regen PROPERTIES  LABELS "incremental" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datapath "/root/repo/build-review/examples/datapath" "/root/repo/build-review/examples")
set_tests_properties(example_datapath PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_life_game "/root/repo/build-review/examples/life_game" "/root/repo/build-review/examples")
set_tests_properties(example_life_game PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_counter "/root/repo/build-review/examples/counter" "/root/repo/build-review/examples")
set_tests_properties(example_counter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
