// Unit tests for the left-edge channel router baseline (section 5.2.4).
#include <gtest/gtest.h>

#include "gen/channel_gen.hpp"
#include "route/channel.hpp"

namespace na {
namespace {

constexpr int X = ChannelTrunk::kNoNet;

TEST(ChannelDensity, Simple) {
  // Nets 0: cols 0-4, 1: cols 2-6, 2: cols 5-8 -> max overlap 2.
  ChannelProblem p;
  p.top = {0, X, 1, X, 0, 2, 1, X, X};
  p.bottom = {X, X, X, X, X, X, X, X, 2};
  EXPECT_EQ(channel_density(p), 2);
}

TEST(LeftEdge, SingleNet) {
  ChannelProblem p;
  p.top = {0, X, 0};
  p.bottom = {X, X, X};
  const ChannelResult r = left_edge_route(p);
  ASSERT_EQ(r.trunks.size(), 1u);
  EXPECT_EQ(r.trunks[0].lo, 0);
  EXPECT_EQ(r.trunks[0].hi, 2);
  EXPECT_EQ(r.trunks[0].track, 1);
  EXPECT_EQ(r.tracks_used, 1);
}

TEST(LeftEdge, DisjointNetsShareATrack) {
  ChannelProblem p;
  p.top = {0, 0, X, 1, 1};
  p.bottom = {};
  const ChannelResult r = left_edge_route(p);
  EXPECT_EQ(r.tracks_used, 1);
  EXPECT_EQ(r.trunks[0].track, r.trunks[1].track);
}

TEST(LeftEdge, OverlappingNetsStack) {
  ChannelProblem p;
  p.top = {0, 1, X, 0, 1};
  p.bottom = {};
  const ChannelResult r = left_edge_route(p);
  EXPECT_EQ(r.tracks_used, 2);
  EXPECT_NE(r.trunks[0].track, r.trunks[1].track);
}

TEST(LeftEdge, MeetsDensityOnRandomChannels) {
  // The classic left-edge optimality: tracks used == channel density
  // (ignoring vertical constraints).
  for (unsigned seed = 1; seed <= 10; ++seed) {
    gen::ChannelGenOptions opt;
    opt.columns = 24;
    opt.nets = 10;
    opt.seed = seed;
    const ChannelProblem p = gen::random_channel(opt);
    const ChannelResult r = left_edge_route(p);
    EXPECT_EQ(r.tracks_used, channel_density(p)) << "seed " << seed;
  }
}

TEST(LeftEdge, TrunksNeverOverlapOnATrack) {
  for (unsigned seed = 1; seed <= 10; ++seed) {
    gen::ChannelGenOptions opt;
    opt.columns = 30;
    opt.nets = 14;
    opt.seed = seed;
    const ChannelResult r = left_edge_route(gen::random_channel(opt));
    for (size_t i = 0; i < r.trunks.size(); ++i) {
      for (size_t j = i + 1; j < r.trunks.size(); ++j) {
        if (r.trunks[i].track != r.trunks[j].track) continue;
        const bool disjoint = r.trunks[i].hi < r.trunks[j].lo ||
                              r.trunks[j].hi < r.trunks[i].lo;
        EXPECT_TRUE(disjoint) << "seed " << seed;
      }
    }
  }
}

TEST(LeftEdge, DetectsVerticalConstraintViolation) {
  // Column 1: net 1 on top, net 0 on bottom.  Net 1's trunk must be above
  // net 0's for the drops not to collide.  Interval structure forces the
  // left-edge order to put net 0 first (lower track), so if net 0 is the
  // *top* pin elsewhere this column flags.
  ChannelProblem p;
  p.top = {0, 1, X};
  p.bottom = {X, 0, 1};
  // Trunks: net 0 cols 0-1, net 1 cols 1-2 -> both overlap, two tracks;
  // left-edge assigns net 0 track 1, net 1 track 2.  Column 1: top net 1
  // (track 2) over bottom net 0 (track 1): fine.  Column 2: no top pin.
  const ChannelResult ok = left_edge_route(p);
  EXPECT_TRUE(ok.constraint_violations.empty());

  ChannelProblem bad;
  bad.top = {1, 0, X};
  bad.bottom = {X, 1, 0};
  // Net 1 cols 0-1 gets track 1; net 0 cols 1-2 track 2.  Column 1: top
  // net 0 (track 2) must drop past net 1's trunk... top pin 0 on track 2 is
  // above net 1 track 1: fine again.  Construct a real violation:
  ChannelProblem worse;
  worse.top = {0, 1};
  worse.bottom = {1, 0};
  // Trunks both span 0-1, two tracks; net 0 track 1 (left-edge order by
  // net id at same interval), net 1 track 2.  Column 0: top 0 (track 1)
  // with bottom 1 (track 2): t's track <= b's -> violation flagged.
  const ChannelResult r = left_edge_route(worse);
  EXPECT_FALSE(r.constraint_violations.empty());
}

TEST(LeftEdge, WireGeometry) {
  ChannelProblem p;
  p.top = {0, X, 0};
  p.bottom = {X, 0, X};
  const ChannelResult r = left_edge_route(p);
  const auto wires = r.wires(p);
  ASSERT_EQ(wires.size(), 1u);
  // Trunk + two top drops + one bottom drop.
  EXPECT_EQ(wires[0].size(), 4u);
  // Every segment is axis-parallel.
  for (const geom::Segment& s : wires[0]) {
    EXPECT_TRUE(s.horizontal() || s.vertical());
  }
}

TEST(LeftEdge, EmptyChannel) {
  const ChannelResult r = left_edge_route({});
  EXPECT_EQ(r.tracks_used, 0);
  EXPECT_TRUE(r.trunks.empty());
}

}  // namespace
}  // namespace na
