// Cross-validation of the two line-expansion formulations: the unit-step
// lexicographic search (line_expansion_search) and the segment/wavefront
// form of paper sections 5.5/5.6 (segment_expansion_search) must agree on
// reachability and on the minimum bend count everywhere, and the segment
// form's paths must be geometrically committable.
#include <gtest/gtest.h>

#include "gen/facing.hpp"
#include "gen/life.hpp"
#include "route/router.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

SearchProblem p2p(NetId net, geom::Point from, std::optional<geom::Dir> from_dir,
                  geom::Point to, std::optional<geom::Dir> to_facing) {
  SearchProblem p;
  p.net = net;
  p.starts = {{from, from_dir}};
  p.target = SearchTarget{to, to_facing};
  return p;
}

TEST(SegmentExpansion, StraightAndOneBend) {
  RoutingGrid g({{0, 0}, {20, 20}});
  auto r = segment_expansion_search(
      g, p2p(0, {2, 5}, geom::Dir::Right, {15, 5}, geom::Dir::Left));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.bends, 0);
  EXPECT_EQ(r->cost.length, 13);
  EXPECT_EQ(r->path, (std::vector<geom::Point>{{2, 5}, {15, 5}}));

  r = segment_expansion_search(
      g, p2p(0, {2, 2}, geom::Dir::Right, {10, 10}, geom::Dir::Down));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.bends, 1);
  EXPECT_EQ(r->cost.length, 16);
}

TEST(SegmentExpansion, DetourBends) {
  RoutingGrid g({{0, 0}, {20, 20}});
  g.block_rect({{8, 0}, {10, 12}});
  const auto r = segment_expansion_search(
      g, p2p(0, {2, 5}, geom::Dir::Right, {16, 5}, geom::Dir::Left));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.bends, 4);  // same as the unit-step engine's result
}

TEST(SegmentExpansion, NoPath) {
  RoutingGrid g({{0, 0}, {10, 10}});
  g.block_rect({{5, 0}, {5, 10}});
  EXPECT_FALSE(segment_expansion_search(
                   g, p2p(0, {2, 5}, std::nullopt, {8, 5}, std::nullopt))
                   .has_value());
}

TEST(SegmentExpansion, JoinOwnNet) {
  RoutingGrid g({{0, 0}, {10, 10}});
  const geom::Point own[] = {{2, 8}, {8, 8}};
  g.occupy_polyline(0, own);
  SearchProblem p;
  p.net = 0;
  p.starts = {{{5, 2}, geom::Dir::Up}};
  p.join_own_net = true;
  const auto r = segment_expansion_search(g, p);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.bends, 0);
  EXPECT_EQ(r->path.back(), (geom::Point{5, 8}));
}

class SegmentEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(SegmentEquivalence, AgreesWithUnitStepEngine) {
  const unsigned seed = GetParam();
  RoutingGrid g({{0, 0}, {18, 18}});
  unsigned state = seed * 2654435761u + 3;
  auto rnd = [&]() { return state = state * 1664525u + 1013904223u; };
  for (int i = 0; i < 12; ++i) {
    const int x = static_cast<int>(rnd() % 15) + 1;
    const int y = static_cast<int>(rnd() % 15) + 1;
    g.block_rect({{x, y},
                  {x + static_cast<int>(rnd() % 3), y + static_cast<int>(rnd() % 3)}});
  }
  // A few foreign nets to exercise crossing/turn rules.
  for (int i = 0; i < 3; ++i) {
    const int c = static_cast<int>(rnd() % 17) + 1;
    std::vector<geom::Point> pl{{c, 0}, {c, 17}};
    bool free_track = true;
    for (int y = 0; y <= 17; ++y) {
      if (g.blocked({c, y}) || g.v_net({c, y}) != kNone) free_track = false;
    }
    if (free_track) g.occupy_polyline(100 + i, pl);
  }
  for (const auto& [from, to] :
       std::vector<std::pair<geom::Point, geom::Point>>{
           {{0, 0}, {18, 18}}, {{0, 18}, {18, 0}}, {{0, 9}, {18, 9}}}) {
    if (!g.node_free(from, 0) || !g.node_free(to, 0)) continue;
    const SearchProblem p = p2p(0, from, std::nullopt, to, std::nullopt);
    const auto unit = line_expansion_search(g, p);
    const auto segm = segment_expansion_search(g, p);
    ASSERT_EQ(unit.has_value(), segm.has_value())
        << "seed " << seed << " " << geom::to_string(from);
    if (unit && segm) {
      EXPECT_EQ(unit->cost.bends, segm->cost.bends)
          << "seed " << seed << " " << geom::to_string(from) << "->"
          << geom::to_string(to);
      // The segment path must be committable over the same obstacles.
      RoutingGrid g2 = g;
      EXPECT_NO_THROW(g2.occupy_polyline(0, segm->path));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentEquivalence, ::testing::Range(1u, 16u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(SegmentExpansion, DrivesFullDiagramRouting) {
  // The whole driver works with the segment engine and produces a valid,
  // fully routed diagram on a real workload.
  const gen::FacingOptions fopt{3, 6, 6, 5};
  const Network net = gen::facing_pairs(fopt);
  Diagram dia(net);
  gen::facing_placement(dia, fopt);
  RouterOptions opt;
  opt.engine = Engine::SegmentExpansion;
  opt.margin = 6;
  const RouteReport r = route_all(dia, opt);
  EXPECT_EQ(r.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

}  // namespace
}  // namespace na
