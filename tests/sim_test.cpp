// Tests for the gate-level simulator and the LIFE verification (the
// paper's "simulated by the simulator in ESCHER+; results were positive").
#include <gtest/gtest.h>

#include "gen/life.hpp"
#include "netlist/module_library.hpp"
#include "sim/life_check.hpp"
#include "sim/simulator.hpp"

namespace na::sim {
namespace {

struct Harness {
  Network net;
  std::vector<TermId> ins;
  TermId out = kNone;
};

/// in0,in1 -> gate -> out
Harness gate_harness(const char* gate, int inputs) {
  Harness h;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId m = lib.instantiate(h.net, gate, "g");
  const char* names[] = {"a", "b", "c"};
  for (int i = 0; i < inputs; ++i) {
    const TermId st = h.net.add_system_terminal("i" + std::to_string(i), TermType::In);
    const NetId n = h.net.add_net("n" + std::to_string(i));
    h.net.connect(n, st);
    h.net.connect(n, *h.net.term_by_name(m, names[i]));
    h.ins.push_back(st);
  }
  h.out = h.net.add_system_terminal("o", TermType::Out);
  const NetId n = h.net.add_net("no");
  h.net.connect(n, *h.net.term_by_name(m, "y"));
  h.net.connect(n, h.out);
  return h;
}

TEST(Simulator, TruthTables) {
  struct Case {
    const char* gate;
    bool table[4];  // f(00), f(01), f(10), f(11) with (a,b)
  };
  for (const Case& c : {Case{"and2", {false, false, false, true}},
                        Case{"or2", {false, true, true, true}},
                        Case{"xor2", {false, true, true, false}},
                        Case{"nand2", {true, true, true, false}},
                        Case{"nor2", {true, false, false, false}}}) {
    Harness h = gate_harness(c.gate, 2);
    Simulator s(h.net);
    for (int v = 0; v < 4; ++v) {
      s.set_input(h.ins[0], (v & 2) != 0);
      s.set_input(h.ins[1], (v & 1) != 0);
      s.settle();
      EXPECT_EQ(s.value_at(h.out), c.table[v]) << c.gate << " input " << v;
    }
  }
}

TEST(Simulator, InverterChainSettles) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  ModuleId prev = lib.instantiate(net, "inv", "i0");
  const TermId in = net.add_system_terminal("x", TermType::In);
  NetId n = net.add_net("n_in");
  net.connect(n, in);
  net.connect(n, *net.term_by_name(prev, "a"));
  for (int i = 1; i < 5; ++i) {
    const ModuleId cur = lib.instantiate(net, "inv", "i" + std::to_string(i));
    n = net.add_net("n" + std::to_string(i));
    net.connect(n, *net.term_by_name(prev, "y"));
    net.connect(n, *net.term_by_name(cur, "a"));
    prev = cur;
  }
  Simulator s(net);
  s.set_input(in, true);
  s.settle();
  // Net n<k> carries the input inverted k times.
  EXPECT_FALSE(s.value(*net.net_by_name("n1")));
  EXPECT_TRUE(s.value(*net.net_by_name("n2")));
  EXPECT_FALSE(s.value(*net.net_by_name("n3")));
  EXPECT_TRUE(s.value(*net.net_by_name("n4")));
  s.set_input(in, false);
  s.settle();
  EXPECT_TRUE(s.value(*net.net_by_name("n1")));
  EXPECT_FALSE(s.value(*net.net_by_name("n4")));
}

TEST(Simulator, RingOscillatorThrows) {
  // A single inverter feeding itself cannot settle.
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId m = lib.instantiate(net, "inv", "i");
  const NetId n = net.add_net("loop");
  net.connect(n, *net.term_by_name(m, "y"));
  net.connect(n, *net.term_by_name(m, "a"));
  Simulator s(net);
  EXPECT_THROW(s.settle(), std::runtime_error);
}

TEST(Simulator, DffCapturesOnTick) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId ff = lib.instantiate(net, "dff", "ff");
  const TermId d = net.add_system_terminal("d", TermType::In);
  const NetId nd = net.add_net("nd");
  net.connect(nd, d);
  net.connect(nd, *net.term_by_name(ff, "d"));
  const NetId nq = net.add_net("nq");
  net.connect(nq, *net.term_by_name(ff, "q"));
  net.connect(nq, net.add_system_terminal("q", TermType::Out));
  const NetId nqn = net.add_net("nqn");
  net.connect(nqn, *net.term_by_name(ff, "qn"));
  net.connect(nqn, net.add_system_terminal("qn", TermType::Out));
  Simulator s(net);
  s.set_input(d, true);
  s.settle();
  EXPECT_FALSE(s.value(nq));  // not clocked yet
  s.tick();
  EXPECT_TRUE(s.value(nq));
  s.set_input(d, false);
  s.tick();
  EXPECT_FALSE(s.value(nq));
  // qn is the complement.
  EXPECT_TRUE(s.input(ff, "qn"));
}

TEST(Simulator, RegEnableGates) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId r = lib.instantiate(net, "reg", "r");
  const TermId d = net.add_system_terminal("d", TermType::In);
  const TermId en = net.add_system_terminal("en", TermType::In);
  NetId n = net.add_net("nd");
  net.connect(n, d);
  net.connect(n, *net.term_by_name(r, "d"));
  n = net.add_net("nen");
  net.connect(n, en);
  net.connect(n, *net.term_by_name(r, "en"));
  Simulator s(net);
  s.set_input(d, true);
  s.set_input(en, false);
  s.tick();
  EXPECT_EQ(s.state(r), 0u);  // enable off: held
  s.set_input(en, true);
  s.tick();
  EXPECT_EQ(s.state(r), 1u);
}

TEST(Simulator, MissingBehaviorThrows) {
  Network net;
  net.add_module("mystery", "no_such_template", {2, 2});
  Simulator s(net);
  EXPECT_THROW(s.settle(), std::runtime_error);
}

TEST(Simulator, CustomBehavior) {
  Network net;
  const ModuleId m = net.add_module("c", "const1", {2, 2});
  net.add_terminal(m, "y", TermType::Out, {2, 1});
  const NetId n = net.add_net("n");
  net.connect(n, *net.term_by_name(m, "y"));
  net.connect(n, net.add_system_terminal("o", TermType::Out));
  Simulator s(net);
  s.register_behavior("const1", {[](Simulator& sim, ModuleId mm) {
                                   sim.output(mm, "y", true);
                                 },
                                 nullptr});
  s.settle();
  EXPECT_TRUE(s.value(n));
}

// --- LIFE ------------------------------------------------------------------------

TEST(LifeReference, Rules) {
  // All dead stays dead.
  EXPECT_EQ(life_reference_step({}), (std::array<bool, 9>{}));
  // Exactly three alive: every dead cell with 3 neighbours is born; the
  // alive ones have 2 neighbours each and survive -> all alive.
  std::array<bool, 9> three{};
  three[0] = three[1] = three[2] = true;
  const auto next = life_reference_step(three);
  for (bool b : next) EXPECT_TRUE(b);
  // Full board: everyone has 8 neighbours -> all die.
  std::array<bool, 9> full;
  full.fill(true);
  for (bool b : life_reference_step(full)) EXPECT_FALSE(b);
}

TEST(LifeHardware, MatchesReference) {
  const Network net = gen::life_network();
  const std::array<bool, 9> seeds[] = {
      {true, false, false, false, true, false, false, false, true},
      {true, true, false, false, false, false, false, false, false},
      {false, true, false, true, true, false, false, false, true},
  };
  for (const auto& seed : seeds) {
    const auto problems = verify_life(net, seed, 6);
    for (const auto& p : problems) ADD_FAILURE() << p;
  }
}

TEST(LifeHardware, ModeFreezesBoard) {
  const Network net = gen::life_network();
  Simulator s(net);
  std::array<ModuleId, 9> regs{};
  std::array<bool, 9> board{true, false, true, false, true, false, true, false, true};
  for (int i = 0; i < 9; ++i) {
    regs[i] = *net.module_by_name("reg" + std::to_string(i / 3) +
                                  std::to_string(i % 3));
    s.set_state(regs[i], board[i] ? 1 : 0);
  }
  s.set_input(*net.term_by_name(kNone, "mode"), true);  // freeze
  s.tick();
  s.tick();
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ((s.state(regs[i]) & 1) != 0, board[i]) << "cell " << i;
  }
}

TEST(LifeHardware, ResetClears) {
  const Network net = gen::life_network();
  Simulator s(net);
  for (int i = 0; i < 9; ++i) {
    s.set_state(*net.module_by_name("reg" + std::to_string(i / 3) +
                                    std::to_string(i % 3)),
                1);
  }
  s.set_input(*net.term_by_name(kNone, "rst"), true);
  s.tick();
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(s.state(*net.module_by_name("reg" + std::to_string(i / 3) +
                                          std::to_string(i % 3))),
              0u);
  }
}

}  // namespace
}  // namespace na::sim
