// Tests for rip-up / reroute / repair — the interactive fix workflow of
// section 6 — and for the facing-pairs claimpoint workload generator.
#include <gtest/gtest.h>

#include "gen/facing.hpp"
#include "gen/life.hpp"
#include "netlist/module_library.hpp"
#include "route/net_order.hpp"
#include "route/ripup.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

TEST(RipUp, RemovesGeometry) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  route_all(dia);
  ASSERT_TRUE(dia.route(n).routed);
  rip_up(dia, n);
  EXPECT_FALSE(dia.route(n).routed);
  EXPECT_TRUE(dia.route(n).polylines.empty());
}

TEST(Reroute, ReconnectsRippedNets) {
  const gen::FacingOptions fopt{/*pairs=*/2, /*terms=*/4, /*channel=*/6, 1};
  const Network net = gen::facing_pairs(fopt);
  Diagram dia(net);
  gen::facing_placement(dia, fopt);
  RouterOptions opt;
  opt.margin = 6;
  ASSERT_EQ(route_all(dia, opt).nets_failed, 0);
  const std::vector<NetId> victims{0, 1, 2};
  const RouteReport r = reroute(dia, victims, opt);
  EXPECT_EQ(r.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(Repair, FixesBlockedChannels) {
  // A crowded facing channel routed without claims leaves failures; the
  // repair loop (rip nearby victims, reroute) recovers most or all of them,
  // like the paper's human-adjust-then-rerun story.
  int failed_before = 0;
  int failed_after = 0;
  for (unsigned seed = 1; seed <= 4; ++seed) {
    gen::FacingOptions fopt;
    fopt.channel = 4;
    fopt.seed = seed;
    const Network net = gen::facing_pairs(fopt);
    RouterOptions opt;
    opt.use_claimpoints = false;  // provoke failures
    opt.retry_failed = false;
    opt.margin = 4;
    Diagram plain(net);
    gen::facing_placement(plain, fopt);
    failed_before += route_all(plain, opt).nets_failed;

    Diagram repaired(net);
    gen::facing_placement(repaired, fopt);
    const RouteReport r = repair_failed(repaired, opt, /*max_rounds=*/4);
    failed_after += r.nets_failed;
    EXPECT_TRUE(validate_diagram(repaired).empty());
  }
  EXPECT_GT(failed_before, 0);  // the scenario is actually hard
  EXPECT_LT(failed_after, failed_before);
}

TEST(Repair, NoopWhenEverythingRoutes) {
  const gen::FacingOptions fopt{2, 4, 8, 1};
  const Network net = gen::facing_pairs(fopt);
  Diagram dia(net);
  gen::facing_placement(dia, fopt);
  const RouteReport r = repair_failed(dia);
  EXPECT_EQ(r.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(FacingGen, Structure) {
  const gen::FacingOptions fopt{3, 6, 4, 2};
  const Network net = gen::facing_pairs(fopt);
  EXPECT_EQ(net.module_count(), 6);
  EXPECT_EQ(net.net_count(), 18);
  EXPECT_TRUE(net.validate().empty());
  Diagram dia(net);
  gen::facing_placement(dia, fopt);
  EXPECT_TRUE(validate_diagram(dia).empty());
  // The channel between facing modules is exactly `channel` tracks wide.
  EXPECT_EQ(dia.module_rect(1).lo.x - dia.module_rect(0).hi.x - 1, fopt.channel);
}

TEST(FacingGen, SeedsPermuteDifferently) {
  const Network a = gen::facing_pairs({1, 6, 4, 1});
  const Network b = gen::facing_pairs({1, 6, 4, 2});
  bool differ = false;
  for (int n = 0; n < a.net_count() && !differ; ++n) {
    differ = a.net(n).terms != b.net(n).terms;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace na
