// End-to-end tests of the na_serve daemon over loopback: protocol round
// trips, per-session edit ordering under concurrent clients, cross-session
// isolation (16 concurrent sessions — the acceptance bar), kill/restart
// with byte-identical continuation, malformed traffic on a live socket and
// graceful shutdown.  Everything binds port 0 (ephemeral), so parallel
// ctest runs never collide.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "incremental/edit.hpp"
#include "incremental/session.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "schematic/escher_writer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace na;
using namespace na::serve;

namespace {

/// A started server + the thread running it; stops on destruction.
struct LiveServer {
  explicit LiveServer(ServerOptions opt = {}) : server(make(std::move(opt))) {
    std::string error;
    ok = server.start(&error);
    EXPECT_TRUE(ok) << error;
    if (ok) thread = std::thread([this] { server.run(); });
  }
  ~LiveServer() { stop(); }
  void stop() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
  }
  BlockingClient connect() {
    BlockingClient c;
    std::string error;
    EXPECT_TRUE(c.connect("127.0.0.1", server.port(), &error)) << error;
    return c;
  }
  static ServerOptions make(ServerOptions opt) {
    opt.port = 0;
    return opt;
  }

  Server server;
  std::thread thread;
  bool ok = false;
};

bool is_ok(const std::string& response) {
  return response.rfind(R"({"ok":true)", 0) == 0;
}

std::string field_code(const std::string& response) {
  const size_t at = response.find("\"code\":\"");
  if (at == std::string::npos) return {};
  const size_t begin = at + 8;
  return response.substr(begin, response.find('"', begin) - begin);
}

long long field_seq(const std::string& response) {
  const size_t at = response.find("\"seq\":");
  if (at == std::string::npos) return -1;
  return std::strtoll(response.c_str() + at + 6, nullptr, 10);
}

/// Extracts the decoded "payload" string of a get/save response.
std::string field_payload(const std::string& response) {
  const size_t key = response.find("\"payload\":\"");
  if (key == std::string::npos) return {};
  std::string out;
  for (size_t i = key + 11; i < response.size(); ++i) {
    char c = response[i];
    if (c == '"') break;
    if (c == '\\') {
      const char e = response[++i];
      if (e == 'n') c = '\n';
      else if (e == 't') c = '\t';
      else if (e == 'r') c = '\r';
      else if (e == 'u') {  // payloads are ASCII; decode \u00XX only
        c = static_cast<char>(std::strtol(response.substr(i + 1, 4).c_str(),
                                          nullptr, 16));
        i += 4;
      } else c = e;
    }
    out.push_back(c);
  }
  return out;
}

/// Integer value of a metric inside a stats response ("key":value).
long long metric_value(const std::string& stats, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = stats.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(stats.c_str() + at + needle.size(), nullptr, 10);
}

/// Integer field of one named histogram inside a metrics response, e.g.
/// hist_field(r, "serve.lat.edit", "p50").  -1 when absent.
long long hist_field(const std::string& metrics, const std::string& hist,
                     const std::string& field) {
  const size_t at = metrics.find("\"" + hist + "\":{");
  if (at == std::string::npos) return -1;
  const std::string needle = "\"" + field + "\":";
  const size_t f = metrics.find(needle, at);
  const size_t end = metrics.find('}', at);
  if (f == std::string::npos || f > end) return -1;
  return std::strtoll(metrics.c_str() + f + needle.size(), nullptr, 10);
}

std::string edit_line(const std::string& session, int i) {
  return R"({"op":"edit","session":")" + session + R"(","edits":[)" +
         R"({"kind":"add_module","name":"mod)" + std::to_string(i) +
         R"(","template":"","w":4,"h":3}]})";
}

/// What the server should produce for `session` when every edit is
/// observed (a get/save between each): one RegenSession update per edit.
std::string local_reference(const std::string& design,
                            const std::string& session, int edits) {
  RegenSession regen{RegenOptions{}};
  Network net = design_network(design);
  regen.update(net);
  for (int i = 0; i < edits; ++i) {
    NetworkEditor ed(net);
    ed.add_module("mod" + std::to_string(i), "", {4, 3});
    net = ed.build();
    regen.update(net);
  }
  return to_escher_diagram(regen.diagram(), session);
}

/// What the server should produce for `session` after an *uninterrupted*
/// run of edits followed by one get: the edits compose into a single
/// flush — one diff, one update — at the observation point.
std::string composed_reference(const std::string& design,
                               const std::string& session, int edits) {
  RegenSession regen{RegenOptions{}};
  regen.update(design_network(design));
  ScriptComposer pending(regen.network());
  for (int i = 0; i < edits; ++i) {
    pending.apply([&](NetworkEditor& ed) {
      ed.add_module("mod" + std::to_string(i), "", {4, 3});
    });
  }
  regen.update_composed(pending.network(), pending.steps());
  return to_escher_diagram(regen.diagram(), session);
}

}  // namespace

TEST(Serve, OpenEditGetMatchesLocalSession) {
  LiveServer live;
  BlockingClient c = live.connect();

  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"a","design":"chain"})")));
  for (int i = 0; i < 3; ++i) {
    const std::string r = c.request(edit_line("a", i));
    ASSERT_TRUE(is_ok(r)) << r;
    EXPECT_EQ(field_seq(r), i + 1);
  }
  const std::string got =
      field_payload(c.request(R"({"op":"get","session":"a"})"));
  EXPECT_EQ(got, composed_reference("chain", "a", 3));
}

TEST(Serve, PerSessionOrderingUnderConcurrentClients) {
  LiveServer live;
  ASSERT_TRUE(
      is_ok(live.connect().request(R"({"op":"open","session":"s","design":"chain"})")));

  // 4 clients hammer one session.  Each must see strictly increasing seq
  // numbers (its own edits are ordered), and the union must be exactly
  // 1..N (edits are never lost or double-counted).
  constexpr int kClients = 4, kEditsEach = 5;
  std::vector<std::vector<long long>> seen(kClients);
  std::vector<std::thread> threads;
  std::atomic<int> counter{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      BlockingClient c = live.connect();
      for (int i = 0; i < kEditsEach; ++i) {
        const std::string r =
            c.request(edit_line("s", counter.fetch_add(1)));
        ASSERT_TRUE(is_ok(r)) << r;
        seen[t].push_back(field_seq(r));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<long long> all;
  for (const auto& per_client : seen) {
    for (size_t i = 1; i < per_client.size(); ++i) {
      EXPECT_LT(per_client[i - 1], per_client[i]);  // per-client order
    }
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), size_t{kClients * kEditsEach});
  for (int i = 0; i < kClients * kEditsEach; ++i) EXPECT_EQ(all[i], i + 1);
}

TEST(Serve, SixteenConcurrentSessionsStayIsolated) {
  ServerOptions opt;
  opt.host.threads = 8;
  LiveServer live(opt);

  // The acceptance bar: 16 sessions, one client each, edited concurrently.
  // Every session's final diagram must equal the single-session reference —
  // concurrency across sessions must not leak into any session's output.
  constexpr int kSessions = 16, kEdits = 3;
  std::vector<std::string> results(kSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      const std::string name = "iso" + std::to_string(s);
      BlockingClient c = live.connect();
      ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":")" + name +
                                  R"(","design":"chain"})")));
      for (int i = 0; i < kEdits; ++i) {
        ASSERT_TRUE(is_ok(c.request(edit_line(name, i))));
      }
      results[s] =
          field_payload(c.request(R"({"op":"get","session":")" + name + R"("})"));
    });
  }
  for (std::thread& t : threads) t.join();

  for (int s = 0; s < kSessions; ++s) {
    const std::string name = "iso" + std::to_string(s);
    EXPECT_EQ(results[s], composed_reference("chain", name, kEdits))
        << "session " << name << " diverged";
  }
  EXPECT_EQ(live.server.host().open_sessions(), kSessions);
}

TEST(Serve, KillRestartRestoresByteIdentical) {
  const std::string state =
      (std::filesystem::temp_directory_path() /
       ("na_serve_test_state_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(state);

  // Reference: one continuous session, 2 edits, then render.
  const std::string want = local_reference("chain", "k", 2);

  ServerOptions opt;
  opt.host.state_dir = state;
  {
    LiveServer first(opt);
    BlockingClient c = first.connect();
    ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"k","design":"chain"})")));
    ASSERT_TRUE(is_ok(c.request(edit_line("k", 0))));
    // No explicit save: graceful stop must persist the dirty session.
    first.stop();
  }
  ASSERT_TRUE(std::filesystem::exists(state + "/k.session"));

  {
    LiveServer second(opt);
    BlockingClient c = second.connect();
    ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"k","restore":true})")));
    const std::string r = c.request(edit_line("k", 1));
    ASSERT_TRUE(is_ok(r)) << r;
    const std::string got =
        field_payload(c.request(R"({"op":"get","session":"k"})"));
    EXPECT_EQ(got, want) << "restored session diverged from the "
                            "never-restarted reference";
  }
  std::filesystem::remove_all(state);
}

TEST(Serve, MalformedTrafficKeepsConnectionAlive) {
  ServerOptions opt;
  opt.max_line = 4096;  // small cap so the oversized-line test is cheap
  LiveServer live(opt);
  BlockingClient c = live.connect();

  EXPECT_EQ(field_code(c.request("{broken")), "bad_json");
  EXPECT_EQ(field_code(c.request(R"({"op":"levitate"})")), "unknown_op");
  EXPECT_EQ(field_code(c.request(R"({"op":"edit","session":"ghost","edits":[)"
                                 R"({"kind":"remove_net","net":"n"}]})")),
            "no_such_session");
  EXPECT_EQ(field_code(c.request(R"({"op":"open","session":"x","design":"tnt"})")),
            "bad_design");
  EXPECT_EQ(field_code(c.request(R"({"op":"open","session":"../evil","design":"chain"})")),
            "bad_request");

  // Oversized line: rejected, discarded, connection survives.
  std::string huge = R"({"op":"ping","pad":")";
  huge.append(8192, 'x');
  huge += R"("})";
  EXPECT_EQ(field_code(c.request(huge)), "line_too_long");

  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"x","design":"chain"})")));
  EXPECT_EQ(field_code(c.request(R"({"op":"open","session":"x","design":"chain"})")),
            "session_exists");

  // A bad edit script must leave the session exactly as it was.
  const std::string before =
      field_payload(c.request(R"({"op":"get","session":"x"})"));
  EXPECT_EQ(field_code(c.request(
                R"({"op":"edit","session":"x","edits":[)"
                R"({"kind":"remove_module","name":"no_such_module"}]})")),
            "bad_edit");
  EXPECT_EQ(field_payload(c.request(R"({"op":"get","session":"x"})")), before);

  // Still fully functional after the whole gauntlet.
  EXPECT_TRUE(is_ok(c.request(R"({"op":"ping"})")));
}

TEST(Serve, SaveWithoutStateDirReturnsBlobInline) {
  LiveServer live;
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"b","design":"chain"})")));
  const std::string r = c.request(R"({"op":"save","session":"b"})");
  ASSERT_TRUE(is_ok(r));
  EXPECT_EQ(field_payload(r).rfind("#NA-SESSION-1", 0), 0u);
  // But open+restore without a state dir is a structured error.
  EXPECT_EQ(field_code(c.request(R"({"op":"open","session":"r2","restore":true})")),
            "no_state_dir");
}

TEST(Serve, ShutdownRequestStopsServer) {
  LiveServer live;
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"z","design":"chain"})")));
  ASSERT_TRUE(is_ok(c.request(R"({"op":"shutdown"})")));
  live.thread.join();  // run() returns on its own
  EXPECT_TRUE(live.server.stopping());
}

TEST(Serve, SigtermStopsServer) {
  LiveServer live;
  install_signal_handlers(live.server);
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"ping"})")));
  ::raise(SIGTERM);
  live.thread.join();
  EXPECT_TRUE(live.server.stopping());
  // Restore default dispositions for the rest of the test binary.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

TEST(Serve, ClientDisconnectBeforeReadDoesNotKillServer) {
  LiveServer live;
  ASSERT_TRUE(is_ok(
      live.connect().request(R"({"op":"open","session":"d","design":"chain"})")));

  // The SIGPIPE regression: each client fires an edit and slams the
  // connection shut without ever reading the response.  The daemon must
  // apply every edit and write (or drop) every response without dying.
  // A polite client watches the session between rude visits (which also
  // keeps the edit order deterministic for the byte-identity check —
  // ordering across *connections* is arrival order, not client order).
  BlockingClient keeper = live.connect();
  constexpr int kRude = 20;
  for (int i = 0; i < kRude; ++i) {
    {
      BlockingClient c = live.connect();
      ASSERT_TRUE(c.send_line(edit_line("d", i)));
      c.close();  // gone before the response exists
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    long long seq = 0;
    while (seq < i + 1 && std::chrono::steady_clock::now() < deadline) {
      const std::string r = keeper.request(R"({"op":"get","session":"d"})");
      ASSERT_TRUE(is_ok(r)) << r << " / " << keeper.last_error();
      seq = field_seq(r);
      if (seq <= i) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(seq, i + 1) << "rude client " << i << "'s edit was lost";
  }

  // ...and the daemon is still fully alive afterwards.
  const std::string r = keeper.request(edit_line("d", kRude));
  ASSERT_TRUE(is_ok(r)) << r;
  EXPECT_EQ(field_seq(r), kRude + 1);
  EXPECT_EQ(field_payload(keeper.request(R"({"op":"get","session":"d"})")),
            local_reference("chain", "d", kRude + 1));
}

TEST(Serve, DribbleFedRequestStillParses) {
  LiveServer live;
  BlockingClient c = live.connect();

  // One byte per send(): the reactor must accumulate across however many
  // EPOLLIN wakeups it takes and only dispatch at the newline.
  const std::string line = R"({"op":"open","session":"slow","design":"chain"})"
                           "\n";
  for (char ch : line) {
    ASSERT_EQ(::send(c.fd(), &ch, 1, MSG_NOSIGNAL), 1);
  }
  std::string response;
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_TRUE(is_ok(response)) << response;

  // Same treatment for an edit, interleaved with a whole second request in
  // one final burst (split mid-line): both must answer, in order.
  const std::string burst = edit_line("slow", 0) + "\n" +
                            R"({"op":"get","session":"slow"})" + "\n";
  for (size_t i = 0; i < burst.size(); i += 7) {
    const size_t n = std::min<size_t>(7, burst.size() - i);
    ASSERT_EQ(::send(c.fd(), burst.data() + i, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
  }
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_EQ(field_seq(response), 1);
  ASSERT_TRUE(c.recv_line(&response));
  EXPECT_EQ(field_payload(response), local_reference("chain", "slow", 1));
}

TEST(Serve, ConnectionChurnFiveHundred) {
  ServerOptions opt;
  opt.io_threads = 2;
  LiveServer live(opt);

  // 500 short-lived connections — 400 sequential plus a 100-strong
  // concurrent burst: the event loop must reclaim every one (the old
  // plane held a thread per connection for the server's whole life).
  constexpr int kSequential = 400;
  for (int i = 0; i < kSequential; ++i) {
    BlockingClient c = live.connect();
    ASSERT_TRUE(is_ok(c.request(R"({"op":"ping"})"))) << "conn " << i;
  }

  // ...plus a concurrent burst of open/close churn across threads.
  constexpr int kThreads = 4, kEach = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) {
        BlockingClient c = live.connect();
        ASSERT_TRUE(is_ok(c.request(R"({"op":"ping"})")));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const Server::Counters counters = live.server.counters();
  EXPECT_GE(counters.connections, kSequential + kThreads * kEach);
  EXPECT_GE(counters.requests, kSequential + kThreads * kEach);
  EXPECT_TRUE(is_ok(live.connect().request(R"({"op":"ping"})")));
}

TEST(Serve, StatsCountTrafficExactly) {
  ServerOptions opt;
  opt.max_line = 4096;
  LiveServer live(opt);
  BlockingClient c = live.connect();

  // Known traffic: 3 successes, 2 errors — one of them an oversized line,
  // which never reaches the parser and must still be counted.
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"t","design":"chain"})")));
  ASSERT_TRUE(is_ok(c.request(edit_line("t", 0))));
  ASSERT_TRUE(is_ok(c.request(R"({"op":"ping"})")));
  EXPECT_EQ(field_code(c.request("{broken")), "bad_json");
  std::string huge = R"({"op":"ping","pad":")";
  huge.append(8192, 'x');
  huge += R"("})";
  EXPECT_EQ(field_code(c.request(huge)), "line_too_long");

  // The stats response reports the totals *before* itself.
  const std::string stats = c.request(R"({"op":"stats"})");
  ASSERT_TRUE(is_ok(stats)) << stats;
  EXPECT_EQ(metric_value(stats, "serve.requests"), 5);
  EXPECT_EQ(metric_value(stats, "serve.errors"), 2);
  EXPECT_EQ(metric_value(stats, "serve.connections"), 1);

  // And the counters() accessor agrees once the stats request itself is in.
  const Server::Counters counters = live.server.counters();
  EXPECT_EQ(counters.requests, 6);
  EXPECT_EQ(counters.errors, 2);
}

TEST(Serve, PipelinedEditsBatchAndStayDeterministic) {
  LiveServer live;
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"p","design":"chain"})")));

  // Fire a burst of pipelined edits without reading a single response:
  // the connection plane may coalesce them into fewer pool jobs, but the
  // responses must come back in order with seq == arrival order, and the
  // final diagram must be byte-identical to unbatched execution.
  constexpr int kEdits = 14;
  for (int i = 0; i < kEdits; ++i) {
    ASSERT_TRUE(c.send_line(edit_line("p", i)));
  }
  for (int i = 0; i < kEdits; ++i) {
    std::string r;
    ASSERT_TRUE(c.recv_line(&r));
    ASSERT_TRUE(is_ok(r)) << r;
    EXPECT_EQ(field_seq(r), i + 1);  // wire order == edit order
  }
  EXPECT_EQ(field_payload(c.request(R"({"op":"get","session":"p"})")),
            composed_reference("chain", "p", kEdits));

  // Every edit request rode in exactly one edit-carrying job; how many
  // jobs depends on timing, but the accounting must balance.
  const std::string stats = c.request(R"({"op":"stats"})");
  EXPECT_EQ(metric_value(stats, "serve.batch.edits"), kEdits + 0);
  const long long jobs = metric_value(stats, "serve.batch.jobs");
  EXPECT_GE(jobs, 1);
  EXPECT_LE(jobs, kEdits);
  const long long max_size = metric_value(stats, "serve.batch.max");
  EXPECT_GE(max_size, 1);
  EXPECT_LE(max_size, kEdits);

  // Multi-edit regen: the whole uninterrupted run flushed through exactly
  // one RegenSession update at the get — not one per edit, and unlike the
  // job count this is protocol-determined, not timing-determined.
  EXPECT_EQ(metric_value(stats, "serve.batch.regens"), 1);
  EXPECT_EQ(metric_value(stats, "serve.batch.composed"), kEdits + 0);
  EXPECT_LT(metric_value(stats, "serve.batch.regens"),
            metric_value(stats, "serve.batch.edits"));
  EXPECT_EQ(metric_value(stats, "regen.edits_composed"), kEdits + 0);
}

TEST(Serve, ClientDistinguishesTransportFailure) {
  LiveServer live;
  BlockingClient c = live.connect();

  // A successful round trip leaves last_error() empty.
  ASSERT_TRUE(is_ok(c.request(R"({"op":"ping"})")));
  EXPECT_TRUE(c.last_error().empty()) << c.last_error();

  // Stop the server: now request() returns "" *because the transport
  // failed*, and last_error() says so — distinguishable from a server
  // that genuinely sent an empty line.
  live.stop();
  const std::string r = c.request(R"({"op":"ping"})");
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(c.last_error().empty());
}

TEST(Serve, StatsReportServiceCounters) {
  LiveServer live;
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"m","design":"chain"})")));
  ASSERT_TRUE(is_ok(c.request(edit_line("m", 0))));
  const std::string r = c.request(R"({"op":"stats"})");
  ASSERT_TRUE(is_ok(r)) << r;
  EXPECT_NE(r.find("\"serve.requests\":"), std::string::npos);
  EXPECT_NE(r.find("\"serve.sessions_open\":1"), std::string::npos);
  EXPECT_NE(r.find("\"serve.edits_applied\":1"), std::string::npos);
  EXPECT_NE(r.find("\"regen.updates\":"), std::string::npos);
}

TEST(Serve, MetricsOpRoundTripsHistograms) {
  LiveServer live;
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"h","design":"chain"})")));

  // Known op mix, with the client measuring its own edit latency through
  // the same estimator the server uses.
  constexpr int kEdits = 12;
  obs::Histogram client_lat;
  for (int i = 0; i < kEdits; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(is_ok(c.request(edit_line("h", i))));
    client_lat.record_ms(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  ASSERT_TRUE(is_ok(c.request(R"({"op":"get","session":"h"})")));

  const std::string r = c.request(R"({"op":"metrics","id":7})");
  ASSERT_TRUE(is_ok(r)) << r;
  EXPECT_NE(r.find("\"op\":\"metrics\""), std::string::npos);
  EXPECT_NE(r.find("\"id\":7"), std::string::npos);

  // The full registry rides along: scalars plus per-op latency histograms.
  EXPECT_NE(r.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(hist_field(r, "serve.lat.open", "count"), 1);
  EXPECT_EQ(hist_field(r, "serve.lat.edit", "count"), kEdits);
  EXPECT_EQ(hist_field(r, "serve.lat.get", "count"), 1);
  EXPECT_EQ(hist_field(r, "serve.lat.flush", "count"), 1);
  EXPECT_GE(hist_field(r, "serve.pool.queue_wait", "count"), 1);
  EXPECT_GT(metric_value(r, "serve.peak_rss_bytes"), 0);
  EXPECT_GE(metric_value(r, "serve.uptime_ms"), 0);

  // Quantile sanity, and agreement with the bench-side estimator: the
  // server-measured edit latency (dispatch to response, no socket RTT)
  // can never exceed what the client saw end to end.
  const long long p50 = hist_field(r, "serve.lat.edit", "p50");
  const long long p99 = hist_field(r, "serve.lat.edit", "p99");
  const long long max = hist_field(r, "serve.lat.edit", "max");
  EXPECT_GE(p50, 0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, max);
  const obs::HistogramData client_data = client_lat.snapshot();
  EXPECT_EQ(client_data.count, kEdits);
  EXPECT_LE(max, client_data.max);

  // The stats op keeps its scalar shape: no histograms object, but the
  // process gauges ride along.
  const std::string stats = c.request(R"({"op":"stats"})");
  ASSERT_TRUE(is_ok(stats)) << stats;
  EXPECT_EQ(stats.find("\"histograms\""), std::string::npos);
  EXPECT_GT(metric_value(stats, "serve.peak_rss_bytes"), 0);
  EXPECT_GE(metric_value(stats, "serve.uptime_ms"), 0);
}

TEST(Serve, WatchdogPublishesGaugesAndPromFile) {
  const std::string prom =
      testing::TempDir() + "serve_watchdog_test.prom";
  std::remove(prom.c_str());
  ServerOptions opt;
  opt.watchdog_ms = 20;
  opt.prom_file = prom;
  LiveServer live(opt);
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"w","design":"chain"})")));

  // Wait until a sampler tick taken *after* the open has landed and its
  // loop-lag probes have run (generous bound; the interval is 20ms).
  std::string r;
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    r = c.request(R"({"op":"metrics"})");
    if (metric_value(r, "serve.gauge.sessions_open") == 1 &&
        hist_field(r, "serve.lat.loop_tick", "count") >= 1) {
      break;
    }
  }
  EXPECT_GE(metric_value(r, "serve.gauge.watchdog_ticks"), 1);
  EXPECT_EQ(metric_value(r, "serve.gauge.sessions_open"), 1);
  EXPECT_GE(metric_value(r, "serve.gauge.pool_queue_depth"), 0);
  EXPECT_GE(metric_value(r, "serve.gauge.pending_edits"), 0);
  EXPECT_GT(metric_value(r, "serve.gauge.rss_bytes"), 0);
  // Loop-lag probes record into the loop_tick histogram.
  EXPECT_GE(hist_field(r, "serve.lat.loop_tick", "count"), 1);

  // The prom file is rewritten every tick with the full exposition.
  std::string text;
  for (int i = 0; i < 200 && text.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::ifstream in(prom, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("na_serve_requests "), std::string::npos);
  EXPECT_NE(text.find("# TYPE na_serve_lat_edit histogram"),
            std::string::npos);
  EXPECT_NE(text.find("na_serve_lat_edit_bucket{le=\"+Inf\"}"),
            std::string::npos);
  live.stop();
  std::remove(prom.c_str());
  std::remove((prom + ".tmp").c_str());
}

TEST(Serve, SlowRequestsLandInTheSlowLog) {
  // In-process wiring of the tail-sampling path: flight recorder bounding
  // the rings, a slow log, and a threshold every batch exceeds.
  const std::string log = testing::TempDir() + "serve_slow_test.jsonl";
  std::remove(log.c_str());
  obs::trace_disable();
  obs::trace_reset();
  obs::trace_flight_enable(4096);
  obs::trace_enable();
  ASSERT_TRUE(obs::trace_slow_log_open(log));
  {
    ServerOptions opt;
    opt.host.slow_ms = 1e-6;  // everything is "slow"
    LiveServer live(opt);
    BlockingClient c = live.connect();
    ASSERT_TRUE(
        is_ok(c.request(R"({"op":"open","session":"s","design":"chain"})")));
    ASSERT_TRUE(is_ok(c.request(edit_line("s", 0))));
    ASSERT_TRUE(is_ok(c.request(R"({"op":"get","session":"s"})")));

    const std::string r = c.request(R"({"op":"metrics"})");
    EXPECT_GE(metric_value(r, "serve.slow.records"), 2);
    EXPECT_EQ(metric_value(r, "serve.flight.capacity"), 4096);
  }
  ASSERT_TRUE(obs::trace_slow_log_close());

  std::ifstream in(log, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("{\"label\":\"serve.open\""), std::string::npos);
  EXPECT_NE(text.find("{\"label\":\"serve.edit\""), std::string::npos);
  EXPECT_NE(text.find("\"ms\":"), std::string::npos);
#if NA_TRACE_ENABLED
  // The captured window carries the span subtree the batch recorded.
  EXPECT_NE(text.find("\"serve.edit\""), std::string::npos);
#endif

  obs::trace_disable();
  obs::trace_flight_enable(0);
  obs::trace_reset();
  std::remove(log.c_str());
}

TEST(Serve, FlightDumpWritesTheRetainedRings) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "NA_TRACE=OFF build";
  const std::string path = testing::TempDir() + "serve_flight_test.json";
  std::remove(path.c_str());
  obs::trace_disable();
  obs::trace_reset();
  obs::trace_flight_enable(256);
  obs::trace_enable();
  {
    LiveServer live;
    BlockingClient c = live.connect();
    ASSERT_TRUE(
        is_ok(c.request(R"({"op":"open","session":"f","design":"chain"})")));
    ASSERT_TRUE(is_ok(c.request(edit_line("f", 0))));
    ASSERT_TRUE(is_ok(c.request(R"({"op":"get","session":"f"})")));
    // On-demand dump takes the flush gate exclusive, so it can run while
    // the server is live.
    ASSERT_TRUE(live.server.dump_flight(path));
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("serve.edit"), std::string::npos);

  obs::trace_disable();
  obs::trace_flight_enable(0);
  obs::trace_reset();
  std::remove(path.c_str());
}

TEST(ServeOptions, DegenerateOptionsFailAtStartNamingTheFlag) {
  const auto start_error = [](ServerOptions opt) {
    opt.port = opt.port == -1 ? -1 : 0;
    Server server(std::move(opt));
    std::string error;
    EXPECT_FALSE(server.start(&error));
    return error;
  };
  {
    ServerOptions opt;
    opt.io_threads = 0;
    EXPECT_NE(start_error(opt).find("--io-threads"), std::string::npos);
  }
  {
    ServerOptions opt;
    opt.max_line = 0;
    EXPECT_NE(start_error(opt).find("--max-line"), std::string::npos);
  }
  {
    ServerOptions opt;
    opt.max_in_flight = 0;
    EXPECT_NE(start_error(opt).find("--max-in-flight"), std::string::npos);
  }
  {
    ServerOptions opt;
    opt.host.threads = 0;
    EXPECT_NE(start_error(opt).find("--threads"), std::string::npos);
  }
  {
    ServerOptions opt;
    opt.port = -1;
    EXPECT_NE(start_error(opt).find("--port"), std::string::npos);
  }
}

TEST(MultiEdit, StatsCountComposedRegens) {
  LiveServer live;
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"cc","design":"chain"})")));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(is_ok(c.request(edit_line("cc", i))));

  // stats is NOT an observation point: the 3 edits are still pending.
  std::string stats = c.request(R"({"op":"stats"})");
  EXPECT_EQ(metric_value(stats, "serve.pending_edits"), 3);
  EXPECT_EQ(metric_value(stats, "serve.batch.regens"), 0);

  // The get flushes all of them through one update.
  const std::string got = c.request(R"({"op":"get","session":"cc"})");
  ASSERT_TRUE(is_ok(got)) << got;
  EXPECT_NE(got.find("\"flushed_edits\":3"), std::string::npos) << got;
  stats = c.request(R"({"op":"stats"})");
  EXPECT_EQ(metric_value(stats, "serve.pending_edits"), 0);
  EXPECT_EQ(metric_value(stats, "serve.batch.regens"), 1);
  EXPECT_EQ(metric_value(stats, "serve.batch.composed"), 3);
  EXPECT_EQ(metric_value(stats, "serve.batch.edits"), 3);
  EXPECT_LT(metric_value(stats, "serve.batch.regens"),
            metric_value(stats, "serve.batch.edits"));

  // An idle get flushes nothing and runs no further update.
  ASSERT_TRUE(is_ok(c.request(R"({"op":"get","session":"cc"})")));
  stats = c.request(R"({"op":"stats"})");
  EXPECT_EQ(metric_value(stats, "serve.batch.regens"), 1);
}

TEST(MultiEdit, SaveBetweenEditsSnapshotsPrecedingEdit) {
  LiveServer live;  // no state dir: save returns the blob inline
  BlockingClient c = live.connect();
  ASSERT_TRUE(is_ok(c.request(R"({"op":"open","session":"sv","design":"chain"})")));

  // Pipeline edit / save / edit / get without reading: however the drain
  // jobs slice this, the save must snapshot exactly the state after the
  // first edit, and the get must observe both.
  ASSERT_TRUE(c.send_line(edit_line("sv", 0)));
  ASSERT_TRUE(c.send_line(R"({"op":"save","session":"sv"})"));
  ASSERT_TRUE(c.send_line(edit_line("sv", 1)));
  ASSERT_TRUE(c.send_line(R"({"op":"get","session":"sv"})"));

  std::string edit0, save, edit1, get;
  ASSERT_TRUE(c.recv_line(&edit0));
  ASSERT_TRUE(c.recv_line(&save));
  ASSERT_TRUE(c.recv_line(&edit1));
  ASSERT_TRUE(c.recv_line(&get));
  ASSERT_TRUE(is_ok(edit0)) << edit0;
  ASSERT_TRUE(is_ok(save)) << save;
  ASSERT_TRUE(is_ok(edit1)) << edit1;
  ASSERT_TRUE(is_ok(get)) << get;
  EXPECT_NE(save.find("\"flushed_edits\":1"), std::string::npos) << save;
  EXPECT_NE(get.find("\"flushed_edits\":1"), std::string::npos) << get;

  // Local reference with the same observation structure: flush after
  // edit 0 (the save), snapshot, flush after edit 1 (the get).
  RegenSession regen{RegenOptions{}};
  regen.update(design_network("chain"));
  ScriptComposer pending(regen.network());
  pending.apply([](NetworkEditor& ed) { ed.add_module("mod0", "", {4, 3}); });
  regen.update_composed(pending.network(), pending.steps());
  pending.flushed();
  const std::string want_blob = regen.save();
  pending.apply([](NetworkEditor& ed) { ed.add_module("mod1", "", {4, 3}); });
  regen.update_composed(pending.network(), pending.steps());
  pending.flushed();
  const std::string want_dia = to_escher_diagram(regen.diagram(), "sv");

  EXPECT_EQ(field_payload(save), want_blob)
      << "save between pipelined edits did not snapshot the state after "
         "the preceding edit";
  EXPECT_EQ(field_payload(get), want_dia);
}

namespace {

/// Deterministic seeded request schedule for session "f": valid single-
/// and multi-command edit scripts, removes of earlier adds, failing
/// scripts mid-run, interleaved saves, and a final get.
std::vector<std::string> fuzz_schedule(uint32_t seed, int n) {
  std::mt19937 rng(seed);
  std::vector<std::string> lines;
  std::vector<std::string> added;
  int next_mod = 0;
  for (int i = 0; i < n; ++i) {
    const int roll = static_cast<int>(rng() % 100);
    if (roll < 45) {  // fresh module
      const std::string m = "fz" + std::to_string(next_mod++);
      lines.push_back(
          R"({"op":"edit","session":"f","edits":[{"kind":"add_module","name":")" +
          m + R"(","template":"","w":4,"h":3}]})");
      added.push_back(m);
    } else if (roll < 60) {  // one script: add + terminal + connect
      const std::string m = "fc" + std::to_string(next_mod++);
      const std::string net = "chain" + std::to_string(rng() % 4);
      lines.push_back(
          R"({"op":"edit","session":"f","edits":[)"
          R"({"kind":"add_module","name":")" + m +
          R"(","template":"","w":4,"h":3},)"
          R"({"kind":"add_terminal","module":")" + m +
          R"(","name":"t","type":"in","x":0,"y":1},)"
          R"({"kind":"connect","net":")" + net + R"(","module":")" + m +
          R"(","term":"t"}]})");
      added.push_back(m);
    } else if (roll < 72 && !added.empty()) {  // remove an earlier add
      const size_t k = rng() % added.size();
      lines.push_back(
          R"({"op":"edit","session":"f","edits":[{"kind":"remove_module","name":")" +
          added[k] + R"("}]})");
      added.erase(added.begin() + static_cast<long>(k));
    } else if (roll < 86) {  // failing script (unknown module)
      lines.push_back(
          R"({"op":"edit","session":"f","edits":[{"kind":"remove_module","name":"missing)" +
          std::to_string(rng() % 1000) + R"("}]})");
    } else {  // save: an observation point mid-run
      lines.push_back(R"({"op":"save","session":"f"})");
    }
  }
  lines.push_back(R"({"op":"get","session":"f"})");
  return lines;
}

}  // namespace

TEST(MultiEdit, BatchedAndUnbatchedRepliesAreByteIdentical) {
  // The byte-identity acceptance bar, fuzzed: stream a seeded random
  // request mix pipelined (edits coalesce and compose into few flushes)
  // and replay it request-per-response on a second server (every op its
  // own drain job).  Every response — seq numbers, batched markers,
  // flushed_edits, error messages, save blobs, the final diagram — must
  // match byte for byte, because all of them are functions of request
  // order alone, never of how the queue was sliced.
  const std::vector<std::string> lines = fuzz_schedule(0x5eed, 40);

  std::vector<std::string> pipelined;
  {
    LiveServer live;
    BlockingClient c = live.connect();
    ASSERT_TRUE(
        is_ok(c.request(R"({"op":"open","session":"f","design":"chain"})")));
    for (const std::string& line : lines) ASSERT_TRUE(c.send_line(line));
    for (size_t i = 0; i < lines.size(); ++i) {
      std::string r;
      ASSERT_TRUE(c.recv_line(&r)) << "no response to: " << lines[i];
      pipelined.push_back(std::move(r));
    }
  }

  std::vector<std::string> unbatched;
  {
    LiveServer live;
    BlockingClient c = live.connect();
    ASSERT_TRUE(
        is_ok(c.request(R"({"op":"open","session":"f","design":"chain"})")));
    for (const std::string& line : lines) unbatched.push_back(c.request(line));
  }

  ASSERT_EQ(pipelined.size(), unbatched.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(pipelined[i], unbatched[i])
        << "response " << i << " diverged for request: " << lines[i];
  }
}
